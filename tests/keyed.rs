//! Integration tests for the isolation-backend seam: the PKS capacity
//! boundary (typed exhaustion, domain recycling), the TME-MK keyed
//! backend confining hundreds of sandboxes in one address space, and the
//! kill-teardown fence (epoch bump + domain revocation) with its
//! ablation showing exactly what breaks without it.

use erebor::ecore::emc::{EmcError, EmcRequest};
use erebor::ehw::cpu::Domain;
use erebor::ehw::fault::AccessKind;
use erebor::ehw::isolation::{BackendKind, IsolationBackend};
use erebor::ehw::layout::KERNEL_BASE;
use erebor::ehw::paging;
use erebor::ehw::{BatchOp, CpuMode, VirtAddr};
use erebor::Platform;

/// Where each sandbox declares its confined page (sandbox-private
/// address spaces, so every sandbox can use the same VA).
const CONFINED_VA: VirtAddr = VirtAddr(0x7000_0000);

fn booted_with(backend: BackendKind) -> Platform {
    let mut config = erebor::ExecConfig::new(erebor::Mode::Full);
    config.backend = backend;
    let cfg = erebor::BootConfig {
        config,
        ..erebor::BootConfig::default()
    };
    Platform::boot_with(cfg).expect("boot")
}

/// Bigger machine for the many-sandbox runs.
fn booted_fleet(backend: BackendKind) -> Platform {
    let mut config = erebor::ExecConfig::new(erebor::Mode::Full);
    config.backend = backend;
    let cfg = erebor::BootConfig {
        cores: 4,
        dram_bytes: 512 * 1024 * 1024,
        config,
        ..erebor::BootConfig::default()
    };
    Platform::boot_with(cfg).expect("boot")
}

// ====================================================================
// Satellite: the PKS exhaustion boundary
// ====================================================================

/// PKS has 16 hardware keys, 6 reserved for the monitor: the 10th
/// sandbox fits, the 11th gets a *typed* `DomainsExhausted` (never a
/// silent wrap onto a live key, never a burned sandbox id), and killing
/// a sandbox makes its exact domain reusable.
#[test]
fn pks_backend_exhausts_at_capacity_with_typed_error() {
    let mut p = booted_with(BackendKind::Pks);
    p.enter_kernel_mode();
    assert_eq!(p.cvm.monitor.backend.capacity(), 16);
    assert_eq!(p.cvm.monitor.backend.reserved(), 6);
    let usable = p.cvm.monitor.backend.capacity() - p.cvm.monitor.backend.reserved();

    let mut ids = Vec::new();
    for _ in 0..usable {
        ids.push(
            p.cvm
                .monitor
                .create_sandbox(&mut p.cvm.machine, 0, 4)
                .expect("create within capacity"),
        );
    }
    assert_eq!(p.cvm.monitor.backend.live_domains(), usable);

    let next_id_before = p.cvm.monitor.sandboxes.len();
    let err = p
        .cvm
        .monitor
        .create_sandbox(&mut p.cvm.machine, 0, 4)
        .expect_err("11th sandbox is over PKS capacity");
    assert!(
        matches!(err, EmcError::DomainsExhausted { capacity: 16 }),
        "typed exhaustion, got: {err}"
    );
    assert_eq!(
        p.cvm.monitor.sandboxes.len(),
        next_id_before,
        "failed create must not burn a sandbox id"
    );

    // Kill one: its domain returns to the pool and the next create
    // reuses exactly it (LIFO recycling), back at full occupancy.
    let victim = ids[3];
    let freed = p.cvm.monitor.sandboxes.get(&victim.0).expect("live").domain;
    p.cvm.monitor.kill_sandbox(&mut p.cvm.machine, victim, "boundary test");
    assert_eq!(p.cvm.monitor.backend.live_domains(), usable - 1);
    let replacement = p
        .cvm
        .monitor
        .create_sandbox(&mut p.cvm.machine, 0, 4)
        .expect("freed domain is reusable");
    assert_eq!(
        p.cvm.monitor.sandboxes.get(&replacement.0).expect("live").domain,
        freed,
        "recycled the revoked domain"
    );

    let report = p.audit();
    assert!(report.is_clean(), "{}", report.json());
}

// ====================================================================
// Tentpole: the keyed backend lifts the ceiling
// ====================================================================

/// The headline: 256 concurrently-live sandboxes — 16× the whole PKS key
/// space — each with a confined page tagged by its own key-ID, all in
/// one machine, and the full state audit stays green. Every confined
/// leaf carries the domain's key-ID and the frame's programmed key
/// matches (the PCONFIG pairing the keyed walk check enforces).
#[test]
fn keyed_backend_confines_256_sandboxes() {
    let mut p = booted_fleet(BackendKind::TmeMk);
    let mut domains = std::collections::BTreeSet::new();
    for _ in 0..256 {
        p.enter_kernel_mode();
        let id = p
            .cvm
            .monitor
            .create_sandbox(&mut p.cvm.machine, 0, 8)
            .expect("create");
        p.cvm
            .monitor
            .emc(
                &mut p.cvm.machine,
                &mut p.cvm.tdx,
                0,
                EmcRequest::DeclareConfined {
                    sandbox: id.0,
                    va: CONFINED_VA,
                    pages: 1,
                    executable: false,
                },
            )
            .expect("declare confined");
        let s = p.cvm.monitor.sandboxes.get(&id.0).expect("live");
        domains.insert(s.domain.0);
        let leaf = paging::lookup_raw(&p.cvm.machine.mem, s.root, CONFINED_VA)
            .expect("walk")
            .expect("confined page mapped");
        assert_eq!(leaf.keyid(), s.domain.0, "leaf tagged with the domain key-ID");
        assert_eq!(
            p.cvm.machine.mem.frame_key(leaf.frame()),
            s.domain.0,
            "frame key programmed to match"
        );
    }
    assert_eq!(domains.len(), 256, "256 distinct key-ID domains");
    assert!(p.cvm.monitor.backend.live_domains() >= 256);
    assert!(
        p.cvm.monitor.backend.capacity() > p.cvm.monitor.backend.live_domains(),
        "keyed capacity has headroom left"
    );
    let report = p.audit();
    assert!(report.is_clean(), "{}", report.json());
}

// ====================================================================
// Satellite: the kill-teardown fence and its ablation
// ====================================================================

/// Create a sandbox with *zero* confined pages (so teardown issues no
/// per-VA shootdowns — the worst case for the fence), park victim core 1
/// on the sandbox's CR3, warm its permission-decision cache, then kill
/// the sandbox. Returns the observables the fence is responsible for.
fn kill_with_fence(kill_fence: bool) -> (u64, u64, usize, u16, u16) {
    let mut p = booted_with(BackendKind::Pks);
    p.cvm.monitor.kill_fence = kill_fence;
    p.enter_kernel_mode();
    let id = p
        .cvm
        .monitor
        .create_sandbox(&mut p.cvm.machine, 0, 4)
        .expect("create");
    let root = p.cvm.monitor.sandboxes.get(&id.0).expect("live").root;

    // Victim core 1 runs (deprivileged-kernel mode) on the sandbox's
    // address space and caches permission decisions keyed to that CR3.
    p.cvm.machine.cpus[1].mode = CpuMode::Supervisor;
    p.cvm.machine.cpus[1].domain = Domain::Kernel;
    p.cvm.machine.cpus[1].cr3 = root;
    p.cvm.machine.flush_tlb(1);
    let ops = [BatchOp::Probe {
        va: KERNEL_BASE,
        kind: AccessKind::Read,
    }; 2];
    let out = p.cvm.machine.run_batch(1, &ops);
    assert!(out.fault.is_none(), "{out:?}");
    assert!(p.cvm.machine.decision_cache(1).occupancy() > 0, "cache warmed");

    let pre_epoch = p.cvm.machine.mmu_epoch();
    let live_before = p.cvm.monitor.backend.live_domains();
    p.cvm.monitor.kill_sandbox(&mut p.cvm.machine, id, "fence test");
    (
        pre_epoch,
        p.cvm.machine.mmu_epoch(),
        p.cvm.machine.decision_cache(1).occupancy(),
        live_before,
        p.cvm.monitor.backend.live_domains(),
    )
}

/// Red half: with the fence ablated, a zero-confined-page kill issues no
/// shootdown and no epoch bump — the victim core's cached decisions for
/// the dead sandbox's CR3 are *still valid* (same ctx, same epoch: the
/// batch layer would serve them without a walk), and the isolation
/// domain is never revoked.
#[test]
fn kill_without_fence_leaves_stale_decisions_and_leaks_the_domain() {
    let (pre_epoch, post_epoch, occupancy, live_before, live_after) = kill_with_fence(false);
    assert_eq!(
        post_epoch, pre_epoch,
        "ablated fence: nothing bumped the epoch"
    );
    assert!(
        occupancy > 0,
        "stale decisions for the dead sandbox's CR3 survive, still epoch-valid"
    );
    assert_eq!(live_after, live_before, "the domain leaked");
}

/// Green half: the fence unconditionally bumps the MMU epoch (closing
/// the decision window even with no shootdowns in flight) and revokes
/// the domain.
#[test]
fn kill_fence_closes_the_decision_window_and_frees_the_domain() {
    let (pre_epoch, post_epoch, _occupancy, live_before, live_after) = kill_with_fence(true);
    assert_ne!(
        post_epoch, pre_epoch,
        "fence bumps the epoch even with zero confined pages"
    );
    assert_eq!(live_after, live_before - 1, "domain revoked");
}

/// The leak compounds: without the fence, PKS create/kill churn runs the
/// key space dry even though at most one sandbox is ever alive. With the
/// fence, the same churn runs indefinitely.
#[test]
fn churn_without_fence_exhausts_pks_domains() {
    let mut p = booted_with(BackendKind::Pks);
    p.cvm.monitor.kill_fence = false;
    p.enter_kernel_mode();
    for _ in 0..10 {
        let id = p
            .cvm
            .monitor
            .create_sandbox(&mut p.cvm.machine, 0, 4)
            .expect("pre-exhaustion create");
        p.cvm.monitor.kill_sandbox(&mut p.cvm.machine, id, "churn");
    }
    let err = p
        .cvm
        .monitor
        .create_sandbox(&mut p.cvm.machine, 0, 4)
        .expect_err("leaked domains exhaust the key space");
    assert!(matches!(err, EmcError::DomainsExhausted { .. }));
}

#[test]
fn churn_with_fence_never_exhausts_pks_domains() {
    let mut p = booted_with(BackendKind::Pks);
    p.enter_kernel_mode();
    for _ in 0..32 {
        let id = p
            .cvm
            .monitor
            .create_sandbox(&mut p.cvm.machine, 0, 4)
            .expect("churn create");
        p.cvm.monitor.kill_sandbox(&mut p.cvm.machine, id, "churn");
    }
    assert_eq!(p.cvm.monitor.backend.live_domains(), 0);
}
