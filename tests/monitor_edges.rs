//! EMC dispatcher edge cases: malformed and boundary requests the
//! (untrusted) kernel can submit.

use erebor::{Mode, Platform};
use erebor_core::emc::{EmcError, EmcRequest, EmcResponse};
use erebor_hw::layout::{KERNEL_BASE, MONITOR_BASE};
use erebor_hw::{Frame, VirtAddr};
use erebor_workloads::hello::HelloWorld;

fn full() -> Platform {
    Platform::boot(Mode::Full).expect("boot")
}

fn emc(p: &mut Platform, req: EmcRequest) -> Result<EmcResponse, EmcError> {
    p.enter_kernel_mode();
    p.cvm
        .monitor
        .emc(&mut p.cvm.machine, &mut p.cvm.tdx, 0, req)
}

#[test]
fn map_rejects_unaligned_and_non_user_vas() {
    let mut p = full();
    let root = p.cvm.monitor.kernel_root;
    for (va, why) in [
        (VirtAddr(0x40_0123), "unaligned"),
        (KERNEL_BASE, "kernel half"),
        (MONITOR_BASE, "monitor window"),
    ] {
        let err = emc(
            &mut p,
            EmcRequest::MapUserPage {
                root,
                va,
                frame: None,
                writable: true,
                executable: false,
            },
        )
        .expect_err(why);
        assert!(
            matches!(err, EmcError::BadRequest(_) | EmcError::Denied(_)),
            "{why}: {err}"
        );
    }
}

#[test]
fn map_rejects_writable_executable() {
    let mut p = full();
    let root = p.cvm.monitor.kernel_root;
    let err = emc(
        &mut p,
        EmcRequest::MapUserPage {
            root,
            va: VirtAddr(0x50_0000),
            frame: None,
            writable: true,
            executable: true,
        },
    )
    .expect_err("W^X");
    assert!(matches!(
        err,
        EmcError::Denied("W^X: writable+executable refused")
    ));
}

#[test]
fn switch_to_unregistered_root_denied() {
    let mut p = full();
    let before = p.cvm.machine.cpus[0].cr3;
    let err = emc(&mut p, EmcRequest::SwitchAddressSpace { root: Frame(4) }).expect_err("bogus");
    assert!(matches!(err, EmcError::Denied(_)));
    assert_eq!(p.cvm.machine.cpus[0].cr3, before, "cr3 unchanged on denial");
}

#[test]
fn sandbox_requests_on_unknown_ids_fail_cleanly() {
    let mut p = full();
    let err = emc(
        &mut p,
        EmcRequest::DeclareConfined {
            sandbox: 999,
            va: VirtAddr(0x50_0000),
            pages: 1,
            executable: false,
        },
    )
    .expect_err("unknown sandbox");
    assert!(matches!(err, EmcError::BadRequest(_)));
    let err = emc(
        &mut p,
        EmcRequest::AttachCommon {
            sandbox: 999,
            region: 999,
            va: VirtAddr(0x5_0000_0000),
        },
    )
    .expect_err("unknown region");
    assert!(matches!(err, EmcError::BadRequest(_)));
}

#[test]
fn declare_after_data_install_denied() {
    let mut p = full();
    let mut svc = p
        .deploy(Box::new(HelloWorld::default()), 4096)
        .expect("deploy");
    let mut client = p.connect_client(&svc, [8; 32]).expect("attest");
    p.serve_request(&mut svc, &mut client, b"x").expect("serve");
    let err = emc(
        &mut p,
        EmcRequest::DeclareConfined {
            sandbox: svc.sandbox.0,
            va: VirtAddr(0x7000_0000),
            pages: 1,
            executable: false,
        },
    )
    .expect_err("post-install declare");
    assert!(matches!(
        err,
        EmcError::Denied("confined declaration after data install")
    ));
}

#[test]
fn only_cr0_and_cr4_are_delegated() {
    let mut p = full();
    for which in [1u8, 2, 3, 5] {
        let err = emc(
            &mut p,
            EmcRequest::WriteCr {
                which,
                value: 0xffff_ffff,
            },
        )
        .expect_err("cr");
        assert!(matches!(err, EmcError::BadRequest(_)), "CR{which}: {err}");
    }
}

#[test]
fn unmap_of_kernel_code_frame_denied() {
    let mut p = full();
    // Map a user page first, then try to unmap a *kernel text* VA... which
    // is not in the user half; probe instead with a user VA whose leaf the
    // kernel cannot unmap: an unmapped one.
    let root = p.cvm.monitor.kernel_root;
    let err = emc(
        &mut p,
        EmcRequest::UnmapUserPage {
            root,
            va: VirtAddr(0x7f77_0000_0000),
        },
    )
    .expect_err("not mapped");
    assert!(matches!(err, EmcError::BadRequest(_)));
}

#[test]
fn text_poke_bounds_checked() {
    let mut p = full();
    // Beyond kernel text.
    let err = emc(
        &mut p,
        EmcRequest::TextPoke {
            offset: 1 << 40,
            bytes: vec![0x90],
        },
    )
    .expect_err("out of range");
    assert!(matches!(err, EmcError::BadRequest(_)));
    // Crossing a page boundary.
    let err = emc(
        &mut p,
        EmcRequest::TextPoke {
            offset: 0x1ffe,
            bytes: vec![0x90; 8],
        },
    )
    .expect_err("page crossing");
    assert!(matches!(err, EmcError::BadRequest(_)));
    // Integer-overflow probing.
    let err = emc(
        &mut p,
        EmcRequest::TextPoke {
            offset: u64::MAX - 2,
            bytes: vec![0x90; 8],
        },
    )
    .expect_err("overflow");
    assert!(matches!(err, EmcError::BadRequest(_)));
}

#[test]
fn common_region_can_attach_at_two_sandboxes() {
    let mut p = full();
    let id = match emc(
        &mut p,
        EmcRequest::CreateCommon {
            pages: 4,
            logical_bytes: 1 << 20,
        },
    )
    .expect("create")
    {
        EmcResponse::Region(id) => id,
        other => panic!("{other:?}"),
    };
    let s1 = p
        .cvm
        .monitor
        .create_sandbox(&mut p.cvm.machine, 0, 1024)
        .expect("s1");
    let s2 = p
        .cvm
        .monitor
        .create_sandbox(&mut p.cvm.machine, 0, 1024)
        .expect("s2");
    for s in [s1, s2] {
        emc(
            &mut p,
            EmcRequest::AttachCommon {
                sandbox: s.0,
                region: id,
                va: VirtAddr(0x6_0000_0000),
            },
        )
        .expect("attach");
    }
    assert_eq!(p.cvm.monitor.common_regions[&id].attached.len(), 2);
}

#[test]
fn emc_denied_entirely_without_monitor() {
    let mut p = Platform::boot(Mode::Native).expect("boot");
    let err = emc(&mut p, EmcRequest::Nop).expect_err("no monitor");
    assert!(matches!(err, EmcError::Denied(_)));
}
