//! The threat model's attack vectors (§3.2) executed end-to-end:
//!
//! * **AV1** — OS data retrieval: direct reads, shared-memory conversion +
//!   DMA, register snooping at interrupts.
//! * **AV2** — program direct leakage: system calls and hypercalls from a
//!   sandbox holding client data.
//! * **AV3** — program covert leakage: encoding data into call parameters
//!   and user-mode interrupts.

use erebor::{Mode, Platform, ServiceInstance};
use erebor_core::channel::Client;
use erebor_core::emc::{EmcError, EmcRequest};
use erebor_core::monitor::SYS_IOCTL;
use erebor_core::sandbox::{ExitDecision, SandboxState};
use erebor_hw::fault::{Fault, PfReason, VeReason};
use erebor_hw::layout::direct_map;
use erebor_hw::regs::Msr;
use erebor_libos::api::{Sys, SysError};
use erebor_libos::manifest::Manifest;
use erebor_libos::os::{LibOs, ServiceProgram};
use erebor_workloads::hello::HelloWorld;

const SECRET: &[u8] = b"patient record: diagnosis code F41.1";

fn deployed() -> (Platform, ServiceInstance, Client) {
    let mut platform = Platform::boot(Mode::Full).expect("boot");
    let mut svc = platform
        .deploy(Box::new(HelloWorld::default()), 4096)
        .expect("deploy");
    let mut client = platform.connect_client(&svc, [0xc1; 32]).expect("attest");
    // Install the secret so the sandbox is in DataLoaded.
    platform
        .client_send(&svc, &mut client, SECRET)
        .expect("send");
    let pid = svc.pid;
    let data = svc.os.input(&mut platform.proc(pid)).expect("input");
    assert_eq!(data, SECRET);
    (platform, svc, client)
}

// ====================================================================
// AV1 — OS data retrieval
// ====================================================================

#[test]
fn av1_kernel_cannot_read_secret_from_confined_memory() {
    let (mut p, svc, _client) = deployed();
    p.enter_kernel_mode();
    // The secret now lives in the sandbox's confined pages. Try them all.
    let sandbox = &p.cvm.monitor.sandboxes[&svc.sandbox.0];
    let frames: Vec<_> = sandbox.confined.iter().map(|(_, f)| *f).collect();
    for frame in frames {
        let err = p
            .cvm
            .machine
            .read_u64(0, direct_map(frame.base()))
            .expect_err("kernel read of confined frame must fault");
        assert!(err.is_pf(PfReason::PksAccessDisabled));
    }
}

#[test]
fn av1_kernel_cannot_convert_confined_memory_to_shared_for_dma() {
    let (mut p, svc, _client) = deployed();
    p.enter_kernel_mode();
    let (_, frame) = p.cvm.monitor.sandboxes[&svc.sandbox.0].confined[0];
    // Step 1: ask the monitor to convert the frame to shared (GHCI).
    let err = p
        .cvm
        .monitor
        .emc(
            &mut p.cvm.machine,
            &mut p.cvm.tdx,
            0,
            EmcRequest::ConvertShared {
                frame,
                shared: true,
            },
        )
        .expect_err("conversion outside device window must be denied");
    assert!(matches!(err, EmcError::Denied(_)));
    // Step 2: even a direct DMA attempt fails (frame is private).
    assert!(p.cvm.host_dma_write(frame, b"x").is_err());
    // And the host never saw the secret.
    assert!(!p.cvm.tdx.host.observed_contains(SECRET));
}

#[test]
fn av1_kernel_sees_scrubbed_registers_at_interrupts() {
    let (mut p, svc, _client) = deployed();
    // Sandbox computes on the secret; registers hold pieces of it.
    p.cvm.machine.cpus[0].ctx.gpr[3] = u64::from_le_bytes(SECRET[..8].try_into().unwrap());
    let saved = p.cvm.machine.cpus[0].ctx;
    let decision = p.cvm.monitor.on_interrupt(
        &mut p.cvm.machine,
        0,
        Some(svc.sandbox),
        erebor_hw::idt::vector::TIMER,
        saved,
    );
    assert!(matches!(decision, ExitDecision::ForwardToKernel { .. }));
    assert!(p.cvm.machine.cpus[0].ctx.is_scrubbed());
    // The TDX module additionally scrubs what the *host* sees at the
    // async exit.
    let host_view = p.cvm.tdx.async_exit_context_protect(&mut p.cvm.machine, 0);
    assert!(host_view.is_scrubbed());
}

#[test]
fn av1_forged_attestation_cannot_impersonate_the_monitor() {
    // A malicious OS stands up its own "monitor" on a machine it controls
    // and replays a handshake: the client's root-key check defeats it.
    let real = Platform::boot(Mode::Full).expect("boot");
    let expected = erebor_tdx::attest::expected_mrtd(&[
        &real.cvm.firmware_image.measurement_bytes(),
        &real.cvm.monitor_image.measurement_bytes(),
    ]);
    let root = real.cvm.tdx.attest.root_public();
    // Attacker's quote: right measurement values, wrong signing key.
    let mut fake_attest = erebor_tdx::attest::Attestation::new([0xbd; 32]);
    fake_attest.extend_mrtd(&real.cvm.firmware_image.measurement_bytes());
    fake_attest.extend_mrtd(&real.cvm.monitor_image.measurement_bytes());
    fake_attest.seal_mrtd();
    let (mut client, hello) = Client::new([1; 32], root, expected);
    let fake_pub = erebor_crypto::x25519::public_key(&[0xee; 32]);
    let binding = erebor_crypto::kx::binding_hash(&hello.client_pub, &fake_pub);
    let mut rd = [0u8; 64];
    rd[..32].copy_from_slice(&binding);
    let quote = fake_attest.quote(fake_attest.tdreport(rd));
    let err = client
        .finish(&erebor_core::channel::ServerHello {
            monitor_pub: fake_pub,
            quote,
        })
        .expect_err("forged quote must fail");
    let _ = err;
}

// ====================================================================
// AV2 — program direct leakage
// ====================================================================

/// A malicious service program that tries to exfiltrate the client data
/// through every direct channel it can reach.
struct Exfiltrator {
    attempt: &'static str,
}

impl ServiceProgram for Exfiltrator {
    fn name(&self) -> &str {
        "exfiltrator"
    }
    fn manifest(&self) -> Manifest {
        Manifest::new("exfiltrator", 8)
    }
    fn serve(
        &mut self,
        _os: &mut LibOs,
        sys: &mut dyn Sys,
        request: &[u8],
    ) -> Result<Vec<u8>, SysError> {
        match self.attempt {
            // write(2) the secret to a file the OS can read.
            "write" => {
                sys.syscall(
                    erebor_kernel::syscall::nr::WRITE,
                    [1, request.as_ptr() as u64, request.len() as u64, 0, 0, 0],
                )?;
            }
            // open(2) with the secret embedded in the path (parameter
            // encoding).
            "open" => {
                sys.syscall(
                    erebor_kernel::syscall::nr::OPEN,
                    [0x5000_0000, 32, 0x40, 0, 0, 0],
                )?;
            }
            _ => {}
        }
        Ok(b"done".to_vec())
    }
}

#[test]
fn av2_syscall_after_data_install_kills_sandbox() {
    for attempt in ["write", "open"] {
        let mut p = Platform::boot(Mode::Full).expect("boot");
        let mut svc = p
            .deploy(Box::new(Exfiltrator { attempt }), 4096)
            .expect("deploy");
        let mut client = p.connect_client(&svc, [0xa2; 32]).expect("attest");
        let err = p
            .serve_request(&mut svc, &mut client, SECRET)
            .expect_err("exfiltration syscall must kill the sandbox");
        let msg = format!("{err}");
        assert!(msg.contains("killed"), "{attempt}: {msg}");
        // The sandbox is dead, its memory scrubbed.
        let sb = &p.cvm.monitor.sandboxes[&svc.sandbox.0];
        assert_eq!(sb.state, SandboxState::Dead);
        assert!(sb.confined.is_empty(), "confined frames must be released");
        // Nothing reached the attacker.
        assert!(!p.cvm.tdx.host.observed_contains(SECRET));
        assert!(p.kernel.vfs.debug_out.is_empty());
    }
}

#[test]
fn av2_sandbox_hypercall_attempt_kills_sandbox() {
    let (mut p, svc, _client) = deployed();
    // A #VE-class synchronous exit that is not cpuid (e.g. an MSR probe
    // trying to marshal data to the host).
    let decision = p.cvm.monitor.on_ve(
        &mut p.cvm.machine,
        &mut p.cvm.tdx,
        0,
        Some(svc.sandbox),
        VeReason::MsrAccess,
        0,
    );
    assert!(
        matches!(decision, ExitDecision::Killed { .. }),
        "{decision:?}"
    );
    assert_eq!(
        p.cvm.monitor.sandboxes[&svc.sandbox.0].state,
        SandboxState::Dead
    );
}

#[test]
fn av2_sandbox_cannot_execute_tdcall_directly() {
    let (mut p, _svc, _client) = deployed();
    // From user mode (ring 3), tdcall traps with #GP (§2.1).
    p.cvm.machine.cpus[0].mode = erebor_hw::CpuMode::User;
    p.cvm.machine.cpus[0].domain = erebor_hw::cpu::Domain::User;
    let err = erebor_tdx::tdcall::tdcall(
        &mut p.cvm.tdx,
        &mut p.cvm.machine,
        0,
        erebor_tdx::tdcall::TdcallLeaf::VmCall(erebor_tdx::tdcall::VmcallOp::Data(SECRET.to_vec())),
    )
    .expect_err("user tdcall must #GP");
    assert!(matches!(err, Fault::GeneralProtection(_)));
    assert!(!p.cvm.tdx.host.observed_contains(SECRET));
}

#[test]
fn av2_sandbox_writes_outside_confined_memory_fault() {
    let (mut p, svc, _client) = deployed();
    let pid = svc.pid;
    // Unmapped user address: stray PF after data install kills.
    let err = p
        .proc(pid)
        .write_mem(0x7f00_0000_0000, b"leak")
        .expect_err("stray write");
    assert!(matches!(err, SysError::Killed(_)), "{err:?}");
}

// ====================================================================
// AV3 — covert leakage
// ====================================================================

#[test]
fn av3_user_interrupts_disabled_after_data_install() {
    let (p, _svc, _client) = deployed();
    // IA32_UINTR_TT.valid must be clear (§6.2 ④).
    assert_eq!(
        p.cvm.machine.cpus[0].msr(Msr::UintrTt) & 1,
        0,
        "user-interrupt target table must be invalidated"
    );
}

#[test]
fn av3_output_size_channel_closed_by_padding() {
    // Two sandboxes answering 1 byte vs ~3900 bytes produce identical
    // record sizes on the wire (§6.3).
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let mut s1 = p
        .deploy(Box::new(HelloWorld { len: 1 }), 4096)
        .expect("deploy");
    let mut s2 = p
        .deploy(Box::new(HelloWorld { len: 3900 }), 4096)
        .expect("deploy");
    let mut c1 = p.connect_client(&s1, [1; 32]).expect("attest");
    let mut c2 = p.connect_client(&s2, [2; 32]).expect("attest");
    let observed_before = p.cvm.tdx.host.observed.len();
    let r1 = p.serve_request(&mut s1, &mut c1, b"q").expect("r1");
    let r2 = p.serve_request(&mut s2, &mut c2, b"q").expect("r2");
    assert_eq!(r1.len(), 1);
    assert_eq!(r2.len(), 3900);
    // Compare what crossed the proxy after the requests.
    let records: Vec<&Vec<u8>> = p.cvm.tdx.host.observed[observed_before..]
        .iter()
        .filter(|r| r.len() > 64)
        .collect();
    assert!(records.len() >= 2, "two sealed replies crossed the proxy");
    let reply_sizes: std::collections::BTreeSet<usize> = records.iter().map(|r| r.len()).collect();
    // r1's reply (1 byte) and r2's reply (3900 bytes) must be
    // indistinguishable by size: one padded record size.
    assert_eq!(
        reply_sizes.len(),
        1,
        "padded record sizes must not track output length: {reply_sizes:?}"
    );
}

#[test]
fn av3_ioctl_parameter_encoding_cannot_reach_the_kernel() {
    // After data install, the only permitted ioctl is the reserved fd; its
    // arguments are consumed by the monitor, never the kernel. An ioctl on
    // any other fd (parameters as covert payload) kills the sandbox.
    let (mut p, svc, _client) = deployed();
    let pid = svc.pid;
    let before = p.kernel.stats.syscalls;
    let err = p
        .proc(pid)
        .syscall(
            SYS_IOCTL,
            [5 /* not the reserved fd */, 0x41, 0x42, 0x43, 0, 0],
        )
        .expect_err("non-channel ioctl must kill");
    assert!(matches!(err, SysError::Killed(_)));
    assert_eq!(
        p.kernel.stats.syscalls, before,
        "the kernel must never have dispatched the covert syscall"
    );
}

#[test]
fn av3_cpuid_served_from_cache_without_host_exit() {
    let (mut p, svc, _client) = deployed();
    let pid = svc.pid;
    let vmcalls_before = p.cvm.tdx.stats.vmcalls;
    // First cpuid may consult the host once; later ones must not.
    for _ in 0..8 {
        p.proc(pid).cpuid(1).expect("cpuid");
    }
    let vmcalls = p.cvm.tdx.stats.vmcalls - vmcalls_before;
    assert!(
        vmcalls <= 1,
        "cpuid frequency channel must be closed ({vmcalls} exits)"
    );
    assert_eq!(
        p.cvm.monitor.sandboxes[&svc.sandbox.0].state,
        SandboxState::DataLoaded
    );
}

#[test]
fn end_to_end_secret_never_visible_outside() {
    let (mut p, mut svc, mut client) = deployed();
    // Finish the request legitimately.
    let pid = svc.pid;
    let res = svc
        .program
        .serve(&mut svc.os, &mut p.proc(pid), SECRET)
        .expect("serve");
    svc.os.output(&mut p.proc(pid), &res).expect("output");
    let reply = p.client_recv(&svc, &mut client).expect("recv");
    assert!(!reply.is_empty());
    // Sweep every attacker-visible surface for the secret.
    assert!(
        !p.cvm.tdx.host.observed_contains(SECRET),
        "host/proxy saw the secret"
    );
    assert!(
        !p.kernel
            .vfs
            .debug_out
            .windows(SECRET.len())
            .any(|w| w == SECRET),
        "debugfs saw the secret"
    );
    for out in p.kernel.stdout.values() {
        assert!(
            !out.windows(SECRET.len()).any(|w| w == SECRET),
            "stdout saw the secret"
        );
    }
}

#[test]
fn av2_sandbox_write_to_sealed_common_kills() {
    // The model/database is common memory, sealed read-only at data
    // install; a malicious program trying to scribble the shared model
    // (e.g. to signal a colluding sandbox) dies on the spot (C7).
    use erebor_workloads::{SandboxedWorkload, Workload, WorkloadParams};

    struct CommonScribbler;
    impl Workload for CommonScribbler {
        fn name(&self) -> &'static str {
            "scribbler"
        }
        fn params(&self) -> WorkloadParams {
            WorkloadParams {
                private_pages: 8,
                shared_pages: 8,
                logical_private: 1 << 20,
                logical_shared: 1 << 20,
                threads: 1,
            }
        }
        fn serve(
            &mut self,
            env: &mut dyn erebor_workloads::Env,
            _request: &[u8],
        ) -> Result<Vec<u8>, SysError> {
            // touch_shared is a read; get the base and write directly.
            env.touch_shared(0)?; // materialize (read-only now)
            Err(SysError::Fault) // unreachable marker; real write below
        }
    }

    let mut p = Platform::boot(Mode::Full).expect("boot");
    let mut svc = p
        .deploy(Box::new(SandboxedWorkload::new(CommonScribbler)), 4096)
        .expect("deploy");
    let mut client = p.connect_client(&svc, [0x5c; 32]).expect("attest");
    p.client_send(&svc, &mut client, b"secret").expect("send");
    let pid = svc.pid;
    svc.os.input(&mut p.proc(pid)).expect("input");
    // Write to the (sealed) common region from user mode.
    let base = svc.os.common("shared").expect("handle").base;
    let err = p
        .proc(pid)
        .write_mem(base, b"corrupt the shared model")
        .expect_err("sealed common must refuse writes");
    assert!(
        matches!(err, SysError::Killed(_) | SysError::Fault),
        "{err:?}"
    );
    // If the monitor killed it, the state reflects that; either way the
    // write never landed.
    let region = &p.cvm.monitor.common_regions[&1];
    assert!(region.sealed);
}

#[test]
fn common_writable_during_init_then_frozen() {
    use erebor_workloads::{SandboxedWorkload, Workload, WorkloadParams};

    struct Toucher;
    impl Workload for Toucher {
        fn name(&self) -> &'static str {
            "toucher"
        }
        fn params(&self) -> WorkloadParams {
            WorkloadParams {
                private_pages: 8,
                shared_pages: 4,
                logical_private: 1 << 20,
                logical_shared: 1 << 20,
                threads: 1,
            }
        }
        fn serve(
            &mut self,
            env: &mut dyn erebor_workloads::Env,
            _request: &[u8],
        ) -> Result<Vec<u8>, SysError> {
            env.touch_shared(1)?; // read of populated page: fine
            Ok(b"read ok".to_vec())
        }
    }

    let mut p = Platform::boot(Mode::Full).expect("boot");
    let mut svc = p
        .deploy(Box::new(SandboxedWorkload::new(Toucher)), 4096)
        .expect("deploy");
    // populate_common already wrote the pages during init (pre-seal).
    assert!(!p.cvm.monitor.common_regions[&1].sealed);
    let mut client = p.connect_client(&svc, [0x5d; 32]).expect("attest");
    let reply = p
        .serve_request(&mut svc, &mut client, b"go")
        .expect("serve");
    assert_eq!(reply, b"read ok");
    assert!(p.cvm.monitor.common_regions[&1].sealed, "sealed at install");
}
