//! TD live migration end to end (ISSUE 9 acceptance).
//!
//! The scenario: a running platform exports its full TD state — sEPT,
//! pinned MSRs, monitor state, the EMC ledger, per-frame tags, the
//! domain-pool live set — over the attested, AEAD-sealed record stream,
//! with dirty-page pre-copy and a bounded stop-and-copy; the destination
//! imports it atomically. Asserted here:
//!
//! * **Equivalence** — a same-seed run that migrates mid-stream produces
//!   byte-identical trace JSON to one that never migrates.
//! * **Fresh counters** — non-architectural stats (allocator scans,
//!   lookup hits, decision caches, fast-path counters) start at zero on
//!   the destination while architectural state is byte-identical.
//! * **Domain pool** — the live set and LIFO recycle list round-trip
//!   exactly under both isolation backends: a domain freed on the source
//!   is the next one handed out on the destination.
//! * **Chaos** — a ≥200-case campaign of dropped, duplicated, reordered,
//!   corrupted and truncated records: every fault is a typed abort, the
//!   destination is never half-imported, the source stays auditable.
//! * **Fleet** — a migrated 64-sandbox fleet audits clean (C1–C8).

use erebor::ecore::channel::Client;
use erebor::ehw::isolation::BackendKind;
use erebor::elibos::api::SysError;
use erebor::{
    BootConfig, ExecConfig, MigrationError, MigrationKey, Mode, Platform, PlatformError,
    ServiceInstance,
};
use erebor_crypto::frame::FrameError;
use erebor_testkit::rng::TestRng;
use erebor_workloads::hello::HelloWorld;

fn boot(seed: u64, backend: BackendKind) -> Platform {
    let mut config = ExecConfig::new(Mode::Full);
    config.backend = backend;
    Platform::boot_with(BootConfig {
        seed,
        config,
        ..BootConfig::default()
    })
    .expect("boot")
}

/// Deploy one HelloWorld service and attest a client for it.
fn deploy(p: &mut Platform, key_seed: u8) -> (ServiceInstance, Client) {
    let svc = p
        .deploy(Box::new(HelloWorld { len: 4 }), 4096)
        .expect("deploy");
    let client = p.connect_client(&svc, [key_seed; 32]).expect("attest");
    (svc, client)
}

fn serve(p: &mut Platform, svc: &mut ServiceInstance, client: &mut Client, req: &[u8]) -> Vec<u8> {
    p.serve_request(svc, client, req).expect("serve")
}

/// Run one full outbound migration into a freshly booted destination of
/// the same configuration; returns the destination.
fn migrate(src: &mut Platform, seed: u64, backend: BackendKind) -> Platform {
    let mut dest = boot(seed, backend);
    let src_key = MigrationKey::from_seed([0x51; 32]);
    let dest_key = MigrationKey::from_seed([0xD5; 32]);
    let offer = dest.migration_offer(&dest_key, &src_key.public());
    let (records, report) = src.migrate_to(&src_key, &offer).expect("migrate out");
    assert_eq!(report.records_sealed, records.len() as u64);
    assert_eq!(report.sections, 9, "all state sections must travel");
    assert!(report.precopy_pages > 0, "resident sweep must send pages");
    dest.migrate_from(&dest_key, src_key.public(), &records)
        .expect("migrate in");
    dest
}

// ====================================================================
// Equivalence: migration is invisible to a same-seed run
// ====================================================================

#[test]
fn migrated_run_matches_unmigrated_run_byte_for_byte() {
    let seed = 0xE9E9;
    let phase1 = |p: &mut Platform| {
        let (mut svc, mut client) = deploy(p, 7);
        serve(p, &mut svc, &mut client, b"alpha");
        serve(p, &mut svc, &mut client, b"beta");
        (svc, client)
    };
    let phase2 = |p: &mut Platform, svc: &mut ServiceInstance, client: &mut Client| {
        serve(p, svc, client, b"gamma");
        serve(p, svc, client, b"delta");
    };

    // Control: never migrates.
    let mut control = boot(seed, BackendKind::Pks);
    let (mut csvc, mut cclient) = phase1(&mut control);
    phase2(&mut control, &mut csvc, &mut cclient);

    // Subject: migrates between the phases; phase 2 runs on the
    // imported destination with the *same* client and service handles.
    let mut src = boot(seed, BackendKind::Pks);
    let (mut svc, mut client) = phase1(&mut src);
    let mut dest = migrate(&mut src, seed, BackendKind::Pks);
    phase2(&mut dest, &mut svc, &mut client);

    assert_eq!(
        dest.trace_json(),
        control.trace_json(),
        "migration must be invisible to the trace"
    );
    assert!(src.audit().is_clean(), "source stays auditable after export");
    assert!(dest.audit().is_clean(), "imported platform audits clean");
}

/// Pre-copy proper: the guest keeps serving between `migrate_begin` and
/// `migrate_finish`; the dirtied pages travel in a later round and the
/// destination still lands byte-identical to the (still running) source.
#[test]
fn precopy_rounds_capture_pages_dirtied_in_flight() {
    let seed = 0xFACE;
    let mut src = boot(seed, BackendKind::Pks);
    let (mut svc, mut client) = deploy(&mut src, 9);
    serve(&mut src, &mut svc, &mut client, b"warm");

    let mut dest = boot(seed, BackendKind::Pks);
    let src_key = MigrationKey::from_seed([0x11; 32]);
    let dest_key = MigrationKey::from_seed([0x22; 32]);
    let offer = dest.migration_offer(&dest_key, &src_key.public());

    let (mut mig, mut records) = src.migrate_begin(&src_key, &offer).expect("begin");
    // The guest runs on while pre-copy is in flight and dirties pages.
    serve(&mut src, &mut svc, &mut client, b"mid-flight");
    let round = src.migrate_precopy_round(&mut mig).expect("round");
    assert!(
        !round.is_empty(),
        "serving a request must have dirtied pages"
    );
    records.extend(round);
    let (tail, report) = src.migrate_finish(mig).expect("finish");
    records.extend(tail);
    assert_eq!(report.precopy_rounds, 1);

    dest.migrate_from(&dest_key, src_key.public(), &records)
        .expect("import");
    assert_eq!(
        dest.trace_json(),
        src.trace_json(),
        "destination must equal the quiesced source exactly"
    );
    assert!(dest.audit().is_clean());
}

// ====================================================================
// Satellite 2: non-architectural counters start fresh
// ====================================================================

#[test]
fn migrated_counters_start_fresh_while_architecture_is_identical() {
    let seed = 0xC0DE;
    let mut src = boot(seed, BackendKind::Pks);
    src.set_fleet_mode(true);
    let (mut svc, mut client) = deploy(&mut src, 3);
    serve(&mut src, &mut svc, &mut client, b"count me");
    assert!(
        src.alloc_stats().allocs > 0,
        "workload must exercise the allocator"
    );
    assert!(src.lookup_stats().as_index_lookups() > 0);

    let mut dest = boot(seed, BackendKind::Pks);
    dest.set_fleet_mode(true);
    let src_key = MigrationKey::from_seed([0x33; 32]);
    let dest_key = MigrationKey::from_seed([0x44; 32]);
    let offer = dest.migration_offer(&dest_key, &src_key.public());
    let (records, _) = src.migrate_to(&src_key, &offer).expect("out");
    dest.migrate_from(&dest_key, src_key.public(), &records)
        .expect("in");

    // Non-architectural: zeroed on the destination.
    assert_eq!(dest.alloc_stats(), Default::default());
    assert_eq!(dest.lookup_stats().as_index_lookups(), 0);
    assert_eq!(dest.lookup_stats().root_index_lookups(), 0);
    assert_eq!(dest.lookup_stats().cpuid_mru_hits(), 0);
    assert_eq!(dest.fastpath_stats(), Default::default());

    // Architectural: identical (all counters, cycles and attribution).
    let s = src.snapshot();
    let d = dest.snapshot();
    assert_eq!(d.cycles, s.cycles);
    assert_eq!(format!("{d:?}"), format!("{s:?}"));
    assert_eq!(dest.trace_json(), src.trace_json());
}

// ====================================================================
// Satellite 3: domain pool (live set + LIFO recycle) round-trips
// ====================================================================

#[test]
fn domain_pool_recycle_list_survives_migration_on_both_backends() {
    for backend in [BackendKind::Pks, BackendKind::TmeMk] {
        let seed = 0xD0A1;
        let mut src = boot(seed, backend);
        let (svc_a, _ca) = deploy(&mut src, 1);
        let (svc_b, _cb) = deploy(&mut src, 2);
        let (svc_c, _cc) = deploy(&mut src, 3);
        let freed_domain = src
            .cvm
            .monitor
            .sandboxes
            .get(&svc_b.sandbox.0)
            .expect("sandbox b")
            .domain;
        src.cvm
            .monitor
            .kill_sandbox(&mut src.cvm.machine, svc_b.sandbox, "recycle test");

        let mut dest = migrate(&mut src, seed, backend);

        // The freed domain is at the head of the migrated LIFO recycle
        // list: the next sandbox on the destination must reuse exactly
        // it — and so must the (unmigrated) source, identically.
        let (svc_d_dest, _cd) = deploy(&mut dest, 4);
        let reused_dest = dest
            .cvm
            .monitor
            .sandboxes
            .get(&svc_d_dest.sandbox.0)
            .expect("sandbox d (dest)")
            .domain;
        let (svc_d_src, _cs) = deploy(&mut src, 4);
        let reused_src = src
            .cvm
            .monitor
            .sandboxes
            .get(&svc_d_src.sandbox.0)
            .expect("sandbox d (src)")
            .domain;
        assert_eq!(
            reused_dest, freed_domain,
            "{backend:?}: destination must recycle the freed domain"
        );
        assert_eq!(
            reused_src, reused_dest,
            "{backend:?}: source and destination recycle identically"
        );
        assert!(dest.audit().is_clean());
        assert!(src.audit().is_clean());
        // The live sandboxes are intact on the destination.
        for svc in [&svc_a, &svc_c] {
            assert!(
                dest.cvm.monitor.sandboxes.get(&svc.sandbox.0).is_some(),
                "{backend:?}: live sandbox missing after import"
            );
        }
    }
}

// ====================================================================
// Kill on the destination: a migrated sandbox still dies cleanly
// ====================================================================

#[test]
fn migrated_sandbox_can_be_killed_and_stays_dead() {
    let seed = 0xDEAD;
    let mut src = boot(seed, BackendKind::Pks);
    let (mut svc, mut client) = deploy(&mut src, 5);
    serve(&mut src, &mut svc, &mut client, b"pre");
    let mut dest = migrate(&mut src, seed, BackendKind::Pks);
    dest.cvm
        .monitor
        .kill_sandbox(&mut dest.cvm.machine, svc.sandbox, "post-migration kill");
    let r = dest.serve_request(&mut svc, &mut client, b"post");
    assert!(
        matches!(r, Err(PlatformError::Sys(SysError::Killed(_))) | Err(_)),
        "a killed migrated sandbox must not serve"
    );
    assert!(dest.audit().is_clean());
}

// ====================================================================
// Chaos: every damaged stream is a typed abort, never a half-import
// ====================================================================

#[derive(Debug, Clone, Copy)]
enum Damage {
    Drop(usize),
    Duplicate(usize),
    Swap(usize),
    FlipBit(usize, usize),
    Truncate(usize, usize),
}

fn apply(records: &[Vec<u8>], damage: Damage) -> Vec<Vec<u8>> {
    let mut out: Vec<Vec<u8>> = records.to_vec();
    match damage {
        Damage::Drop(i) => {
            out.remove(i);
        }
        Damage::Duplicate(i) => {
            out.insert(i + 1, out[i].clone());
        }
        Damage::Swap(i) => out.swap(i, i + 1),
        Damage::FlipBit(i, bit) => {
            let rec = &mut out[i];
            let b = bit % (rec.len() * 8);
            rec[b / 8] ^= 1 << (b % 8);
        }
        Damage::Truncate(i, keep) => {
            let rec = &mut out[i];
            let keep = keep % rec.len();
            rec.truncate(keep);
        }
    }
    out
}

/// ≥200 damaged streams (override with `EREBOR_CHAOS_CASES`): every one
/// must abort with a typed [`MigrationError`], the destination must be
/// byte-identical to its pre-import self afterwards, and a clean import
/// must still succeed at the end. The source is never touched by any of
/// it and audits clean throughout.
#[test]
fn chaos_campaign_every_fault_is_typed_and_atomic() {
    let cases: u64 = std::env::var("EREBOR_CHAOS_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(240);
    let seed = 0xCAF3;
    let mut src = boot(seed, BackendKind::Pks);
    let (mut svc, mut client) = deploy(&mut src, 8);
    serve(&mut src, &mut svc, &mut client, b"busy");

    let mut dest = boot(seed, BackendKind::Pks);
    let src_key = MigrationKey::from_seed([0x77; 32]);
    let dest_key = MigrationKey::from_seed([0x88; 32]);
    let offer = dest.migration_offer(&dest_key, &src_key.public());
    let (records, _) = src.migrate_to(&src_key, &offer).expect("clean stream");
    assert!(records.len() > 12, "need a stream worth damaging");

    let pristine_dest = dest.trace_json();
    let source_audit_before = src.audit();
    assert!(source_audit_before.is_clean());

    let mut rng = TestRng::seed_from_u64(0x4D49_4752);
    let n = records.len();
    for case in 0..cases {
        let damage = match rng.below(5) {
            0 => Damage::Drop(rng.below(n as u64 - 1) as usize),
            1 => Damage::Duplicate(rng.below(n as u64 - 1) as usize),
            2 => Damage::Swap(rng.below(n as u64 - 1) as usize),
            3 => Damage::FlipBit(
                rng.below(n as u64) as usize,
                rng.below(1 << 16) as usize,
            ),
            _ => Damage::Truncate(rng.below(n as u64) as usize, rng.below(1 << 12) as usize),
        };
        let damaged = apply(&records, damage);
        let err = dest
            .migrate_from(&dest_key, src_key.public(), &damaged)
            .expect_err("damaged stream must abort");
        let PlatformError::Migration(mig_err) = err else {
            panic!("case {case} ({damage:?}): non-migration error {err}");
        };
        // The abort is *typed*: the damage class maps to the expected
        // channel/protocol verdict.
        match damage {
            Damage::Duplicate(_) => assert!(
                matches!(mig_err, MigrationError::Channel(FrameError::Replay { .. })),
                "case {case} ({damage:?}): got {mig_err:?}"
            ),
            Damage::Swap(_) => assert!(
                matches!(
                    mig_err,
                    MigrationError::Channel(FrameError::OutOfOrder { .. })
                ),
                "case {case} ({damage:?}): got {mig_err:?}"
            ),
            Damage::Drop(_) => assert!(
                matches!(
                    mig_err,
                    MigrationError::Channel(FrameError::OutOfOrder { .. })
                        | MigrationError::Protocol(_)
                ),
                "case {case} ({damage:?}): got {mig_err:?}"
            ),
            Damage::FlipBit(..) | Damage::Truncate(..) => assert!(
                matches!(
                    mig_err,
                    MigrationError::Channel(_)
                        | MigrationError::Decode(_)
                        | MigrationError::Protocol(_)
                        | MigrationError::Incomplete { .. }
                ),
                "case {case} ({damage:?}): got {mig_err:?}"
            ),
        }
        // Atomicity: the destination is exactly its booted self.
        assert_eq!(
            dest.trace_json(),
            pristine_dest,
            "case {case} ({damage:?}): destination mutated by a failed import"
        );
    }

    // The source was never involved in the damage: still clean, still live.
    assert!(src.audit().is_clean());
    serve(&mut src, &mut svc, &mut client, b"still alive");

    // And the pristine stream still imports into the battered destination.
    dest.migrate_from(&dest_key, src_key.public(), &records)
        .expect("clean import after campaign");
    assert!(dest.audit().is_clean());
}

// ====================================================================
// Fleet: a migrated 64-sandbox snapshot audits clean
// ====================================================================

#[test]
fn migrated_64_sandbox_fleet_audits_clean() {
    let seed = 0xF1EE;
    let fleet_boot = || {
        // 64 concurrent sandboxes is past the usable PKS key pool, so the
        // fleet scenario runs on the keyed TME-MK backend like the fleet
        // bench and equivalence suites do.
        let mut config = ExecConfig::new(Mode::Full);
        config.backend = BackendKind::TmeMk;
        Platform::boot_with(BootConfig {
            seed,
            dram_bytes: 512 * 1024 * 1024,
            config,
            ..BootConfig::default()
        })
        .expect("boot")
    };
    let mut src = fleet_boot();
    src.set_fleet_mode(true);
    let mut fleet = Vec::new();
    for i in 0..64u8 {
        let svc = src
            .deploy(Box::new(HelloWorld { len: 2 }), 4096)
            .unwrap_or_else(|e| panic!("deploy fleet member {i}: {e}"));
        fleet.push((i, svc));
    }
    // A few members get attested clients and live traffic.
    for (i, svc) in fleet.iter_mut().take(4) {
        let mut client = src.connect_client(svc, [*i + 1; 32]).expect("attest");
        let reply = src
            .serve_request(svc, &mut client, b"fleet")
            .expect("serve");
        assert_eq!(reply, b"AA");
    }
    assert!(src.audit().is_clean());

    let mut dest = fleet_boot();
    dest.set_fleet_mode(true);
    let src_key = MigrationKey::from_seed([0x99; 32]);
    let dest_key = MigrationKey::from_seed([0xAA; 32]);
    let offer = dest.migration_offer(&dest_key, &src_key.public());
    let (records, report) = src.migrate_to(&src_key, &offer).expect("out");
    dest.migrate_from(&dest_key, src_key.public(), &records)
        .expect("in");

    let audit = dest.audit();
    assert!(
        audit.is_clean(),
        "imported fleet must audit zero findings, got: {:?}",
        audit.findings
    );
    for (_, svc) in &fleet {
        assert!(
            dest.cvm.monitor.sandboxes.get(&svc.sandbox.0).is_some(),
            "fleet member missing after import"
        );
    }
    assert_eq!(dest.trace_json(), src.trace_json());
    assert!(report.precopy_pages >= 64, "a fleet carries real pages");
}

// ====================================================================
// Handshake: a destination that attests wrong is refused outright
// ====================================================================

#[test]
fn source_refuses_unattested_destination() {
    let mut src = boot(0xBAD, BackendKind::Pks);
    // A destination booted from a *different* seed measures differently,
    // so its quote fails the expected-chain comparison.
    let dest = boot(0xBAD ^ 1, BackendKind::Pks);
    let src_key = MigrationKey::from_seed([0x01; 32]);
    let dest_key = MigrationKey::from_seed([0x02; 32]);
    let offer = dest.migration_offer(&dest_key, &src_key.public());
    let err = src.migrate_to(&src_key, &offer).expect_err("must refuse");
    assert!(
        matches!(
            err,
            PlatformError::Migration(MigrationError::QuoteRejected(_))
        ),
        "got {err}"
    );
    // The refusal happened before any state was disturbed.
    assert!(!src.cvm.machine.mem.dirty_tracking());
    assert!(src.audit().is_clean());
}
