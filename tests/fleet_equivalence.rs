//! Differential equivalence suite for the fleet fast paths: a platform
//! running with the bitmap frame scan and the O(1) monitor lookup
//! structures enabled must be *observationally invisible* next to the
//! ablated (seed-algorithm) platform — byte-identical snapshots, traces,
//! cycle attribution, reply bytes and frame counts — on randomized
//! boot/kill/realloc/serve campaigns and on the deterministic fleet
//! schedule. The only permitted divergence is the observability
//! counters ([`erebor::ecore::stats::LookupStats`], `AllocStats`),
//! which live outside every snapshot.
//!
//! Shootdown coalescing is the one fleet toggle that *changes modeled
//! cycles* by design (fewer, batched IPIs), so it stays off on both
//! sides of the byte-equivalence properties; its own guarantees are
//! same-seed determinism (asserted here) and the race-detector/audit
//! claims (tests/chaos.rs).
//!
//! Reproducible via `EREBOR_PT_SEED` like every other property test.

use erebor::ecore::channel::Client;
use erebor::{Mode, Platform, ServiceInstance};
use erebor_testkit::collection;
use erebor_testkit::prelude::*;
use erebor_workloads::env::SandboxedWorkload;
use erebor_workloads::fleet::{FleetClass, FleetConfig, FleetDriver, FleetOp};

/// A platform with the equivalence-relevant fleet fast paths set to
/// `fast`, counters scoped to post-boot work.
fn fleet_platform(fast: bool) -> Platform {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    p.cvm.machine.mem.fast_scan = fast;
    p.cvm.monitor.fast_lookup = fast;
    // Coalescing changes the modeled IPI cycle stream; keep it out of
    // the byte-equivalence comparison on both sides.
    p.cvm.monitor.coalesce_shootdowns = false;
    p.cvm.machine.mem.alloc_stats = Default::default();
    p.cvm.monitor.lookup_stats.reset();
    p
}

struct Slot {
    svc: ServiceInstance,
    client: Client,
    alive: bool,
}

fn deploy_slot(p: &mut Platform, slots: &mut Vec<Slot>, seed: u32) {
    let class = if seed.is_multiple_of(2) {
        FleetClass::Nginx
    } else {
        FleetClass::Openssh
    };
    let pages = 4 + u64::from(seed) % 8;
    let svc = p
        .deploy(Box::new(SandboxedWorkload::new(class.workload(pages))), 4096)
        .expect("deploy");
    let client = p
        .connect_client(&svc, [u8::try_from(seed & 0xff).expect("masked"); 32])
        .expect("attest");
    slots.push(Slot {
        svc,
        client,
        alive: true,
    });
}

fn kill_slot(p: &mut Platform, slots: &mut [Slot], sel: u8) -> bool {
    let live: Vec<usize> = (0..slots.len()).filter(|&i| slots[i].alive).collect();
    if live.is_empty() {
        return false;
    }
    let victim = live[sel as usize % live.len()];
    p.cvm
        .monitor
        .kill_sandbox(&mut p.cvm.machine, slots[victim].svc.sandbox, "equiv kill");
    slots[victim].alive = false;
    true
}

/// Interpret one randomized campaign; returns every reply so the caller
/// can compare data-plane results across the toggle.
fn run_random_campaign(p: &mut Platform, script: &[(u8, u8, u32)]) -> Vec<Vec<u8>> {
    use erebor::elibos::api::Sys;
    let mut slots: Vec<Slot> = Vec::new();
    let mut replies = Vec::new();
    // Every campaign deploys at least once so the gate paths run, and
    // spawns one native process whose kernel-side user mappings drive
    // the CR3→sandbox lookup (`map_user_page` consults it per page).
    deploy_slot(p, &mut slots, 0);
    let pid = p.spawn_native().expect("spawn native");
    let base = p
        .proc(pid)
        .syscall(erebor::ekernel::syscall::nr::MMAP, [0, 4 * 4096, 3, 0, 0, 0])
        .expect("native mmap");
    for page in 0..4u64 {
        p.proc(pid).touch(base + page * 4096, true).expect("native touch");
    }
    for &(sel, slot_sel, seed) in script {
        match sel % 4 {
            0 => deploy_slot(p, &mut slots, seed),
            1 => {
                kill_slot(p, &mut slots, slot_sel);
            }
            2 => {
                let live: Vec<usize> =
                    (0..slots.len()).filter(|&i| slots[i].alive).collect();
                if let Some(&i) = live.get(slot_sel as usize % live.len().max(1)) {
                    let payload = format!("f={}", 4096u64 << (seed % 3));
                    let slot = &mut slots[i];
                    let reply = p
                        .serve_request(&mut slot.svc, &mut slot.client, payload.as_bytes())
                        .expect("serve");
                    replies.push(reply);
                }
            }
            _ => {
                // Realloc: kill one, immediately redeploy another — the
                // free-then-refill pattern the churn loop stresses.
                if kill_slot(p, &mut slots, slot_sel) {
                    deploy_slot(p, &mut slots, seed);
                }
            }
        }
    }
    replies
}

fn assert_platforms_equal(
    on: &Platform,
    off: &Platform,
) -> Result<(), erebor_testkit::prop::CaseError> {
    prop_assert_eq!(
        format!("{:?}", on.snapshot()),
        format!("{:?}", off.snapshot()),
        "snapshot diverged"
    );
    prop_assert_eq!(on.trace_json(), off.trace_json(), "trace JSON diverged");
    prop_assert_eq!(
        on.cvm.machine.cycles.attribution().json(),
        off.cvm.machine.cycles.attribution().json(),
        "attribution buckets diverged"
    );
    prop_assert_eq!(
        on.cvm.machine.mem.allocated_frames(),
        off.cvm.machine.mem.allocated_frames(),
        "allocated frame counts diverged"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn random_campaigns_identical_across_fleet_toggle(
        script in collection::vec((any::<u8>(), any::<u8>(), any::<u32>()), 1..24),
    ) {
        let mut on = fleet_platform(true);
        let mut off = fleet_platform(false);
        let replies_on = run_random_campaign(&mut on, &script);
        let replies_off = run_random_campaign(&mut off, &script);
        prop_assert_eq!(replies_on, replies_off, "reply bytes diverged");
        assert_platforms_equal(&on, &off)?;
        // The ablated platform must never have consulted a fast-path
        // structure; the fast one must have (a deploy always runs the
        // allocator and the map_user_page gate path).
        let off_stats = &off.cvm.monitor.lookup_stats;
        prop_assert_eq!(off_stats.root_index_lookups(), 0);
        prop_assert_eq!(off_stats.as_index_lookups(), 0);
        prop_assert_eq!(off_stats.cpuid_mru_hits(), 0);
        prop_assert_eq!(off.cvm.machine.mem.alloc_stats.words_scanned, 0);
        let on_stats = &on.cvm.monitor.lookup_stats;
        prop_assert!(on_stats.root_index_lookups() > 0);
        prop_assert!(on_stats.as_index_lookups() > 0);
        prop_assert!(on.cvm.machine.mem.alloc_stats.words_scanned > 0);
        // Both post-campaign states satisfy every audit claim (C1–C9).
        prop_assert!(on.audit().is_clean(), "fast platform audit dirty");
        prop_assert!(off.audit().is_clean(), "ablated platform audit dirty");
    }
}

// ====================================================================
// Deterministic fleet-schedule differentials
// ====================================================================

/// A miniature but complete fleet schedule: shared-region class, both
/// server shapes, client routing, interleaved churn.
fn tiny_fleet_config() -> FleetConfig {
    FleetConfig {
        seed: 0xeb0_0001,
        sandboxes: 8,
        clients: 3,
        requests: 40,
        churn: 4,
        private_pages: 8,
        budget_pages: 4096,
        llm_slots: 0,
        retrieval_slots: 1,
    }
}

/// Interpret the deterministic fleet schedule on `p`; returns reply
/// bytes in schedule order.
fn run_fleet_schedule(p: &mut Platform, cfg: FleetConfig) -> Vec<Vec<u8>> {
    let ops = FleetDriver::new(cfg).schedule();
    let mut svcs: Vec<Option<ServiceInstance>> = (0..cfg.sandboxes).map(|_| None).collect();
    let mut clients: Vec<Option<Client>> = (0..cfg.clients).map(|_| None).collect();
    let mut replies = Vec::new();
    for op in ops {
        match op {
            FleetOp::Deploy { slot, class } | FleetOp::Churn { slot, class } => {
                if let Some(old) = svcs[slot].take() {
                    p.cvm
                        .monitor
                        .kill_sandbox(&mut p.cvm.machine, old.sandbox, "fleet churn");
                }
                let program = SandboxedWorkload::new(class.workload(cfg.private_pages));
                svcs[slot] =
                    Some(p.deploy(Box::new(program), cfg.budget_pages).expect("deploy"));
            }
            FleetOp::Connect { slot } => {
                let svc = svcs[slot].as_ref().expect("deploy first");
                let seed = [u8::try_from(slot & 0xff).expect("masked"); 32];
                clients[slot] = Some(p.connect_client(svc, seed).expect("attest"));
            }
            FleetOp::Request { slot, payload } => {
                let svc = svcs[slot].as_mut().expect("deploy first");
                let client = clients[slot].as_mut().expect("connect first");
                replies.push(p.serve_request(svc, client, &payload).expect("serve"));
            }
        }
    }
    replies
}

/// The acceptance claim: the full fleet schedule — retrieval included,
/// churn included — is byte-identical across the fast/ablated toggle.
#[test]
fn fleet_schedule_identical_across_toggle() {
    let cfg = tiny_fleet_config();
    let mut on = fleet_platform(true);
    let mut off = fleet_platform(false);
    let replies_on = run_fleet_schedule(&mut on, cfg);
    let replies_off = run_fleet_schedule(&mut off, cfg);
    assert_eq!(replies_on, replies_off, "reply bytes diverged");
    assert_eq!(
        format!("{:?}", on.snapshot()),
        format!("{:?}", off.snapshot()),
        "snapshot diverged"
    );
    assert_eq!(on.trace_json(), off.trace_json(), "trace diverged");
    assert_eq!(
        on.cvm.machine.mem.allocated_frames(),
        off.cvm.machine.mem.allocated_frames()
    );
    // Pure-sandbox schedules drive the address-space index (every
    // context switch validates CR3 against it); the CR3→sandbox index
    // is covered by the native-mapping campaigns above.
    assert!(on.cvm.monitor.lookup_stats.as_index_lookups() > 0);
    assert_eq!(off.cvm.monitor.lookup_stats.as_index_lookups(), 0);
    assert!(on.audit().is_clean());
    assert!(off.audit().is_clean());
}

/// Coalesced shootdowns change the modeled IPI stream, so their claim
/// is same-seed determinism: two identical campaigns with the *full*
/// fleet mode (coalescing included) produce byte-identical traces.
#[test]
fn coalesced_campaign_is_deterministic() {
    let cfg = tiny_fleet_config();
    let run = || {
        let mut p = Platform::boot(Mode::Full).expect("boot");
        p.set_fleet_mode(true);
        let replies = run_fleet_schedule(&mut p, cfg);
        assert!(p.audit().is_clean(), "coalesced campaign audit dirty");
        (replies, p.trace_json(), format!("{:?}", p.snapshot()))
    };
    let (r1, t1, s1) = run();
    let (r2, t2, s2) = run();
    assert_eq!(r1, r2, "replies diverged across same-seed runs");
    assert_eq!(t1, t2, "trace diverged across same-seed runs");
    assert_eq!(s1, s2, "snapshot diverged across same-seed runs");
}

/// Red ablation check: flipping the toggles off genuinely disables the
/// structures (counters pinned at zero), flipping them on genuinely
/// engages them — so the equivalence properties above are comparing a
/// real fast path against a real baseline, not two copies of one path.
#[test]
fn ablation_toggles_are_load_bearing() {
    let script: Vec<(u8, u8, u32)> = vec![(0, 0, 3), (2, 0, 1), (3, 0, 5), (2, 1, 2)];
    let mut on = fleet_platform(true);
    run_random_campaign(&mut on, &script);
    let stats = &on.cvm.monitor.lookup_stats;
    assert!(stats.root_index_lookups() > 0, "root index never consulted");
    assert!(stats.as_index_lookups() > 0, "as index never consulted");
    assert!(
        on.cvm.machine.mem.alloc_stats.words_scanned > 0,
        "bitmap scan never ran"
    );
    let mut off = fleet_platform(false);
    run_random_campaign(&mut off, &script);
    let stats = &off.cvm.monitor.lookup_stats;
    assert_eq!(stats.root_index_lookups(), 0);
    assert_eq!(stats.as_index_lookups(), 0);
    assert_eq!(stats.cpuid_mru_hits(), 0);
    // `frames_scanned` meters the ablated linear scan as well;
    // `words_scanned` is the fast-path-only counter.
    assert_eq!(off.cvm.machine.mem.alloc_stats.words_scanned, 0);
    assert!(off.cvm.machine.mem.alloc_stats.frames_scanned > 0);
}
