//! The Fig. 10 background servers end-to-end: staging, chunked serving,
//! encryption correctness, and the overhead shape.

use erebor::{Mode, Platform};
use erebor_workloads::servers;

#[test]
fn openssh_transfers_all_bytes() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let pid = p.spawn_native().expect("spawn");
    let mut h = p.proc(pid);
    let r = servers::openssh(&mut h, 48 * 1024, 3).expect("transfer");
    assert_eq!(r.file_size, 48 * 1024);
    assert_eq!(r.requests, 3);
    assert!(r.cycles > 0);
    assert!(r.bytes_per_cycle > 0.0);
}

#[test]
fn nginx_serves_and_is_faster_than_ssh() {
    let mut p = Platform::boot(Mode::Native).expect("boot");
    let pid = p.spawn_native().expect("spawn");
    let (ssh, web) = {
        let mut h = p.proc(pid);
        let ssh = servers::openssh(&mut h, 256 * 1024, 2).expect("ssh");
        let web = servers::nginx(&mut h, 256 * 1024, 2).expect("nginx");
        (ssh, web)
    };
    assert!(
        web.bytes_per_cycle > ssh.bytes_per_cycle,
        "static serving beats encrypted transfer: {} vs {}",
        web.bytes_per_cycle,
        ssh.bytes_per_cycle
    );
}

#[test]
fn overhead_shrinks_with_file_size() {
    let relative = |size: u64| -> f64 {
        let measure = |mode: Mode| {
            let mut p = Platform::boot(mode).expect("boot");
            let pid = p.spawn_native().expect("spawn");
            let mut h = p.proc(pid);
            servers::nginx(&mut h, size, 4)
                .expect("serve")
                .bytes_per_cycle
        };
        measure(Mode::Full) / measure(Mode::Native)
    };
    let small = relative(1 << 10);
    let large = relative(1 << 20);
    assert!(
        large > small,
        "overhead must amortize with size: 1KB {small:.3} vs 1MB {large:.3}"
    );
    assert!(
        small > 0.5 && large < 1.0,
        "band check: {small:.3} {large:.3}"
    );
}

#[test]
fn fig10_sizes_cover_the_paper_sweep() {
    let sizes = servers::fig10_sizes();
    assert_eq!(*sizes.first().unwrap(), 1 << 10);
    assert_eq!(*sizes.last().unwrap(), 16 << 20);
    assert!(sizes.windows(2).all(|w| w[0] < w[1]));
}
