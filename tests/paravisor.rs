//! §10 platform compatibility: Erebor under a paravisor-enhanced CVM.
//!
//! The paravisor (COCONUT-SVSM / OpenHCL class) occupies MRTD; Erebor's
//! firmware+monitor chain moves to RTMR\[0\], and clients verify the pair.
//! Everything else — the drop-in enforcement — is identical, because none
//! of the hardware features Erebor uses are CVM-partitioning-specific.

use erebor::{BootConfig, Mode, Platform};
use erebor_core::boot::PARAVISOR_MEASUREMENT_INPUT;
use erebor_core::channel::Client;
use erebor_core::config::ExecConfig;
use erebor_hw::fault::Fault;
use erebor_hw::regs::Msr;
use erebor_tdx::attest::{expected_mrtd, Expected};
use erebor_workloads::hello::HelloWorld;

fn boot_paravisor() -> Platform {
    Platform::boot_with(BootConfig {
        paravisor: true,
        config: ExecConfig::new(Mode::Full),
        ..BootConfig::default()
    })
    .expect("boot")
}

#[test]
fn paravisor_boot_moves_measurement_to_rtmr() {
    let p = boot_paravisor();
    assert_eq!(
        p.cvm.tdx.attest.mrtd(),
        expected_mrtd(&[PARAVISOR_MEASUREMENT_INPUT]),
        "MRTD holds the paravisor, not the monitor"
    );
}

#[test]
fn paravisor_end_to_end_request_works() {
    let mut p = boot_paravisor();
    let mut svc = p
        .deploy(Box::new(HelloWorld { len: 6 }), 4096)
        .expect("deploy");
    let mut client = p.connect_client(&svc, [0x10; 32]).expect("attest via RTMR");
    let reply = p
        .serve_request(&mut svc, &mut client, b"ping")
        .expect("serve");
    assert_eq!(reply, b"AAAAAA");
    assert!(!p.cvm.tdx.host.observed_contains(b"ping"));
}

#[test]
fn paravisor_enforcement_is_unchanged() {
    // The drop-in claim: all guest-local protections hold identically.
    let mut p = boot_paravisor();
    assert!(matches!(
        p.cvm.machine.wrmsr(0, Msr::Pkrs, 0),
        Err(Fault::UndefinedInstruction(_))
    ));
    assert!(p
        .cvm
        .machine
        .read_u64(0, erebor_hw::layout::MONITOR_BASE)
        .is_err());
}

#[test]
fn mrtd_only_client_rejects_paravisor_quote() {
    // A client configured for the plain deployment must notice that MRTD
    // is not the monitor chain.
    let mut p = boot_paravisor();
    let svc = p
        .deploy(Box::new(HelloWorld::default()), 4096)
        .expect("deploy");
    let root = p.cvm.tdx.attest.root_public();
    let erebor_chain = expected_mrtd(&[
        &p.cvm.firmware_image.measurement_bytes(),
        &p.cvm.monitor_image.measurement_bytes(),
    ]);
    let (mut client, hello) = Client::new([1; 32], root, erebor_chain);
    let server_hello = p
        .cvm
        .monitor
        .channel_accept(&mut p.cvm.machine, &mut p.cvm.tdx, 0, svc.sandbox, &hello)
        .expect("hello");
    assert!(
        client.finish(&server_hello).is_err(),
        "MRTD policy must reject"
    );
}

#[test]
fn paravisor_client_rejects_wrong_rtmr_chain() {
    // A paravisor-policy client with the right paravisor but a wrong
    // monitor chain must also reject.
    let mut p = boot_paravisor();
    let svc = p
        .deploy(Box::new(HelloWorld::default()), 4096)
        .expect("deploy");
    let root = p.cvm.tdx.attest.root_public();
    let expected = Expected::ParavisorRtmr {
        mrtd: expected_mrtd(&[PARAVISOR_MEASUREMENT_INPUT]),
        rtmr0: [0xbb; 32], // not the monitor chain
    };
    let (mut client, hello) = Client::with_expected([2; 32], root, expected);
    let server_hello = p
        .cvm
        .monitor
        .channel_accept(&mut p.cvm.machine, &mut p.cvm.tdx, 0, svc.sandbox, &hello)
        .expect("hello");
    assert!(client.finish(&server_hello).is_err());
}
