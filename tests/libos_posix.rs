//! The LibOS's POSIX-style file API inside a real sandbox: opens, reads
//! and writes are emulated in userspace (no exits after data install).

use erebor::{Mode, Platform};
use erebor_libos::api::{Sys, SysError};
use erebor_libos::manifest::Manifest;
use erebor_libos::os::{LibOs, ServiceProgram};

/// A program that reads a preloaded config, writes a temp scratch file,
/// and answers from both.
struct FileUser;

impl ServiceProgram for FileUser {
    fn name(&self) -> &str {
        "file-user"
    }

    fn manifest(&self) -> Manifest {
        Manifest::new("file-user", 16).preload("/etc/service.conf", b"mode=prod;limit=42".to_vec())
    }

    fn serve(
        &mut self,
        os: &mut LibOs,
        sys: &mut dyn Sys,
        request: &[u8],
    ) -> Result<Vec<u8>, SysError> {
        let map_err = |_| SysError::Fault;
        // Read the preloaded config through the fd API.
        let fd = os.open(sys, "/etc/service.conf", false).map_err(map_err)?;
        let mut conf = [0u8; 64];
        let n = os.read(sys, fd, &mut conf).map_err(map_err)?;
        os.close(fd).map_err(map_err)?;
        // Scratch work in a temp file (stateless: dies with the session).
        let tmp = os.open(sys, "/tmp/work", true).map_err(map_err)?;
        os.write(sys, tmp, request).map_err(map_err)?;
        os.lseek(tmp, 0).map_err(map_err)?;
        let mut back = vec![0u8; request.len()];
        let m = os.read(sys, tmp, &mut back).map_err(map_err)?;
        os.close(tmp).map_err(map_err)?;
        Ok(format!(
            "conf={} echoed={}",
            String::from_utf8_lossy(&conf[..n]),
            String::from_utf8_lossy(&back[..m])
        )
        .into_bytes())
    }
}

#[test]
fn posix_file_api_works_inside_sandbox_without_exits() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let mut svc = p.deploy(Box::new(FileUser), 4096).expect("deploy");
    let mut client = p.connect_client(&svc, [0x44; 32]).expect("attest");
    let syscalls_before = p.kernel.stats.syscalls;
    let reply = p
        .serve_request(&mut svc, &mut client, b"hello files")
        .expect("serve");
    assert_eq!(
        String::from_utf8_lossy(&reply),
        "conf=mode=prod;limit=42 echoed=hello files"
    );
    // The file work never reached the kernel: only the two channel ioctls
    // exited, and those are monitor-handled (not kernel syscalls).
    assert_eq!(
        p.kernel.stats.syscalls, syscalls_before,
        "file emulation must not produce kernel syscalls"
    );
}

#[test]
fn missing_file_errors_cleanly() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let mut svc = p.deploy(Box::new(FileUser), 4096).expect("deploy");
    let pid = svc.pid;
    let err = svc
        .os
        .open(&mut p.proc(pid), "/no/such/file", false)
        .expect_err("enoent");
    assert!(format!("{err}").contains("-2"), "{err}");
}

#[test]
fn temp_files_die_with_the_session() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let mut svc = p.deploy(Box::new(FileUser), 4096).expect("deploy");
    let mut client = p.connect_client(&svc, [5; 32]).expect("attest");
    p.serve_request(&mut svc, &mut client, b"scratch")
        .expect("serve");
    assert!(svc.os.fs.read("/tmp/work").is_ok());
    svc.os.fs.clear_temp();
    assert!(svc.os.fs.read("/tmp/work").is_err());
    // The preloaded config survives (it is not session state).
    assert!(svc.os.fs.read("/etc/service.conf").is_ok());
}
