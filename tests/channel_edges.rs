//! Edge cases of the secure data channel (§6.3): padding boundaries,
//! oversized inputs, session-order violations, and replay across the
//! proxy.

use erebor::{Mode, Platform, ServiceInstance};
use erebor_core::channel::Client;
use erebor_libos::api::Sys;
use erebor_libos::manifest::Manifest;
use erebor_libos::os::{LibOs, ServiceProgram};
use erebor_workloads::hello::HelloWorld;

/// Echo service: replies with exactly the request bytes.
struct Echo;

impl ServiceProgram for Echo {
    fn name(&self) -> &str {
        "echo"
    }
    fn manifest(&self) -> Manifest {
        Manifest::new("echo", 16)
    }
    fn serve(
        &mut self,
        _os: &mut LibOs,
        _sys: &mut dyn Sys,
        request: &[u8],
    ) -> Result<Vec<u8>, erebor_libos::api::SysError> {
        Ok(request.to_vec())
    }
}

fn echo_platform() -> (Platform, ServiceInstance, Client) {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let svc = p.deploy(Box::new(Echo), 4096).expect("deploy");
    let client = p.connect_client(&svc, [0x21; 32]).expect("attest");
    (p, svc, client)
}

#[test]
fn padding_boundaries_roundtrip_exactly() {
    let (mut p, mut svc, mut client) = echo_platform();
    let quantum = p.cvm.monitor.cfg.output_pad_quantum;
    // Sizes straddling the frame: quantum-5..quantum-3 cross the boundary
    // because of the 4-byte length prefix.
    for len in [
        0,
        1,
        quantum - 5,
        quantum - 4,
        quantum - 3,
        quantum,
        quantum + 1,
        2 * quantum - 4,
    ] {
        let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let reply = p
            .serve_request(&mut svc, &mut client, &payload)
            .expect("echo");
        assert_eq!(reply, payload, "len {len} corrupted");
    }
}

#[test]
fn record_sizes_quantize_not_track() {
    let (mut p, mut svc, mut client) = echo_platform();
    let quantum = p.cvm.monitor.cfg.output_pad_quantum;
    let mut sizes = std::collections::BTreeMap::new();
    for len in [1usize, 100, quantum - 4, quantum - 3, quantum + 7] {
        let payload = vec![0x55u8; len];
        p.client_send(&svc, &mut client, &payload).expect("send");
        let pid = svc.pid;
        let req = svc.os.input(&mut p.proc(pid)).expect("input");
        let res = svc
            .program
            .serve(&mut svc.os, &mut p.proc(pid), &req)
            .expect("serve");
        svc.os.output(&mut p.proc(pid), &res).expect("output");
        let record = p.cvm.monitor.fetch_output(svc.sandbox).expect("record");
        client.open_result(&record).expect("open");
        sizes.insert(len, record.len());
    }
    // ≤ quantum−4 payloads share one size; the larger two bump to the next
    // quantum exactly.
    assert_eq!(sizes[&1], sizes[&100]);
    assert_eq!(sizes[&1], sizes[&(quantum - 4)]);
    assert_eq!(sizes[&(quantum - 3)], 2 * quantum + 16);
    assert_eq!(sizes[&(quantum + 7)], 2 * quantum + 16);
    assert_eq!(sizes[&1], quantum + 16);
}

#[test]
fn oversized_input_kills_the_sandbox() {
    let (mut p, mut svc, mut client) = echo_platform();
    // The LibOS staging buffer is 256 KiB; a larger record cannot be
    // delivered and the INPUT ioctl kills the container rather than
    // truncating silently.
    let huge = vec![0xaau8; 300 * 1024];
    p.client_send(&svc, &mut client, &huge).expect("send");
    let pid = svc.pid;
    let err = svc
        .os
        .input(&mut p.proc(pid))
        .expect_err("oversized input must fail");
    assert!(format!("{err}").contains("killed"), "{err}");
}

#[test]
fn install_before_handshake_is_rejected() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let svc = p
        .deploy(Box::new(HelloWorld::default()), 4096)
        .expect("deploy");
    // No channel_accept: a record out of nowhere must be refused.
    let err = p
        .cvm
        .monitor
        .install_client_data(&mut p.cvm.machine, 0, svc.sandbox, b"garbage record")
        .expect_err("no session");
    assert_eq!(err, "no client session");
}

#[test]
fn proxy_replay_of_a_request_is_rejected() {
    let (mut p, svc, mut client) = echo_platform();
    let record = client.seal(b"pay $100 to mallory").expect("seal");
    p.cvm
        .monitor
        .install_client_data(&mut p.cvm.machine, 0, svc.sandbox, &record)
        .expect("first install");
    // The malicious proxy replays the same sealed record.
    let err = p
        .cvm
        .monitor
        .install_client_data(&mut p.cvm.machine, 0, svc.sandbox, &record)
        .expect_err("replay must be rejected");
    assert_eq!(err, "record rejected");
    // Exactly one copy was staged.
    assert_eq!(
        p.cvm.monitor.sandboxes[&svc.sandbox.0].pending_input.len(),
        1
    );
}

#[test]
fn second_client_handshake_replaces_the_session() {
    // A service may serve sequential clients; a new handshake supersedes
    // the old keys, and the old client's records stop verifying.
    let (mut p, svc, mut old_client) = echo_platform();
    let mut new_client = p.connect_client(&svc, [0x99; 32]).expect("re-attest");
    let stale = old_client.seal(b"stale").expect("seal");
    let err = p
        .cvm
        .monitor
        .install_client_data(&mut p.cvm.machine, 0, svc.sandbox, &stale)
        .expect_err("old session keys must be dead");
    assert_eq!(err, "record rejected");
    let fresh = new_client.seal(b"fresh").expect("seal");
    p.cvm
        .monitor
        .install_client_data(&mut p.cvm.machine, 0, svc.sandbox, &fresh)
        .expect("new session works");
}
