//! Determinism: the entire platform is a pure function of its seeds — two
//! identical runs produce identical cycle counts, counters, outputs and
//! wire bytes.

use erebor::runner::run_workload;
use erebor::{BootConfig, Mode, Platform};
use erebor_core::config::ExecConfig;
use erebor_workloads::hello::HelloWorld;
use erebor_workloads::retrieval::Retrieval;

#[test]
fn identical_runs_are_bit_identical() {
    let run = || {
        let r = run_workload(Mode::Full, Box::new(Retrieval::default()), b"q=3000;9").expect("run");
        (
            r.cycles(),
            r.init_cycles,
            r.output.clone(),
            r.serve.monitor.emc_calls,
            r.serve.monitor.sandbox_pf_exits,
            r.serve.kernel.page_faults,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_change_keys_but_not_results() {
    let run = |seed: u64| {
        let cfg = BootConfig {
            seed,
            config: ExecConfig::new(Mode::Full),
            ..BootConfig::default()
        };
        let mut p = Platform::boot_with(cfg).expect("boot");
        let mut svc = p
            .deploy(Box::new(HelloWorld { len: 5 }), 4096)
            .expect("deploy");
        let mut client = p.connect_client(&svc, [1; 32]).expect("attest");
        p.client_send(&svc, &mut client, b"r").expect("send");
        let pid = svc.pid;
        let req = svc.os.input(&mut p.proc(pid)).expect("input");
        let res = svc
            .program
            .serve(&mut svc.os, &mut p.proc(pid), &req)
            .expect("serve");
        svc.os.output(&mut p.proc(pid), &res).expect("output");
        let record = p.cvm.monitor.fetch_output(svc.sandbox).expect("record");
        let reply = client.open_result(&record).expect("open");
        (reply, record, p.cvm.tdx.attest.mrtd())
    };
    let (r1, w1, m1) = run(1);
    let (r2, w2, m2) = run(2);
    // Application results are seed-independent...
    assert_eq!(r1, r2);
    // ...but keys and measurements (and thus wire bytes) differ.
    assert_ne!(
        w1, w2,
        "different root seeds must give different ciphertexts"
    );
    assert_ne!(m1, m2, "firmware filler differs with seed");
}

/// Boot with an explicit root seed, drive one full workload round trip
/// (deploy → attest → send → serve → fetch), and return every observable
/// as bytes: the Debug-formatted platform snapshot (all monitor, kernel
/// and TDX counters plus the cycle count), the decrypted reply, and the
/// encrypted wire record the host saw.
fn seeded_trace(seed: u64) -> (String, Vec<u8>, Vec<u8>) {
    let cfg = BootConfig {
        seed,
        config: ExecConfig::new(Mode::Full),
        ..BootConfig::default()
    };
    let mut p = Platform::boot_with(cfg).expect("boot");
    let mut svc = p
        .deploy(
            Box::new(erebor_workloads::SandboxedWorkload::new(
                Retrieval::default(),
            )),
            1 << 20,
        )
        .expect("deploy");
    let mut client = p.connect_client(&svc, [9; 32]).expect("attest");
    let reply = p
        .serve_request(&mut svc, &mut client, b"q=2000;4")
        .expect("serve");
    let record = p
        .cvm
        .tdx
        .host
        .observed
        .last()
        .cloned()
        .unwrap_or_default();
    (format!("{:?}", p.snapshot()), reply, record)
}

#[test]
fn same_seed_full_trace_is_byte_identical() {
    // The strongest determinism statement the simulator can make: boot +
    // workload under the same seed reproduces the *entire* observable
    // state byte for byte — every counter in the monitor/kernel/TDX
    // snapshot, the application output, and the ciphertext on the wire.
    let (snap1, out1, wire1) = seeded_trace(0xeb0e);
    let (snap2, out2, wire2) = seeded_trace(0xeb0e);
    assert_eq!(snap1, snap2, "snapshot Debug trace diverged");
    assert_eq!(out1, out2, "workload output diverged");
    assert_eq!(wire1, wire2, "wire record diverged");
    assert!(!wire1.is_empty(), "host observed no wire traffic");
}

#[test]
fn different_seeds_diverge_on_the_wire_but_not_in_results() {
    // Negative control for the test above: a different root seed must
    // actually change the key-dependent observables (otherwise the
    // byte-identical check would pass vacuously on a constant), while
    // deterministic application results and scheduling stay identical.
    let (snap1, out1, wire1) = seeded_trace(1);
    let (snap2, out2, wire2) = seeded_trace(2);
    assert_eq!(out1, out2, "application results must be seed-independent");
    assert_eq!(
        snap1, snap2,
        "counters/cycles must be seed-independent (seed feeds keys, not scheduling)"
    );
    assert_ne!(wire1, wire2, "different seeds must give different ciphertexts");
}

/// PR 4 acceptance: the event trace and the cycle-attribution profile
/// are part of the deterministic observable state. Two identical runs
/// must export byte-identical trace JSON, and the attribution buckets
/// must sum exactly to the cycle total (every charged cycle lands in a
/// bucket by construction — no residual).
#[test]
fn trace_json_is_byte_identical_and_buckets_sum_to_total() {
    let run = |seed: u64| {
        let cfg = BootConfig {
            seed,
            config: ExecConfig::new(Mode::Full),
            ..BootConfig::default()
        };
        let mut p = Platform::boot_with(cfg).expect("boot");
        let mut svc = p
            .deploy(Box::new(HelloWorld { len: 4 }), 4096)
            .expect("deploy");
        let mut client = p.connect_client(&svc, [5; 32]).expect("attest");
        p.serve_request(&mut svc, &mut client, b"hi").expect("serve");

        let attr = p.cvm.machine.cycles.attribution();
        assert_eq!(
            attr.total(),
            p.cvm.machine.cycles.total(),
            "attribution buckets must sum to the machine's cycle total"
        );
        assert!(attr.monitor > 0, "gates/EMCs must charge the monitor bucket");
        assert!(attr.tdcall > 0, "attestation must charge the tdcall bucket");
        assert!(
            p.cvm.machine.trace.recorded() > 0,
            "the round trip must record trace events"
        );
        p.trace_json()
    };
    let a = run(0xeb07);
    let b = run(0xeb07);
    assert_eq!(a, b, "same-seed trace JSON must be byte-identical");
    assert!(a.contains("\"gate_enter\""), "trace must hold gate events");
    // Negative control: the trace reflects scheduling, not key material —
    // a different seed reproduces the same schedule.
    let c = run(0xeb08);
    assert_eq!(a, c, "seed feeds keys, not scheduling");
}

#[test]
fn counters_are_stable_across_reboots_of_same_seed() {
    let snap = || {
        let mut p = Platform::boot(Mode::Full).expect("boot");
        let mut svc = p
            .deploy(Box::new(HelloWorld::default()), 4096)
            .expect("deploy");
        let mut c = p.connect_client(&svc, [3; 32]).expect("attest");
        p.serve_request(&mut svc, &mut c, b"x").expect("serve");
        let s = p.snapshot();
        (
            s.cycles,
            s.monitor.emc_calls,
            s.tdx.tdcalls,
            s.kernel.syscalls,
        )
    };
    assert_eq!(snap(), snap());
}
