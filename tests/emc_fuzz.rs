//! Adversarial EMC fuzzing: the kernel interface is attacker-reachable, so
//! arbitrary request sequences must never panic the monitor, never grant
//! access to monitor memory, and never break the Nested-Kernel or
//! single-mapping invariants.
//!
//! Historical counterexamples found by the fuzzer live in the
//! `regressions` module as explicit named tests (ported from the old
//! `emc_fuzz.proptest-regressions` seed file when the suite moved to the
//! in-tree testkit), so they run on every `cargo test` forever.

use erebor::{Mode, Platform};
use erebor_core::emc::{CopyDir, EmcRequest};
use erebor_hw::fault::PfReason;
use erebor_hw::layout::{direct_map, KERNEL_BASE, MONITOR_BASE};
use erebor_hw::regs::Msr;
use erebor_hw::{Frame, VirtAddr};
use erebor_testkit::collection;
use erebor_testkit::prelude::*;
use erebor_workloads::hello::HelloWorld;

fn arb_msr() -> impl Strategy<Value = Msr> {
    (0usize..Msr::ALL.len()).prop_map(|i| Msr::ALL[i])
}

fn arb_request() -> impl Strategy<Value = EmcRequest> {
    prop_oneof![
        Just(EmcRequest::Nop),
        (any::<u32>()).prop_map(|asid| EmcRequest::CreateAddressSpace { asid }),
        (any::<u64>()).prop_map(|f| EmcRequest::SwitchAddressSpace {
            root: Frame(f % 40000)
        }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<bool>(),
            any::<bool>(),
            any::<bool>()
        )
            .prop_map(|(root, va, some_frame, writable, executable)| {
                EmcRequest::MapUserPage {
                    root: Frame(root % 40000),
                    va: VirtAddr(va & 0x0000_7fff_ffff_f000),
                    frame: some_frame.then_some(Frame(va % 40000)),
                    writable,
                    executable,
                }
            }),
        (any::<u64>(), any::<u64>()).prop_map(|(root, va)| EmcRequest::UnmapUserPage {
            root: Frame(root % 40000),
            va: VirtAddr(va & 0x0000_7fff_ffff_f000),
        }),
        (any::<u8>(), any::<u64>()).prop_map(|(which, value)| EmcRequest::WriteCr {
            which: which % 6,
            value,
        }),
        (arb_msr(), any::<u64>()).prop_map(|(msr, value)| EmcRequest::WrMsr { msr, value }),
        (any::<u8>(), any::<u64>()).prop_map(|(vec, h)| EmcRequest::SetVectorHandler {
            vec,
            handler: VirtAddr(KERNEL_BASE.0 + h % 0x0300_0000),
        }),
        (any::<u64>(), any::<bool>()).prop_map(|(f, shared)| EmcRequest::ConvertShared {
            frame: Frame(f % 40000),
            shared,
        }),
        (any::<u64>(), collection::vec(any::<u8>(), 0..64)).prop_map(|(offset, bytes)| {
            EmcRequest::TextPoke {
                offset: offset % 0x2_0000,
                bytes,
            }
        }),
        (any::<u32>(), any::<u64>(), 0u64..64, any::<bool>()).prop_map(
            |(sandbox, va, pages, executable)| EmcRequest::DeclareConfined {
                sandbox: sandbox % 4,
                va: VirtAddr(va & 0x0000_7fff_ffff_f000),
                pages,
                executable,
            }
        ),
        (any::<u64>(), any::<u64>(), 0usize..256, any::<bool>()).prop_map(
            |(root, va, len, to_user)| EmcRequest::UserCopy {
                dir: if to_user {
                    CopyDir::ToUser
                } else {
                    CopyDir::FromUser
                },
                root: Frame(root % 40000),
                user_va: VirtAddr(va & 0x0000_7fff_ffff_f000),
                bytes: vec![0xaa; len],
            }
        ),
        (collection::vec(any::<u8>(), 0..256), any::<u64>()).prop_map(|(code, va)| {
            EmcRequest::LoadKernelModule {
                code,
                va: VirtAddr(KERNEL_BASE.0 + 0x0500_0000 + (va % 64) * 0x1000),
            }
        }),
    ]
}

/// Boot the full platform with a sandbox holding secret data, replay
/// `reqs` as a hostile kernel, and assert every security invariant after
/// each request. Panics (failing the enclosing test) on any violation —
/// shared by the property below and the named regression tests.
fn assert_invariants_under(reqs: &[EmcRequest]) {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    // One sandbox holding data, as the high-value target.
    let mut svc = p
        .deploy(Box::new(HelloWorld::default()), 4096)
        .expect("deploy");
    let mut client = p.connect_client(&svc, [0x77; 32]).expect("attest");
    p.client_send(&svc, &mut client, b"the crown jewels")
        .expect("send");
    {
        let pid = svc.pid;
        svc.os.input(&mut p.proc(pid)).expect("input");
    }
    let confined: Vec<Frame> = p.cvm.monitor.sandboxes[&svc.sandbox.0]
        .confined
        .iter()
        .map(|(_, f)| *f)
        .collect();
    p.enter_kernel_mode();

    for req in reqs {
        // Whatever happens: no panic, and errors are typed.
        let _ = p
            .cvm
            .monitor
            .emc(&mut p.cvm.machine, &mut p.cvm.tdx, 0, req.clone());
        // Repair the driving context (a hostile kernel could also do
        // this; it is not a protection boundary).
        p.enter_kernel_mode();

        // Invariant 1: monitor memory stays inaccessible.
        let err = p
            .cvm
            .machine
            .read_u64(0, MONITOR_BASE)
            .expect_err("monitor hidden");
        assert!(err.is_pf(PfReason::PksAccessDisabled), "{err}");

        // Invariant 2: PTEs stay kernel-unwritable.
        let slot = erebor_hw::paging::pte_slot(p.cvm.monitor.kernel_root, VirtAddr(0x40_0000), 4);
        let err = p
            .cvm
            .machine
            .write_u64(0, direct_map(slot), 0xdead)
            .expect_err("PTEs protected");
        assert!(err.is_pf(PfReason::PksWriteDisabled), "{err}");

        // Invariant 3: the client data stays unreadable and unshared.
        for f in &confined {
            if p.cvm.monitor.sandboxes[&svc.sandbox.0].state
                == erebor_core::sandbox::SandboxState::Dead
            {
                break; // a fuzzer-killed sandbox has scrubbed frames
            }
            assert!(
                p.cvm.machine.read_u64(0, direct_map(f.base())).is_err(),
                "confined {f:?} became kernel-readable"
            );
            assert!(
                !p.cvm.tdx.sept.is_shared(*f),
                "confined {f:?} became shared"
            );
        }

        // Invariant 4: protections stay pinned.
        let c = &p.cvm.machine.cpus[0];
        assert!(c.cr0.wp() && c.cr4.smep() && c.cr4.smap() && c.cr4.pks());
    }
    // And the host never saw the secret through any of it.
    assert!(!p.cvm.tdx.host.observed_contains(b"the crown jewels"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_emc_sequences_preserve_all_invariants(
        reqs in collection::vec(arb_request(), 1..40),
    ) {
        assert_invariants_under(&reqs);
    }
}

mod regressions {
    use super::*;

    /// Ported from `emc_fuzz.proptest-regressions` (seed
    /// `f0995a8b…`): a lone hostile CR0 write once slipped past the
    /// pinned-protection check. Shrunk counterexample:
    /// `[WriteCr { which: 0, value: 228911628678546271 }]`.
    #[test]
    fn hostile_cr0_write_keeps_protections_pinned() {
        assert_invariants_under(&[EmcRequest::WriteCr {
            which: 0,
            value: 228_911_628_678_546_271,
        }]);
    }

    /// The same class of attack across every control register index the
    /// EMC accepts, with both all-zero and all-one payloads (a broadened
    /// net around the historical counterexample).
    #[test]
    fn hostile_cr_writes_any_index_keep_protections_pinned() {
        let reqs: Vec<EmcRequest> = (0..6)
            .flat_map(|which| {
                [0u64, u64::MAX, 228_911_628_678_546_271]
                    .into_iter()
                    .map(move |value| EmcRequest::WriteCr { which, value })
            })
            .collect();
        assert_invariants_under(&reqs);
    }
}
