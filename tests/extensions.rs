//! Extension features beyond the paper's prototype: CET shadow stacks
//! (lifted §7 limitation), batched MMU updates (§9.1's optimization), and
//! quantized output intervals (§11's covert-channel mitigation).

use erebor::{BootConfig, Mode, Platform};
use erebor_core::config::ExecConfig;
use erebor_hw::fault::{CpReason, Fault};
use erebor_hw::idt::vector;
use erebor_libos::api::Sys;
use erebor_workloads::hello::HelloWorld;
use erebor_workloads::lmbench;

fn boot_with(mut f: impl FnMut(&mut ExecConfig)) -> Platform {
    let mut cfg = BootConfig {
        config: ExecConfig::new(Mode::Full),
        ..BootConfig::default()
    };
    f(&mut cfg.config);
    Platform::boot_with(cfg).expect("boot")
}

// ====================================================================
// Shadow stacks (backward CFI)
// ====================================================================

#[test]
fn shadow_stack_allows_balanced_interrupts() {
    let mut p = boot_with(|c| c.shadow_stacks = true);
    assert!(p.cvm.machine.cpus[0].sstk_enabled());
    // A full interposed round trip (timer) must balance the shadow stack.
    let mut svc = p
        .deploy(Box::new(HelloWorld::default()), 4096)
        .expect("deploy");
    let mut client = p.connect_client(&svc, [9; 32]).expect("attest");
    let reply = p
        .serve_request(&mut svc, &mut client, b"go")
        .expect("serve");
    assert!(!reply.is_empty());
    assert_eq!(p.cvm.machine.sstk[0].depth(), 0, "balanced push/pop");
}

#[test]
fn shadow_stack_detects_kernel_rop() {
    let mut p = boot_with(|c| c.shadow_stacks = true);
    // Deliver an interrupt, then try to iret to an attacker-chosen address
    // instead of the interrupted rip: hardware #CP.
    p.cvm.machine.cpus[0].ctx.rip = 0x40_2000;
    let (_h, mut saved) = p
        .cvm
        .machine
        .deliver_interrupt(0, vector::TIMER)
        .expect("deliver");
    saved.rip = 0x40_666; // ROP target
    let err = p.cvm.machine.iret(0, saved).expect_err("must #CP");
    assert_eq!(err, Fault::ControlProtection(CpReason::ShadowStackMismatch));
}

#[test]
fn shadow_stack_cost_is_negligible() {
    // The paper argues omitted SST checks have minimal performance impact
    // (§7); with the simulator we can verify that claim.
    let run = |sst: bool| -> u64 {
        let mut p = boot_with(|c| c.shadow_stacks = sst);
        let mut svc = p
            .deploy(Box::new(HelloWorld::default()), 4096)
            .expect("deploy");
        let mut client = p.connect_client(&svc, [1; 32]).expect("attest");
        let before = p.snapshot().cycles;
        p.serve_request(&mut svc, &mut client, b"x").expect("serve");
        p.snapshot().cycles - before
    };
    let without = run(false);
    let with = run(true);
    let overhead = with as f64 / without as f64 - 1.0;
    assert!(overhead < 0.01, "SST overhead {overhead:.4} should be <1%");
}

// ====================================================================
// Batched MMU updates (§9.1)
// ====================================================================

#[test]
fn batched_mmu_lowers_fork_cost() {
    let fork_cycles = |batched: bool| -> f64 {
        let mut p = boot_with(|c| c.batched_mmu = batched);
        p.cvm.monitor.cfg.timer_quantum_cycles = u64::MAX / 4;
        p.reclaim_period_ticks = 0;
        let pid = p.spawn_native().expect("spawn");
        let mut h = p.proc(pid);
        lmbench::bench_fork(&mut h, 8)
            .expect("fork bench")
            .cycles_per_op
    };
    let plain = fork_cycles(false);
    let batched = fork_cycles(true);
    assert!(
        batched < plain * 0.85,
        "batching must cut fork cost: {plain:.0} -> {batched:.0}"
    );
}

#[test]
fn batched_mmu_denied_when_disabled() {
    let mut p = boot_with(|c| c.batched_mmu = false);
    let root = p.cvm.monitor.kernel_root;
    let err = p
        .cvm
        .monitor
        .emc(
            &mut p.cvm.machine,
            &mut p.cvm.tdx,
            0,
            erebor_core::emc::EmcRequest::MapUserRange {
                root,
                va: erebor_hw::VirtAddr(0x7100_0000_0000),
                pages: 4,
                writable: true,
            },
        )
        .expect_err("disabled batching must be denied");
    assert!(matches!(err, erebor_core::emc::EmcError::Denied(_)));
}

#[test]
fn batched_fork_preserves_copy_semantics() {
    let mut p = boot_with(|c| c.batched_mmu = true);
    let pid = p.spawn_native().expect("spawn");
    let addr = p
        .proc(pid)
        .syscall(erebor_kernel::syscall::nr::MMAP, [0, 3 * 4096, 3, 0, 0, 0])
        .expect("mmap");
    for i in 0..3u64 {
        p.proc(pid)
            .write_mem(addr + i * 4096, format!("page-{i}").as_bytes())
            .expect("write");
    }
    let child = p
        .proc(pid)
        .syscall(erebor_kernel::syscall::nr::FORK, [0; 6])
        .expect("fork");
    let child_pid = erebor_kernel::Pid(child as u32);
    for i in 0..3u64 {
        let mut buf = [0u8; 6];
        p.proc(child_pid)
            .read_mem(addr + i * 4096, &mut buf)
            .expect("read");
        assert_eq!(&buf, format!("page-{i}").as_bytes());
    }
}

// ====================================================================
// Quantized output intervals (§11)
// ====================================================================

#[test]
fn output_interval_quantizes_completion_time() {
    const Q: u64 = 1_000_000;
    let finish_cycles = |len: usize| -> u64 {
        let mut p = boot_with(|c| c.output_interval_cycles = Some(Q));
        let mut svc = p
            .deploy(Box::new(HelloWorld { len }), 4096)
            .expect("deploy");
        let mut client = p.connect_client(&svc, [3; 32]).expect("attest");
        let reply = p.serve_request(&mut svc, &mut client, b"r").expect("serve");
        assert_eq!(reply.len(), len);
        p.snapshot().cycles
    };
    let t1 = finish_cycles(1);
    let t2 = finish_cycles(2000);
    assert_eq!(
        t1 % Q,
        0,
        "completion time must sit on an interval boundary"
    );
    assert_eq!(
        t2 % Q,
        0,
        "completion time must sit on an interval boundary"
    );
}
