//! Red-team tests for `erebor-analyze`: every auditor check is exercised
//! with a deliberately corrupted snapshot (asserting exactly that check
//! fires) next to a clean snapshot (asserting none do), and the
//! happens-before race detector is shown reproducing the hand-written
//! stale-TLB attack from `tests/tlb_shootdown.rs` unprompted, from the
//! machine trace alone.

use erebor::eanalyze::{detect_races, Finding};
use erebor::ecore::emc::{EmcRequest, EmcResponse};
use erebor::ecore::policy::{self, FrameKind};
use erebor::ehw::cpu::Domain;
use erebor::ehw::fault::AccessKind;
use erebor::ehw::idt::{self, vector, Idtr};
use erebor::ehw::isolation::BackendKind;
use erebor::ehw::layout;
use erebor::ehw::paging::{self, intermediate_for, map_raw, Pte, PteFlags};
use erebor::ehw::regs::Cr0;
use erebor::ehw::{BatchOp, CpuMode, Frame, VirtAddr};
use erebor::{Mode, Platform, TraceEvent, TraceRecord};

/// A kernel-half VA far from anything boot maps (text, data, direct map).
const SCRATCH_VA: VirtAddr = VirtAddr(layout::KERNEL_BASE.0 + 0x4000_0000);
const USER_VA: VirtAddr = VirtAddr(0x40_0000);

fn booted() -> Platform {
    // `boot` itself runs the auditor and fails on findings, so every
    // successful boot doubles as the clean-snapshot half of each test.
    Platform::boot(Mode::Full).expect("boot")
}

/// Boot Full under a specific isolation backend (the corrupted-snapshot
/// suite runs generically over `Pks | TmeMk`).
fn booted_with(backend: BackendKind) -> Platform {
    let mut config = erebor::ExecConfig::new(Mode::Full);
    config.backend = backend;
    let cfg = erebor::BootConfig {
        config,
        ..erebor::BootConfig::default()
    };
    Platform::boot_with(cfg).expect("boot")
}

/// Run a corrupted-snapshot body under both backends: the findings
/// semantics (which check fires, and that only it fires) must be
/// identical whether confinement is PKS pkeys or TME-MK key-IDs.
fn for_both_backends(body: impl Fn(&mut Platform)) {
    for backend in [BackendKind::Pks, BackendKind::TmeMk] {
        let mut p = booted_with(backend);
        body(&mut p);
    }
}

fn only_check(findings: &[Finding], check: &str) {
    assert!(
        findings.iter().any(|f| f.check == check),
        "expected a {check} finding, got {findings:?}"
    );
    assert!(
        findings.iter().all(|f| f.check == check),
        "expected only {check} findings, got {findings:?}"
    );
}

// ====================================================================
// Clean snapshots
// ====================================================================

#[test]
fn boot_snapshot_audits_clean() {
    for_both_backends(|p| {
        let report = p.audit();
        assert!(report.is_clean(), "{}", report.json());
        assert!(report.roots_walked >= 1);
        assert!(report.leaf_mappings > 0);
        assert!(report.idt_entries > 0);
        assert!(report.work() > 0);
    });
}

/// Regression for the seed bug the auditor caught: the syscall and
/// interrupt interposers are hardware entry points into the monitor and
/// must be `endbr64` landing pads (the monitor image only tagged the EMC
/// gate).
#[test]
fn hardware_entry_points_are_endbr_pads() {
    let p = booted();
    let mon = &p.cvm.monitor;
    for (what, va) in [
        ("gate entry", mon.gate.entry),
        ("syscall interposer", mon.syscall_interposer),
        ("interrupt interposer", mon.interrupt_interposer),
    ] {
        assert!(
            p.cvm.machine.endbr.is_target(va),
            "{what} {va:?} must be an ENDBR pad"
        );
    }
}

// ====================================================================
// Corrupted snapshots: one per auditor check
// ====================================================================

#[test]
fn c1_writable_executable_mapping_is_flagged() {
    for_both_backends(|p| {
        let f = p.cvm.machine.mem.alloc_frame().expect("frame");
        // present + writable + executable (nx unset): the W^X violation.
        let wx = PteFlags {
            present: true,
            writable: true,
            ..PteFlags::default()
        };
        map_raw(
            &mut p.cvm.machine.mem,
            p.cvm.monitor.kernel_root,
            SCRATCH_VA,
            Pte::encode(f, wx),
            intermediate_for(PteFlags::kernel_rw(0)),
        )
        .expect("map");
        only_check(&p.audit().findings, "wx-exclusive");
    });
}

#[test]
fn c2_monitor_frame_under_default_key_is_flagged() {
    for_both_backends(|p| {
        // Alias the monitor's text frame into the kernel half read-only
        // under the *default* key — normal mode could then read monitor
        // memory.
        let mon_frame = paging::lookup_raw(
            &p.cvm.machine.mem,
            p.cvm.monitor.kernel_root,
            layout::MONITOR_BASE,
        )
        .expect("walk")
        .expect("monitor text mapped")
        .frame();
        assert_eq!(p.cvm.monitor.frames.kind(mon_frame), FrameKind::Monitor);
        map_raw(
            &mut p.cvm.machine.mem,
            p.cvm.monitor.kernel_root,
            SCRATCH_VA,
            Pte::encode(mon_frame, PteFlags::kernel_ro(policy::PK_DEFAULT)),
            intermediate_for(PteFlags::kernel_ro(0)),
        )
        .expect("map");
        only_check(&p.audit().findings, "pkey-tagging");
    });
}

/// C2, keyed half: a live sandbox's confined frame aliased with the right
/// pkey but the *wrong key-ID* (or wrong pkey under PKS) is a tagging
/// violation — the backend decides what the correct `(pkey, keyid)` tag
/// is, and the auditor holds every confined alias to it.
#[test]
fn c2_confined_frame_with_wrong_domain_tag_is_flagged() {
    for_both_backends(|p| {
        p.enter_kernel_mode();
        let budget = 4;
        let id = p
            .cvm
            .monitor
            .create_sandbox(&mut p.cvm.machine, 0, budget)
            .expect("create sandbox");
        let f = p.cvm.machine.mem.alloc_frame().expect("frame");
        p.cvm
            .monitor
            .frames
            .set_kind(f, FrameKind::Confined { sandbox: id.0 })
            .expect("typed");
        // Tag the alias as ordinary kernel data with key-ID zero: under
        // PKS the pkey is wrong, under TME-MK the key-ID is wrong (the
        // frame's hardware key was never programmed, so the keyed walk
        // check also sees a mismatch). Both must surface as findings.
        map_raw(
            &mut p.cvm.machine.mem,
            p.cvm.monitor.kernel_root,
            SCRATCH_VA,
            Pte::encode(f, PteFlags::kernel_ro(policy::PK_DEFAULT)),
            intermediate_for(PteFlags::kernel_ro(0)),
        )
        .expect("map");
        let findings = p.audit().findings;
        assert!(
            findings
                .iter()
                .any(|f| f.check == "pkey-tagging" || f.check == "confined-unreachable"),
            "wrong domain tag must be flagged: {findings:?}"
        );
    });
}

#[test]
fn c3_confined_frame_reachable_from_kernel_root_is_flagged() {
    for_both_backends(|p| {
        let f = p.cvm.machine.mem.alloc_frame().expect("frame");
        p.cvm
            .monitor
            .frames
            .set_kind(f, FrameKind::Confined { sandbox: 9 })
            .expect("typed");
        map_raw(
            &mut p.cvm.machine.mem,
            p.cvm.monitor.kernel_root,
            SCRATCH_VA,
            Pte::encode(f, PteFlags::kernel_ro(policy::PK_DEFAULT)),
            intermediate_for(PteFlags::kernel_ro(0)),
        )
        .expect("map");
        only_check(&p.audit().findings, "confined-unreachable");
    });
}

#[test]
fn c4_writable_shadow_stack_frame_is_flagged() {
    for_both_backends(|p| {
        let f = p.cvm.machine.mem.alloc_frame().expect("frame");
        p.cvm
            .monitor
            .frames
            .set_kind(f, FrameKind::ShadowStack)
            .expect("typed");
        // Retag the frame's direct-map alias the way boot does for real
        // shadow-stack frames, so only the corrupted scratch mapping
        // below is wrong.
        let dm_slot = paging::leaf_slot(
            &p.cvm.machine.mem,
            p.cvm.monitor.kernel_root,
            layout::direct_map(erebor::ehw::PhysAddr(f.0 << 12)),
        )
        .expect("walk")
        .expect("direct-map leaf");
        p.cvm
            .machine
            .mem
            .write_u64(dm_slot, Pte::encode(f, PteFlags::kernel_ro(policy::PK_SSTK)).0)
            .expect("retag");
        // Writable under a non-SSTK, non-monitor key (kernel-text key
        // keeps the weak pkey-tagging check quiet, isolating the sstk
        // finding).
        map_raw(
            &mut p.cvm.machine.mem,
            p.cvm.monitor.kernel_root,
            SCRATCH_VA,
            Pte::encode(f, PteFlags::kernel_rw(policy::PK_KTEXT)),
            intermediate_for(PteFlags::kernel_rw(0)),
        )
        .expect("map");
        only_check(&p.audit().findings, "sstk-protected");
    });
}

#[test]
fn c5_idt_vector_rewritten_into_kernel_half_is_flagged() {
    for_both_backends(|p| {
        let idtr = Idtr {
            base: p.cvm.monitor.idt_base,
        };
        // A DMA-style backdoor store retargets the timer vector at kernel
        // text — delivery would bypass the monitor's #INT interposer.
        idt::write_entry_raw(
            &mut p.cvm.machine.mem,
            p.cvm.monitor.kernel_root,
            idtr,
            vector::TIMER,
            VirtAddr(layout::KERNEL_BASE.0 + 0x100),
        )
        .expect("backdoor IDT store");
        only_check(&p.audit().findings, "control-transfer");
    });
}

#[test]
fn c6_cleared_wp_is_flagged() {
    for_both_backends(|p| {
        p.cvm.machine.cpus[1].cr0 = Cr0(Cr0::PG); // WP off under paging
        only_check(&p.audit().findings, "msr-pinning");
    });
}

#[test]
fn c7_shared_device_frame_still_private_is_flagged() {
    for_both_backends(|p| {
        // A frame typed SharedDevice that is still sEPT-private: the
        // frame table and the sEPT disagree, and the direct-map alias
        // already makes it a mapped frame the walk visits.
        let f = p.cvm.machine.mem.alloc_frame().expect("frame");
        p.cvm
            .monitor
            .frames
            .set_kind(f, FrameKind::SharedDevice)
            .expect("typed");
        p.cvm.tdx.sept.accept_private(f);
        only_check(&p.audit().findings, "sept-consistency");
    });
}

/// The decision-cache red test: after an honest downgrade (delegated
/// unmap, shootdown delivered, epoch bumped) the audit is clean; if an
/// adversary could revive the pre-downgrade MMU epoch, the victim core's
/// permission-decision cache would come back to life with entries whose
/// backing TLB state is gone — and C9 flags every one of them
/// individually rather than trusting the batch layer's own validity
/// check.
#[test]
fn c9_revived_stale_decision_cache_is_flagged() {
    for backend in [BackendKind::Pks, BackendKind::TmeMk] {
        c9_revived_stale_decision_cache_body(backend);
    }
}

fn c9_revived_stale_decision_cache_body(backend: BackendKind) {
    let (mut p, root) = platform_with_user_page_on(backend);
    run_user(&mut p, 1, root);
    // Warm the decision cache on the victim core: the first probe walks
    // and fills, the second is served from the cached decision.
    let ops = [BatchOp::Probe {
        va: USER_VA,
        kind: AccessKind::Read,
    }; 2];
    let out = p.cvm.machine.run_batch(1, &ops);
    assert!(out.fault.is_none(), "{out:?}");
    assert!(p.cvm.machine.decision_cache(1).occupancy() > 0, "cache warmed");
    let pre_downgrade_epoch = p.cvm.machine.mmu_epoch();

    // Honest downgrade: the monitor unmaps the page, the shootdown lands
    // on every core, and the epoch moves on.
    p.enter_kernel_mode();
    p.cvm
        .monitor
        .emc(
            &mut p.cvm.machine,
            &mut p.cvm.tdx,
            0,
            EmcRequest::UnmapUserPage { root, va: USER_VA },
        )
        .expect("delegated unmap");
    p.cvm.machine.cpus[1].mode = CpuMode::User;
    p.cvm.machine.cpus[1].domain = Domain::User;
    assert_ne!(p.cvm.machine.mmu_epoch(), pre_downgrade_epoch);
    let report = p.audit();
    assert!(report.is_clean(), "honest downgrade audits clean: {}", report.json());

    // Epoch revival: the stale decisions survive the downgrade without a
    // flush, and the auditor catches them.
    p.cvm.machine.force_mmu_epoch(pre_downgrade_epoch);
    only_check(&p.audit().findings, "decision-consistency");
}

#[test]
fn c8_stale_tlb_entry_after_backdoor_unmap_is_flagged() {
    for backend in [BackendKind::Pks, BackendKind::TmeMk] {
        let (mut p, root) = platform_with_user_page_on(backend);
        run_user(&mut p, 0, root);
        p.cvm
            .machine
            .probe(0, USER_VA, AccessKind::Read)
            .expect("cache the translation");
        // Zero the PTE without any shootdown: the cached entry is now a
        // ledger inconsistency (no pending-shootdown record explains it).
        let slot = paging::leaf_slot(&p.cvm.machine.mem, root, USER_VA)
            .expect("walk")
            .expect("leaf");
        p.cvm.machine.mem.write_u64(slot, 0).expect("backdoor store");
        only_check(&p.audit().findings, "ledger-consistency");
    }
}

// ====================================================================
// The trace race detector
// ====================================================================

fn rec(seq: u64, cpu: u32, event: TraceEvent) -> TraceRecord {
    TraceRecord {
        seq,
        cycles: seq * 100,
        cpu,
        event,
    }
}

#[test]
fn synthetic_unmap_without_invalidation_is_a_race() {
    let records = vec![
        rec(0, 1, TraceEvent::TlbHit { root: 7, page: 5 }),
        rec(1, 0, TraceEvent::Emc { op: "unmap", arg: 5 }),
        rec(2, 1, TraceEvent::TlbHit { root: 7, page: 5 }),
    ];
    let findings = detect_races(&records, 2);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].cpu, 1);
    assert_eq!(findings[0].page, 5);
    assert!(!findings[0].dropped, "no injected drop explains this window");
}

#[test]
fn synthetic_acked_shootdown_is_clean() {
    let records = vec![
        rec(0, 1, TraceEvent::TlbHit { root: 7, page: 5 }),
        rec(1, 0, TraceEvent::TlbShootdown { root: 7, page: 5 }),
        rec(2, 0, TraceEvent::IpiSent { to: 1 }),
        rec(3, 1, TraceEvent::IpiReceived { from: 0 }),
        rec(4, 1, TraceEvent::TlbInvlpg { page: 5 }),
        rec(5, 1, TraceEvent::TlbHit { root: 7, page: 6 }),
    ];
    assert!(detect_races(&records, 2).is_empty());
}

/// Boot Full, create a fresh user address space through EMC, and map one
/// writable page at [`USER_VA`] (the `tests/tlb_shootdown.rs` setup).
fn platform_with_user_page() -> (Platform, Frame) {
    platform_with_user_page_on(BackendKind::Pks)
}

fn platform_with_user_page_on(backend: BackendKind) -> (Platform, Frame) {
    let mut p = booted_with(backend);
    p.enter_kernel_mode();
    let root = match p.cvm.monitor.emc(
        &mut p.cvm.machine,
        &mut p.cvm.tdx,
        0,
        EmcRequest::CreateAddressSpace { asid: 77 },
    ) {
        Ok(EmcResponse::Root(r)) => r,
        other => panic!("create address space: {other:?}"),
    };
    p.cvm
        .monitor
        .emc(
            &mut p.cvm.machine,
            &mut p.cvm.tdx,
            0,
            EmcRequest::MapUserPage {
                root,
                va: USER_VA,
                frame: None,
                writable: true,
                executable: false,
            },
        )
        .expect("map user page");
    (p, root)
}

fn run_user(p: &mut Platform, cpu: usize, root: Frame) {
    p.cvm.machine.cpus[cpu].cr3 = root;
    p.cvm.machine.flush_tlb(cpu);
    p.cvm.machine.cpus[cpu].mode = CpuMode::User;
    p.cvm.machine.cpus[cpu].domain = Domain::User;
}

/// The headline claim: given only the machine trace of the cross-core
/// stale-TLB attack (monitor unmaps, the shootdown IPI is dropped, the
/// victim core keeps reading), the vector-clock pass flags the exact
/// core, page, and revocation — no hand-written assertion about TLB
/// internals required.
#[test]
fn race_detector_reproduces_dropped_ipi_stale_read_unprompted() {
    struct DropAllIpis;
    impl erebor::ehw::inject::Injector for DropAllIpis {
        fn drop_shootdown_ipi(&mut self, _initiator: usize, _target: usize) -> bool {
            true
        }
    }

    let (mut p, root) = platform_with_user_page();
    p.cvm.machine.mmu_trace = true;
    // Victim core 1 runs the sandbox and caches the translation.
    run_user(&mut p, 1, root);
    p.cvm
        .machine
        .probe(1, USER_VA, AccessKind::Read)
        .expect("mapped page readable on core 1");

    // The monitor revokes the page, but the host eats the IPI.
    p.enter_kernel_mode();
    p.install_injector(erebor::ehw::inject::handle(DropAllIpis));
    p.cvm
        .monitor
        .emc(
            &mut p.cvm.machine,
            &mut p.cvm.tdx,
            0,
            EmcRequest::UnmapUserPage { root, va: USER_VA },
        )
        .expect("delegated unmap");
    p.clear_injector();

    // The victim still reads through the dead mapping...
    p.cvm.machine.cpus[1].mode = CpuMode::User;
    p.cvm.machine.cpus[1].domain = Domain::User;
    p.cvm
        .machine
        .probe(1, USER_VA, AccessKind::Read)
        .expect("stale TLB entry still serves the unmapped page");

    // ...and the detector reconstructs the whole attack from the trace.
    let records = p.cvm.machine.trace.last_n(usize::MAX);
    let findings = detect_races(&records, p.cvm.machine.cpus.len());
    let hit = findings
        .iter()
        .find(|f| f.cpu == 1 && f.page == USER_VA.0 >> 12)
        .unwrap_or_else(|| panic!("no stale-window finding for core 1: {findings:?}"));
    assert_eq!(hit.root, root.0, "window names the revoked address space");
    assert!(hit.dropped, "attributed to the dropped shootdown IPI");
    assert!(hit.access_seq > hit.revoke_seq);
}

/// Batched accesses are individual events to the detector: a `run_batch`
/// straight-line read sequence through a revoked-but-stale mapping emits
/// one `tlb_hit` per access (never a coalesced summary), so the
/// happens-before pass sees the full stale window — including the
/// accesses the decision cache replayed without touching the TLB.
#[test]
fn race_detector_sees_individual_batched_accesses() {
    struct DropAllIpis;
    impl erebor::ehw::inject::Injector for DropAllIpis {
        fn drop_shootdown_ipi(&mut self, _initiator: usize, _target: usize) -> bool {
            true
        }
    }

    let (mut p, root) = platform_with_user_page();
    p.cvm.machine.mmu_trace = true;
    run_user(&mut p, 1, root);
    p.cvm
        .machine
        .probe(1, USER_VA, AccessKind::Read)
        .expect("mapped page readable on core 1");

    p.enter_kernel_mode();
    p.install_injector(erebor::ehw::inject::handle(DropAllIpis));
    p.cvm
        .monitor
        .emc(
            &mut p.cvm.machine,
            &mut p.cvm.tdx,
            0,
            EmcRequest::UnmapUserPage { root, va: USER_VA },
        )
        .expect("delegated unmap");
    p.clear_injector();

    // The victim batches three reads through the dead mapping. The first
    // takes the slow path (the shootdown bumped the MMU epoch) and hits
    // the stale TLB entry; the rest replay the refilled decision.
    p.cvm.machine.cpus[1].mode = CpuMode::User;
    p.cvm.machine.cpus[1].domain = Domain::User;
    let ops = [BatchOp::Probe {
        va: USER_VA,
        kind: AccessKind::Read,
    }; 3];
    let out = p.cvm.machine.run_batch(1, &ops);
    assert!(out.fault.is_none(), "stale entry still serves: {out:?}");
    assert_eq!(out.executed, 3);

    let records = p.cvm.machine.trace.last_n(usize::MAX);
    let page = USER_VA.0 >> 12;
    let revoke_seq = records
        .iter()
        .find_map(|r| match r.event {
            TraceEvent::TlbShootdown { page: pg, .. } if pg == page => Some(r.seq),
            _ => None,
        })
        .expect("shootdown traced");
    let stale_hits = records
        .iter()
        .filter(|r| {
            r.cpu == 1
                && r.seq > revoke_seq
                && matches!(r.event, TraceEvent::TlbHit { page: pg, .. } if pg == page)
        })
        .count();
    assert_eq!(stale_hits, 3, "one tlb_hit per batched access, none coalesced");

    let findings = detect_races(&records, p.cvm.machine.cpus.len());
    let hit = findings
        .iter()
        .find(|f| f.cpu == 1 && f.page == page)
        .unwrap_or_else(|| panic!("no stale-window finding: {findings:?}"));
    assert!(hit.dropped, "attributed to the dropped shootdown IPI");
}

/// Same schedule without the drop: the shootdown lands, the stale read
/// faults, the detector stays quiet — no false positives on the honest
/// path.
#[test]
fn race_detector_quiet_when_shootdown_lands() {
    let (mut p, root) = platform_with_user_page();
    p.cvm.machine.mmu_trace = true;
    run_user(&mut p, 1, root);
    p.cvm
        .machine
        .probe(1, USER_VA, AccessKind::Read)
        .expect("mapped page readable on core 1");

    p.enter_kernel_mode();
    p.cvm
        .monitor
        .emc(
            &mut p.cvm.machine,
            &mut p.cvm.tdx,
            0,
            EmcRequest::UnmapUserPage { root, va: USER_VA },
        )
        .expect("delegated unmap");

    p.cvm.machine.cpus[1].mode = CpuMode::User;
    p.cvm.machine.cpus[1].domain = Domain::User;
    p.cvm
        .machine
        .probe(1, USER_VA, AccessKind::Read)
        .expect_err("shootdown landed; the unmap is visible");

    let records = p.cvm.machine.trace.last_n(usize::MAX);
    let findings = detect_races(&records, p.cvm.machine.cpus.len());
    assert!(findings.is_empty(), "{findings:?}");
}

// ====================================================================
// The privilege-separation auditor (DESIGN.md §14)
// ====================================================================

/// The CI baseline: the whole workspace satisfies the declared privilege
/// manifest with zero findings and zero effective waivers, and the graph
/// attributes privileged-core references where they belong.
#[test]
fn workspace_satisfies_the_privilege_manifest() {
    use erebor::eanalyze::privilege::{scan_workspace, WaiverPolicy};
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let report = scan_workspace(&root, WaiverPolicy::Refuse);
    assert!(
        report.findings.is_empty(),
        "privilege boundary violated:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(report.waivers_seen, 0, "waivers present in the tree");
    assert!(report.is_clean());
    // The manifest is live: every declared privileged subtree matched
    // scanned files, and the graph shows the hw substrate carrying the
    // bulk of the raw reach.
    assert!(report.privileged_modules >= 4, "{}", report.privileged_modules);
    assert!(report.privileged_files > 10, "{}", report.privileged_files);
    let graph = report.graph_counts();
    let hw_refs: u64 = graph
        .iter()
        .filter(|(m, _)| m.starts_with("erebor-hw"))
        .map(|(_, n)| n)
        .sum();
    let kernel_refs: u64 = graph
        .iter()
        .filter(|(m, _)| m.starts_with("erebor-kernel"))
        .map(|(_, n)| n)
        .sum();
    assert!(hw_refs > 100, "hw substrate references: {hw_refs}");
    // The deprivileged kernel's residual mentions are comments/strings
    // only — at most a couple of stripped-code stragglers would show
    // here, and zero findings above proves none are reaches.
    assert!(kernel_refs < 10, "kernel raw references: {kernel_refs}");
    // The report JSON round-trips its headline counters.
    let json = report.json();
    assert!(json.starts_with("{\"findings\":["));
    assert!(json.contains("\"count\":0"));
    assert!(json.contains("\"waivers\":0"));
}

/// Red fixtures through the public API: each boundary rule produces
/// exactly one typed finding on a minimal out-of-manifest source.
#[test]
fn privilege_red_fixtures_fire_typed_findings() {
    use erebor::eanalyze::privilege::{scan_source, WaiverPolicy};
    // 1. Unprivileged module calling a raw hw mutator.
    let (_, f, _) = scan_source(
        "crates/libos/src/bad.rs",
        "fn f(m: &mut Machine) { m.mem.free_frame(f).ok(); }\n",
        WaiverPolicy::Refuse,
    );
    assert_eq!(f.len(), 2, "{f:?}"); // .mem reach + free_frame reach
    assert!(f.iter().all(|x| x.rule == "priv-reach"));
    assert!(f.iter().all(|x| x.module == "erebor-libos::bad"));
    // 2. An unsafe block outside the manifest (and inside it — banned
    // everywhere).
    let (_, f, _) = scan_source(
        "crates/wire/src/bad.rs",
        "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n",
        WaiverPolicy::Refuse,
    );
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "stray-unsafe");
    let (_, f, _) = scan_source(
        "crates/hw/src/bad.rs",
        "fn f() { unsafe { x() } }\n",
        WaiverPolicy::Refuse,
    );
    assert_eq!(f.len(), 1, "unsafe is banned even in the manifest: {f:?}");
    // 3. A crate-root pub use re-exposing a privileged type.
    let (_, f, _) = scan_source(
        "crates/kernel/src/lib.rs",
        "pub use erebor_hw::phys::PhysMemory;\n",
        WaiverPolicy::Refuse,
    );
    let leak: Vec<_> = f.iter().filter(|x| x.rule == "pub-leak").collect();
    assert_eq!(leak.len(), 1, "{f:?}");
    assert_eq!(leak[0].symbol, "PhysMemory");
    // Findings serialize with escaped JSON.
    let j = leak[0].json();
    assert!(j.contains("\"rule\":\"pub-leak\""));
    assert!(j.contains("\"symbol\":\"PhysMemory\""));
}

/// Waivers are refused by default: a `priv:allow` comment turns the
/// finding into `waiver-refused` instead of hiding it, and is counted so
/// CI can gate on zero.
#[test]
fn privilege_waivers_are_refused_by_default() {
    use erebor::eanalyze::privilege::{scan_source, WaiverPolicy};
    let src = "fn f(m: &mut M) { m.mem.zero_frame(f).ok(); } // priv:allow(priv-reach)\n";
    let (_, refused, waivers) = scan_source("crates/libos/src/bad.rs", src, WaiverPolicy::Refuse);
    assert!(!refused.is_empty());
    assert!(refused.iter().all(|x| x.rule == "waiver-refused"), "{refused:?}");
    assert!(waivers >= 1);
    // Honor mode (exploratory only) drops them but still counts.
    let (_, honored, waivers) = scan_source("crates/libos/src/bad.rs", src, WaiverPolicy::Honor);
    assert!(honored.is_empty(), "{honored:?}");
    assert!(waivers >= 1);
}

// ====================================================================
// The chaos campaign with auditor + race detector as invariants
// ====================================================================

/// The CI `--analyze` campaign: every case ends with a full state audit
/// and a happens-before pass over its MMU trace; any audit finding or
/// un-injected stale window is a violation. Honors `EREBOR_CHAOS_CASES`
/// (default 100).
#[test]
fn chaos_campaign_under_audit_and_race_invariants_is_clean() {
    let cases = std::env::var("EREBOR_CHAOS_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let report = erebor_chaos::run(&erebor_chaos::ChaosConfig {
        cases,
        ..erebor_chaos::ChaosConfig::default()
    });
    assert!(report.passed(), "{}", report.summary());
}

/// Every chaos outcome carries the analyze results, clean or not.
#[test]
fn case_outcome_carries_audit_and_race_results() {
    let cfg = erebor_chaos::ChaosConfig::default();
    let outcome = erebor_chaos::exec_case(&cfg, erebor_chaos::case_seed(cfg.seed, 0), &[4, 11, 25]);
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    assert!(outcome.audit_findings.is_empty(), "{:?}", outcome.audit_findings);
    assert!(
        outcome.race_findings.iter().all(|r| r.dropped),
        "{:?}",
        outcome.race_findings
    );
}
