//! The paper's security analysis (§8) as executable scenarios: claims
//! C1–C8, each exercised through the same hardware checks the real system
//! relies on.

use erebor::{Mode, Platform};
use erebor_core::boot::{boot_stage1, BootConfig, IDT_VA};
use erebor_core::config::ExecConfig;
use erebor_core::emc::{EmcError, EmcRequest};
use erebor_core::monitor::LoadError;
use erebor_core::policy;
use erebor_core::BootError;
use erebor_hw::cpu::Domain;
use erebor_hw::fault::{Fault, PfReason};
use erebor_hw::image::{Image, SectionKind};
use erebor_hw::insn::{encode, SensitiveClass};
use erebor_hw::layout::{self, direct_map};
use erebor_hw::regs::Msr;
use erebor_hw::{Frame, VirtAddr};
use erebor_kernel::image::{benign_kernel, malicious_kernel};
use erebor_workloads::hello::HelloWorld;

fn small_cfg() -> BootConfig {
    BootConfig {
        cores: 2,
        dram_bytes: 48 * 1024 * 1024,
        config: ExecConfig::new(Mode::Full),
        seed: 99,
        paravisor: false,
    }
}

// ====================================================================
// C1: the monitor loads first and refuses kernels containing sensitive
// instructions.
// ====================================================================

#[test]
fn c1_kernel_with_any_sensitive_instruction_rejected() {
    for class in SensitiveClass::ALL {
        let mut cvm = boot_stage1(small_cfg()).expect("stage1");
        let evil = malicious_kernel(1, class, 0x3000);
        let err = cvm.load_kernel(&evil).expect_err("must reject");
        assert!(
            matches!(err, BootError::Load(LoadError::Rejected(_))),
            "{class:?}: got {err}"
        );
    }
}

#[test]
fn c1_monitor_measured_before_kernel() {
    let cvm = boot_stage1(small_cfg()).expect("stage1");
    // MRTD covers exactly firmware+monitor — a client can verify it before
    // any kernel exists.
    let expect = erebor_tdx::attest::expected_mrtd(&[
        &cvm.firmware_image.measurement_bytes(),
        &cvm.monitor_image.measurement_bytes(),
    ]);
    assert_eq!(cvm.tdx.attest.mrtd(), expect);
}

#[test]
fn c1_sensitive_bytes_straddling_unaligned_offsets_rejected() {
    // The byte scan is offset-blind: hide wrmsr mid-"instruction".
    let mut cvm = boot_stage1(small_cfg()).expect("stage1");
    let benign = benign_kernel(1);
    let mut text = benign.sections[0].bytes.clone();
    let enc = encode(SensitiveClass::Wrmsr);
    // Place at an odd offset inside what scanning-by-instruction would
    // consider an operand.
    text[0x1001..0x1001 + enc.len()].copy_from_slice(&enc);
    let evil = Image::builder("evil")
        .section(".text", layout::KERNEL_BASE, SectionKind::Text, text)
        .entry(layout::KERNEL_BASE)
        .build();
    assert!(cvm.load_kernel(&evil).is_err());
}

// ====================================================================
// C2: the deprivileged kernel cannot insert + execute sensitive
// instructions (W⊕X, SMEP, validated dynamic code).
// ====================================================================

#[test]
fn c2_kernel_text_is_not_writable() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    // Through the kernel-text VA: read-only mapping.
    let err = p
        .cvm
        .machine
        .write_u64(0, erebor_kernel::entry::SYSCALL, 0x9090)
        .expect_err("text write must fault");
    assert!(matches!(err, Fault::PageFault { .. }), "{err}");
}

#[test]
fn c2_kernel_cannot_execute_sensitive_ops() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    // domain = Kernel, ring 0 — and still every Table 2 op is #UD because
    // the verified image contains none of them.
    assert!(matches!(
        p.cvm.machine.wrmsr(0, Msr::Pkrs, 0),
        Err(Fault::UndefinedInstruction(_))
    ));
    assert!(matches!(
        p.cvm.machine.write_cr4(0, 0),
        Err(Fault::UndefinedInstruction(_))
    ));
    assert!(matches!(
        p.cvm.machine.stac(0),
        Err(Fault::UndefinedInstruction(_))
    ));
    assert!(matches!(
        p.cvm.machine.lidt(0, VirtAddr(0x1000)),
        Err(Fault::UndefinedInstruction(_))
    ));
    assert!(matches!(
        p.cvm.machine.tdcall_guard(0),
        Err(Fault::UndefinedInstruction(_))
    ));
}

#[test]
fn c2_text_poke_with_sensitive_bytes_rejected() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let err = p
        .cvm
        .monitor
        .emc(
            &mut p.cvm.machine,
            &mut p.cvm.tdx,
            0,
            EmcRequest::TextPoke {
                offset: 0x2000,
                bytes: encode(SensitiveClass::Tdcall),
            },
        )
        .expect_err("sensitive patch must be rejected");
    assert!(matches!(err, EmcError::Denied(_)), "{err}");
    // A benign patch is fine.
    p.cvm
        .monitor
        .emc(
            &mut p.cvm.machine,
            &mut p.cvm.tdx,
            0,
            EmcRequest::TextPoke {
                offset: 0x2000,
                bytes: vec![0x90; 16],
            },
        )
        .expect("benign patch");
}

// ====================================================================
// C3: the kernel cannot touch monitor memory.
// ====================================================================

#[test]
fn c3_monitor_memory_inaccessible_to_kernel() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    // Monitor text via its VA.
    let err = p
        .cvm
        .machine
        .read_u64(0, layout::MONITOR_BASE)
        .expect_err("read");
    assert!(err.is_pf(PfReason::PksAccessDisabled));
    // Monitor frames via the direct map (frame 100 is in the monitor
    // region of the boot layout).
    let err = p
        .cvm
        .machine
        .write_u64(0, direct_map(Frame(100).base()), 0xdead)
        .expect_err("write");
    assert!(err.is_pf(PfReason::PksAccessDisabled));
}

#[test]
fn c3_idt_read_only_for_kernel() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    // Reading the IDT is fine; redirecting a vector is not.
    p.cvm.machine.read_u64(0, IDT_VA).expect("IDT readable");
    let err = p
        .cvm
        .machine
        .write_u64(0, IDT_VA, erebor_kernel::entry::TIMER.0)
        .expect_err("IDT write must fault");
    assert!(err.is_pf(PfReason::PksWriteDisabled));
}

#[test]
fn c3_device_dma_cannot_reach_monitor_or_kernel() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    // All private frames are DMA-unreachable; only the device window may
    // ever become shared.
    let monitor_frame = Frame(100);
    let err = p
        .cvm
        .host_dma_write(monitor_frame, b"dma inject")
        .expect_err("DMA to private memory must fail");
    let _ = err;
    // And the kernel cannot convert a monitor frame to shared.
    let res = p.cvm.monitor.emc(
        &mut p.cvm.machine,
        &mut p.cvm.tdx,
        0,
        EmcRequest::ConvertShared {
            frame: monitor_frame,
            shared: true,
        },
    );
    assert!(matches!(res, Err(EmcError::Denied(_))), "{res:?}");
}

// ====================================================================
// C4: EMC gates are the only entry; interrupts revoke permissions.
// ====================================================================

#[test]
fn c4_indirect_jump_into_monitor_body_is_cp() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    // The entry gate works...
    let pad = p.cvm.monitor.gate.entry;
    p.cvm.machine.indirect_branch(0, pad).expect("gate entry");
    // ...and so do the hardware interposer pads (like Linux's IBT
    // idtentry stubs, they begin with endbr64 because interrupt and
    // syscall delivery are tracked transfers)...
    for off in [0x100u64, 0x200] {
        p.cvm.machine.cpus[0].domain = Domain::Kernel;
        p.cvm.machine.indirect_branch(0, pad.add(off)).expect("interposer pad");
    }
    // ...but any other monitor address is not a landing pad.
    for off in [4u64, 0x40, 0x104, 0x204, 0x1000] {
        p.cvm.machine.cpus[0].domain = Domain::Kernel;
        let err = p
            .cvm
            .machine
            .indirect_branch(0, pad.add(off))
            .expect_err("must #CP");
        assert!(
            matches!(err, Fault::ControlProtection(_)),
            "+{off:#x}: {err}"
        );
    }
}

#[test]
fn c4_interrupt_during_emc_runs_kernel_without_monitor_access() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let monitor = &mut p.cvm.monitor;
    // Enter the gate (as an EMC would).
    monitor.gate.enter(&mut p.cvm.machine, 0).expect("enter");
    assert_eq!(p.cvm.machine.cpus[0].pkrs(), policy::monitor_mode_pkrs());
    // An IPI preempts the EMC; the #INT gate revokes permissions.
    monitor
        .gate
        .interrupt_entry(&mut p.cvm.machine, 0)
        .expect("int gate");
    p.cvm.machine.cpus[0].domain = Domain::Kernel;
    let err = p
        .cvm
        .machine
        .read_u64(0, layout::MONITOR_BASE)
        .expect_err("blocked");
    assert!(err.is_pf(PfReason::PksAccessDisabled));
    // Returning restores them for the preempted EMC.
    p.cvm.machine.cpus[0].domain = Domain::Monitor;
    monitor
        .gate
        .interrupt_return(&mut p.cvm.machine, 0)
        .expect("int return");
    assert_eq!(p.cvm.machine.cpus[0].pkrs(), policy::monitor_mode_pkrs());
    monitor
        .gate
        .exit(&mut p.cvm.machine, 0, layout::KERNEL_BASE)
        .expect("exit");
}

#[test]
fn c4_kernel_cannot_write_ptes_directly() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let root = p.cvm.monitor.kernel_root;
    // Any PTE slot of any table: write-protected by PK_PTP.
    let slot = erebor_hw::paging::pte_slot(root, VirtAddr(0x40_0000), 4);
    let err = p
        .cvm
        .machine
        .write_u64(0, direct_map(slot), 0xdead_beef)
        .expect_err("PTE write must fault");
    assert!(err.is_pf(PfReason::PksWriteDisabled));
}

#[test]
fn c4_emc_policy_denies_pinned_bit_changes() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    // CR0 without WP, CR4 without SMEP/SMAP/PKS: denied.
    for (which, value) in [(0u8, 0u64), (4, 0)] {
        let err = p
            .cvm
            .monitor
            .emc(
                &mut p.cvm.machine,
                &mut p.cvm.tdx,
                0,
                EmcRequest::WriteCr { which, value },
            )
            .expect_err("pinned bits");
        assert!(matches!(err, EmcError::Denied(_)), "{err}");
    }
    // Monitor-private MSRs: denied.
    for msr in [Msr::Pkrs, Msr::SCet, Msr::Pl0Ssp] {
        let err = p
            .cvm
            .monitor
            .emc(
                &mut p.cvm.machine,
                &mut p.cvm.tdx,
                0,
                EmcRequest::WrMsr { msr, value: 0 },
            )
            .expect_err("private msr");
        assert!(matches!(err, EmcError::Denied(_)), "{err}");
    }
    // LSTAR redirect outside kernel text: denied.
    let err = p
        .cvm
        .monitor
        .emc(
            &mut p.cvm.machine,
            &mut p.cvm.tdx,
            0,
            EmcRequest::WrMsr {
                msr: Msr::Lstar,
                value: layout::MONITOR_BASE.0,
            },
        )
        .expect_err("lstar hijack");
    assert!(matches!(err, EmcError::Denied(_)));
}

// ====================================================================
// C5/C6/C7/C8 are covered end-to-end in tests/attacks.rs and tests/e2e.rs;
// here: the mapping-policy corners.
// ====================================================================

#[test]
fn c6_confined_frames_cannot_be_double_mapped() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let svc = p
        .deploy(Box::new(HelloWorld::default()), 4096)
        .expect("deploy");
    let sandbox = &p.cvm.monitor.sandboxes[&svc.sandbox.0];
    let (_va, frame) = sandbox.confined[0];
    // The kernel asks to map the confined frame into another process.
    let victim_root = p.cvm.monitor.kernel_root;
    p.enter_kernel_mode();
    let err = p
        .cvm
        .monitor
        .emc(
            &mut p.cvm.machine,
            &mut p.cvm.tdx,
            0,
            EmcRequest::MapUserPage {
                root: victim_root,
                va: VirtAddr(0x6000_0000),
                frame: Some(frame),
                writable: false,
                executable: false,
            },
        )
        .expect_err("double map must be denied");
    assert!(matches!(err, EmcError::Denied(_)), "{err}");
    drop(svc);
}

#[test]
fn c6_kernel_cannot_read_confined_memory_via_direct_map() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let svc = p
        .deploy(Box::new(HelloWorld::default()), 4096)
        .expect("deploy");
    let (_va, frame) = p.cvm.monitor.sandboxes[&svc.sandbox.0].confined[0];
    p.enter_kernel_mode();
    let err = p
        .cvm
        .machine
        .read_u64(0, direct_map(frame.base()))
        .expect_err("confined direct-map read must fault");
    assert!(err.is_pf(PfReason::PksAccessDisabled), "{err}");
}

#[test]
fn c6_user_copy_into_confined_memory_denied() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let svc = p
        .deploy(Box::new(HelloWorld::default()), 4096)
        .expect("deploy");
    let sandbox = &p.cvm.monitor.sandboxes[&svc.sandbox.0];
    let (va, _) = sandbox.confined[0];
    let root = sandbox.root;
    p.enter_kernel_mode();
    // The kernel tries to use the monitor's own user-copy service to read
    // client data out of the sandbox.
    let err = p
        .cvm
        .monitor
        .emc(
            &mut p.cvm.machine,
            &mut p.cvm.tdx,
            0,
            EmcRequest::UserCopy {
                dir: erebor_core::emc::CopyDir::FromUser,
                root,
                user_va: va,
                bytes: vec![0u8; 64],
            },
        )
        .expect_err("copy from confined must be denied");
    assert!(matches!(err, EmcError::Denied(_)), "{err}");
}

#[test]
fn c7_budget_limits_confined_declarations() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    // Budget of 4 pages; the LibOS loader needs more — deploy fails.
    let err = p
        .deploy(Box::new(HelloWorld::default()), 4)
        .expect_err("budget");
    let _ = err;
}

#[test]
fn c8_registers_scrubbed_at_sandbox_interrupts() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let svc = p
        .deploy(Box::new(HelloWorld::default()), 4096)
        .expect("deploy");
    // Simulate the sandbox running with secrets in registers.
    p.cvm.machine.cpus[0].ctx.gpr = [0x5ec2e7; 16];
    let saved = p.cvm.machine.cpus[0].ctx;
    let decision = p.cvm.monitor.on_interrupt(
        &mut p.cvm.machine,
        0,
        Some(svc.sandbox),
        erebor_hw::idt::vector::TIMER,
        saved,
    );
    assert!(matches!(
        decision,
        erebor_core::sandbox::ExitDecision::ForwardToKernel { .. }
    ));
    // What the kernel sees: zeros.
    assert!(
        p.cvm.machine.cpus[0].ctx.is_scrubbed(),
        "registers leaked to OS"
    );
    // Resume restores the true context.
    p.cvm
        .monitor
        .resume_sandbox(&mut p.cvm.machine, 0, svc.sandbox)
        .expect("resume");
    assert_eq!(p.cvm.machine.cpus[0].ctx.gpr[0], 0x5ec2e7);
}
