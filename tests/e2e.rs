//! End-to-end integration: boot → deploy → attest → serve (artifact E2/E3
//! flows), across configurations.

use erebor::{Mode, Platform};
use erebor_core::sandbox::SandboxState;
use erebor_workloads::hello::HelloWorld;
use erebor_workloads::llm::LlmInference;
use erebor_workloads::SandboxedWorkload;

#[test]
fn helloworld_end_to_end() {
    let mut platform = Platform::boot(Mode::Full).expect("boot");
    let mut svc = platform
        .deploy(Box::new(HelloWorld { len: 10 }), 4096)
        .expect("deploy");
    let mut client = platform.connect_client(&svc, [7u8; 32]).expect("attest");
    let reply = platform
        .serve_request(&mut svc, &mut client, b"go")
        .expect("request");
    assert_eq!(
        reply,
        b"AAAAAAAAAA".to_vec(),
        "artifact E2 expects 0x41..41"
    );
}

#[test]
fn sandbox_transitions_to_data_loaded() {
    let mut platform = Platform::boot(Mode::Full).expect("boot");
    let mut svc = platform
        .deploy(Box::new(HelloWorld::default()), 4096)
        .expect("deploy");
    assert_eq!(
        platform.cvm.monitor.sandboxes[&svc.sandbox.0].state,
        SandboxState::Setup
    );
    let mut client = platform.connect_client(&svc, [9u8; 32]).expect("attest");
    platform
        .serve_request(&mut svc, &mut client, b"x")
        .expect("request");
    assert_eq!(
        platform.cvm.monitor.sandboxes[&svc.sandbox.0].state,
        SandboxState::DataLoaded
    );
}

#[test]
fn proxy_sees_only_ciphertext() {
    let secret = b"social security 078-05-1120";
    let mut platform = Platform::boot(Mode::Full).expect("boot");
    let mut svc = platform
        .deploy(Box::new(HelloWorld::default()), 4096)
        .expect("deploy");
    let mut client = platform.connect_client(&svc, [3u8; 32]).expect("attest");
    let reply = platform
        .serve_request(&mut svc, &mut client, secret)
        .expect("request");
    assert!(!reply.is_empty());
    // Everything the proxy/host/kernel observed on the wire.
    assert!(
        !platform.cvm.tdx.host.observed_contains(secret),
        "client plaintext leaked to the untrusted proxy path"
    );
    assert!(
        !platform.cvm.tdx.host.observed_contains(&reply),
        "result plaintext leaked to the untrusted proxy path"
    );
}

#[test]
fn llm_inference_end_to_end() {
    let mut platform = Platform::boot(Mode::Full).expect("boot");
    let mut svc = platform
        .deploy(
            Box::new(SandboxedWorkload::new(LlmInference::default())),
            8192,
        )
        .expect("deploy");
    let mut client = platform.connect_client(&svc, [5u8; 32]).expect("attest");
    let reply = platform
        .serve_request(&mut svc, &mut client, b"gen=8;translate this text")
        .expect("request");
    let text = String::from_utf8(reply).expect("utf8 tokens");
    assert_eq!(text.split(' ').count(), 8, "8 generated tokens: {text}");
}

#[test]
fn multiple_requests_same_session() {
    let mut platform = Platform::boot(Mode::Full).expect("boot");
    let mut svc = platform
        .deploy(Box::new(HelloWorld { len: 4 }), 4096)
        .expect("deploy");
    let mut client = platform.connect_client(&svc, [1u8; 32]).expect("attest");
    for _ in 0..3 {
        let reply = platform
            .serve_request(&mut svc, &mut client, b"again")
            .expect("request");
        assert_eq!(reply, b"AAAA".to_vec());
    }
}

#[test]
fn output_records_are_padded_to_quantum() {
    let mut platform = Platform::boot(Mode::Full).expect("boot");
    let quantum = platform.cvm.monitor.cfg.output_pad_quantum;
    let mut short = platform
        .deploy(Box::new(HelloWorld { len: 3 }), 4096)
        .expect("deploy");
    let mut long = platform
        .deploy(Box::new(HelloWorld { len: 900 }), 4096)
        .expect("deploy");
    let mut c1 = platform.connect_client(&short, [1u8; 32]).expect("attest");
    let mut c2 = platform.connect_client(&long, [2u8; 32]).expect("attest");

    platform.client_send(&short, &mut c1, b"r").expect("send");
    let pid = short.pid;
    let req = short.os.input(&mut platform.proc(pid)).expect("input");
    let res = short
        .program
        .serve(&mut short.os, &mut platform.proc(pid), &req)
        .expect("serve");
    short
        .os
        .output(&mut platform.proc(pid), &res)
        .expect("output");
    let rec1 = platform
        .cvm
        .monitor
        .fetch_output(short.sandbox)
        .expect("record");

    platform.client_send(&long, &mut c2, b"r").expect("send");
    let pid = long.pid;
    let req = long.os.input(&mut platform.proc(pid)).expect("input");
    let res = long
        .program
        .serve(&mut long.os, &mut platform.proc(pid), &req)
        .expect("serve");
    long.os
        .output(&mut platform.proc(pid), &res)
        .expect("output");
    let rec2 = platform
        .cvm
        .monitor
        .fetch_output(long.sandbox)
        .expect("record");

    // 3-byte and 900-byte outputs are indistinguishable by record size
    // (both pad to one quantum + AEAD tag).
    assert_eq!(rec1.len(), rec2.len(), "padding must hide output length");
    assert_eq!(rec1.len(), quantum + 16);
}
