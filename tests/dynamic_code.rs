//! Dynamic kernel code (§5.2/§7): loadable modules and eBPF go through the
//! monitor's verifier; user interrupts are hardware-gated by the target
//! table the monitor controls.

use erebor::{Mode, Platform};
use erebor_core::emc::{EmcError, EmcRequest};
use erebor_hw::fault::{Fault, PfReason};
use erebor_hw::insn::{encode, SensitiveClass};
use erebor_hw::layout::KERNEL_BASE;
use erebor_hw::regs::Msr;
use erebor_hw::VirtAddr;

const MODULE_VA: VirtAddr = VirtAddr(KERNEL_BASE.0 + 0x0400_0000);

#[test]
fn benign_module_loads_and_is_wx_protected() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let code = vec![0x90u8; 6000]; // two pages of NOPs
    p.cvm
        .monitor
        .emc(
            &mut p.cvm.machine,
            &mut p.cvm.tdx,
            0,
            EmcRequest::LoadKernelModule {
                code,
                va: MODULE_VA,
            },
        )
        .expect("benign module loads");
    // Executable for the kernel...
    p.cvm
        .machine
        .fetch_check(0, MODULE_VA)
        .expect("module text executable");
    // ...but W⊕X: not writable (kernel-text key).
    let err = p
        .cvm
        .machine
        .write_u64(0, MODULE_VA, 0x0f30)
        .expect_err("no self-patch");
    assert!(
        err.is_pf(PfReason::PksWriteDisabled) || err.is_pf(PfReason::NotWritable),
        "{err}"
    );
}

#[test]
fn module_with_sensitive_code_rejected() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    for class in SensitiveClass::ALL {
        let mut code = vec![0x90u8; 512];
        let enc = encode(class);
        code[100..100 + enc.len()].copy_from_slice(&enc);
        let err = p
            .cvm
            .monitor
            .emc(
                &mut p.cvm.machine,
                &mut p.cvm.tdx,
                0,
                EmcRequest::LoadKernelModule {
                    code,
                    va: MODULE_VA,
                },
            )
            .expect_err("sensitive module must be rejected");
        assert!(matches!(err, EmcError::Denied(_)), "{class:?}: {err}");
    }
}

#[test]
fn module_cannot_land_in_monitor_or_user_space() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    for va in [erebor_hw::layout::MONITOR_BASE, VirtAddr(0x40_0000)] {
        let err = p
            .cvm
            .monitor
            .emc(
                &mut p.cvm.machine,
                &mut p.cvm.tdx,
                0,
                EmcRequest::LoadKernelModule {
                    code: vec![0x90; 64],
                    va,
                },
            )
            .expect_err("bad load address");
        assert!(matches!(err, EmcError::BadRequest(_)), "{va}: {err}");
    }
}

#[test]
fn senduipi_blocked_after_data_install() {
    // AV3: the sandbox tries user-mode interrupts to signal a colluding
    // process. The monitor invalidated IA32_UINTR_TT at data install, so
    // the instruction faults.
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let mut svc = p
        .deploy(
            Box::new(erebor_workloads::hello::HelloWorld::default()),
            4096,
        )
        .expect("deploy");
    let mut client = p.connect_client(&svc, [6; 32]).expect("attest");
    p.client_send(&svc, &mut client, b"secret").expect("send");
    {
        let pid = svc.pid;
        svc.os.input(&mut p.proc(pid)).expect("input");
    }
    let err = p.cvm.machine.senduipi(0).expect_err("must be blocked");
    assert!(matches!(err, Fault::GeneralProtection(_)));
}

#[test]
fn senduipi_works_with_valid_target_table() {
    // Native processes may use user interrupts when the kernel set up a
    // valid target table.
    let mut p = Platform::boot(Mode::Native).expect("boot");
    p.cvm
        .machine
        .wrmsr(0, Msr::UintrTt, 0xdead_b001 | 1)
        .expect("wrmsr");
    p.cvm.machine.senduipi(0).expect("valid TT sends");
}
