//! Differential equivalence suite for the batched permission-decision
//! fast path: for any access program, a machine (or whole platform)
//! running with the decision cache enabled and one with it disabled must
//! produce byte-identical snapshots, traces, cycle attribution and
//! per-batch outcomes. The cache is a pure memoization — any observable
//! divergence is a soundness bug, not a tuning knob.
//!
//! Three layers:
//!  - a machine-level property test over a rich op alphabet (probes,
//!    loads, stores, `wrmsr`, CR writes, `invlpg`, `stac`/`clac`, raw
//!    register/mode pokes, flushes, cross-core shootdowns);
//!  - a platform-level property test across *all* execution modes,
//!    comparing [`erebor::Snapshot`], `trace_json` and attribution;
//!  - deterministic regressions: a fixed program across every mode,
//!    epoch rollover, and invalidation-during-batch.
//!
//! Reproducible via `EREBOR_PT_SEED` like every other property test.

use erebor::eanalyze::{audit, MachineView};
use erebor::ehw::cpu::{Domain, Machine};
use erebor::ehw::fault::AccessKind;
use erebor::ehw::paging::{self, Pte, PteFlags};
use erebor::ehw::regs::{Cr0, Cr4, Msr};
use erebor::ehw::{BatchOp, Frame, VirtAddr};
use erebor::{Mode, Platform};
use erebor_testkit::collection;
use erebor_testkit::prelude::*;

// ====================================================================
// Machine-level differential property
// ====================================================================

/// Mapped VA pool: three consecutive kernel pages, one page 64 pages
/// later (same direct-mapped TLB/decision slot as the first — the
/// conflict-eviction case), and one that stays unmapped.
const KVAS: [u64; 5] = [
    0xffff_8000_0000_0000,
    0xffff_8000_0000_1000,
    0xffff_8000_0000_2000,
    0xffff_8000_0004_0000,
    0xffff_8000_0100_0000,
];

fn arb_flags() -> impl Strategy<Value = PteFlags> {
    (any::<bool>(), any::<bool>(), any::<bool>(), 0u8..4).prop_map(
        |(writable, dirty, nx, pkey)| PteFlags {
            present: true,
            writable,
            user: false,
            accessed: false,
            dirty,
            nx,
            pkey,
        },
    )
}

fn build(flags: &[PteFlags]) -> (Machine, Frame) {
    let mut m = Machine::new(2, 32 * 1024 * 1024);
    let root = m.mem.alloc_frame().unwrap();
    for (va, f) in KVAS.iter().take(4).zip(flags) {
        let frame = m.mem.alloc_frame().unwrap();
        paging::map_raw(
            &mut m.mem,
            root,
            VirtAddr(*va),
            Pte::encode(frame, *f),
            paging::intermediate_for(*f),
        )
        .unwrap();
    }
    for c in &mut m.cpus {
        c.cr3 = root;
        c.cr0 = Cr0(Cr0::WP | Cr0::PG);
        c.cr4 = Cr4(Cr4::SMEP | Cr4::SMAP | Cr4::PKS);
        c.domain = Domain::Monitor;
    }
    m.allow_sensitive(Domain::Monitor);
    m.mmu_trace = true;
    (m, root)
}

/// One batch op decoded from raw bytes. The alphabet covers every
/// fallback trigger: register writes through the architectural methods,
/// in-batch invalidation, AC flips, and cross-page `u64` accesses (via
/// unaligned offsets).
fn decode_op(sel: u8, va_idx: u8, seed: u32, root: Frame) -> BatchOp {
    let base = KVAS[va_idx as usize % KVAS.len()];
    let va = VirtAddr(base + u64::from(seed) % 4096);
    match sel % 13 {
        0..=3 => BatchOp::Probe {
            va,
            kind: [AccessKind::Read, AccessKind::Write, AccessKind::Execute][seed as usize % 3],
        },
        4 | 5 => BatchOp::ReadU64 { va },
        6 | 7 => BatchOp::WriteU64 {
            va,
            v: u64::from(seed) ^ 0xdead_beef,
        },
        8 => BatchOp::Wrmsr {
            msr: Msr::Pkrs,
            v: u64::from(seed) & 0xffff,
        },
        9 => BatchOp::WriteCr0 {
            v: Cr0::PG | if seed & 1 == 0 { Cr0::WP } else { 0 },
        },
        10 => BatchOp::WriteCr4 {
            v: [
                Cr4::SMEP | Cr4::SMAP | Cr4::PKS,
                Cr4::SMEP | Cr4::PKS,
                Cr4::SMAP,
                Cr4::PKS,
            ][seed as usize % 4],
        },
        11 => BatchOp::Invlpg {
            va: VirtAddr(base),
        },
        12 if seed & 1 == 0 => BatchOp::Stac,
        12 => BatchOp::Clac,
        _ => BatchOp::WriteCr3 { root },
    }
}

/// Apply one between-batch maintenance/perturbation op to a machine —
/// including *raw* register and mode pokes that bypass every `Machine`
/// method (the context-comparison catch case).
fn meta(m: &mut Machine, sel: u8, seed: u32) {
    let va = VirtAddr(KVAS[seed as usize % KVAS.len()]);
    match sel % 5 {
        0 => {}
        1 => m.flush_tlb(0),
        2 => {
            let _ = m.invalidate_page(0, va);
        }
        3 => {
            let _ = m.tlb_shootdown(0, va);
        }
        _ => {
            // Raw PKRS poke through the MSR file would need the msr map;
            // poke CR4 instead — same class of bypass.
            let c = &mut m.cpus[0];
            c.cr4 = Cr4(c.cr4.0 ^ Cr4::SMAP);
        }
    }
}

fn assert_machines_equal(on: &Machine, off: &Machine, root: Frame) -> Result<(), erebor_testkit::prop::CaseError> {
    prop_assert_eq!(on.cycles.total(), off.cycles.total(), "cycle totals diverged");
    prop_assert_eq!(on.stats, off.stats, "HwStats diverged");
    prop_assert_eq!(
        on.cycles.attribution().json(),
        off.cycles.attribution().json(),
        "attribution diverged"
    );
    prop_assert_eq!(on.trace.json(), off.trace.json(), "trace diverged");
    for (i, (a, b)) in on.tlbs.iter().zip(off.tlbs.iter()).enumerate() {
        prop_assert_eq!(a.occupancy(), b.occupancy(), "TLB occupancy diverged on cpu {}", i);
    }
    for va in KVAS {
        let l_on = paging::lookup_raw(&on.mem, root, VirtAddr(va)).unwrap();
        let l_off = paging::lookup_raw(&off.mem, root, VirtAddr(va)).unwrap();
        prop_assert_eq!(l_on, l_off, "PTE state (A/D bits) diverged at {:#x}", va);
    }
    Ok(())
}

proptest! {
    #[test]
    fn machine_fastpath_on_and_off_evolve_identically(
        flags in collection::vec(arb_flags(), 4..=4),
        batches in collection::vec(
            (
                any::<u8>(),
                any::<u32>(),
                collection::vec((any::<u8>(), any::<u8>(), any::<u32>()), 1..12),
            ),
            1..16,
        ),
    ) {
        let (mut on, root) = build(&flags);
        let (mut off, _) = build(&flags);
        off.fastpath_enabled = false;
        prop_assert!(on.fastpath_enabled);

        for (i, (meta_sel, meta_seed, ops)) in batches.iter().enumerate() {
            let prog: Vec<BatchOp> = ops
                .iter()
                .map(|&(sel, va_idx, seed)| decode_op(sel, va_idx, seed, root))
                .collect();
            let a = on.run_batch(0, &prog);
            let b = off.run_batch(0, &prog);
            prop_assert_eq!(&a, &b, "batch {} outcome diverged: {:?}", i, prog);
            meta(&mut on, *meta_sel, *meta_seed);
            meta(&mut off, *meta_sel, *meta_seed);
        }

        assert_machines_equal(&on, &off, root)?;
        // The disabled machine must never have consulted the cache, and
        // the enabled one must leave a cache the auditor (C9) accepts.
        prop_assert_eq!(off.fastpath.decision_hits, 0);
        prop_assert_eq!(off.decision_cache(0).occupancy(), 0);
        let view = MachineView {
            machine: &on,
            roots: &[root],
            gate: None,
            monitor: None,
            sept: None,
        };
        let report = audit::audit(&view);
        prop_assert!(
            report.by_check("decision-consistency").is_empty(),
            "stale decision survived the program: {}",
            report.json()
        );
    }

    // Same property with MMU tracing off: this is the deferred-side-
    // effect fast loop (hit charges accumulate locally and flush at
    // batch boundaries), and the totals must still commute exactly.
    #[test]
    fn machine_fastpath_equivalence_with_deferred_effects(
        flags in collection::vec(arb_flags(), 4..=4),
        batches in collection::vec(
            (
                any::<u8>(),
                any::<u32>(),
                collection::vec((any::<u8>(), any::<u8>(), any::<u32>()), 1..24),
            ),
            1..10,
        ),
    ) {
        let (mut on, root) = build(&flags);
        let (mut off, _) = build(&flags);
        on.mmu_trace = false;
        off.mmu_trace = false;
        off.fastpath_enabled = false;

        for (meta_sel, meta_seed, ops) in &batches {
            let prog: Vec<BatchOp> = ops
                .iter()
                .map(|&(sel, va_idx, seed)| decode_op(sel, va_idx, seed, root))
                .collect();
            let a = on.run_batch(0, &prog);
            let b = off.run_batch(0, &prog);
            prop_assert_eq!(&a, &b);
            meta(&mut on, *meta_sel, *meta_seed);
            meta(&mut off, *meta_sel, *meta_seed);
        }
        assert_machines_equal(&on, &off, root)?;
    }
}

// ====================================================================
// Platform-level differential property (all execution modes)
// ====================================================================

/// Scratch pages mapped into the live kernel root, clear of anything
/// boot maps. The fifth aliases the first's cache slot (64 pages away).
const SCRATCH: u64 = 0xffff_8000_4000_0000;

fn scratch_vas() -> [VirtAddr; 5] {
    [
        VirtAddr(SCRATCH),
        VirtAddr(SCRATCH + 0x1000),
        VirtAddr(SCRATCH + 0x2000),
        VirtAddr(SCRATCH + 0x3000),
        VirtAddr(SCRATCH + 64 * 0x1000),
    ]
}

fn scratch_platform(mode: Mode, fast: bool) -> Platform {
    let mut p = Platform::boot(mode).expect("boot");
    p.set_fastpath(fast);
    p.cvm.machine.mmu_trace = true;
    let root = p.cvm.machine.cpus[0].cr3;
    let flags = PteFlags::kernel_rw(0);
    for va in scratch_vas() {
        let frame = p.cvm.machine.mem.alloc_frame().expect("frame");
        paging::map_raw(
            &mut p.cvm.machine.mem,
            root,
            va,
            Pte::encode(frame, flags),
            paging::intermediate_for(flags),
        )
        .expect("map scratch");
    }
    p.enter_kernel_mode();
    p
}

/// Platform-level access alphabet: probes, aligned and unaligned `u64`
/// loads/stores over the scratch pool plus one unmapped page. Register
/// writes stay out — on deprivileged modes they all #GP at op 0, which
/// would starve the program; the machine-level property covers them.
fn decode_platform_op(sel: u8, va_idx: u8, seed: u32) -> BatchOp {
    let pool = scratch_vas();
    let base = if va_idx as usize % 8 == 7 {
        SCRATCH + 0x100_0000 // unmapped: deterministic fault coverage
    } else {
        pool[va_idx as usize % pool.len()].0
    };
    let va = VirtAddr(base + u64::from(seed) % 4096);
    match sel % 6 {
        0 | 1 => BatchOp::Probe {
            va,
            kind: [AccessKind::Read, AccessKind::Write][seed as usize % 2],
        },
        2 | 3 => BatchOp::ReadU64 { va },
        4 => BatchOp::WriteU64 {
            va,
            v: u64::from(seed).wrapping_mul(0x9e37_79b9),
        },
        _ => BatchOp::WriteU64 {
            va: VirtAddr(base),
            v: u64::from(seed),
        },
    }
}

/// A platform-level program: per batch, a between-batch maintenance
/// selector plus the encoded `(sel, va_idx, seed)` op tuples.
type PlatformProgram = Vec<(u8, Vec<(u8, u8, u32)>)>;

fn run_platform_program(
    p: &mut Platform,
    batches: &PlatformProgram,
) -> Vec<erebor::ehw::BatchOutcome> {
    let mut outs = Vec::new();
    for (meta_sel, ops) in batches {
        let prog: Vec<BatchOp> = ops
            .iter()
            .map(|&(sel, va_idx, seed)| decode_platform_op(sel, va_idx, seed))
            .collect();
        outs.push(p.run_batch(&prog));
        match meta_sel % 4 {
            0 => {}
            1 => p.cvm.machine.flush_tlb(0),
            2 => {
                // Maintenance runs from the monitor's domain (on
                // deprivileged modes the kernel may not issue invlpg).
                let saved = p.cvm.machine.cpus[0].domain;
                p.cvm.machine.cpus[0].domain = Domain::Monitor;
                let _ = p.cvm.machine.invalidate_page(0, scratch_vas()[0]);
                p.cvm.machine.cpus[0].domain = saved;
            }
            _ => {
                let saved = p.cvm.machine.cpus[0].domain;
                p.cvm.machine.cpus[0].domain = Domain::Monitor;
                let _ = p
                    .cvm
                    .machine
                    .tlb_shootdown(0, scratch_vas()[*meta_sel as usize % 5]);
                p.cvm.machine.cpus[0].domain = saved;
            }
        }
    }
    outs
}

fn assert_platforms_equal(on: &Platform, off: &Platform) -> Result<(), erebor_testkit::prop::CaseError> {
    prop_assert_eq!(
        format!("{:?}", on.snapshot()),
        format!("{:?}", off.snapshot()),
        "snapshot diverged"
    );
    prop_assert_eq!(on.trace_json(), off.trace_json(), "trace JSON diverged");
    prop_assert_eq!(
        on.cvm.machine.cycles.attribution().json(),
        off.cvm.machine.cycles.attribution().json(),
        "attribution buckets diverged"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn platform_fastpath_equivalence_across_modes(
        mode_sel in any::<u8>(),
        batches in collection::vec(
            (any::<u8>(), collection::vec((any::<u8>(), any::<u8>(), any::<u32>()), 1..10)),
            1..12,
        ),
    ) {
        let mode = Mode::ALL[mode_sel as usize % Mode::ALL.len()];
        let mut on = scratch_platform(mode, true);
        let mut off = scratch_platform(mode, false);
        let outs_on = run_platform_program(&mut on, &batches);
        let outs_off = run_platform_program(&mut off, &batches);
        prop_assert_eq!(outs_on, outs_off, "batch outcomes diverged in {:?}", mode);
        assert_platforms_equal(&on, &off)?;
        prop_assert_eq!(off.fastpath_stats().decision_hits, 0);
    }
}

// ====================================================================
// Deterministic regressions
// ====================================================================

/// A fixed paging-heavy program: two warm passes over the pool, stores
/// for dirty promotion, a conflict-slot alternation, an in-batch
/// invalidation, and a faulting access to an unmapped page.
fn fixed_program() -> PlatformProgram {
    let mut batches = Vec::new();
    for round in 0u32..6 {
        let mut ops = Vec::new();
        for i in 0u8..5 {
            ops.push((2, i, round * 8)); // ReadU64 over the pool
            ops.push((4, i, round * 8 + 1)); // WriteU64 (dirty promotion)
            ops.push((0, i, 0)); // Probe read
        }
        ops.push((2, 7, 0)); // unmapped: deterministic fault
        batches.push(((round % 4) as u8, ops));
    }
    batches
}

/// The acceptance claim: the differential suite is byte-identical across
/// every platform mode (≥3 required; all 5 run) on a fixed program, and
/// the fast run actually exercised the cache.
#[test]
fn fixed_program_identical_across_all_modes() {
    for mode in Mode::ALL {
        let mut on = scratch_platform(mode, true);
        let mut off = scratch_platform(mode, false);
        let batches = fixed_program();
        let outs_on = run_platform_program(&mut on, &batches);
        let outs_off = run_platform_program(&mut off, &batches);
        assert_eq!(outs_on, outs_off, "outcomes diverged in {mode:?}");
        assert_eq!(
            format!("{:?}", on.snapshot()),
            format!("{:?}", off.snapshot()),
            "snapshot diverged in {mode:?}"
        );
        assert_eq!(on.trace_json(), off.trace_json(), "trace diverged in {mode:?}");
        let fp = on.fastpath_stats();
        assert!(fp.decision_hits > 0, "{mode:?}: cache never hit: {fp:?}");
        assert_eq!(off.fastpath_stats().decision_hits, 0);
        // The post-run audit (including C9 over the live caches) is clean.
        let report = on.audit();
        assert!(report.is_clean(), "{mode:?}: {}", report.json());
    }
}

/// Epoch rollover: pin the epoch counter at `u64::MAX`, force a wrap via
/// a flush, and verify invalidation still bites and both runs agree —
/// the cache compares epochs for equality, so wrapping to an old
/// numerical value must not revive anything.
#[test]
fn epoch_rollover_regression() {
    let mut on = scratch_platform(Mode::Full, true);
    let mut off = scratch_platform(Mode::Full, false);
    on.cvm.machine.force_mmu_epoch(u64::MAX);
    off.cvm.machine.force_mmu_epoch(u64::MAX);
    let batches = fixed_program();
    let outs_on = run_platform_program(&mut on, &batches);
    let outs_off = run_platform_program(&mut off, &batches);
    assert_eq!(outs_on, outs_off);
    assert_eq!(
        format!("{:?}", on.snapshot()),
        format!("{:?}", off.snapshot())
    );
    assert_eq!(on.trace_json(), off.trace_json());
    assert!(
        on.cvm.machine.mmu_epoch() < u64::MAX,
        "the fixed program's flushes wrapped the epoch"
    );
    assert!(on.fastpath_stats().decision_hits > 0);
    assert!(on.audit().is_clean());
}

/// Invalidation during a batch: an `invlpg` between two reads of the
/// same page forces the second read back to the slow path (re-walk), on
/// both machines identically.
#[test]
fn invalidation_during_batch_regression() {
    let mut on = scratch_platform(Mode::Full, true);
    let mut off = scratch_platform(Mode::Full, false);
    let va = scratch_vas()[0];
    // invlpg from the kernel domain would #GP on Full; run the batch
    // from the monitor's.
    for p in [&mut on, &mut off] {
        p.cvm.machine.cpus[0].domain = Domain::Monitor;
    }
    let prog = [
        BatchOp::ReadU64 { va },
        BatchOp::ReadU64 { va }, // decision hit on the fast machine
        BatchOp::Invlpg { va },
        BatchOp::ReadU64 { va }, // must re-walk, not replay
    ];
    let before_on = on.cvm.machine.stats;
    let before_off = off.cvm.machine.stats;
    let a = on.run_batch(&prog);
    let b = off.run_batch(&prog);
    assert_eq!(a, b);
    assert!(a.fault.is_none(), "{a:?}");
    let d_on = on.cvm.machine.stats.delta(&before_on);
    let d_off = off.cvm.machine.stats.delta(&before_off);
    assert_eq!(d_on, d_off);
    assert_eq!(d_on.tlb_misses, 2, "initial walk + forced re-walk after invlpg");
    assert_eq!(d_on.tlb_hits, 1, "the pre-invalidation repeat");
    assert_eq!(
        format!("{:?}", on.snapshot()),
        format!("{:?}", off.snapshot())
    );
}
