//! Cross-crate chaos harness tests (ISSUE 3 acceptance).
//!
//! Exercises the deterministic fault-injection engine end to end: the
//! invariant checkers flag the states the pre-fix gate bugs produced
//! (red), the fixed gate survives the same adversity (green), random
//! seeded interleavings across 2–4 cores never let the kernel observe a
//! monitor-mode PKRS, and a ≥500-case fixed-seed campaign is clean and
//! replays byte-identically.

use erebor::eanalyze::{audit, detect_races, MachineView};
use erebor::ecore::policy;
use erebor::ehw::cpu::Domain;
use erebor::ehw::fault::{AccessKind, Fault};
use erebor::ehw::inject::{handle, InjectionPoint, Injector};
use erebor::ehw::layout;
use erebor::ehw::regs::Msr;
use erebor::ehw::{BatchOp, VirtAddr};
use erebor::TraceEvent;
use erebor::etdx::tdcall::{tdcall, TdcallError, TdcallLeaf, TdcallResult};
use erebor::{Mode, Platform};
use erebor_chaos::{case_seed, exec_case, invariants, run, ChaosConfig, ChaosWorld};
use erebor_testkit::collection;
use erebor_testkit::prelude::*;

/// One-shot injector faulting the next operation at a chosen point.
struct Bomb {
    armed: bool,
    wrmsr: bool,
    branch: bool,
}

impl Injector for Bomb {
    fn inject_fault(&mut self, p: InjectionPoint) -> Option<Fault> {
        let hit = match p {
            InjectionPoint::Wrmsr { .. } => self.wrmsr,
            InjectionPoint::DirectBranch { .. } => self.branch,
            _ => false,
        };
        if self.armed && hit {
            self.armed = false;
            return Some(Fault::GeneralProtection("injected fault"));
        }
        None
    }
}

/// Injector failing every tdcall with a host-contention status.
struct BusyTdcall;

impl Injector for BusyTdcall {
    fn tdcall_status(&mut self, _cpu: usize) -> Option<u64> {
        Some(erebor::etdx::tdcall::status::OPERAND_BUSY)
    }
}

/// Injector losing every TLB-shootdown IPI in flight.
struct DropAllIpis;

impl Injector for DropAllIpis {
    fn drop_shootdown_ipi(&mut self, _initiator: usize, _target: usize) -> bool {
        true
    }
}

// --- satellite 1: transactional gate entry/exit ---------------------

/// A faulted PKRS grant mid-`enter` must leave the core exactly where
/// the caller had it (the pre-fix gate stranded it in Monitor domain
/// with the gate disarmed).
#[test]
fn failed_enter_rolls_back_completely() {
    let mut w = ChaosWorld::new(2);
    let pre_domain = w.machine.cpus[0].domain;
    let pre_rip = w.machine.cpus[0].ctx.rip;
    let pre_pkrs = w.machine.cpus[0].msr(Msr::Pkrs);

    w.machine.set_injector(handle(Bomb {
        armed: true,
        wrmsr: true,
        branch: false,
    }));
    w.gate.enter(&mut w.machine, 0).unwrap_err();
    w.machine.clear_injector();

    assert!(!w.gate.in_emc(0));
    assert_eq!(w.machine.cpus[0].domain, pre_domain);
    assert_eq!(w.machine.cpus[0].ctx.rip, pre_rip);
    assert_eq!(w.machine.cpus[0].msr(Msr::Pkrs), pre_pkrs);
    invariants::check_all(&w.machine, &w.gate, &[w.root]).unwrap();
}

/// A faulted return branch mid-`exit` must leave the core inside the
/// EMC (monitor PKRS, Monitor domain, gate still armed) so the exit can
/// be retried — the pre-fix gate had already flipped `in_emc` off.
#[test]
fn failed_exit_keeps_core_inside_emc() {
    let mut w = ChaosWorld::new(2);
    w.gate.enter(&mut w.machine, 0).unwrap();

    w.machine.set_injector(handle(Bomb {
        armed: true,
        wrmsr: false,
        branch: true,
    }));
    w.gate
        .exit(&mut w.machine, 0, layout::KERNEL_BASE)
        .unwrap_err();
    w.machine.clear_injector();

    assert!(w.gate.in_emc(0));
    assert_eq!(w.machine.cpus[0].domain, Domain::Monitor);
    assert_eq!(w.machine.cpus[0].pkrs(), policy::monitor_mode_pkrs());
    invariants::check_all(&w.machine, &w.gate, &[w.root]).unwrap();
    // And the retry goes through.
    w.gate.exit(&mut w.machine, 0, layout::KERNEL_BASE).unwrap();
    invariants::check_all(&w.machine, &w.gate, &[w.root]).unwrap();
}

// --- satellite 2: nested-interrupt PKRS restore ----------------------

/// Red: the state the pre-fix unbalanced restore produced — PKRS put
/// back to the normal-mode value while the core is still inside the EMC
/// — is flagged by the emc-consistency invariant.
#[test]
fn early_pkrs_restore_inside_emc_is_flagged() {
    let mut w = ChaosWorld::new(2);
    w.gate.enter(&mut w.machine, 0).unwrap();
    invariants::emc_consistency(&w.machine, &w.gate).unwrap();

    // Simulate the old bug's aftermath: an inner interrupt return
    // restored the saved PKRS at the wrong nesting depth.
    w.machine
        .restore_msr(0, Msr::Pkrs, policy::normal_mode_pkrs().0);
    let v = invariants::emc_consistency(&w.machine, &w.gate).unwrap_err();
    assert_eq!(v.invariant, "emc-consistency");

    // Undo and the checker passes again.
    w.machine
        .restore_msr(0, Msr::Pkrs, policy::monitor_mode_pkrs().0);
    invariants::emc_consistency(&w.machine, &w.gate).unwrap();
}

/// Red: a kernel-domain core holding a monitor-mode PKRS (what the
/// pre-fix interrupt gate leaked to the preempting handler) trips the
/// confinement invariant.
#[test]
fn kernel_domain_with_monitor_pkrs_is_flagged() {
    let mut w = ChaosWorld::new(2);
    assert_eq!(w.machine.cpus[1].domain, Domain::Kernel);
    w.machine
        .restore_msr(1, Msr::Pkrs, policy::monitor_mode_pkrs().0);
    let v = invariants::kernel_pkrs_confinement(&w.machine).unwrap_err();
    assert_eq!(v.invariant, "pkrs-confinement");
    assert!(v.detail.contains("cpu 1"), "{}", v.detail);

    w.machine
        .restore_msr(1, Msr::Pkrs, policy::normal_mode_pkrs().0);
    invariants::kernel_pkrs_confinement(&w.machine).unwrap();
}

/// Green: the fixed gate keeps the PKRS revoked across nested
/// interrupts and restores it only at the matching return.
#[test]
fn nested_interrupts_restore_at_matching_depth_only() {
    let mut w = ChaosWorld::new(2);
    w.gate.enter(&mut w.machine, 0).unwrap();

    // Outer preemption: save + revoke.
    w.gate.interrupt_entry(&mut w.machine, 0).unwrap();
    assert!(w.gate.saved_pkrs(0).is_some());
    invariants::check_all(&w.machine, &w.gate, &[w.root]).unwrap();

    // Inner (nested) interrupt: return at the inner depth must NOT
    // restore the saved value.
    w.gate.interrupt_entry(&mut w.machine, 0).unwrap();
    w.gate.interrupt_return(&mut w.machine, 0).unwrap();
    assert!(w.gate.saved_pkrs(0).is_some());
    assert_ne!(w.machine.cpus[0].pkrs(), policy::monitor_mode_pkrs());
    invariants::check_all(&w.machine, &w.gate, &[w.root]).unwrap();

    // The matching outer return restores it.
    w.gate.interrupt_return(&mut w.machine, 0).unwrap();
    assert!(w.gate.saved_pkrs(0).is_none());
    assert_eq!(w.machine.cpus[0].pkrs(), policy::monitor_mode_pkrs());
    invariants::check_all(&w.machine, &w.gate, &[w.root]).unwrap();
}

// --- satellite 3: tdcall error completions, not panics ---------------

/// An injected `TDX_OPERAND_BUSY` completion surfaces as
/// `TdcallResult::Failed` (the pre-fix path panicked on unexpected
/// statuses) and the same leaf succeeds once the host backs off.
#[test]
fn injected_tdcall_failure_is_surfaced_not_panicked() {
    let mut w = ChaosWorld::new(2);
    let frame = w.machine.mem.alloc_frame().unwrap();
    w.module.sept.accept_private(frame);
    // `tdcall` is a sensitive instruction: issue it from the monitor.
    w.gate.enter(&mut w.machine, 0).unwrap();

    w.machine.set_injector(handle(BusyTdcall));
    let r = tdcall(
        &mut w.module,
        &mut w.machine,
        0,
        TdcallLeaf::MapGpa {
            frame,
            shared: true,
        },
    )
    .unwrap();
    assert_eq!(r.error(), Some(TdcallError::Busy));
    // The failed completion changed nothing: the frame is still private.
    assert!(!w.module.sept.is_shared(frame));
    w.machine.clear_injector();

    let r = tdcall(
        &mut w.module,
        &mut w.machine,
        0,
        TdcallLeaf::MapGpa {
            frame,
            shared: true,
        },
    )
    .unwrap();
    assert!(matches!(r, TdcallResult::Ok));
    assert!(w.module.sept.is_shared(frame));
}

// --- TLB staleness accounting ----------------------------------------

/// A dropped shootdown IPI is not a violation — the machine records the
/// staleness — and a re-issued shootdown that lands clears it.
#[test]
fn dropped_ipi_is_recorded_then_cleared_by_landing_shootdown() {
    let mut w = ChaosWorld::new(2);
    let va = VirtAddr(layout::KERNEL_BASE.0 + 0x20_0000);
    // Warm both cores' TLBs on a data page.
    for cpu in 0..2 {
        w.machine
            .probe(cpu, va, erebor::ehw::fault::AccessKind::Read)
            .unwrap();
    }

    w.machine.set_injector(handle(DropAllIpis));
    w.machine.tlb_shootdown(0, va).unwrap();
    assert!(
        w.machine.pending_shootdowns().contains(&(1, va.0 >> 12)),
        "dropped IPI must be recorded as pending staleness"
    );
    invariants::tlb_coherence(&w.machine).unwrap();
    w.machine.clear_injector();

    w.machine.tlb_shootdown(0, va).unwrap();
    assert!(w.machine.pending_shootdowns().is_empty());
    invariants::tlb_coherence(&w.machine).unwrap();
}

// --- satellite 4: property test over random interleavings ------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Random seeded interleavings of gate entries/exits, interrupts,
    // shootdowns, tdcalls and allocations across 2–4 cores — with
    // faults injected throughout — never break an invariant; in
    // particular the kernel never observes a monitor-mode PKRS and
    // `in_emc` stays consistent with the live PKRS. Failures shrink to
    // a minimal op trace.
    #[test]
    fn random_interleavings_preserve_confinement(
        seed in any::<u64>(),
        ops in collection::vec(any::<u8>(), 1..160),
    ) {
        let cfg = ChaosConfig::default();
        let out = exec_case(&cfg, seed, &ops);
        prop_assert!(
            out.violation.is_none(),
            "violation: {:?}\ntrace: {:?}",
            out.violation,
            out.trace
        );
    }
}

// --- fixed-seed campaign: clean and byte-identical -------------------

/// ≥500-case fixed-seed campaign finds no violations, and running the
/// same seed again replays byte-identically (same digest, same event
/// count).
#[test]
fn fixed_seed_500_case_campaign_is_clean_and_replays() {
    // Honors EREBOR_CHAOS_SEED / EREBOR_CHAOS_CASES / EREBOR_CHAOS_OPS
    // (the CI stage sets the case budget), with the acceptance floor of
    // 500 cases enforced.
    let mut cfg = ChaosConfig::from_env();
    cfg.cases = cfg.cases.max(500);
    let a = run(&cfg);
    assert!(a.passed(), "{}", a.summary());
    assert!(a.total_events > 0);

    let b = run(&cfg);
    assert_eq!(a.digest, b.digest, "same seed must replay byte-identically");
    assert_eq!(a.total_events, b.total_events);

    // And per-case replays are exact, including the op→event schedule.
    let cs = case_seed(cfg.seed, 7);
    let ops: Vec<u8> = (0..64).map(|i| i * 3).collect();
    assert_eq!(exec_case(&cfg, cs, &ops), exec_case(&cfg, cs, &ops));
}

// --- platform wiring --------------------------------------------------

/// The platform exposes the injector hook-up: a chaos injector
/// installed through `Platform::install_injector` reaches the machine's
/// choke points, and `clear_injector` detaches it.
#[test]
fn platform_injector_wiring_reaches_the_machine() {
    let mut p = Platform::boot(Mode::Full).unwrap();
    p.enter_kernel_mode();
    let va = VirtAddr(layout::KERNEL_BASE.0);
    let cores = p.cvm.machine.cpus.len();
    for cpu in 0..cores {
        let _ = p.cvm.machine.probe(cpu, va, erebor::ehw::fault::AccessKind::Read);
    }

    p.install_injector(handle(DropAllIpis));
    p.cvm.machine.tlb_shootdown(0, va).unwrap();
    assert!(
        !p.cvm.machine.pending_shootdowns().is_empty(),
        "installed injector must reach the shootdown path"
    );

    p.clear_injector();
    p.cvm.machine.tlb_shootdown(0, va).unwrap();
    assert!(p.cvm.machine.pending_shootdowns().is_empty());
}

// --- PR 4: machine-trace dump alongside chaos failures -----------------

/// A case driven with injections must capture the machine's cycle-stamped
/// trace tail, and that tail must contain the injected `ChaosFault`
/// events — the dump situates a violation in hardware time.
#[test]
fn case_outcome_captures_machine_trace_with_injected_faults() {
    let cfg = ChaosConfig {
        rates: erebor_chaos::ChaosRates {
            fault: 1000, // every instrumented point faults
            ..erebor_chaos::ChaosRates::default()
        },
        ..ChaosConfig::default()
    };
    let cs = case_seed(cfg.seed, 0);
    let ops: Vec<u8> = (0..96u32).map(|i| i as u8).collect();
    let outcome = exec_case(&cfg, cs, &ops);

    assert!(
        !outcome.machine_trace.is_empty(),
        "the case must capture the machine's trace tail"
    );
    assert!(
        outcome
            .trace
            .iter()
            .any(|e| matches!(e, erebor_chaos::ChaosEvent::Fault(_))),
        "rate 1000 must inject faults into the schedule"
    );
    assert!(
        outcome
            .machine_trace
            .iter()
            .any(|r| matches!(r.event, erebor::TraceEvent::ChaosFault { .. })),
        "the machine trace tail must contain the injected fault events: {:?}",
        outcome.machine_trace
    );
    // Cycle stamps are monotone in sequence order (merged across cores).
    for w in outcome.machine_trace.windows(2) {
        assert!(w[0].seq < w[1].seq, "trace tail must be seq-ordered");
    }
}

/// The failure report prints the machine-trace tail: a reader of a chaos
/// failure sees the faulting event without re-running the case.
#[test]
fn failure_dump_contains_the_faulting_event() {
    let cfg = ChaosConfig {
        rates: erebor_chaos::ChaosRates {
            fault: 1000,
            ..erebor_chaos::ChaosRates::default()
        },
        ..ChaosConfig::default()
    };
    let cs = case_seed(cfg.seed, 7);
    let ops: Vec<u8> = (0..64u32).map(|i| (i * 5) as u8).collect();
    let outcome = exec_case(&cfg, cs, &ops);
    // Build the failure exactly the way `run` does from a replayed case
    // (campaigns are clean, so the violation itself is synthesized).
    let report = erebor_chaos::ChaosReport {
        seed: cfg.seed,
        cases: 1,
        total_events: outcome.trace.len() as u64,
        digest: 0,
        failures: vec![erebor_chaos::CaseFailure {
            case: 7,
            case_seed: cs,
            ops,
            violation: invariants::Violation {
                invariant: "dump-format",
                detail: "synthesized to exercise the failure dump".to_owned(),
            },
            trace: outcome.trace,
            machine_trace: outcome.machine_trace,
        }],
    };
    let s = report.summary();
    assert!(s.contains("machine trace (last"), "summary must dump the tail:\n{s}");
    assert!(
        s.contains("ChaosFault"),
        "dump must contain the faulting machine event:\n{s}"
    );
    assert!(s.contains("EREBOR_CHAOS_SEED="), "dump must keep the replay line");
}

// --- cache-aware campaign: batched fast path under adversity ----------

/// Deterministic seeded adversary for the cache-aware campaign: drops a
/// fraction of shootdown IPIs and faults a fraction of register writes
/// mid-batch, drawing from a splitmix64 stream so two machines built
/// with the same seed face byte-identical adversity. (Memory accesses
/// never consult the injector, so a fast-path decision hit cannot
/// desynchronize the stream between a cached and an ablated world.)
struct SeededChaos {
    state: u64,
}

impl SeededChaos {
    fn new(seed: u64) -> SeededChaos {
        SeededChaos {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn roll(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl Injector for SeededChaos {
    fn inject_fault(&mut self, p: InjectionPoint) -> Option<Fault> {
        match p {
            InjectionPoint::Wrmsr { .. } | InjectionPoint::WriteCr { .. } => {
                if self.roll() % 100 < 25 {
                    Some(Fault::GeneralProtection("chaos: register write"))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn drop_shootdown_ipi(&mut self, _initiator: usize, _target: usize) -> bool {
        self.roll() % 100 < 30
    }
}

/// A kernel data-page VA in the `ChaosWorld` direct map (8 RW pages at
/// `KERNEL_BASE + 0x20_0000`).
fn chaos_data_va(r: u64) -> VirtAddr {
    VirtAddr(layout::KERNEL_BASE.0 + 0x20_0000 + (r % 8) * 0x1000)
}

/// Drive one seeded cache-aware case: batches of probes/loads/stores to
/// the shared data pages with embedded `wrmsr`/`invlpg` ops (run from
/// the monitor domain every third round so they pass the sensitive
/// guard and reach the injector's mid-batch fault points), interleaved
/// with cross-core shootdowns whose IPIs the injector may drop. Returns
/// the observable transcript — one `Debug`-rendered [`BatchOutcome`]
/// per batch — which must be identical with the decision cache on and
/// off.
fn drive_cache_case(w: &mut ChaosWorld, seed: u64) -> Vec<String> {
    let cores = w.cores();
    let mut s = SeededChaos::new(seed.rotate_left(17));
    let mut transcript = Vec::new();
    for round in 0..10u32 {
        let cpu = (s.roll() as usize) % cores;
        let monitor_round = round % 3 == 0;
        if monitor_round {
            w.machine.cpus[cpu].domain = Domain::Monitor;
        }
        let mut ops = Vec::new();
        for _ in 0..8 {
            let r = s.roll();
            let va = chaos_data_va(r >> 8);
            ops.push(match r % 10 {
                0..=3 => BatchOp::Probe {
                    va,
                    kind: AccessKind::Read,
                },
                4 | 5 => BatchOp::ReadU64 { va },
                6 | 7 => BatchOp::WriteU64 { va, v: r },
                8 => BatchOp::Wrmsr {
                    msr: Msr::Pkrs,
                    v: policy::normal_mode_pkrs().0,
                },
                _ => BatchOp::Invlpg { va },
            });
        }
        let out = w.machine.run_batch(cpu, &ops);
        transcript.push(format!("round {round} cpu {cpu}: {out:?}"));
        if monitor_round {
            w.machine.cpus[cpu].domain = Domain::Kernel;
        }
        if s.roll().is_multiple_of(2) {
            let initiator = (s.roll() as usize) % cores;
            let va = chaos_data_va(s.roll());
            w.machine.cpus[initiator].domain = Domain::Monitor;
            let _ = w.machine.tlb_shootdown(initiator, va);
            w.machine.cpus[initiator].domain = Domain::Kernel;
        }
    }
    transcript
}

/// ≥500-case cache-aware campaign: every case drives the seeded batch
/// schedule through a fastpath-on and a fastpath-off world under
/// byte-identical adversity (injected IPI drops, mid-batch `wrmsr`/CR
/// faults). Per case the two worlds must stay observably identical
/// (transcripts, cycles, stats, attribution, trace), the state auditor
/// — including the C9 decision-consistency check — must stay green on
/// the cached world, and every race-detector finding must be explained
/// by an injected IPI drop. Aggregates prove the adversity was real:
/// decision hits, slow-path fallbacks, rekeys, injected faults and
/// dropped IPIs all occurred.
#[test]
fn cache_aware_campaign_forces_fallback_and_stays_green() {
    let cfg = ChaosConfig::from_env();
    let cases = cfg.cases.max(500);
    let (mut hits, mut slow, mut rekeys) = (0u64, 0u64, 0u64);
    let (mut injected, mut dropped) = (0u64, 0u64);
    for case in 0..cases {
        let seed = case_seed(cfg.seed, case);
        let cores = 2 + (seed as usize % 3);

        let mut on = ChaosWorld::new(cores);
        on.machine.mmu_trace = true;
        on.machine.set_injector(handle(SeededChaos::new(seed)));
        let t_on = drive_cache_case(&mut on, seed);
        on.machine.clear_injector();

        let mut off = ChaosWorld::new(cores);
        off.machine.fastpath_enabled = false;
        off.machine.mmu_trace = true;
        off.machine.set_injector(handle(SeededChaos::new(seed)));
        let t_off = drive_cache_case(&mut off, seed);
        off.machine.clear_injector();

        assert_eq!(t_on, t_off, "case {case}: batch outcomes diverged");
        assert_eq!(
            on.machine.cycles.total(),
            off.machine.cycles.total(),
            "case {case}: cycle totals diverged"
        );
        assert_eq!(
            format!("{:?}", on.machine.stats),
            format!("{:?}", off.machine.stats),
            "case {case}: HwStats diverged"
        );
        assert_eq!(
            on.machine.cycles.attribution().json(),
            off.machine.cycles.attribution().json(),
            "case {case}: attribution diverged"
        );
        assert_eq!(
            on.machine.trace.json(),
            off.machine.trace.json(),
            "case {case}: trace diverged"
        );
        assert_eq!(
            off.machine.fastpath.decision_hits, 0,
            "case {case}: the ablated world must never serve a cached decision"
        );

        invariants::check_all(&on.machine, &on.gate, &[on.root]).unwrap();
        let report = audit::audit(&MachineView {
            machine: &on.machine,
            roots: &[on.root],
            gate: Some(&on.gate),
            monitor: None,
            sept: None,
        });
        assert!(
            report.findings.is_empty(),
            "case {case}: audit findings {:?}",
            report.findings
        );

        let records = on.machine.trace.last_n(on.machine.trace.len());
        for f in detect_races(&records, cores) {
            assert!(
                f.dropped,
                "case {case}: race finding not explained by an injected drop: {f:?}"
            );
        }

        injected += t_on
            .iter()
            .filter(|t| t.contains("chaos: register write"))
            .count() as u64;
        dropped += records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::IpiDropped { .. }))
            .count() as u64;
        hits += on.machine.fastpath.decision_hits;
        slow += on.machine.fastpath.slow_ops;
        rekeys += on.machine.fastpath.rekeys;
    }
    assert!(hits > 0, "campaign never served a cached decision");
    assert!(slow > 0, "campaign never fell back to the slow path");
    assert!(rekeys > 0, "campaign never revalidated the cache context");
    assert!(injected > 0, "campaign never saw a mid-batch injected fault");
    assert!(dropped > 0, "campaign never dropped a shootdown IPI");
}

/// A mid-batch injected `wrmsr` fault terminates the batch at the
/// faulting op and drops the fast-path context validation: the batch
/// reports the fault exactly like the slow path, and a subsequent
/// *successful* PKRS change re-keys the cache instead of serving
/// decisions computed under the old register state.
#[test]
fn injected_midbatch_wrmsr_fault_forces_slowpath_fallback() {
    let mut w = ChaosWorld::new(2);
    w.machine.cpus[0].domain = Domain::Monitor;
    let va = chaos_data_va(0);

    let warm = w
        .machine
        .run_batch(0, &[BatchOp::ReadU64 { va }, BatchOp::ReadU64 { va }]);
    assert!(warm.fault.is_none());
    assert!(
        w.machine.fastpath.decision_hits > 0,
        "second read must hit the decision cache"
    );
    let slow_before = w.machine.fastpath.slow_ops;
    let rekeys_before = w.machine.fastpath.rekeys;

    w.machine.set_injector(handle(Bomb {
        armed: true,
        wrmsr: true,
        branch: false,
    }));
    let out = w.machine.run_batch(
        0,
        &[
            BatchOp::ReadU64 { va },
            BatchOp::Wrmsr {
                msr: Msr::Pkrs,
                v: policy::monitor_mode_pkrs().0,
            },
            BatchOp::ReadU64 { va },
        ],
    );
    w.machine.clear_injector();
    assert_eq!(out.executed, 1, "batch must stop at the faulted wrmsr");
    assert!(matches!(out.fault, Some(Fault::GeneralProtection(_))));
    assert!(
        w.machine.fastpath.slow_ops > slow_before,
        "the faulted wrmsr must take the slow path"
    );
    // The injected fault aborted the write before it took effect, so the
    // register context is unchanged and the cache stays live.
    assert_eq!(w.machine.cpus[0].msr(Msr::Pkrs), policy::normal_mode_pkrs().0);

    // A successful PKRS change does land a new context: the next batch
    // must re-key rather than trust decisions cached under the old PKRS.
    let out = w.machine.run_batch(
        0,
        &[
            BatchOp::Wrmsr {
                msr: Msr::Pkrs,
                v: policy::monitor_mode_pkrs().0,
            },
            BatchOp::ReadU64 { va },
        ],
    );
    assert!(out.fault.is_none(), "{:?}", out.fault);
    assert!(
        w.machine.fastpath.rekeys > rekeys_before,
        "a landed PKRS change must force a cache re-key"
    );

    w.machine
        .wrmsr(0, Msr::Pkrs, policy::normal_mode_pkrs().0)
        .unwrap();
    w.machine.cpus[0].domain = Domain::Kernel;
    invariants::check_all(&w.machine, &w.gate, &[w.root]).unwrap();
}

// --- fleet campaign: coalesced shootdowns under IPI chaos -------------

/// Seeded injector for the fleet campaign: drops a deterministic
/// quarter of shootdown IPIs in flight and sprinkles spurious full
/// flushes — the adversarial host mistreating the coalesced batches.
struct FleetIpiChaos {
    rng: u64,
}

impl FleetIpiChaos {
    fn new(seed: u64) -> FleetIpiChaos {
        FleetIpiChaos { rng: seed }
    }

    fn roll(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl Injector for FleetIpiChaos {
    fn drop_shootdown_ipi(&mut self, _initiator: usize, _target: usize) -> bool {
        self.roll().is_multiple_of(4)
    }

    fn spurious_shootdown(&mut self, _cpu: usize) -> bool {
        self.roll().is_multiple_of(16)
    }
}

/// Fleet-scale chaos campaign body (coalesced shootdowns on),
/// parameterized over the isolation backend and fleet size: kill/redeploy
/// churn issues full-mm coalesced batches while the injector drops IPIs
/// and delivers spurious flushes. The dropped full-flush batches must
/// land in the per-ASID pending ledger, the TLB-coherence invariant and
/// the full audit must stay green (every stale window is accounted), and
/// every race-detector finding must be explained by an injected drop —
/// identical findings semantics under PKS and TME-MK.
fn run_fleet_chaos_campaign(backend: erebor::ehw::isolation::BackendKind, slots: usize) {
    use erebor::ehw::inject::handle as inject_handle;
    use erebor_workloads::env::SandboxedWorkload;
    use erebor_workloads::fleet::FleetClass;

    assert!(slots > 8, "churn needs non-client victim slots");
    let mut cfg = erebor::BootConfig {
        cores: 4,
        dram_bytes: 512 * 1024 * 1024,
        ..erebor::BootConfig::default()
    };
    cfg.config.backend = backend;
    let mut p = Platform::boot_with(cfg).unwrap();
    p.set_fleet_mode(true);
    assert!(p.cvm.monitor.coalesce_shootdowns);
    p.install_injector(inject_handle(FleetIpiChaos::new(0xf1ee_7caf)));

    // 40 confined pages per server: past the full-flush ceiling (32),
    // so every churn kill coalesces into one full-mm batch per core.
    const PAGES: u64 = 40;
    let mut svcs = Vec::new();
    for slot in 0..slots {
        let class = if slot.is_multiple_of(2) {
            FleetClass::Nginx
        } else {
            FleetClass::Openssh
        };
        let program = SandboxedWorkload::new(class.workload(PAGES));
        svcs.push(p.deploy(Box::new(program), 4096).unwrap());
    }
    let mut clients = Vec::new();
    for (slot, svc) in svcs.iter().take(8).enumerate() {
        clients.push(p.connect_client(svc, [slot as u8; 32]).unwrap());
    }
    let mut rng = FleetIpiChaos::new(0x5eed);
    for i in 0..96usize {
        let c = rng.roll() as usize % clients.len();
        p.serve_request(&mut svcs[c], &mut clients[c], b"f=4096")
            .unwrap();
        if i % 4 == 3 {
            // Churn a non-client slot: coalesced kill + redeploy.
            let victim = 8 + rng.roll() as usize % (svcs.len() - 8);
            let id = svcs[victim].sandbox;
            p.cvm.monitor.kill_sandbox(&mut p.cvm.machine, id, "chaos churn");
            let class = if rng.roll().is_multiple_of(2) {
                FleetClass::Nginx
            } else {
                FleetClass::Openssh
            };
            let program = SandboxedWorkload::new(class.workload(PAGES));
            svcs[victim] = p.deploy(Box::new(program), 4096).unwrap();
        }
    }

    // The chaos must have actually happened: IPIs dropped during the
    // seeded phase.
    let records = p
        .cvm
        .machine
        .trace
        .last_n(p.cvm.machine.trace.len());
    let dropped = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::IpiDropped { .. }))
        .count();
    assert!(dropped > 0, "campaign never dropped a shootdown IPI");

    // A kill whose coalesced full-mm batch is dropped on a remote core
    // still holding the victim's CR3 must land in the per-ASID pending
    // ledger (the coalesced ledger, not the per-page one). Park the
    // victim's address space on core 1 by serving its client there,
    // then kill from core 0 with every IPI lost. MMU tracing is on from
    // here so the race detector sees the revocation edges.
    p.clear_injector();
    p.cvm.machine.mmu_trace = true;
    p.set_active_cpu(1);
    p.serve_request(&mut svcs[5], &mut clients[5], b"f=4096")
        .unwrap();
    p.set_active_cpu(0);
    p.install_injector(inject_handle(DropAllIpis));
    let id = svcs[5].sandbox;
    p.cvm
        .monitor
        .kill_sandbox(&mut p.cvm.machine, id, "ledger probe");
    assert!(
        !p.cvm.machine.pending_asid_shootdowns().is_empty(),
        "dropped coalesced kill must land in the per-ASID ledger"
    );

    // Staleness is *detectable*, not hidden: re-park core 1 on a live
    // root, warm its TLB on a kernel page, then drop a coalesced
    // broadcast batch (33 pages > the full-flush ceiling) from core 0.
    // Core 1's subsequent TLB-served access is exactly the stale window
    // the race detector must flag — and attribute to the injected drop.
    p.clear_injector();
    p.set_active_cpu(1);
    p.serve_request(&mut svcs[6], &mut clients[6], b"f=4096")
        .unwrap();
    p.set_active_cpu(0);
    let kva = VirtAddr(layout::DIRECT_MAP_BASE.0 + 0x1000);
    p.cvm.machine.cpus[0].mode = erebor::ehw::CpuMode::Supervisor;
    p.cvm.machine.cpus[1].mode = erebor::ehw::CpuMode::Supervisor;
    p.cvm
        .machine
        .probe(1, kva, erebor::ehw::fault::AccessKind::Read)
        .unwrap();
    p.install_injector(inject_handle(DropAllIpis));
    let vas: Vec<VirtAddr> = (0..33).map(|i| VirtAddr(kva.0 + i * 4096)).collect();
    p.cvm.machine.tlb_shootdown_batch(0, &vas).unwrap();
    p.cvm
        .machine
        .probe(1, kva, erebor::ehw::fault::AccessKind::Read)
        .unwrap();

    // Staleness is accounted, not hidden: coherence invariant, full
    // audit (C1–C9), and every race finding explained by a drop.
    invariants::tlb_coherence(&p.cvm.machine).unwrap();
    let report = p.audit();
    assert!(report.is_clean(), "{}", report.json());
    let records = p.cvm.machine.trace.last_n(p.cvm.machine.trace.len());
    let findings = detect_races(&records, p.cvm.machine.cpus.len());
    assert!(
        !findings.is_empty(),
        "the dropped coalesced batches must leave detectable stale windows"
    );
    for f in &findings {
        assert!(
            f.dropped,
            "race finding not explained by an injected drop: {f:?}"
        );
    }

    // A landed full flush on every core clears the ledgers.
    p.clear_injector();
    for cpu in 0..p.cvm.machine.cpus.len() {
        p.cvm.machine.flush_tlb(cpu);
    }
    assert!(p.cvm.machine.pending_shootdowns().is_empty());
    assert!(p.cvm.machine.pending_asid_shootdowns().is_empty());
    invariants::tlb_coherence(&p.cvm.machine).unwrap();
}

/// The keyed-memory backend runs the campaign at full fleet scale: 64
/// concurrent sandboxes is past the PKS pkey ceiling and needs TME-MK
/// key-IDs.
#[test]
fn fleet_coalesced_campaign_under_ipi_chaos() {
    run_fleet_chaos_campaign(erebor::ehw::isolation::BackendKind::TmeMk, 64);
}

/// The PKS backend runs the identical campaign at its capacity: 10
/// sandbox pkeys (16 minus the monitor's 6 reserved keys), with churn
/// kills recycling domains through the backend free list.
#[test]
fn fleet_coalesced_campaign_under_ipi_chaos_pks() {
    run_fleet_chaos_campaign(erebor::ehw::isolation::BackendKind::Pks, 10);
}
