//! Multi-tenant isolation: several sandboxes on one CVM, sharing common
//! memory, failing independently, and leaving nothing behind at teardown.

use erebor::{Mode, Platform};
use erebor_hw::layout::direct_map;
use erebor_libos::api::{Sys, SysError};
use erebor_workloads::hello::HelloWorld;
use erebor_workloads::retrieval::Retrieval;
use erebor_workloads::SandboxedWorkload;

#[test]
fn tenants_share_one_common_region() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let s1 = p
        .deploy(
            Box::new(SandboxedWorkload::new(Retrieval::default())),
            1 << 20,
        )
        .expect("deploy 1");
    let s2 = p
        .deploy(
            Box::new(SandboxedWorkload::new(Retrieval::default())),
            1 << 20,
        )
        .expect("deploy 2");
    assert_eq!(p.cvm.monitor.common_regions.len(), 1, "one shared DB");
    let region = &p.cvm.monitor.common_regions[&1];
    assert_eq!(region.attached.len(), 2);
    assert_ne!(s1.sandbox, s2.sandbox);
    assert_ne!(
        p.cvm.monitor.sandboxes[&s1.sandbox.0].root, p.cvm.monitor.sandboxes[&s2.sandbox.0].root,
        "separate address spaces"
    );
}

#[test]
fn killing_one_tenant_leaves_the_other_serving() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let mut victim = p
        .deploy(Box::new(HelloWorld { len: 4 }), 4096)
        .expect("deploy v");
    let mut survivor = p
        .deploy(Box::new(HelloWorld { len: 4 }), 4096)
        .expect("deploy s");
    let mut cv = p.connect_client(&victim, [1; 32]).expect("attest v");
    let mut cs = p.connect_client(&survivor, [2; 32]).expect("attest s");

    // Load data into both sessions.
    let ok = p
        .serve_request(&mut survivor, &mut cs, b"warm")
        .expect("survivor warm");
    assert_eq!(ok, b"AAAA");
    p.client_send(&victim, &mut cv, b"victim-secret")
        .expect("send");
    let pid = victim.pid;
    victim.os.input(&mut p.proc(pid)).expect("input");

    // The victim's program goes rogue: forbidden syscall → killed.
    let err = p
        .proc(pid)
        .syscall(erebor_kernel::syscall::nr::GETPID, [0; 6])
        .expect_err("must be killed");
    assert!(matches!(err, SysError::Killed(_)));

    // The survivor keeps serving, unaffected.
    let reply = p
        .serve_request(&mut survivor, &mut cs, b"still here?")
        .expect("survivor");
    assert_eq!(reply, b"AAAA");
    assert_eq!(
        p.cvm.monitor.sandboxes[&survivor.sandbox.0].state,
        erebor_core::sandbox::SandboxState::DataLoaded
    );
}

#[test]
fn teardown_zeroizes_confined_memory() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let mut svc = p
        .deploy(Box::new(HelloWorld { len: 4 }), 4096)
        .expect("deploy");
    let mut client = p.connect_client(&svc, [3; 32]).expect("attest");
    p.serve_request(&mut svc, &mut client, b"session data 0xfeed")
        .expect("serve");

    let frames: Vec<_> = p.cvm.monitor.sandboxes[&svc.sandbox.0]
        .confined
        .iter()
        .map(|(_, f)| *f)
        .collect();
    assert!(!frames.is_empty());
    p.cvm.monitor.end_session(&mut p.cvm.machine, svc.sandbox);

    // Every confined frame is scrubbed: reading the raw physical contents
    // (hardware view) yields zeros, and the frame table released them.
    for frame in frames {
        let mut buf = vec![0u8; 4096];
        p.cvm
            .machine
            .mem
            .read(frame.base(), &mut buf)
            .expect("raw read");
        assert!(buf.iter().all(|&b| b == 0), "residual data in {frame:?}");
        assert_eq!(
            p.cvm.monitor.frames.kind(frame),
            erebor_core::policy::FrameKind::Unused
        );
    }
    assert_eq!(
        p.cvm.monitor.sandboxes[&svc.sandbox.0].state,
        erebor_core::sandbox::SandboxState::Dead
    );
}

#[test]
fn freed_confined_frames_are_safely_reusable() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    // Session 1 processes a secret and ends.
    let mut s1 = p
        .deploy(Box::new(HelloWorld { len: 4 }), 4096)
        .expect("deploy 1");
    let mut c1 = p.connect_client(&s1, [4; 32]).expect("attest");
    p.serve_request(&mut s1, &mut c1, b"tenant-1 secret payload")
        .expect("serve");
    let old_frames: std::collections::BTreeSet<_> = p.cvm.monitor.sandboxes[&s1.sandbox.0]
        .confined
        .iter()
        .map(|(_, f)| *f)
        .collect();
    p.cvm.monitor.end_session(&mut p.cvm.machine, s1.sandbox);

    // Session 2 (a different tenant) may get the same physical frames.
    let s2 = p
        .deploy(Box::new(HelloWorld { len: 4 }), 4096)
        .expect("deploy 2");
    let new_frames: std::collections::BTreeSet<_> = p.cvm.monitor.sandboxes[&s2.sandbox.0]
        .confined
        .iter()
        .map(|(_, f)| *f)
        .collect();
    // Whether or not frames were recycled, tenant 2 must never observe
    // tenant 1's bytes.
    let recycled: Vec<_> = old_frames.intersection(&new_frames).collect();
    for frame in recycled {
        let mut buf = vec![0u8; 4096];
        p.cvm
            .machine
            .mem
            .read(frame.base(), &mut buf)
            .expect("read");
        assert!(buf.iter().all(|&b| b == 0), "cross-session residue");
    }
}

#[test]
fn tenants_cannot_reach_each_others_confined_pages() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let s1 = p
        .deploy(Box::new(HelloWorld::default()), 4096)
        .expect("deploy 1");
    let s2 = p
        .deploy(Box::new(HelloWorld::default()), 4096)
        .expect("deploy 2");
    let (va1, frame1) = p.cvm.monitor.sandboxes[&s1.sandbox.0].confined[0];
    // From tenant 2's address space, tenant 1's confined VA is unmapped
    // (or maps elsewhere) — the physical frame never appears.
    let root2 = p.cvm.monitor.sandboxes[&s2.sandbox.0].root;
    let leaf = erebor_hw::paging::lookup_raw(&p.cvm.machine.mem, root2, va1).expect("walk");
    if let Some(l) = leaf {
        assert_ne!(l.frame(), frame1, "tenant 2 must not map tenant 1's frame");
    }
    // And the kernel can't gift it either (single-mapping policy) — the
    // direct map view is monitor-keyed.
    p.enter_kernel_mode();
    assert!(p
        .cvm
        .machine
        .read_u64(0, direct_map(frame1.base()))
        .is_err());
}

#[test]
fn dead_sandbox_cannot_alias_recycled_frames() {
    // Regression: a killed tenant's stale PTEs must not alias frames later
    // granted to a new tenant. The teardown unmaps before freeing.
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let mut victim = p
        .deploy(Box::new(HelloWorld { len: 4 }), 4096)
        .expect("deploy v");
    let mut cv = p.connect_client(&victim, [7; 32]).expect("attest");
    p.client_send(&victim, &mut cv, b"v-secret").expect("send");
    let v_pid = victim.pid;
    victim.os.input(&mut p.proc(v_pid)).expect("input");
    let (v_va, _) = p.cvm.monitor.sandboxes[&victim.sandbox.0].confined[0];
    // Kill the victim (policy violation).
    let _ = p
        .proc(v_pid)
        .syscall(erebor_kernel::syscall::nr::GETPID, [0; 6])
        .expect_err("killed");
    // A new tenant arrives and likely reuses the CMA frames.
    let mut t2 = p
        .deploy(Box::new(HelloWorld { len: 4 }), 4096)
        .expect("deploy 2");
    let mut c2 = p.connect_client(&t2, [8; 32]).expect("attest");
    p.client_send(&t2, &mut c2, b"tenant-2 top secret")
        .expect("send");
    let t2_pid = t2.pid;
    t2.os.input(&mut p.proc(t2_pid)).expect("input");
    // Drive the DEAD victim task: its old confined VA must be unmapped —
    // reading it must fault, never observe tenant 2's memory.
    let mut buf = [0u8; 8];
    let err = p
        .proc(v_pid)
        .read_mem(v_va.0, &mut buf)
        .expect_err("stale mapping must be gone");
    let _ = err;
    // And sweep: tenant-2's plaintext is nowhere the attacker can see.
    assert!(!p.cvm.tdx.host.observed_contains(b"tenant-2 top secret"));
}
