//! Multi-vCPU execution: services pinned to different cores, per-core
//! protection-key state, and cross-core isolation (the paper's CVM runs 8
//! vCPUs).

use erebor::{Mode, Platform};
use erebor_core::policy;
use erebor_hw::regs::Msr;
use erebor_workloads::hello::HelloWorld;

#[test]
fn two_services_on_two_cores() {
    let mut p = Platform::boot(Mode::Full).expect("boot");

    p.set_active_cpu(0);
    let mut s0 = p
        .deploy(Box::new(HelloWorld { len: 2 }), 4096)
        .expect("deploy cpu0");
    let mut c0 = p.connect_client(&s0, [1; 32]).expect("attest 0");

    p.set_active_cpu(1);
    let mut s1 = p
        .deploy(Box::new(HelloWorld { len: 3 }), 4096)
        .expect("deploy cpu1");
    let mut c1 = p.connect_client(&s1, [2; 32]).expect("attest 1");

    // Interleave requests across cores.
    for _ in 0..2 {
        p.set_active_cpu(0);
        assert_eq!(p.serve_request(&mut s0, &mut c0, b"a").expect("r0"), b"AA");
        p.set_active_cpu(1);
        assert_eq!(p.serve_request(&mut s1, &mut c1, b"b").expect("r1"), b"AAA");
    }

    // Each core scheduled its own task.
    assert_eq!(p.kernel.current_on(0), Some(s0.pid));
    assert_eq!(p.kernel.current_on(1), Some(s1.pid));
    assert_ne!(s0.pid, s1.pid);
}

#[test]
fn pkrs_is_per_core_during_emc() {
    // An EMC in flight on core 1 must not open monitor memory to core 0.
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let monitor = &mut p.cvm.monitor;
    p.cvm.machine.cpus[1].domain = erebor_hw::cpu::Domain::Kernel;
    p.cvm.machine.cpus[1].mode = erebor_hw::CpuMode::Supervisor;
    monitor
        .gate
        .enter(&mut p.cvm.machine, 1)
        .expect("enter on core 1");
    assert_eq!(p.cvm.machine.cpus[1].pkrs(), policy::monitor_mode_pkrs());
    // Core 0 remains locked out.
    assert_eq!(p.cvm.machine.cpus[0].pkrs(), policy::normal_mode_pkrs());
    assert!(p
        .cvm
        .machine
        .read_u64(0, erebor_hw::layout::MONITOR_BASE)
        .is_err());
    monitor
        .gate
        .exit(&mut p.cvm.machine, 1, erebor_hw::layout::KERNEL_BASE)
        .expect("exit");
}

#[test]
fn scheduler_never_runs_one_task_on_two_cores() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let pid = p.spawn_native().expect("spawn"); // scheduled on cpu 0
    assert_eq!(p.kernel.current_on(0), Some(pid));
    // Timer on cpu 1 must not pick the task running on cpu 0.
    p.set_active_cpu(1);
    p.enter_kernel_mode();
    let (mut hw, kernel) = {
        // Rebuild parts at cpu 1 via the public surface.
        let cpu = p.active_cpu();
        (
            erebor_kernel::Hw {
                machine: &mut p.cvm.machine,
                tdx: &mut p.cvm.tdx,
                monitor: &mut p.cvm.monitor,
                cpu,
            },
            &mut p.kernel,
        )
    };
    let next = kernel.on_timer(&mut hw);
    assert_ne!(next, Some(pid), "task already running on cpu 0");
}

#[test]
fn per_core_uintr_state() {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    // Deploy + install data on core 0: UINTR disabled there.
    let mut svc = p
        .deploy(Box::new(HelloWorld::default()), 4096)
        .expect("deploy");
    let mut client = p.connect_client(&svc, [9; 32]).expect("attest");
    p.serve_request(&mut svc, &mut client, b"x").expect("serve");
    assert_eq!(p.cvm.machine.cpus[0].msr(Msr::UintrTt) & 1, 0);
    // Core 1 never entered a loaded sandbox; its UINTR state is its own.
    assert_eq!(p.cvm.machine.cpus[1].msr(Msr::UintrTt), 0);
}
