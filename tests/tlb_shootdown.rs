//! The stale-translation window around page-table downgrades.
//!
//! A PTE store is invisible to translations already cached in a TLB; until
//! someone invalidates, a sandbox (or the kernel) keeps reading through
//! the *old* mapping. The negative tests demonstrate the attack — a PTE
//! zeroed in DRAM without a shootdown stays readable — and the positive
//! tests show the monitor's EMC paths close the window, including across
//! cores.

use erebor::{Mode, Platform};
use erebor_core::emc::{EmcRequest, EmcResponse};
use erebor_hw::cpu::Domain;
use erebor_hw::fault::{AccessKind, PfReason};
use erebor_hw::{paging, CpuMode, Frame, VirtAddr};

const VA: VirtAddr = VirtAddr(0x40_0000);

/// Boot Full, create a fresh user address space through EMC, and map one
/// writable page at [`VA`].
fn platform_with_user_page() -> (Platform, Frame) {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    p.enter_kernel_mode();
    let root = match p.cvm.monitor.emc(
        &mut p.cvm.machine,
        &mut p.cvm.tdx,
        0,
        EmcRequest::CreateAddressSpace { asid: 77 },
    ) {
        Ok(EmcResponse::Root(r)) => r,
        other => panic!("create address space: {other:?}"),
    };
    p.cvm
        .monitor
        .emc(
            &mut p.cvm.machine,
            &mut p.cvm.tdx,
            0,
            EmcRequest::MapUserPage {
                root,
                va: VA,
                frame: None,
                writable: true,
                executable: false,
            },
        )
        .expect("map user page");
    (p, root)
}

/// Put `cpu` in user mode running `root`, with a clean TLB.
fn run_user(p: &mut Platform, cpu: usize, root: Frame) {
    p.cvm.machine.cpus[cpu].cr3 = root;
    p.cvm.machine.flush_tlb(cpu);
    p.cvm.machine.cpus[cpu].mode = CpuMode::User;
    p.cvm.machine.cpus[cpu].domain = Domain::User;
}

#[test]
fn stale_translation_survives_a_raw_pte_zero_without_shootdown() {
    let (mut p, root) = platform_with_user_page();
    run_user(&mut p, 0, root);
    p.cvm
        .machine
        .probe(0, VA, AccessKind::Read)
        .expect("mapped page readable");

    // A buggy (or bypassed) monitor zeroes the PTE in DRAM and *forgets*
    // the shootdown — the DMA-style backdoor write models exactly that.
    let slot = paging::leaf_slot(&p.cvm.machine.mem, root, VA)
        .expect("walk")
        .expect("leaf slot");
    p.cvm.machine.mem.write_u64(slot, 0).expect("backdoor store");
    assert!(
        paging::lookup_raw(&p.cvm.machine.mem, root, VA)
            .expect("walk")
            .is_none(),
        "the mapping is gone from the tables"
    );

    // ...and yet the sandbox still reads through the cached translation.
    p.cvm
        .machine
        .probe(0, VA, AccessKind::Read)
        .expect("stale TLB entry still serves the unmapped page");

    // Only an explicit invalidation closes the window.
    p.cvm.machine.cpus[0].mode = CpuMode::Supervisor;
    p.cvm.machine.invalidate_page(0, VA).expect("invlpg");
    p.cvm.machine.cpus[0].mode = CpuMode::User;
    let err = p
        .cvm
        .machine
        .probe(0, VA, AccessKind::Read)
        .expect_err("after invlpg the unmap is visible");
    assert!(err.is_pf(PfReason::NotPresent), "{err:?}");
}

#[test]
fn monitor_unmap_shoots_down_the_local_core() {
    let (mut p, root) = platform_with_user_page();
    run_user(&mut p, 0, root);
    p.cvm
        .machine
        .probe(0, VA, AccessKind::Read)
        .expect("mapped page readable");

    // The real path: the kernel delegates the unmap; the monitor's EMC
    // handler both clears the PTE and invalidates.
    p.enter_kernel_mode();
    let before = p.cvm.machine.stats.tlb_page_invalidations;
    p.cvm
        .monitor
        .emc(
            &mut p.cvm.machine,
            &mut p.cvm.tdx,
            0,
            EmcRequest::UnmapUserPage { root, va: VA },
        )
        .expect("delegated unmap");
    assert!(
        p.cvm.machine.stats.tlb_page_invalidations > before,
        "the monitor owes an invalidation with the PTE clear"
    );

    p.cvm.machine.cpus[0].mode = CpuMode::User;
    p.cvm.machine.cpus[0].domain = Domain::User;
    let err = p
        .cvm
        .machine
        .probe(0, VA, AccessKind::Read)
        .expect_err("no stale window after a delegated unmap");
    assert!(err.is_pf(PfReason::NotPresent), "{err:?}");
}

#[test]
fn monitor_unmap_shoots_down_remote_cores_running_the_address_space() {
    let (mut p, root) = platform_with_user_page();
    // Core 1 runs the sandbox's address space and caches the translation;
    // core 0 stays in the kernel.
    run_user(&mut p, 1, root);
    p.cvm
        .machine
        .probe(1, VA, AccessKind::Read)
        .expect("mapped page readable on core 1");

    p.enter_kernel_mode();
    let before = p.cvm.machine.stats.tlb_shootdown_ipis;
    p.cvm
        .monitor
        .emc(
            &mut p.cvm.machine,
            &mut p.cvm.tdx,
            0,
            EmcRequest::UnmapUserPage { root, va: VA },
        )
        .expect("delegated unmap");
    assert_eq!(
        p.cvm.machine.stats.tlb_shootdown_ipis,
        before + 1,
        "core 1 holds the address space and must be IPI'd"
    );

    let err = p
        .cvm
        .machine
        .probe(1, VA, AccessKind::Read)
        .expect_err("core 1 must not read through the dead mapping");
    assert!(err.is_pf(PfReason::NotPresent), "{err:?}");
}

#[test]
fn permission_downgrade_is_visible_without_an_address_space_reload() {
    // ProtectUserPage(writable=false) must invalidate: a cached writable
    // translation outliving the downgrade would let the sandbox keep
    // scribbling a sealed page.
    let (mut p, root) = platform_with_user_page();
    run_user(&mut p, 0, root);
    p.cvm
        .machine
        .probe(0, VA, AccessKind::Write)
        .expect("page starts writable");

    p.enter_kernel_mode();
    p.cvm
        .monitor
        .emc(
            &mut p.cvm.machine,
            &mut p.cvm.tdx,
            0,
            EmcRequest::ProtectUserPage {
                root,
                va: VA,
                writable: false,
            },
        )
        .expect("downgrade");

    p.cvm.machine.cpus[0].mode = CpuMode::User;
    p.cvm.machine.cpus[0].domain = Domain::User;
    let err = p
        .cvm
        .machine
        .probe(0, VA, AccessKind::Write)
        .expect_err("write must fault immediately after the downgrade");
    assert!(err.is_pf(PfReason::NotWritable), "{err:?}");
    p.cvm
        .machine
        .probe(0, VA, AccessKind::Read)
        .expect("reads still fine");
}
