//! The Fig. 9 mode matrix: every workload runs in every configuration, and
//! the protection levels order the overhead as the paper's ablation does.

use erebor::runner::run_workload;
use erebor::Mode;
use erebor_workloads::llm::LlmInference;
use erebor_workloads::retrieval::Retrieval;
use erebor_workloads::Workload;

fn retrieval() -> Box<dyn Workload> {
    Box::new(Retrieval::default())
}

#[test]
fn all_modes_run_retrieval() {
    for mode in Mode::ALL {
        let r = run_workload(mode, retrieval(), b"q=2000;5").expect("run");
        assert!(r.cycles() > 0, "{mode:?} produced no work");
        assert!(
            String::from_utf8_lossy(&r.output).contains("queries=2000"),
            "{mode:?} output wrong"
        );
    }
}

#[test]
fn overheads_are_ordered_and_in_band() {
    let native = run_workload(Mode::Native, retrieval(), b"q=8000;5")
        .expect("run")
        .cycles() as f64;
    let libos = run_workload(Mode::LibOsOnly, retrieval(), b"q=8000;5")
        .expect("run")
        .cycles() as f64;
    let full = run_workload(Mode::Full, retrieval(), b"q=8000;5")
        .expect("run")
        .cycles() as f64;
    let ovh_libos = libos / native - 1.0;
    let ovh_full = full / native - 1.0;
    assert!(
        ovh_full > 0.0,
        "full must cost more than native ({ovh_full:.3})"
    );
    assert!(
        ovh_full > ovh_libos,
        "full ({ovh_full:.3}) must exceed LibOS-only ({ovh_libos:.3})"
    );
    // Paper Fig. 9 band is 4.5%–13.2%; allow simulator tolerance.
    assert!(
        (0.01..0.30).contains(&ovh_full),
        "full overhead {ovh_full:.3} outside a plausible band"
    );
}

#[test]
fn ablations_sit_between_libos_and_full() {
    let native = run_workload(Mode::Native, retrieval(), b"q=8000;5")
        .expect("run")
        .cycles() as f64;
    let libos = run_workload(Mode::LibOsOnly, retrieval(), b"q=8000;5")
        .expect("run")
        .cycles() as f64;
    let mmu = run_workload(Mode::LibOsMmu, retrieval(), b"q=8000;5")
        .expect("run")
        .cycles() as f64;
    let exit = run_workload(Mode::LibOsExit, retrieval(), b"q=8000;5")
        .expect("run")
        .cycles() as f64;
    let full = run_workload(Mode::Full, retrieval(), b"q=8000;5")
        .expect("run")
        .cycles() as f64;
    assert!(mmu >= libos * 0.999, "MMU adds over LibOS-only");
    assert!(exit >= libos * 0.999, "Exit adds over LibOS-only");
    assert!(
        full >= mmu.max(exit) * 0.999,
        "Full dominates each ablation"
    );
    assert!(native <= libos, "native is the cheapest");
}

#[test]
fn llm_runs_under_full_protection_with_events() {
    let r = run_workload(
        Mode::Full,
        Box::new(LlmInference::default()),
        b"gen=12;translate this text please",
    )
    .expect("run");
    let d = &r.serve;
    assert!(d.monitor.sandbox_timer_exits > 0, "timer exits");
    assert!(d.monitor.sandbox_ve_exits > 0, "#VE exits");
    assert!(d.monitor.sandbox_pf_exits > 0, "common-page faults");
    assert!(d.monitor.emc_calls > 0, "EMCs");
    assert!(r.seconds() > 0.05, "run long enough for rates");
    // Rates should be in the Table 6 neighbourhood (order of magnitude).
    let timer_rate = r.rate(d.monitor.sandbox_timer_exits);
    assert!(
        (100.0..5000.0).contains(&timer_rate),
        "timer rate {timer_rate:.0}/s far from Table 6"
    );
}
