//! The evaluation runner: executes any [`Workload`] under any Fig. 9
//! configuration with a warm start and separates initialization from the
//! measured serve phase — the methodology behind Fig. 9 and Table 6.

use crate::platform::{Platform, PlatformError, Snapshot};
use erebor_core::config::Mode;
use erebor_workloads::env::{NativeEnv, NativeState, Workload, WorkloadParams};
use erebor_workloads::SandboxedWorkload;

/// Result of one measured run.
#[derive(Debug)]
pub struct RunReport {
    /// Configuration used.
    pub mode: Mode,
    /// Workload name.
    pub workload: &'static str,
    /// Cycles spent in initialization (deploy / warm start), after boot.
    pub init_cycles: u64,
    /// Counter deltas across the serve phase.
    pub serve: Snapshot,
    /// The workload's response bytes.
    pub output: Vec<u8>,
    /// Sizing parameters (logical sizes feed Table 6).
    pub params: WorkloadParams,
}

impl RunReport {
    /// Serve-phase cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.serve.cycles
    }

    /// Serve-phase simulated seconds.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.serve.seconds()
    }

    /// Events per simulated second for a raw count.
    #[must_use]
    pub fn rate(&self, count: u64) -> f64 {
        let s = self.seconds();
        if s > 0.0 {
            count as f64 / s
        } else {
            0.0
        }
    }
}

/// Run `workload` once under `mode` with a warm start, serving `request`.
///
/// ```
/// use erebor::runner::run_workload;
/// use erebor::Mode;
/// use erebor_workloads::retrieval::Retrieval;
///
/// let report = run_workload(Mode::Full, Box::new(Retrieval::default()), b"q=500;1")?;
/// assert!(report.cycles() > 0);
/// assert!(String::from_utf8_lossy(&report.output).contains("queries=500"));
/// # Ok::<(), erebor::PlatformError>(())
/// ```
///
/// # Errors
/// Any platform failure (boot, deploy, attestation, kill).
pub fn run_workload(
    mode: Mode,
    workload: Box<dyn Workload>,
    request: &[u8],
) -> Result<RunReport, PlatformError> {
    let mut platform = Platform::boot(mode)?;
    run_workload_on(&mut platform, mode, workload, request)
}

/// Like [`run_workload`], on an already-booted platform (lets callers run
/// several phases or share a platform between instances).
///
/// # Errors
/// Any platform failure.
pub fn run_workload_on(
    platform: &mut Platform,
    mode: Mode,
    workload: Box<dyn Workload>,
    request: &[u8],
) -> Result<RunReport, PlatformError> {
    let params = workload.params();
    let name = workload.name();
    let boot_snap = platform.snapshot();

    if mode == Mode::Native {
        let mut workload = workload;
        // Plain process: mmap windows, warm them, run directly.
        let pid = platform.spawn_native()?;
        let mut state = {
            let mut h = platform.proc(pid);
            let state = NativeState::setup(&mut h, params).map_err(PlatformError::Sys)?;
            state.warm(&mut h).map_err(PlatformError::Sys)?;
            state
        };
        {
            let mut h = platform.proc(pid);
            let mut env = NativeEnv::new(&mut h, &mut state);
            workload.init(&mut env).map_err(PlatformError::Sys)?;
        }
        let init_snap = platform.snapshot();
        let output = {
            let mut h = platform.proc(pid);
            let mut env = NativeEnv::new(&mut h, &mut state);
            workload
                .serve(&mut env, request)
                .map_err(PlatformError::Sys)?
        };
        let serve = platform.snapshot().delta(&init_snap);
        return Ok(RunReport {
            mode,
            workload: name,
            init_cycles: init_snap.cycles - boot_snap.cycles,
            serve,
            output,
            params,
        });
    }

    // LibOS-based paths: the ServiceProgram adapter handles manifests and
    // common population.
    let program = SandboxedWorkload::new(workload);
    let mut svc = platform.deploy(Box::new(program), 1 << 20)?;
    // Initialization ends at deploy; attestation/channel setup sits
    // between the measured windows (it is neither program init nor the
    // steady-state serve path).
    let init_snap = platform.snapshot();
    let output;
    let serve_snap;
    if platform.cvm.monitor.cfg.monitor_present() {
        let mut client = platform.connect_client(&svc, [0x42; 32])?;
        serve_snap = platform.snapshot();
        output = platform.serve_request(&mut svc, &mut client, request)?;
    } else {
        serve_snap = platform.snapshot();
        output = platform.serve_plain(&mut svc, request)?;
    }
    let serve = platform.snapshot().delta(&serve_snap);
    drop(svc);
    Ok(RunReport {
        mode,
        workload: name,
        init_cycles: init_snap.cycles - boot_snap.cycles,
        serve,
        output,
        params,
    })
}

/// The standard request each Table 5 workload uses for Fig. 9 / Table 6
/// measurements (sized for runs of a few hundred simulated milliseconds).
#[must_use]
pub fn standard_request(workload: &str) -> &'static [u8] {
    match workload {
        "llama.cpp" => b"gen=12;translate the following text into french",
        "yolo" => b"n=2;7",
        "drugbank" => b"q=20000;3",
        "graphchi" => b"iters=4;9",
        _ => b"",
    }
}
