//! # erebor — the user-facing facade
//!
//! Reproduction of *"Erebor: A Drop-In Sandbox Solution for Private Data
//! Processing in Untrusted Confidential Virtual Machines"* (EuroSys 2025)
//! as a deterministic full-platform simulation.
//!
//! This crate assembles the layered reproduction into a runnable
//! [`Platform`]:
//!
//! * [`erebor_hw`] — the simulated CPU/MMU/PKS/CET hardware
//! * [`erebor_tdx`] — the TDX module, sEPT, attestation, untrusted host
//! * [`erebor_crypto`] — from-scratch RFC-checked crypto
//! * [`erebor_core`] — EREBOR-MONITOR and EREBOR-SANDBOX (the paper's
//!   contribution)
//! * [`erebor_kernel`] — the deprivileged guest kernel
//! * [`erebor_libos`] — the Gramine-like LibOS
//! * [`erebor_workloads`] — the evaluation workloads

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod platform;
pub mod runner;

pub use erebor_core::config::{ExecConfig, Mode};
pub use erebor_core::{BootConfig, Cvm};
pub use erebor_trace::{Attribution, Bucket, TraceBuffer, TraceEvent, TraceRecord};
pub use erebor_tdx::migrate::{MigrationError, MigrationKey};
pub use platform::{
    MigrationOffer, MigrationReport, OutboundMigration, Platform, PlatformError, ProcHandle,
    ServiceInstance, Snapshot,
};
pub use runner::{run_workload, run_workload_on, RunReport};

pub use erebor_analyze as eanalyze;
pub use erebor_core as ecore;
pub use erebor_crypto as crypto;
pub use erebor_hw as ehw;
pub use erebor_kernel as ekernel;
pub use erebor_libos as elibos;
pub use erebor_tdx as etdx;
pub use erebor_workloads as eworkloads;
