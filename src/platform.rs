//! The platform: assembles hardware, TDX module, monitor, kernel and LibOS
//! into a running CVM and drives the execution model — syscall and
//! interrupt interposition, demand paging, timer quanta, the client/proxy
//! data path — exactly as Fig. 7 lays it out.

use erebor_core::boot::{BootConfig, BootError, Cvm};
use erebor_core::channel::{Client, ClientError, Proxy};
use erebor_core::config::Mode;
use erebor_core::emc::{EmcRequest, EmcResponse};
use erebor_core::sandbox::{ExitDecision, SandboxId};
use erebor_core::stats::MonitorStats;
use erebor_hw::cpu::{CpuMode, Domain};
use erebor_hw::cycles::CLOCK_HZ;
use erebor_hw::fault::{AccessKind, Fault, PfReason, VeReason};
use erebor_hw::idt::vector;
use erebor_hw::inject::InjectorHandle;
use erebor_hw::{BatchOp, BatchOutcome, FastpathStats, HwStats, VirtAddr};
use erebor_kernel::image::benign_kernel;
use erebor_kernel::kernel::KernelStats;
use erebor_kernel::{Hw, Kernel, Pid};
use erebor_libos::api::{Sys, SysError};
use erebor_libos::os::{export_registry, import_registry, CommonRegistry, LibOs, ServiceProgram};
use erebor_tdx::attest::{expected_mrtd, Expected, Quote};
use erebor_tdx::migrate::{
    check_pages_private, migration_binding, section, MigrationDest, MigrationError, MigrationKey,
    MigrationSource,
};
use erebor_tdx::tdcall::{tdcall, TdcallLeaf, TdcallResult, TdxStats, VmcallOp};
use erebor_wire::{WireError, WireReader, WireWriter};
use erebor_trace::{Attribution, Bucket};

/// The synthetic rip of user code (any user-half address works; only its
/// *half* matters to the privilege model).
const USER_RIP: u64 = 0x40_1000;

/// Platform-level failure.
#[derive(Debug)]
pub enum PlatformError {
    /// Boot failed.
    Boot(BootError),
    /// Kernel returned an errno at setup time.
    Errno(erebor_kernel::Errno),
    /// User-level failure (kill, fault).
    Sys(SysError),
    /// Channel / attestation failure.
    Channel(&'static str),
    /// Client-side verification failure.
    Client(ClientError),
    /// LibOS failure.
    LibOs(String),
    /// The post-boot state audit found violated security claims.
    Audit(erebor_analyze::AuditReport),
    /// A live-migration step failed. The stream is aborted; the source
    /// platform keeps running and stays auditable.
    Migration(MigrationError),
}

impl core::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PlatformError::Boot(e) => write!(f, "boot: {e}"),
            PlatformError::Errno(e) => write!(f, "kernel: {e}"),
            PlatformError::Sys(e) => write!(f, "user: {e}"),
            PlatformError::Channel(e) => write!(f, "channel: {e}"),
            PlatformError::Client(e) => write!(f, "client: {e}"),
            PlatformError::LibOs(e) => write!(f, "libos: {e}"),
            PlatformError::Audit(r) => match r.findings.first() {
                Some(first) => write!(f, "audit: {} finding(s), first: {first}", r.findings.len()),
                None => write!(f, "audit: clean"),
            },
            PlatformError::Migration(e) => write!(f, "migration: {e}"),
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<SysError> for PlatformError {
    fn from(e: SysError) -> PlatformError {
        PlatformError::Sys(e)
    }
}

impl From<erebor_libos::os::LibOsError> for PlatformError {
    fn from(e: erebor_libos::os::LibOsError) -> PlatformError {
        PlatformError::LibOs(e.to_string())
    }
}

impl From<MigrationError> for PlatformError {
    fn from(e: MigrationError) -> PlatformError {
        PlatformError::Migration(e)
    }
}

impl From<WireError> for PlatformError {
    fn from(e: WireError) -> PlatformError {
        PlatformError::Migration(MigrationError::Decode(e))
    }
}

/// A counters snapshot for before/after measurement.
#[derive(Debug, Clone, Copy)]
pub struct Snapshot {
    /// Simulated cycles.
    pub cycles: u64,
    /// Monitor counters.
    pub monitor: MonitorStats,
    /// Kernel counters.
    pub kernel: KernelStats,
    /// TDX counters.
    pub tdx: TdxStats,
    /// Hardware-model counters (TLB translation path).
    pub hw: HwStats,
    /// Per-bucket cycle attribution (sums to `cycles`).
    pub attribution: Attribution,
}

impl Snapshot {
    /// Elementwise *saturating* difference `self - earlier`. Saturating
    /// matters: benches snapshot around intervals on machines whose
    /// counters may reset (chaos replays) — an underflow must pin at 0,
    /// not wrap to a huge bogus delta.
    #[must_use]
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            cycles: self.cycles.saturating_sub(earlier.cycles),
            monitor: self.monitor.delta(&earlier.monitor),
            kernel: self.kernel.delta(&earlier.kernel),
            tdx: self.tdx.delta(&earlier.tdx),
            hw: self.hw.delta(&earlier.hw),
            attribution: self.attribution.delta(&earlier.attribution),
        }
    }

    /// Simulated seconds represented by the cycles field.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / CLOCK_HZ as f64
    }
}

/// A deployed sandboxed service: the provider's program plus its LibOS.
pub struct ServiceInstance {
    /// The service program.
    pub program: Box<dyn ServiceProgram>,
    /// The LibOS instance inside the sandbox.
    pub os: LibOs,
    /// Host task.
    pub pid: Pid,
    /// The monitor's sandbox id.
    pub sandbox: SandboxId,
}

impl core::fmt::Debug for ServiceInstance {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ServiceInstance")
            .field("name", &self.program.name())
            .field("pid", &self.pid)
            .field("sandbox", &self.sandbox)
            .finish_non_exhaustive()
    }
}

/// The assembled, booted platform.
pub struct Platform {
    /// The booted CVM (hardware + TDX + monitor).
    pub cvm: Cvm,
    /// The guest kernel.
    pub kernel: Kernel,
    /// Service-wide common-region registry.
    pub registry: CommonRegistry,
    /// Whether this platform booted under a paravisor (§10).
    pub paravisor: bool,
    cpu: usize,
    last_timer: Vec<u64>,
    device_period_ticks: u64,
    ticks_since_device: Vec<u64>,
    /// Ticks between memory-pressure reclaim passes (0 = disabled).
    pub reclaim_period_ticks: u64,
    /// Pages reclaimed per pass.
    pub reclaim_pages_per_pass: u64,
    ticks_since_reclaim: u64,
    /// The hardware root seed this platform's attestation identity grows
    /// from; migration hands it over sealed (`section::ROOT_SEED`).
    root_seed: [u8; 32],
}

impl core::fmt::Debug for Platform {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Platform")
            .field("cvm", &self.cvm)
            .finish_non_exhaustive()
    }
}

impl Platform {
    /// Boot with default parameters in the given mode.
    ///
    /// ```
    /// use erebor::{Mode, Platform};
    /// use erebor_workloads::hello::HelloWorld;
    ///
    /// let mut platform = Platform::boot(Mode::Full)?;
    /// let mut svc = platform.deploy(Box::new(HelloWorld { len: 4 }), 4096)?;
    /// let mut client = platform.connect_client(&svc, [7u8; 32])?;
    /// let reply = platform.serve_request(&mut svc, &mut client, b"hi")?;
    /// assert_eq!(reply, b"AAAA");
    /// # Ok::<(), erebor::PlatformError>(())
    /// ```
    ///
    /// # Errors
    /// [`PlatformError::Boot`].
    pub fn boot(mode: Mode) -> Result<Platform, PlatformError> {
        let cfg = BootConfig {
            config: erebor_core::config::ExecConfig::new(mode),
            ..BootConfig::default()
        };
        Platform::boot_with(cfg)
    }

    /// Boot with explicit parameters.
    ///
    /// # Errors
    /// [`PlatformError::Boot`] / [`PlatformError::Errno`].
    pub fn boot_with(cfg: BootConfig) -> Result<Platform, PlatformError> {
        let kernel_img = benign_kernel(cfg.seed);
        let cvm = Cvm::boot_all(cfg, &kernel_img).map_err(PlatformError::Boot)?;
        let paravisor = cfg.paravisor;
        let cores = cfg.cores;
        let mut platform = Platform {
            cvm,
            kernel: Kernel::new(),
            registry: CommonRegistry::new(),
            paravisor,
            cpu: 0,
            last_timer: vec![0; cores],
            device_period_ticks: 3,
            ticks_since_device: vec![0; cores],
            reclaim_period_ticks: 2,
            reclaim_pages_per_pass: 4,
            ticks_since_reclaim: 0,
            root_seed: erebor_core::boot::hw_root_seed(cfg.seed),
        };
        let (mut hw, kernel) = platform.parts();
        kernel.init(&mut hw).map_err(PlatformError::Errno)?;
        let now = platform.cvm.machine.cycles.total();
        platform.last_timer.fill(now);
        // Post-boot state audit: a freshly booted platform must satisfy
        // every security claim (C1–C9) before any workload touches it.
        let report = platform.audit();
        if !report.is_clean() {
            return Err(PlatformError::Audit(report));
        }
        Ok(platform)
    }

    /// Run the state auditor over the live machine: every page-table
    /// tree the monitor tracks (kernel, registered user address spaces,
    /// sandboxes), the sEPT, the IDT, the gate descriptors, and the
    /// pinned MSRs, checked against the paper's claims C1–C9
    /// (DESIGN.md §9). Read-only and side-effect free; callable at any
    /// point, not just post-boot.
    #[must_use]
    pub fn audit(&self) -> erebor_analyze::AuditReport {
        // Monitor-dependent claims (pkey tagging, gate/IDT landing pads,
        // MSR pinning, sEPT typing) only hold where the monitor actually
        // deprivileged the kernel; native and LibOS-only modes run
        // without those protections by design.
        let deprivileged = self.cvm.monitor.cfg.monitor_present();
        let view = erebor_analyze::MachineView {
            machine: &self.cvm.machine,
            roots: &[],
            gate: deprivileged.then_some(&self.cvm.monitor.gate),
            monitor: deprivileged.then_some(&self.cvm.monitor),
            sept: deprivileged.then_some(&self.cvm.tdx.sept),
        };
        erebor_analyze::audit::audit(&view)
    }

    /// Install a chaos injector on the booted machine: every instrumented
    /// hardware operation (MSR/CR writes, branches, allocations, tdcalls,
    /// shootdown IPIs) from here on consults it. Pair with
    /// [`Platform::clear_injector`] to return to clean execution.
    pub fn install_injector(&mut self, injector: InjectorHandle) {
        self.cvm.machine.set_injector(injector);
    }

    /// Remove any installed chaos injector.
    pub fn clear_injector(&mut self) {
        self.cvm.machine.clear_injector();
    }

    /// Enable or disable the batched-execution permission-decision cache
    /// (on by default). The differential equivalence suite runs identical
    /// programs both ways and asserts byte-identical snapshots, traces
    /// and attribution; disabling is also the ablation baseline for the
    /// fastpath bench.
    pub fn set_fastpath(&mut self, enabled: bool) {
        self.cvm.machine.fastpath_enabled = enabled;
    }

    /// Fast-path observability counters (hits, slow ops, re-keys). These
    /// live outside [`Snapshot`] by design: they differ between
    /// fastpath-on and fastpath-off runs that are otherwise identical.
    #[must_use]
    pub fn fastpath_stats(&self) -> FastpathStats {
        self.cvm.machine.fastpath
    }

    /// Toggle every fleet-mode fast path together: the bitmap frame
    /// allocator scan (`PhysMemory::fast_scan`), the monitor's O(1)
    /// lookup indexes (`Monitor::fast_lookup`), and coalesced
    /// maintenance-window shootdowns (`Monitor::coalesce_shootdowns`).
    /// `false` is the ablated baseline the fleet bench measures against:
    /// the seed's linear frame scans, linear sandbox lookups, and
    /// per-page shootdown traffic.
    pub fn set_fleet_mode(&mut self, enabled: bool) {
        self.cvm.machine.mem.fast_scan = enabled;
        self.cvm.monitor.fast_lookup = enabled;
        self.cvm.monitor.coalesce_shootdowns = enabled;
    }

    /// Frame-allocator scan counters (host-side work, outside
    /// [`Snapshot`]: the fast and ablated scans do different amounts of
    /// host work for identical simulated results).
    #[must_use]
    pub fn alloc_stats(&self) -> erebor_hw::phys::AllocStats {
        self.cvm.machine.mem.alloc_stats
    }

    /// Monitor lookup fast-path counters (outside [`Snapshot`] for the
    /// same reason).
    #[must_use]
    pub fn lookup_stats(&self) -> &erebor_core::stats::LookupStats {
        &self.cvm.monitor.lookup_stats
    }

    /// Execute a straight-line access batch on the active vCPU through
    /// the machine's batched fast path
    /// ([`erebor_hw::cpu::Machine::run_batch`]). Stops at the first
    /// fault, exactly like issuing the ops one by one.
    pub fn run_batch(&mut self, ops: &[BatchOp]) -> BatchOutcome {
        self.cvm.machine.run_batch(self.cpu, ops)
    }

    /// Enter kernel execution context on the driving core (ring 0, kernel
    /// code domain) — the state in which kernel code like `spawn`/`schedule`
    /// legitimately runs. Public for tests and benches that drive kernel
    /// paths directly.
    pub fn enter_kernel_mode(&mut self) {
        let c = &mut self.cvm.machine.cpus[self.cpu];
        c.mode = CpuMode::Supervisor;
        c.domain = Domain::Kernel;
        self.cvm.machine.cycles.set_bucket(Bucket::Kernel);
    }

    fn parts(&mut self) -> (Hw<'_>, &mut Kernel) {
        (
            Hw {
                machine: &mut self.cvm.machine,
                tdx: &mut self.cvm.tdx,
                monitor: &mut self.cvm.monitor,
                cpu: self.cpu,
            },
            &mut self.kernel,
        )
    }

    /// A counters snapshot.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            cycles: self.cvm.machine.cycles.total(),
            monitor: self.cvm.monitor.stats,
            kernel: self.kernel.stats,
            tdx: self.cvm.tdx.stats,
            hw: self.cvm.machine.stats,
            attribution: self.cvm.machine.cycles.attribution(),
        }
    }

    /// Deterministic JSON document with the full event trace and the
    /// cycle-attribution profile: same seed and op sequence → byte-identical
    /// output.
    #[must_use]
    pub fn trace_json(&self) -> String {
        let cycles = self.cvm.machine.cycles.total();
        let attribution = self.cvm.machine.cycles.attribution().json();
        let trace = self.cvm.machine.trace.json();
        format!("{{\"cycles\":{cycles},\"attribution\":{attribution},\"trace\":{trace}}}")
    }

    /// Spawn a native (non-sandboxed) process.
    ///
    /// # Errors
    /// Kernel errors.
    pub fn spawn_native(&mut self) -> Result<Pid, PlatformError> {
        self.enter_kernel_mode();
        let (mut hw, kernel) = self.parts();
        let pid = kernel.spawn_native(&mut hw).map_err(PlatformError::Errno)?;
        kernel
            .schedule(&mut hw, pid)
            .map_err(PlatformError::Errno)?;
        Ok(pid)
    }

    /// A [`Sys`] handle for driving a process's user-mode execution.
    pub fn proc(&mut self, pid: Pid) -> ProcHandle<'_> {
        ProcHandle {
            platform: self,
            pid,
        }
    }

    // ================================================================
    // Service deployment and the client data path (§6.3)
    // ================================================================

    /// Deploy a service program into a fresh sandbox: spawn the host task,
    /// run the LibOS loader (confined declaration, commons, preloads,
    /// thread pool) and the program's own pre-data initialization.
    ///
    /// # Errors
    /// Any setup failure.
    pub fn deploy(
        &mut self,
        mut program: Box<dyn ServiceProgram>,
        budget_pages: u64,
    ) -> Result<ServiceInstance, PlatformError> {
        self.enter_kernel_mode();
        let use_driver = self.cvm.monitor.cfg.monitor_present();
        let (pid, sandbox) = if use_driver {
            let (mut hw, kernel) = self.parts();
            let (pid, sandbox) = kernel
                .spawn_sandbox(&mut hw, budget_pages)
                .map_err(PlatformError::Errno)?;
            kernel
                .schedule(&mut hw, pid)
                .map_err(PlatformError::Errno)?;
            (pid, sandbox)
        } else {
            // LibOS-only / Native baselines: a plain process.
            let (mut hw, kernel) = self.parts();
            let pid = kernel.spawn_native(&mut hw).map_err(PlatformError::Errno)?;
            kernel
                .schedule(&mut hw, pid)
                .map_err(PlatformError::Errno)?;
            (pid, SandboxId(0))
        };
        let manifest = program.manifest();
        let mut registry = std::mem::take(&mut self.registry);
        let result = LibOs::load(manifest, &mut registry, &mut self.proc(pid), use_driver);
        self.registry = registry;
        let mut os = result?;
        program
            .init(
                &mut os,
                &mut ProcHandle {
                    platform: self,
                    pid,
                },
            )
            .map_err(PlatformError::Sys)?;
        Ok(ServiceInstance {
            program,
            os,
            pid,
            sandbox,
        })
    }

    /// Drive one request through a service *without* the monitor channel —
    /// the LibOS-only/Native baselines' (unprotected) DebugFS data path,
    /// mirroring the artifact's emulated I/O channel (§A.4).
    ///
    /// # Errors
    /// Any step's failure.
    pub fn serve_plain(
        &mut self,
        svc: &mut ServiceInstance,
        request: &[u8],
    ) -> Result<Vec<u8>, PlatformError> {
        if self.cvm.monitor.cfg.monitor_present() {
            return Err(PlatformError::Channel(
                "serve_plain is for monitor-less baselines; use serve_request",
            ));
        }
        self.kernel.vfs.debug_in.extend_from_slice(request);
        let pid = svc.pid;
        let req = svc.os.input(&mut ProcHandle {
            platform: self,
            pid,
        })?;
        let res = svc
            .program
            .serve(
                &mut svc.os,
                &mut ProcHandle {
                    platform: self,
                    pid,
                },
                &req,
            )
            .map_err(PlatformError::Sys)?;
        svc.os.output(
            &mut ProcHandle {
                platform: self,
                pid,
            },
            &res,
        )?;
        let out = std::mem::take(&mut self.kernel.vfs.debug_out);
        Ok(out)
    }

    /// The measurement chain this platform's boot should attest to —
    /// what clients (and a migration source vetting this platform as a
    /// destination) compare quotes against.
    fn expected_chain(&self) -> Expected {
        let erebor_chain = expected_mrtd(&[
            &self.cvm.firmware_image.measurement_bytes(),
            &self.cvm.monitor_image.measurement_bytes(),
        ]);
        if self.paravisor {
            Expected::ParavisorRtmr {
                mrtd: expected_mrtd(&[erebor_core::boot::PARAVISOR_MEASUREMENT_INPUT]),
                rtmr0: erebor_chain,
            }
        } else {
            Expected::Mrtd(erebor_chain)
        }
    }

    /// Run the remote-attestation handshake for a client of `svc`,
    /// relaying both flights through the untrusted proxy.
    ///
    /// # Errors
    /// Attestation / channel failures.
    pub fn connect_client(
        &mut self,
        svc: &ServiceInstance,
        key_seed: [u8; 32],
    ) -> Result<Client, PlatformError> {
        let root = self.cvm.tdx.attest.root_public();
        let expected = self.expected_chain();
        let (mut client, hello) = Client::with_expected(key_seed, root, expected);
        // First flight crosses the untrusted network/proxy.
        let _ = Proxy::relay(&mut self.cvm.tdx, &hello.client_pub);
        let server_hello = self
            .cvm
            .monitor
            .channel_accept(
                &mut self.cvm.machine,
                &mut self.cvm.tdx,
                self.cpu,
                svc.sandbox,
                &hello,
            )
            .map_err(PlatformError::Channel)?;
        let _ = Proxy::relay(&mut self.cvm.tdx, &server_hello.monitor_pub);
        client
            .finish(&server_hello)
            .map_err(PlatformError::Client)?;
        Ok(client)
    }

    /// Send sealed client data into the sandbox (through the proxy; the
    /// first record flips the sandbox to `DataLoaded`).
    ///
    /// # Errors
    /// Channel / record failures.
    pub fn client_send(
        &mut self,
        svc: &ServiceInstance,
        client: &mut Client,
        data: &[u8],
    ) -> Result<(), PlatformError> {
        let record = client.seal(data).map_err(PlatformError::Client)?;
        let record = Proxy::relay(&mut self.cvm.tdx, &record);
        self.cvm
            .monitor
            .install_client_data(&mut self.cvm.machine, self.cpu, svc.sandbox, &record)
            .map_err(PlatformError::Channel)
    }

    /// Fetch the next sealed result for the client (through the proxy).
    ///
    /// # Errors
    /// Channel / record failures.
    pub fn client_recv(
        &mut self,
        svc: &ServiceInstance,
        client: &mut Client,
    ) -> Result<Vec<u8>, PlatformError> {
        let record = self
            .cvm
            .monitor
            .fetch_output_quantized(&mut self.cvm.machine, svc.sandbox)
            .ok_or(PlatformError::Channel("no output pending"))?;
        let record = Proxy::relay(&mut self.cvm.tdx, &record);
        client.open_result(&record).map_err(PlatformError::Client)
    }

    /// Full request/response round trip: seal → install → program `serve`
    /// → padded sealed reply.
    ///
    /// # Errors
    /// Any step's failure (including a sandbox kill).
    pub fn serve_request(
        &mut self,
        svc: &mut ServiceInstance,
        client: &mut Client,
        request: &[u8],
    ) -> Result<Vec<u8>, PlatformError> {
        self.client_send(svc, client, request)?;
        let pid = svc.pid;
        let req = svc.os.input(&mut ProcHandle {
            platform: self,
            pid,
        })?;
        let res = svc
            .program
            .serve(
                &mut svc.os,
                &mut ProcHandle {
                    platform: self,
                    pid,
                },
                &req,
            )
            .map_err(PlatformError::Sys)?;
        svc.os.output(
            &mut ProcHandle {
                platform: self,
                pid,
            },
            &res,
        )?;
        self.client_recv(svc, client)
    }

    // ================================================================
    // Execution-model internals
    // ================================================================

    fn sandbox_of(&self, pid: Pid) -> Option<SandboxId> {
        self.kernel.task(pid).and_then(erebor_kernel::Task::sandbox)
    }

    /// Select the vCPU that subsequent [`Platform::proc`] handles drive.
    ///
    /// # Panics
    /// Panics on an out-of-range core id.
    pub fn set_active_cpu(&mut self, cpu: usize) {
        assert!(cpu < self.cvm.machine.cpus.len(), "no such core");
        self.cpu = cpu;
    }

    /// The currently active vCPU.
    #[must_use]
    pub fn active_cpu(&self) -> usize {
        self.cpu
    }

    fn ensure_current(&mut self, pid: Pid) -> Result<(), SysError> {
        if self.kernel.current_on(self.cpu) != Some(pid) {
            let saved_mode = self.cvm.machine.cpus[self.cpu].mode;
            let saved_domain = self.cvm.machine.cpus[self.cpu].domain;
            let saved_bucket = self.cvm.machine.cycles.bucket();
            self.enter_kernel_mode();
            let (mut hw, kernel) = self.parts();
            kernel.schedule(&mut hw, pid).map_err(|_| SysError::Fault)?;
            self.cvm.machine.cpus[self.cpu].mode = saved_mode;
            self.cvm.machine.cpus[self.cpu].domain = saved_domain;
            self.cvm.machine.cycles.set_bucket(saved_bucket);
        }
        Ok(())
    }

    fn enter_user(&mut self, _pid: Pid) {
        let c = &mut self.cvm.machine.cpus[self.cpu];
        c.mode = CpuMode::User;
        c.domain = Domain::User;
        c.ctx.rip = USER_RIP;
        self.cvm.machine.cycles.set_bucket(Bucket::Sandbox);
    }

    /// Deliver the APIC timer for every quantum that has elapsed, running
    /// the full interposition path (monitor scrub + kernel scheduler +
    /// resume). Large `compute` charges may span several quanta; each gets
    /// its tick, so event *rates* stay faithful to simulated time.
    fn tick(&mut self, pid: Pid) -> Result<(), SysError> {
        // Bound catch-up to keep pathological charges finite.
        for _ in 0..4096 {
            let quantum = self.cvm.monitor.cfg.timer_quantum_cycles;
            if self
                .cvm
                .machine
                .cycles
                .total()
                .saturating_sub(self.last_timer[self.cpu])
                < quantum
            {
                return Ok(());
            }
            self.tick_once(pid)?;
        }
        Ok(())
    }

    fn tick_once(&mut self, pid: Pid) -> Result<(), SysError> {
        let quantum = self.cvm.monitor.cfg.timer_quantum_cycles;
        self.last_timer[self.cpu] += quantum;
        if self
            .cvm
            .machine
            .cycles
            .total()
            .saturating_sub(self.last_timer[self.cpu])
            >= quantum * 64
        {
            // Far behind (huge single charge): resynchronize.
            self.last_timer[self.cpu] = self.cvm.machine.cycles.total();
        }
        self.ticks_since_device[self.cpu] += 1;
        let vec = if self.ticks_since_device[self.cpu] >= self.device_period_ticks {
            self.ticks_since_device[self.cpu] = 0;
            vector::DEVICE
        } else {
            vector::TIMER
        };
        // Periodic memory pressure: common (unpinned) pages and cold
        // anonymous pages get evicted, sustaining runtime fault rates.
        self.ticks_since_reclaim += 1;
        if self.reclaim_period_ticks > 0 && self.ticks_since_reclaim >= self.reclaim_period_ticks {
            self.ticks_since_reclaim = 0;
            let budget = self.reclaim_pages_per_pass;
            if self.cvm.monitor.cfg.monitor_present() {
                self.cvm
                    .monitor
                    .reclaim_common(&mut self.cvm.machine, self.cpu, budget);
            }
            let saved_mode = self.cvm.machine.cpus[self.cpu].mode;
            let saved_domain = self.cvm.machine.cpus[self.cpu].domain;
            let saved_bucket = self.cvm.machine.cycles.bucket();
            self.enter_kernel_mode();
            let (mut hw, kernel) = self.parts();
            kernel.reclaim_pages(&mut hw, budget);
            self.cvm.machine.cpus[self.cpu].mode = saved_mode;
            self.cvm.machine.cpus[self.cpu].domain = saved_domain;
            self.cvm.machine.cycles.set_bucket(saved_bucket);
        }
        self.deliver_interrupt(pid, vec)
    }

    fn deliver_interrupt(&mut self, pid: Pid, vec: u8) -> Result<(), SysError> {
        // Async exit: the TDX module protects the guest context from the
        // injecting host.
        self.cvm
            .tdx
            .async_exit_context_protect(&mut self.cvm.machine, self.cpu);
        let (_handler, saved) = self
            .cvm
            .machine
            .deliver_interrupt(self.cpu, vec)
            .map_err(|_| SysError::Fault)?;
        let sandbox = self.sandbox_of(pid);
        if self.cvm.monitor.cfg.monitor_present() && self.cvm.monitor.cfg.exit_protection() {
            let decision =
                self.cvm
                    .monitor
                    .on_interrupt(&mut self.cvm.machine, self.cpu, sandbox, vec, saved);
            match decision {
                ExitDecision::ForwardToKernel { .. } => {
                    let prev = self.cvm.machine.cycles.set_bucket(Bucket::Kernel);
                    let (mut hw, kernel) = self.parts();
                    kernel.on_timer(&mut hw);
                    self.cvm.machine.cycles.set_bucket(prev);
                }
                ExitDecision::Killed { reason } => return Err(SysError::Killed(reason)),
                ExitDecision::Handled { .. } => {}
            }
            if let Some(id) = sandbox {
                self.cvm
                    .monitor
                    .resume_sandbox(&mut self.cvm.machine, self.cpu, id)
                    .map_err(|_| SysError::Fault)?;
            }
        } else {
            let prev = self.cvm.machine.cycles.set_bucket(Bucket::Kernel);
            let (mut hw, kernel) = self.parts();
            kernel.on_timer(&mut hw);
            self.cvm.machine.cycles.set_bucket(prev);
        }
        // Return into the interrupted (possibly restored) user context.
        self.ensure_current(pid)?;
        self.cvm
            .machine
            .iret(self.cpu, saved)
            .map_err(|_| SysError::Fault)?;
        Ok(())
    }

    fn handle_user_pf(&mut self, pid: Pid, va: VirtAddr, write: bool) -> Result<(), SysError> {
        let (_handler, saved) = self
            .cvm
            .machine
            .deliver_interrupt(self.cpu, vector::PF)
            .map_err(|_| SysError::Fault)?;
        let sandbox = self.sandbox_of(pid);
        if self.cvm.monitor.cfg.monitor_present() {
            let decision = match sandbox {
                Some(id) => {
                    self.cvm
                        .monitor
                        .on_page_fault(&mut self.cvm.machine, self.cpu, id, va, write)
                }
                _ if self.cvm.monitor.cfg.exit_protection() => self.cvm.monitor.on_interrupt(
                    &mut self.cvm.machine,
                    self.cpu,
                    None,
                    vector::PF,
                    saved,
                ),
                _ => ExitDecision::ForwardToKernel {
                    handler: erebor_kernel::entry::PF,
                },
            };
            match decision {
                ExitDecision::Handled { .. } => {}
                ExitDecision::Killed { reason } => return Err(SysError::Killed(reason)),
                ExitDecision::ForwardToKernel { .. } => {
                    let prev = self.cvm.machine.cycles.set_bucket(Bucket::Kernel);
                    let (mut hw, kernel) = self.parts();
                    let r = kernel.handle_page_fault(&mut hw, pid, va, write);
                    self.cvm.machine.cycles.set_bucket(prev);
                    r.map_err(|_| SysError::Fault)?;
                }
            }
        } else {
            let prev = self.cvm.machine.cycles.set_bucket(Bucket::Kernel);
            let (mut hw, kernel) = self.parts();
            let r = kernel.handle_page_fault(&mut hw, pid, va, write);
            self.cvm.machine.cycles.set_bucket(prev);
            r.map_err(|_| SysError::Fault)?;
        }
        self.cvm
            .machine
            .iret(self.cpu, saved)
            .map_err(|_| SysError::Fault)?;
        Ok(())
    }

    fn user_access(&mut self, pid: Pid, va: u64, write: bool) -> Result<(), SysError> {
        self.tick(pid)?;
        self.ensure_current(pid)?;
        self.enter_user(pid);
        let kind = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        for _attempt in 0..64 {
            match self.cvm.machine.probe(self.cpu, VirtAddr(va), kind) {
                Ok(()) => return Ok(()),
                Err(Fault::PageFault {
                    reason: PfReason::NotPresent,
                    va: fva,
                    ..
                }) => {
                    self.handle_user_pf(pid, fva, write)?;
                    self.enter_user(pid);
                }
                Err(_) => return Err(SysError::Fault),
            }
        }
        Err(SysError::Fault)
    }
}

// ====================================================================
// TD live migration (§2.1's migration TD, platform-level scenario)
// ====================================================================

/// The destination's half of the migration handshake: its ephemeral
/// public key plus a CPU-signed quote whose report data binds *both*
/// ephemeral keys ([`migration_binding`]).
#[derive(Debug, Clone)]
pub struct MigrationOffer {
    /// The destination's ephemeral X25519 public key.
    pub dest_pub: [u8; 32],
    /// Quote over the key-exchange binding, signed by the hardware root.
    pub quote: Quote,
}

/// Accounting for one completed (or in-flight) outbound migration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// Page records sealed during pre-copy (full sweep + dirty rounds).
    pub precopy_pages: u64,
    /// Dirty-page rounds run between the full sweep and stop-and-copy.
    pub precopy_rounds: u64,
    /// Page records sealed inside the stop-and-copy window.
    pub stopcopy_pages: u64,
    /// State sections sealed (machine, monitor, kernel, ...).
    pub sections: u64,
    /// Total records sealed, `Begin` and `Finish` included.
    pub records_sealed: u64,
    /// Pending per-page shootdowns drained by the quiesce.
    pub drained_page_shootdowns: u64,
    /// Pending per-ASID shootdowns drained by the quiesce.
    pub drained_asid_shootdowns: u64,
}

/// An open outbound migration stream: the attested sealing channel plus
/// running accounting. Produced by [`Platform::migrate_begin`]; the
/// guest keeps running between [`Platform::migrate_precopy_round`]
/// calls, and [`Platform::migrate_finish`] closes the stream.
#[derive(Debug)]
pub struct OutboundMigration {
    source: MigrationSource,
    /// Accounting so far.
    pub report: MigrationReport,
}

impl Platform {
    /// Destination side, step 1: produce the attested half of the
    /// migration handshake. The quote binds the destination's ephemeral
    /// key and the source's (`source_pub`) into the TDREPORT's report
    /// data, so the source knows the attested TD terminates *this*
    /// channel and no other.
    #[must_use]
    pub fn migration_offer(&self, key: &MigrationKey, source_pub: &[u8; 32]) -> MigrationOffer {
        let binding = migration_binding(source_pub, &key.public());
        let report = self.cvm.tdx.attest.tdreport(binding);
        MigrationOffer {
            dest_pub: key.public(),
            quote: self.cvm.tdx.attest.quote(report),
        }
    }

    /// Source side, step 2: verify the destination's attestation, open
    /// the sealed stream, switch on dirty-page tracking and seal the
    /// `Begin` record plus the full resident-page sweep (pre-copy round
    /// zero). The guest keeps running afterwards; writes land in the
    /// dirty ledger for later rounds.
    ///
    /// # Errors
    /// [`PlatformError::Migration`] — quote rejection, binding mismatch,
    /// or a sealing failure. No platform state is disturbed on error
    /// (dirty tracking only engages after the handshake verifies).
    pub fn migrate_begin(
        &mut self,
        key: &MigrationKey,
        offer: &MigrationOffer,
    ) -> Result<(OutboundMigration, Vec<Vec<u8>>), PlatformError> {
        let root = self.cvm.tdx.attest.root_public();
        let expected = self.expected_chain();
        let mut source =
            MigrationSource::open(key, offer.dest_pub, &offer.quote, &root, &expected)?;
        self.cvm.machine.mem.set_dirty_tracking(true);
        let mut records = vec![source.begin()?];
        let resident: Vec<(u64, [u8; erebor_hw::PAGE_SIZE])> = self
            .cvm
            .machine
            .mem
            .resident_pages()
            .map(|(f, p)| (f, *p))
            .collect();
        let mut report = MigrationReport::default();
        for (frame, page) in &resident {
            records.push(source.page(*frame, page)?);
            report.precopy_pages += 1;
        }
        report.records_sealed = source.records_sealed();
        Ok((OutboundMigration { source, report }, records))
    }

    /// Source side, step 3 (repeatable): drain the dirty ledger and
    /// reseal exactly those pages. Frames dirtied but no longer resident
    /// travel as zero pages — on both ends a non-resident frame reads as
    /// zeroes, so the destination converges to the same contents.
    ///
    /// # Errors
    /// [`PlatformError::Migration`] on a sealing failure.
    pub fn migrate_precopy_round(
        &mut self,
        mig: &mut OutboundMigration,
    ) -> Result<Vec<Vec<u8>>, PlatformError> {
        let dirty = self.cvm.machine.mem.take_dirty();
        let mut records = Vec::with_capacity(dirty.len());
        let zero = [0u8; erebor_hw::PAGE_SIZE];
        for frame in dirty {
            let page = self
                .cvm
                .machine
                .mem
                .page_if_resident(frame)
                .copied()
                .unwrap_or(zero);
            records.push(mig.source.page(frame, &page)?);
            mig.report.precopy_pages += 1;
        }
        mig.report.precopy_rounds += 1;
        mig.report.records_sealed = mig.source.records_sealed();
        Ok(records)
    }

    /// Source side, final step: the bounded stop-and-copy window. The
    /// guest is quiesced — pending per-page and per-ASID shootdowns are
    /// drained so the staleness ledgers are empty — then the remaining
    /// dirty pages, every state section and the `Finish` record are
    /// sealed. The source stays fully live (and auditable) afterwards;
    /// only the dirty ledger is retired.
    ///
    /// # Errors
    /// [`PlatformError::Migration`] on any sealing failure.
    pub fn migrate_finish(
        &mut self,
        mut mig: OutboundMigration,
    ) -> Result<(Vec<Vec<u8>>, MigrationReport), PlatformError> {
        let (dp, da) = self.cvm.machine.quiesce_for_migration();
        mig.report.drained_page_shootdowns = dp as u64;
        mig.report.drained_asid_shootdowns = da as u64;
        mig.source.enter_stop_copy()?;

        let mut records = Vec::new();
        let zero = [0u8; erebor_hw::PAGE_SIZE];
        for frame in self.cvm.machine.mem.take_dirty() {
            let page = self
                .cvm
                .machine
                .mem
                .page_if_resident(frame)
                .copied()
                .unwrap_or(zero);
            records.push(mig.source.page(frame, &page)?);
            mig.report.stopcopy_pages += 1;
        }
        self.cvm.machine.mem.set_dirty_tracking(false);

        let sections: [(u8, Vec<u8>); 9] = [
            (section::MACHINE, self.cvm.machine.export_state()),
            (section::PHYS_META, self.cvm.machine.mem.export_meta()),
            (section::TDX, self.cvm.tdx.export_state()),
            (section::BACKEND, self.cvm.monitor.backend.export_state()),
            (section::MONITOR, self.cvm.monitor.export_state()),
            (section::KERNEL, self.kernel.export_state()),
            (section::LIBOS, export_registry(&self.registry)),
            (section::ROOT_SEED, self.root_seed.to_vec()),
            (section::PLATFORM, self.export_driver_state()),
        ];
        for (id, payload) in &sections {
            records.push(mig.source.section(*id, payload)?);
            mig.report.sections += 1;
        }
        records.push(mig.source.finish()?);
        mig.report.records_sealed = mig.source.records_sealed();
        Ok((records, mig.report))
    }

    /// One-shot outbound migration: [`Platform::migrate_begin`] straight
    /// into [`Platform::migrate_finish`] with no intervening pre-copy
    /// rounds (nothing runs in between, so the dirty ledger is empty).
    ///
    /// # Errors
    /// [`PlatformError::Migration`].
    pub fn migrate_to(
        &mut self,
        key: &MigrationKey,
        offer: &MigrationOffer,
    ) -> Result<(Vec<Vec<u8>>, MigrationReport), PlatformError> {
        let (mig, mut records) = self.migrate_begin(key, offer)?;
        let (tail, report) = self.migrate_finish(mig)?;
        records.extend(tail);
        Ok((records, report))
    }

    /// Destination side, final step: verify and stage the whole record
    /// stream, then import it **atomically**. Every section is parsed
    /// and cross-validated *before* any platform state is touched, so a
    /// damaged stream — dropped, duplicated, replayed, corrupted or
    /// truncated records — yields a typed error and leaves this platform
    /// exactly as it booted: there is no half-imported destination.
    ///
    /// Non-architectural counters (frame-allocator scan stats, monitor
    /// lookup stats, permission-decision caches, batch fast-path
    /// counters) start fresh on the imported machine; architectural
    /// state — registers, MSRs, TLBs, sEPT, the EMC ledger, sandbox
    /// table, sessions, tasks — is byte-identical to the source.
    ///
    /// # Errors
    /// [`PlatformError::Migration`] naming the first fault.
    pub fn migrate_from(
        &mut self,
        key: &MigrationKey,
        source_pub: [u8; 32],
        records: &[Vec<u8>],
    ) -> Result<(), PlatformError> {
        let mut dest = MigrationDest::open(key, source_pub);
        for record in records {
            dest.feed(record)?;
        }
        let snap = dest.into_snapshot()?;

        // Stage 1: parse and cross-validate everything. No `self` writes.
        let root_seed: [u8; 32] = {
            let mut r = WireReader::new(snap.section(section::ROOT_SEED, "missing root seed")?);
            let seed = r.array()?;
            r.finish()?;
            seed
        };
        let machine = erebor_hw::cpu::Machine::import_state(
            snap.section(section::MACHINE, "missing machine section")?,
            &snap.pages,
        )?;
        if snap.section(section::PHYS_META, "missing phys meta")? != machine.mem.export_meta() {
            return Err(MigrationError::Protocol("phys metadata mismatch").into());
        }
        let tdx = erebor_tdx::TdxModule::import_state(
            root_seed,
            snap.section(section::TDX, "missing tdx section")?,
        )?;
        check_pages_private(&tdx.sept, &snap.pages)?;
        let monitor = erebor_core::monitor::Monitor::import_state(
            snap.section(section::MONITOR, "missing monitor section")?,
        )?;
        if snap.section(section::BACKEND, "missing backend section")?
            != monitor.backend.export_state()
        {
            return Err(MigrationError::Protocol("backend section mismatch").into());
        }
        let kernel = Kernel::import_state(snap.section(section::KERNEL, "missing kernel section")?)?;
        let registry =
            import_registry(snap.section(section::LIBOS, "missing libos section")?)?;
        let driver = DriverState::import(
            snap.section(section::PLATFORM, "missing platform section")?,
            machine.cpus.len(),
        )?;

        // Stage 2: commit. Infallible from here on.
        self.cvm.machine = machine;
        self.cvm.tdx = tdx;
        self.cvm.monitor = monitor;
        self.kernel = kernel;
        self.registry = registry;
        self.root_seed = root_seed;
        self.paravisor = driver.paravisor;
        self.cpu = driver.cpu;
        self.last_timer = driver.last_timer;
        self.device_period_ticks = driver.device_period_ticks;
        self.ticks_since_device = driver.ticks_since_device;
        self.reclaim_period_ticks = driver.reclaim_period_ticks;
        self.reclaim_pages_per_pass = driver.reclaim_pages_per_pass;
        self.ticks_since_reclaim = driver.ticks_since_reclaim;
        Ok(())
    }

    /// Serialise the platform-driver state (`section::PLATFORM`): timer
    /// phase, device/reclaim cadence, the active core. None of it is
    /// architectural, but same-seed trace equivalence requires the
    /// execution driver to resume mid-quantum exactly where the source
    /// stopped.
    fn export_driver_state(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.bool(self.paravisor);
        w.usize(self.cpu);
        w.seq(self.last_timer.len());
        for t in &self.last_timer {
            w.u64(*t);
        }
        w.u64(self.device_period_ticks);
        w.seq(self.ticks_since_device.len());
        for t in &self.ticks_since_device {
            w.u64(*t);
        }
        w.u64(self.reclaim_period_ticks);
        w.u64(self.reclaim_pages_per_pass);
        w.u64(self.ticks_since_reclaim);
        w.finish()
    }
}

/// Parsed `section::PLATFORM` payload, validated against the imported
/// machine's core count before anything is committed.
struct DriverState {
    paravisor: bool,
    cpu: usize,
    last_timer: Vec<u64>,
    device_period_ticks: u64,
    ticks_since_device: Vec<u64>,
    reclaim_period_ticks: u64,
    reclaim_pages_per_pass: u64,
    ticks_since_reclaim: u64,
}

impl DriverState {
    fn import(bytes: &[u8], cores: usize) -> Result<DriverState, WireError> {
        let mut r = WireReader::new(bytes);
        let paravisor = r.bool()?;
        let cpu = r.usize()?;
        if cpu >= cores {
            return Err(WireError::BadValue { what: "active cpu" });
        }
        let n = r.seq(8)?;
        if n != cores {
            return Err(WireError::BadValue {
                what: "timer vector length",
            });
        }
        let mut last_timer = Vec::with_capacity(n);
        for _ in 0..n {
            last_timer.push(r.u64()?);
        }
        let device_period_ticks = r.u64()?;
        let n = r.seq(8)?;
        if n != cores {
            return Err(WireError::BadValue {
                what: "device tick vector length",
            });
        }
        let mut ticks_since_device = Vec::with_capacity(n);
        for _ in 0..n {
            ticks_since_device.push(r.u64()?);
        }
        let reclaim_period_ticks = r.u64()?;
        let reclaim_pages_per_pass = r.u64()?;
        let ticks_since_reclaim = r.u64()?;
        r.finish()?;
        Ok(DriverState {
            paravisor,
            cpu,
            last_timer,
            device_period_ticks,
            ticks_since_device,
            reclaim_period_ticks,
            reclaim_pages_per_pass,
            ticks_since_reclaim,
        })
    }
}

/// A [`Sys`] implementation driving one process on the platform.
pub struct ProcHandle<'a> {
    platform: &'a mut Platform,
    /// The process this handle drives.
    pub pid: Pid,
}

impl Sys for ProcHandle<'_> {
    fn syscall(&mut self, syscall_nr: u64, args: [u64; 6]) -> Result<u64, SysError> {
        let p = &mut *self.platform;
        let pid = self.pid;
        p.tick(pid)?;
        p.ensure_current(pid)?;
        p.enter_user(pid);
        // Linux register convention: rax=nr, rdi/rsi/rdx/r10/r8/r9.
        {
            let ctx = &mut p.cvm.machine.cpus[p.cpu].ctx;
            ctx.gpr[0] = syscall_nr;
            ctx.gpr[7] = args[0];
            ctx.gpr[6] = args[1];
            ctx.gpr[2] = args[2];
            ctx.gpr[10] = args[3];
            ctx.gpr[8] = args[4];
            ctx.gpr[9] = args[5];
        }
        p.cvm.machine.syscall(p.cpu).map_err(|_| SysError::Fault)?;
        let sandbox = p.sandbox_of(pid);
        let rax = if p.cvm.monitor.cfg.monitor_present() && p.cvm.monitor.cfg.exit_protection() {
            let decision =
                p.cvm
                    .monitor
                    .on_syscall(&mut p.cvm.machine, &mut p.cvm.tdx, p.cpu, sandbox);
            match decision {
                ExitDecision::ForwardToKernel { .. } => {
                    let prev = p.cvm.machine.cycles.set_bucket(Bucket::Kernel);
                    let (mut hw, kernel) = p.parts();
                    let rax = kernel.handle_syscall(&mut hw, pid, syscall_nr, args);
                    p.cvm.machine.cycles.set_bucket(prev);
                    rax
                }
                ExitDecision::Handled { rax } => rax,
                ExitDecision::Killed { reason } => return Err(SysError::Killed(reason)),
            }
        } else {
            let prev = p.cvm.machine.cycles.set_bucket(Bucket::Kernel);
            let (mut hw, kernel) = p.parts();
            let rax = kernel.handle_syscall(&mut hw, pid, syscall_nr, args);
            p.cvm.machine.cycles.set_bucket(prev);
            rax
        };
        p.cvm.machine.sysret(p.cpu).map_err(|_| SysError::Fault)?;
        let signed = rax as i64;
        if (-4095..0).contains(&signed) {
            return Err(SysError::Errno(signed));
        }
        Ok(rax)
    }

    fn touch(&mut self, va: u64, write: bool) -> Result<(), SysError> {
        self.platform.user_access(self.pid, va, write)
    }

    fn read_mem(&mut self, va: u64, buf: &mut [u8]) -> Result<(), SysError> {
        if buf.is_empty() {
            return Ok(());
        }
        let p = &mut *self.platform;
        let pid = self.pid;
        let mut page = VirtAddr(va).page_base().0;
        let end = va + buf.len() as u64 - 1;
        while page <= end {
            p.user_access(pid, page, false)?;
            page += erebor_hw::PAGE_SIZE as u64;
        }
        p.enter_user(pid);
        for _retry in 0..4 {
            match p.cvm.machine.read(p.cpu, VirtAddr(va), buf) {
                Ok(()) => return Ok(()),
                Err(Fault::PageFault {
                    reason: PfReason::NotPresent,
                    va: fva,
                    ..
                }) => {
                    // A reclaim pass raced the copy; fault the page back.
                    p.handle_user_pf(pid, fva, false)?;
                    p.enter_user(pid);
                }
                Err(_) => return Err(SysError::Fault),
            }
        }
        Err(SysError::Fault)
    }

    fn write_mem(&mut self, va: u64, data: &[u8]) -> Result<(), SysError> {
        if data.is_empty() {
            return Ok(());
        }
        let p = &mut *self.platform;
        let pid = self.pid;
        let mut page = VirtAddr(va).page_base().0;
        let end = va + data.len() as u64 - 1;
        while page <= end {
            p.user_access(pid, page, true)?;
            page += erebor_hw::PAGE_SIZE as u64;
        }
        p.enter_user(pid);
        for _retry in 0..4 {
            match p.cvm.machine.write(p.cpu, VirtAddr(va), data) {
                Ok(()) => return Ok(()),
                Err(Fault::PageFault {
                    reason: PfReason::NotPresent,
                    va: fva,
                    ..
                }) => {
                    p.handle_user_pf(pid, fva, true)?;
                    p.enter_user(pid);
                }
                Err(_) => return Err(SysError::Fault),
            }
        }
        Err(SysError::Fault)
    }

    fn compute(&mut self, units: u64) -> Result<(), SysError> {
        // Saturating: a pathological `units` must pin the charge, not
        // wrap it into a tiny (or debug-panicking) cost.
        let cost = units.saturating_mul(self.platform.cvm.machine.costs.compute_unit);
        self.platform
            .cvm
            .machine
            .cycles
            .charge_to(Bucket::Sandbox, cost);
        self.platform.tick(self.pid)
    }

    fn cpuid(&mut self, leaf: u32) -> Result<u32, SysError> {
        let p = &mut *self.platform;
        let pid = self.pid;
        p.tick(pid)?;
        p.ensure_current(pid)?;
        p.enter_user(pid);
        let (_handler, saved) = p
            .cvm
            .tdx
            .inject_ve(&mut p.cvm.machine, p.cpu, VeReason::Cpuid)
            .map_err(|_| SysError::Fault)?;
        let sandbox = p.sandbox_of(pid);
        let eax = if p.cvm.monitor.cfg.monitor_present() && p.cvm.monitor.cfg.exit_protection() {
            let decision = p.cvm.monitor.on_ve(
                &mut p.cvm.machine,
                &mut p.cvm.tdx,
                p.cpu,
                sandbox,
                VeReason::Cpuid,
                leaf,
            );
            match decision {
                ExitDecision::Handled { rax } => rax as u32,
                ExitDecision::Killed { reason } => return Err(SysError::Killed(reason)),
                ExitDecision::ForwardToKernel { .. } => {
                    // Native path: kernel #VE handler delegates the GHCI
                    // round trip to the monitor.
                    let prev = p.cvm.machine.cycles.set_bucket(Bucket::Kernel);
                    let (mut hw, kernel) = p.parts();
                    kernel.handle_ve_native(&mut hw);
                    hw.machine.cycles.set_bucket(prev);
                    match hw.monitor.emc(
                        hw.machine,
                        hw.tdx,
                        hw.cpu,
                        EmcRequest::CpuidEmulate { leaf },
                    ) {
                        Ok(EmcResponse::Cpuid(v)) => v[0],
                        _ => 0,
                    }
                }
            }
        } else if p.cvm.monitor.cfg.monitor_present() {
            // Monitor present but exit interposition disabled: the kernel's
            // #VE handler still needs the monitor for GHCI.
            let prev = p.cvm.machine.cycles.set_bucket(Bucket::Kernel);
            let (mut hw, kernel) = p.parts();
            kernel.handle_ve_native(&mut hw);
            hw.machine.cycles.set_bucket(prev);
            match hw.monitor.emc(
                hw.machine,
                hw.tdx,
                hw.cpu,
                EmcRequest::CpuidEmulate { leaf },
            ) {
                Ok(EmcResponse::Cpuid(v)) => v[0],
                _ => 0,
            }
        } else {
            // Native CVM: the privileged kernel performs the tdcall itself.
            let (mut hw, kernel) = p.parts();
            hw.machine.cycles.set_bucket(Bucket::Kernel);
            kernel.handle_ve_native(&mut hw);
            hw.machine.cpus[hw.cpu].domain = Domain::Kernel;
            hw.machine.cpus[hw.cpu].mode = CpuMode::Supervisor;
            match tdcall(
                hw.tdx,
                hw.machine,
                hw.cpu,
                TdcallLeaf::VmCall(VmcallOp::Cpuid { leaf }),
            ) {
                Ok(TdcallResult::Cpuid(v)) => v[0],
                _ => 0,
            }
        };
        p.cvm
            .machine
            .iret(p.cpu, saved)
            .map_err(|_| SysError::Fault)?;
        Ok(eax)
    }

    fn cycles(&self) -> u64 {
        self.platform.cvm.machine.cycles.total()
    }
}

impl core::fmt::Debug for ProcHandle<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ProcHandle")
            .field("pid", &self.pid)
            .finish_non_exhaustive()
    }
}
