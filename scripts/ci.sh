#!/usr/bin/env bash
# Tier-1 verification for the Erebor reproduction — fully offline.
#
#   scripts/ci.sh          build + test (the tier-1 gate)
#   scripts/ci.sh --smoke  additionally run the bench binaries in smoke
#                          mode (EREBOR_BENCH_SMOKE=1, reduced iteration
#                          counts) and check they emit valid JSON on
#                          stdout.
#   scripts/ci.sh --chaos  additionally run the deterministic chaos
#                          campaign (fixed seed, release mode). Any
#                          invariant violation fails the stage and the
#                          test output prints the replay line
#                          (EREBOR_CHAOS_SEED=<case_seed> ops=[...])
#                          plus the shrunk event trace.
#
# The workspace has zero external dependencies (see crates/testkit), so
# everything here must succeed with the network disabled.
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
CHAOS=0
for arg in "$@"; do
    case "$arg" in
        --smoke) SMOKE=1 ;;
        --chaos) CHAOS=1 ;;
        *)
            echo "usage: scripts/ci.sh [--smoke] [--chaos]" >&2
            exit 2
            ;;
    esac
done

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [[ "$CHAOS" == 1 ]]; then
    # Fixed-seed fault-injection campaign (see DESIGN.md §"Chaos" and
    # EXPERIMENTS.md). The budget is deliberately explicit so CI always
    # tests the same schedule; override the seed to explore, or replay a
    # failure with the EREBOR_CHAOS_SEED printed in its report.
    echo "==> chaos: cargo test --release -p erebor-chaos"
    cargo test --release -q -p erebor-chaos

    echo "==> chaos: cargo test --release --test chaos (fixed-seed campaign)"
    EREBOR_CHAOS_CASES="${EREBOR_CHAOS_CASES:-500}" \
        cargo test --release -q --test chaos
fi

if [[ "$SMOKE" == 1 ]]; then
    export EREBOR_BENCH_SMOKE=1

    check_json() {
        # Minimal structural check without external tools: a JSON object
        # document spanning exactly the whole stdout payload.
        local out="$1" bin="$2"
        if [[ "$out" != \{* || "$out" != *\} ]]; then
            echo "error: $bin stdout is not a JSON object:" >&2
            echo "$out" >&2
            exit 1
        fi
        if command -v python3 >/dev/null 2>&1; then
            echo "$out" | python3 -c 'import json,sys; json.load(sys.stdin)' \
                || { echo "error: $bin stdout is not valid JSON" >&2; exit 1; }
        fi
    }

    for bin in table3 fig8; do
        echo "==> smoke: cargo run --release -p erebor-bench --bin $bin"
        out="$(cargo run --release -q -p erebor-bench --bin "$bin")"
        check_json "$out" "$bin"
        # The stats block (TLB + monitor counters) must be present and
        # structurally sound.
        if [[ "$out" != *'"stats"'* || "$out" != *'"tlb_hit_rate"'* ]]; then
            echo "error: $bin stdout lacks the stats block" >&2
            exit 1
        fi
        echo "    $bin: JSON OK (${#out} bytes)"
    done

    echo "==> smoke: cargo bench (testkit harness, reduced samples)"
    cargo bench -p erebor-bench --bench crypto >/dev/null

    echo "==> smoke: cargo bench paging (TLB translation-path checks)"
    paging_out="$(cargo bench -p erebor-bench --bench paging 2>/dev/null | tail -n 1)"
    check_json "$paging_out" "paging"
    if command -v python3 >/dev/null 2>&1; then
        EREBOR_PAGING_JSON="$paging_out" python3 - <<'PY'
import json, os
meta = json.loads(os.environ["EREBOR_PAGING_JSON"])["meta"]
hit_rate = meta["tlb_hit_rate"]
hit = meta["sim_cycles_per_probe_tlb_hit"]
cold = meta["sim_cycles_per_probe_tlb_cold"]
assert hit_rate > 0.5, f"TLB hit rate too low: {hit_rate}"
assert cold >= 5 * hit, f"TLB hit not >=5x cheaper: hit={hit} cold={cold}"
print(f"    paging: hit rate {hit_rate:.2f}, {hit:.0f} vs {cold:.0f} sim cycles/probe")
PY
    else
        # Fallback without python3: extract the two cycle counts with sed
        # and compare integer parts.
        hit="$(echo "$paging_out" | sed -n 's/.*"sim_cycles_per_probe_tlb_hit":\([0-9]*\).*/\1/p')"
        cold="$(echo "$paging_out" | sed -n 's/.*"sim_cycles_per_probe_tlb_cold":\([0-9]*\).*/\1/p')"
        rate_tenths="$(echo "$paging_out" | sed -n 's/.*"tlb_hit_rate":0\.\([0-9]\).*/\1/p')"
        if [[ -z "$hit" || -z "$cold" || "$cold" -lt $((5 * hit)) ]]; then
            echo "error: TLB hit not >=5x cheaper (hit=$hit cold=$cold)" >&2
            exit 1
        fi
        if [[ -z "$rate_tenths" || "$rate_tenths" -lt 5 ]]; then
            echo "error: TLB hit rate too low" >&2
            exit 1
        fi
        echo "    paging: hit=$hit cold=$cold sim cycles/probe"
    fi
fi

echo "==> ci.sh: all checks passed"
