#!/usr/bin/env bash
# Tier-1 verification for the Erebor reproduction — fully offline.
#
#   scripts/ci.sh          build + clippy + test (the tier-1 gate)
#   scripts/ci.sh --smoke  additionally run the bench binaries in smoke
#                          mode (EREBOR_BENCH_SMOKE=1, reduced iteration
#                          counts) and check they emit valid JSON on
#                          stdout.
#   scripts/ci.sh --chaos  additionally run the deterministic chaos
#                          campaign (fixed seed, release mode). Any
#                          invariant violation fails the stage and the
#                          test output prints the replay line
#                          (EREBOR_CHAOS_SEED=<case_seed> ops=[...])
#                          plus the shrunk event trace and the machine's
#                          last cycle-stamped trace records.
#   scripts/ci.sh --trace  additionally run the trace exporter and
#                          validate the deterministic event-trace JSON:
#                          schema, byte-identical across two runs, a
#                          non-empty monitor bucket, and attribution
#                          buckets summing to the cycle total.
#   scripts/ci.sh --analyze  additionally run the static-analysis
#                          passes: the state auditor over the boot
#                          snapshot (zero findings, bounded work), the
#                          privilege-separation auditor over the whole
#                          workspace source (zero findings against the
#                          DESIGN.md §14 manifest, zero waivers — a
#                          priv:allow comment that suppresses anything
#                          fails the stage), the red-team
#                          auditor/race-detector suite, and a 100-case
#                          chaos campaign with the auditor and the
#                          happens-before race detector as per-case
#                          invariants. The source lint always runs in
#                          the default gate.
#   scripts/ci.sh --fastpath  additionally run the batched-execution
#                          fast-path gate: the differential equivalence
#                          suite (cache on vs off, byte-identical
#                          snapshots/traces/attribution across platform
#                          modes) and the fastpath bench, persisting its
#                          JSON to BENCH_fastpath.json and asserting the
#                          meta floors (>=5x events/sec over the slow
#                          path on the paging workload, >=0.9 decision
#                          hit rate, a true ablation on the off run).
#   scripts/ci.sh --fleet  additionally run the fleet-scale serving
#                          gate: the fleet equivalence suite (allocator
#                          and lookup toggles on vs off, byte-identical
#                          campaigns), the coalesced-shootdown chaos
#                          campaign, and the fleet bench in smoke shape,
#                          persisting its JSON to BENCH_fleet.json and
#                          re-asserting the meta floors (determinism
#                          == 1.0, speedup >= the JSON's self-described
#                          floor, a measured gate-latency tail).
#   scripts/ci.sh --keyed  additionally run the isolation-backend gate:
#                          the keyed integration suite (PKS exhaustion
#                          boundary, 256-sandbox TME-MK confinement,
#                          the kill-fence ablation) and the keyed bench,
#                          persisting BENCH_keyed.json and re-asserting
#                          its floors (>= 256 concurrently-live keyed
#                          domains; TME-MK gate cost within the JSON's
#                          self-described ceiling of the PKS gate cost
#                          at the same shape).
#   scripts/ci.sh --migrate  additionally run the live-migration gate:
#                          the migration equivalence suite (same-seed
#                          migrated vs unmigrated byte-identical, fresh
#                          non-architectural counters, domain-pool
#                          round-trip on both backends, clean fleet
#                          audit) with a >=200-case sealed-channel
#                          chaos campaign, and the migrate bench,
#                          persisting BENCH_migrate.json and
#                          re-asserting its floors (pages/sec >= the
#                          JSON's self-described floor, stop-and-copy
#                          pause under its ceiling, byte-identical
#                          import of the timed stream).
#
# Machine-readable output convention: every JSON-emitting binary prints
# its document on a single stdout line prefixed `EREBOR_JSON:`. CI greps
# for the marker instead of assuming document position, and fails loudly
# when it is absent.
#
# The workspace has zero external dependencies (see crates/testkit), so
# everything here must succeed with the network disabled.
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
CHAOS=0
TRACE=0
ANALYZE=0
FASTPATH=0
FLEET=0
KEYED=0
MIGRATE=0
for arg in "$@"; do
    case "$arg" in
        --smoke) SMOKE=1 ;;
        --chaos) CHAOS=1 ;;
        --trace) TRACE=1 ;;
        --analyze) ANALYZE=1 ;;
        --fastpath) FASTPATH=1 ;;
        --fleet) FLEET=1 ;;
        --keyed) KEYED=1 ;;
        --migrate) MIGRATE=1 ;;
        *)
            echo "usage: scripts/ci.sh [--smoke] [--chaos] [--trace] [--analyze] [--fastpath] [--fleet] [--keyed] [--migrate]" >&2
            exit 2
            ;;
    esac
done

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

# The hermetic source lint is part of the default gate: panic-free
# library code, saturating counters, no relaxed atomics, EREBOR_JSON:
# markers in every JSON-emitting bin. Non-zero exit on any finding.
echo "==> lint: cargo run --release -p erebor-analyze --bin lint"
cargo run --release -q -p erebor-analyze --bin lint

# Extract the EREBOR_JSON:-marked document from a command's stdout.
# Fails the run loudly when the marker is missing — a binary that stopped
# emitting its document must break CI, not silently pass a stale check.
extract_json() {
    local out="$1" bin="$2" line
    if ! line="$(printf '%s\n' "$out" | grep -m1 '^EREBOR_JSON:')"; then
        echo "error: $bin stdout has no EREBOR_JSON: marker line" >&2
        printf '%s\n' "$out" >&2
        exit 1
    fi
    printf '%s' "${line#EREBOR_JSON:}"
}

check_json() {
    # Minimal structural check without external tools: a JSON object
    # document spanning exactly the whole payload.
    local out="$1" bin="$2"
    if [[ "$out" != \{* || "$out" != *\} ]]; then
        echo "error: $bin JSON document is not a JSON object:" >&2
        echo "$out" >&2
        exit 1
    fi
    if command -v python3 >/dev/null 2>&1; then
        echo "$out" | python3 -c 'import json,sys; json.load(sys.stdin)' \
            || { echo "error: $bin document is not valid JSON" >&2; exit 1; }
    fi
}

if [[ "$CHAOS" == 1 ]]; then
    # Fixed-seed fault-injection campaign (see DESIGN.md §"Chaos" and
    # EXPERIMENTS.md). The budget is deliberately explicit so CI always
    # tests the same schedule; override the seed to explore, or replay a
    # failure with the EREBOR_CHAOS_SEED printed in its report.
    echo "==> chaos: cargo test --release -p erebor-chaos"
    cargo test --release -q -p erebor-chaos

    echo "==> chaos: cargo test --release --test chaos (fixed-seed campaign)"
    EREBOR_CHAOS_CASES="${EREBOR_CHAOS_CASES:-500}" \
        cargo test --release -q --test chaos
fi

if [[ "$TRACE" == 1 ]]; then
    echo "==> trace: cargo run --release -p erebor-bench --bin trace (twice)"
    trace_a="$(extract_json "$(cargo run --release -q -p erebor-bench --bin trace)" trace)"
    trace_b="$(extract_json "$(cargo run --release -q -p erebor-bench --bin trace)" trace)"
    check_json "$trace_a" "trace"
    if [[ "$trace_a" != "$trace_b" ]]; then
        echo "error: trace JSON differs between two identical runs" >&2
        exit 1
    fi
    if command -v python3 >/dev/null 2>&1; then
        EREBOR_TRACE_JSON="$trace_a" python3 - <<'PY'
import json, os
doc = json.loads(os.environ["EREBOR_TRACE_JSON"])
attr, trace = doc["attribution"], doc["trace"]
buckets = ["monitor", "kernel", "sandbox", "tdcall", "page_walk", "other"]
assert sum(attr[b] for b in buckets) == attr["total"] == doc["cycles"], \
    "attribution buckets must sum to the cycle total"
assert attr["monitor"] > 0, "monitor bucket empty: gates charged nothing"
assert trace["recorded"] > 0 and trace["cores"], "trace buffer is empty"
for core in trace["cores"]:
    for rec in core:
        assert {"seq", "cycles", "cpu", "type"} <= rec.keys(), f"bad record {rec}"
kinds = {r["type"] for core in trace["cores"] for r in core}
assert "gate_enter" in kinds and "gate_exit" in kinds, f"no gate events in {kinds}"
print(f"    trace: {trace['recorded']} events, monitor bucket "
      f"{attr['monitor']}/{attr['total']} cycles, kinds={sorted(kinds)}")
PY
    else
        # Fallback without python3: the structural invariants are also
        # asserted by tests/determinism.rs; here just require the blocks.
        for key in '"attribution"' '"monitor"' '"trace"' '"gate_enter"'; do
            if [[ "$trace_a" != *"$key"* ]]; then
                echo "error: trace JSON lacks $key" >&2
                exit 1
            fi
        done
        echo "    trace: JSON OK (${#trace_a} bytes)"
    fi
fi

if [[ "$SMOKE" == 1 ]]; then
    export EREBOR_BENCH_SMOKE=1

    for bin in table3 fig8; do
        echo "==> smoke: cargo run --release -p erebor-bench --bin $bin"
        out="$(cargo run --release -q -p erebor-bench --bin "$bin")"
        json="$(extract_json "$out" "$bin")"
        check_json "$json" "$bin"
        # The stats block (TLB + monitor counters + cycle attribution)
        # must be present and structurally sound.
        for key in '"stats"' '"tlb_hit_rate"' '"attribution"'; do
            if [[ "$json" != *"$key"* ]]; then
                echo "error: $bin stdout lacks $key in the stats block" >&2
                exit 1
            fi
        done
        echo "    $bin: JSON OK (${#json} bytes)"
    done

    echo "==> smoke: cargo bench (testkit harness, reduced samples)"
    cargo bench -p erebor-bench --bench crypto >/dev/null

    echo "==> smoke: cargo bench paging (TLB translation-path checks)"
    paging_raw="$(cargo bench -p erebor-bench --bench paging 2>/dev/null)"
    paging_out="$(extract_json "$paging_raw" "paging")"
    check_json "$paging_out" "paging"
    if command -v python3 >/dev/null 2>&1; then
        EREBOR_PAGING_JSON="$paging_out" python3 - <<'PY'
import json, os
meta = json.loads(os.environ["EREBOR_PAGING_JSON"])["meta"]
hit_rate = meta["tlb_hit_rate"]
hit = meta["sim_cycles_per_probe_tlb_hit"]
cold = meta["sim_cycles_per_probe_tlb_cold"]
assert hit_rate > 0.5, f"TLB hit rate too low: {hit_rate}"
assert cold >= 5 * hit, f"TLB hit not >=5x cheaper: hit={hit} cold={cold}"
print(f"    paging: hit rate {hit_rate:.2f}, {hit:.0f} vs {cold:.0f} sim cycles/probe")
PY
    else
        # Fallback without python3: extract the two cycle counts with sed
        # and compare integer parts.
        hit="$(echo "$paging_out" | sed -n 's/.*"sim_cycles_per_probe_tlb_hit":\([0-9]*\).*/\1/p')"
        cold="$(echo "$paging_out" | sed -n 's/.*"sim_cycles_per_probe_tlb_cold":\([0-9]*\).*/\1/p')"
        rate_tenths="$(echo "$paging_out" | sed -n 's/.*"tlb_hit_rate":0\.\([0-9]\).*/\1/p')"
        if [[ -z "$hit" || -z "$cold" || "$cold" -lt $((5 * hit)) ]]; then
            echo "error: TLB hit not >=5x cheaper (hit=$hit cold=$cold)" >&2
            exit 1
        fi
        if [[ -z "$rate_tenths" || "$rate_tenths" -lt 5 ]]; then
            echo "error: TLB hit rate too low" >&2
            exit 1
        fi
        echo "    paging: hit=$hit cold=$cold sim cycles/probe"
    fi
fi

if [[ "$ANALYZE" == 1 ]]; then
    # Static-analysis stage (see DESIGN.md §9 and §14). Four passes:
    #   1. the privilege-separation auditor over the whole workspace
    #      source — zero findings against the declared manifest and zero
    #      effective waivers (the bin exits non-zero on either);
    #   2. state auditor over a freshly booted Full snapshot — zero
    #      findings, and the walked state must stay under a fixed
    #      simulated-work budget so the per-chaos-case audit stays cheap;
    #   3. the red-team suite (tests/analyze.rs): one corrupted snapshot
    #      per auditor check asserting exactly that finding, plus the
    #      synthetic and end-to-end stale-TLB races;
    #   4. a fixed-seed chaos campaign with the auditor and the
    #      happens-before race detector wired in as per-case invariants.
    echo "==> analyze: privilege-separation auditor (zero findings, zero waivers)"
    if ! priv_raw="$(cargo run --release -q -p erebor-analyze --bin privilege)"; then
        # Re-print the findings the capture swallowed before failing.
        printf '%s\n' "$priv_raw" >&2
        echo "error: privilege boundary violated (see findings above)" >&2
        exit 1
    fi
    priv_out="$(extract_json "$priv_raw" "privilege")"
    check_json "$priv_out" "privilege"
    if command -v python3 >/dev/null 2>&1; then
        EREBOR_PRIV_JSON="$priv_out" python3 - <<'PY'
import json, os
doc = json.loads(os.environ["EREBOR_PRIV_JSON"])
assert doc["count"] == 0, f"privilege findings: {doc['findings']}"
assert doc["waivers"] == 0, f"{doc['waivers']} waiver(s) in the tree"
assert doc["privileged_modules"] >= 4, (
    f"manifest shrank: only {doc['privileged_modules']} privileged module(s) matched")
assert doc["files_scanned"] > 100, f"scan too small: {doc['files_scanned']} files"
priv = {m: n for m, n in doc["graph"].items()
        if m.startswith(("erebor-hw", "erebor-core", "erebor-tdx"))}
print(f"    privilege: clean boundary over {doc['files_scanned']} files "
      f"({doc['lines_scanned']} lines), {doc['privileged_modules']} privileged "
      f"module(s), {sum(priv.values())} privileged-core references")
PY
    else
        # Fallback without python3: extract the counters with sed.
        priv_count="$(echo "$priv_out" | sed -n 's/.*"count":\([0-9]*\).*/\1/p')"
        priv_waivers="$(echo "$priv_out" | sed -n 's/.*"waivers":\([0-9]*\).*/\1/p')"
        priv_files="$(echo "$priv_out" | sed -n 's/.*"files_scanned":\([0-9]*\).*/\1/p')"
        if [[ -z "$priv_count" || "$priv_count" != 0 ]]; then
            echo "error: privilege boundary violated (count=$priv_count)" >&2
            exit 1
        fi
        if [[ -z "$priv_waivers" || "$priv_waivers" != 0 ]]; then
            echo "error: privilege waivers present (waivers=$priv_waivers)" >&2
            exit 1
        fi
        echo "    privilege: clean boundary over $priv_files files"
    fi

    echo "==> analyze: cargo bench analyze (auditor budget)"
    analyze_raw="$(EREBOR_BENCH_SMOKE=1 cargo bench -p erebor-bench --bench analyze 2>/dev/null)"
    analyze_out="$(extract_json "$analyze_raw" "analyze")"
    check_json "$analyze_out" "analyze"
    if command -v python3 >/dev/null 2>&1; then
        EREBOR_ANALYZE_JSON="$analyze_out" python3 - <<'PY'
import json, os
meta = json.loads(os.environ["EREBOR_ANALYZE_JSON"])["meta"]
findings = meta["audit_findings"]
work = meta["audit_work"]
assert findings == 0, f"boot snapshot audit not clean: {findings} finding(s)"
assert work <= 120_000, f"audit walked too much state: work={work} > 120000"
assert meta["audit_roots_walked"] >= 1, "auditor walked no page-table roots"
assert meta["race_trace_records"] > 0, "race-detector bench trace is empty"
assert meta["privilege_findings"] == 0, "bench privilege scan found violations"
assert meta["privilege_waivers"] == 0, "bench privilege scan saw waivers"
assert meta["privilege_work"] <= 200_000, (
    f"privilege scan over budget: {meta['privilege_work']:.0f} > 200000")
print(f"    analyze: audit clean, work {work:.0f}/120000 "
      f"({meta['audit_pte_reads']:.0f} PTE reads, "
      f"{meta['audit_leaf_mappings']:.0f} leaf mappings, "
      f"{meta['audit_roots_walked']:.0f} roots)")
PY
    else
        # Fallback without python3: extract the integer meta fields with
        # sed and compare directly.
        findings="$(echo "$analyze_out" | sed -n 's/.*"audit_findings":\([0-9]*\).*/\1/p')"
        work="$(echo "$analyze_out" | sed -n 's/.*"audit_work":\([0-9]*\).*/\1/p')"
        if [[ -z "$findings" || "$findings" != 0 ]]; then
            echo "error: boot snapshot audit not clean (findings=$findings)" >&2
            exit 1
        fi
        if [[ -z "$work" || "$work" -gt 120000 ]]; then
            echo "error: audit walked too much state (work=$work > 120000)" >&2
            exit 1
        fi
        echo "    analyze: audit clean, work $work/120000"
    fi

    echo "==> analyze: cargo test --release --test analyze (red team + campaign)"
    EREBOR_CHAOS_CASES="${EREBOR_CHAOS_CASES:-100}" \
        cargo test --release -q --test analyze
fi

if [[ "$FASTPATH" == 1 ]]; then
    # Batched-execution fast-path gate (see DESIGN.md §10). Two halves:
    #   1. the differential equivalence suite — cache on vs off must be
    #      byte-identical in snapshots, traces and attribution across
    #      platform modes (the soundness proof for the memoization);
    #   2. the fastpath bench — persists BENCH_fastpath.json and asserts
    #      the perf floors both in-process (the bench panics below its
    #      own floors) and here from the persisted document.
    echo "==> fastpath: cargo test --release --test fastpath_equivalence"
    cargo test --release -q --test fastpath_equivalence

    echo "==> fastpath: cargo bench fastpath (persisting BENCH_fastpath.json)"
    fastpath_raw="$(EREBOR_BENCH_SMOKE=1 EREBOR_BENCH_JSON="$PWD/BENCH_fastpath.json" \
        cargo bench -p erebor-bench --bench fastpath 2>/dev/null)"
    fastpath_out="$(extract_json "$fastpath_raw" "fastpath")"
    check_json "$fastpath_out" "fastpath"
    if [[ ! -s BENCH_fastpath.json ]]; then
        echo "error: bench did not persist BENCH_fastpath.json" >&2
        exit 1
    fi
    if command -v python3 >/dev/null 2>&1; then
        python3 - <<'PY'
import json
meta = json.load(open("BENCH_fastpath.json"))["meta"]
speedup = meta["fastpath_speedup"]
hit_rate = meta["decision_hit_rate"]
fast = meta["fastpath_events_per_sec"]
slow = meta["slowpath_events_per_sec"]
assert speedup >= 5.0, f"fast path not >=5x the slow path: {speedup:.2f}x"
assert hit_rate >= 0.9, f"decision-cache hit rate too low: {hit_rate}"
assert fast > slow > 0, f"throughput numbers inconsistent: {fast} vs {slow}"
print(f"    fastpath: {fast:,.0f} vs {slow:,.0f} events/sec "
      f"({speedup:.2f}x, hit rate {hit_rate:.4f})")
PY
    else
        # Fallback without python3: integer-part comparison with sed.
        fast="$(echo "$fastpath_out" | sed -n 's/.*"fastpath_events_per_sec":\([0-9]*\).*/\1/p')"
        slow="$(echo "$fastpath_out" | sed -n 's/.*"slowpath_events_per_sec":\([0-9]*\).*/\1/p')"
        if [[ -z "$fast" || -z "$slow" || "$fast" -lt $((5 * slow)) ]]; then
            echo "error: fast path not >=5x the slow path (fast=$fast slow=$slow)" >&2
            exit 1
        fi
        rate_tenths="$(echo "$fastpath_out" | sed -n 's/.*"decision_hit_rate":0\.\([0-9]\).*/\1/p')"
        if [[ -n "$rate_tenths" && "$rate_tenths" -lt 9 ]]; then
            echo "error: decision-cache hit rate too low" >&2
            exit 1
        fi
        echo "    fastpath: fast=$fast slow=$slow events/sec"
    fi
fi

if [[ "$FLEET" == 1 ]]; then
    # Fleet-scale serving gate (see DESIGN.md §11). Three halves:
    #   1. the fleet equivalence suite — seeded campaigns with the
    #      allocator/lookup toggles on vs off must match byte for byte,
    #      and the coalesced mode must be same-seed deterministic;
    #   2. the coalesced-shootdown chaos campaign — dropped/spurious
    #      IPIs under churn, staleness accounted in the per-ASID ledger;
    #   3. the fleet bench in smoke shape — persists BENCH_fleet.json
    #      and re-asserts the meta floors here from the persisted
    #      document (the bench itself panics below its own floors).
    echo "==> fleet: cargo test --release --test fleet_equivalence"
    cargo test --release -q --test fleet_equivalence

    echo "==> fleet: cargo test --release --test chaos fleet_coalesced"
    cargo test --release -q --test chaos fleet_coalesced

    echo "==> fleet: cargo bench fleet (persisting BENCH_fleet.json)"
    fleet_raw="$(EREBOR_BENCH_SMOKE=1 EREBOR_BENCH_JSON="$PWD/BENCH_fleet.json" \
        cargo bench -p erebor-bench --bench fleet 2>/dev/null)"
    fleet_out="$(extract_json "$fleet_raw" "fleet")"
    check_json "$fleet_out" "fleet"
    if [[ ! -s BENCH_fleet.json ]]; then
        echo "error: bench did not persist BENCH_fleet.json" >&2
        exit 1
    fi
    if command -v python3 >/dev/null 2>&1; then
        python3 - <<'PY'
import json
meta = json.load(open("BENCH_fleet.json"))["meta"]
det = meta["fleet_determinism"]
speedup = meta["fleet_speedup"]
floor = meta["fleet_speedup_floor"]
p999 = meta["fleet_gate_p999_cycles"]
assert det == 1.0, f"fleet campaign not deterministic: {det}"
assert speedup >= floor, \
    f"fleet fast paths below their floor: {speedup:.2f}x < {floor}x"
assert p999 > 0, "gate latency tail not measured"
assert meta["fleet_lookup_hits"] > 0 and meta["fleet_words_scanned"] > 0, \
    "fleet campaign never exercised a fast path"
print(f"    fleet: {meta['fleet_sandboxes']:.0f} sandboxes, "
      f"{meta['fleet_requests']:.0f} requests, {speedup:.2f}x "
      f"(floor {floor}x), p999 gate {p999:,.0f} cycles, "
      f"{meta['fleet_throughput_rps']:,.0f} req/s")
PY
    else
        # Fallback without python3: integer-part checks with sed.
        det="$(echo "$fleet_out" | sed -n 's/.*"fleet_determinism":\([0-9]*\).*/\1/p')"
        p999="$(echo "$fleet_out" | sed -n 's/.*"fleet_gate_p999_cycles":\([0-9]*\).*/\1/p')"
        if [[ -z "$det" || "$det" != 1 ]]; then
            echo "error: fleet campaign not deterministic (det=$det)" >&2
            exit 1
        fi
        if [[ -z "$p999" || "$p999" -lt 1 ]]; then
            echo "error: gate latency tail not measured (p999=$p999)" >&2
            exit 1
        fi
        echo "    fleet: deterministic, p999 gate $p999 cycles"
    fi
fi

if [[ "$KEYED" == 1 ]]; then
    # Isolation-backend gate (see DESIGN.md §12). Two halves:
    #   1. the keyed integration suite — the PKS exhaustion boundary
    #      (typed DomainsExhausted at capacity, domain recycling), the
    #      256-sandbox TME-MK confinement run with a clean audit, and
    #      the kill-teardown fence with its ablation;
    #   2. the keyed bench — gate cost vs resident-sandbox count per
    #      backend, persisting BENCH_keyed.json; floors re-asserted here
    #      from the persisted document (the bench panics below its own
    #      floors too).
    echo "==> keyed: cargo test --release --test keyed"
    cargo test --release -q --test keyed

    echo "==> keyed: cargo bench keyed (persisting BENCH_keyed.json)"
    keyed_raw="$(EREBOR_BENCH_SMOKE=1 EREBOR_BENCH_JSON="$PWD/BENCH_keyed.json" \
        cargo bench -p erebor-bench --bench keyed 2>/dev/null)"
    keyed_out="$(extract_json "$keyed_raw" "keyed")"
    check_json "$keyed_out" "keyed"
    if [[ ! -s BENCH_keyed.json ]]; then
        echo "error: bench did not persist BENCH_keyed.json" >&2
        exit 1
    fi
    if command -v python3 >/dev/null 2>&1; then
        python3 - <<'PY'
import json
meta = json.load(open("BENCH_keyed.json"))["meta"]
live = meta["keyed_max_live"]
floor = meta["keyed_max_live_floor"]
overhead = meta["keyed_gate_overhead"]
ceiling = meta["keyed_gate_overhead_ceiling"]
assert live >= floor, \
    f"keyed backend confined too few concurrent sandboxes: {live} < {floor}"
assert overhead <= ceiling, \
    f"keyed gate overhead above its ceiling: {overhead:.3f}x > {ceiling}x"
pks16 = meta["keyed_gate_cycles_pks_16"]
tm256 = meta["keyed_gate_cycles_tmemk_256"]
assert pks16 > 0 and tm256 > 0, "gate cost matrix not measured"
print(f"    keyed: {live:.0f} live domains (floor {floor:.0f}), gate "
      f"overhead {overhead:.3f}x (ceiling {ceiling}x), "
      f"{pks16:.0f} vs {tm256:.0f} cycles/request at 16-PKS vs 256-TME-MK")
PY
    else
        # Fallback without python3: integer-part checks with sed.
        live="$(echo "$keyed_out" | sed -n 's/.*"keyed_max_live":\([0-9]*\).*/\1/p')"
        if [[ -z "$live" || "$live" -lt 256 ]]; then
            echo "error: keyed backend confined too few sandboxes (live=$live)" >&2
            exit 1
        fi
        overhead_int="$(echo "$keyed_out" | sed -n 's/.*"keyed_gate_overhead":\([0-9]*\).*/\1/p')"
        if [[ -z "$overhead_int" || "$overhead_int" -gt 1 ]]; then
            echo "error: keyed gate overhead above its ceiling ($overhead_int)" >&2
            exit 1
        fi
        echo "    keyed: $live live domains, gate overhead ~${overhead_int}x"
    fi
fi

if [[ "$MIGRATE" == 1 ]]; then
    # Live-migration gate (see DESIGN.md §13). Two halves:
    #   1. the migration suite — same-seed migrated vs unmigrated runs
    #      byte-identical, fresh non-architectural counters on import,
    #      domain-pool round-trip on both backends, a migrated
    #      64-sandbox fleet auditing clean, and a >=200-case chaos
    #      campaign over the sealed record stream (drop / duplicate /
    #      reorder / corrupt / truncate, every fault a typed abort);
    #   2. the migrate bench — persists BENCH_migrate.json; floors
    #      re-asserted here from the persisted document (the bench
    #      itself panics below its own floors too).
    echo "==> migrate: cargo test --release --test migration (>=200-case chaos)"
    EREBOR_CHAOS_CASES="${EREBOR_CHAOS_CASES:-240}" \
        cargo test --release -q --test migration

    echo "==> migrate: cargo bench migrate (persisting BENCH_migrate.json)"
    migrate_raw="$(EREBOR_BENCH_SMOKE=1 EREBOR_BENCH_JSON="$PWD/BENCH_migrate.json" \
        cargo bench -p erebor-bench --bench migrate 2>/dev/null)"
    migrate_out="$(extract_json "$migrate_raw" "migrate")"
    check_json "$migrate_out" "migrate"
    if [[ ! -s BENCH_migrate.json ]]; then
        echo "error: bench did not persist BENCH_migrate.json" >&2
        exit 1
    fi
    if command -v python3 >/dev/null 2>&1; then
        python3 - <<'PY'
import json
meta = json.load(open("BENCH_migrate.json"))["meta"]
pps = meta["migrate_pages_per_sec"]
floor = meta["migrate_pages_per_sec_floor"]
pause = meta["migrate_stopcopy_pause_ns"]
ceiling = meta["migrate_stopcopy_pause_ceiling_ns"]
assert meta["migrate_import_ok"] == 1.0, \
    "timed migration stream did not import byte-identically"
assert pps >= floor, \
    f"migration throughput below floor: {pps:,.0f} < {floor:,.0f} pages/sec"
assert pause <= ceiling, \
    f"stop-and-copy pause above ceiling: {pause:,.0f} > {ceiling:,.0f} ns"
assert meta["migrate_sections"] == 9, "state sections missing from the stream"
assert meta["migrate_records_sealed"] == (
    meta["migrate_precopy_pages"] + meta["migrate_stopcopy_pages"]
    + meta["migrate_sections"] + 2
), "record-count identity violated"
print(f"    migrate: {pps:,.0f} pages/sec (floor {floor:,.0f}), "
      f"pause {pause/1e6:.2f} ms (ceiling {ceiling/1e6:.0f} ms), "
      f"{meta['migrate_records_sealed']:.0f} records sealed")
PY
    else
        # Fallback without python3: integer-part checks with sed.
        pps="$(echo "$migrate_out" | sed -n 's/.*"migrate_pages_per_sec":\([0-9]*\).*/\1/p')"
        if [[ -z "$pps" || "$pps" -lt 1000 ]]; then
            echo "error: migration throughput below floor (pps=$pps)" >&2
            exit 1
        fi
        ok="$(echo "$migrate_out" | sed -n 's/.*"migrate_import_ok":\([0-9]*\).*/\1/p')"
        if [[ -z "$ok" || "$ok" != 1 ]]; then
            echo "error: timed stream did not import byte-identically" >&2
            exit 1
        fi
        echo "    migrate: $pps pages/sec, import ok"
    fi
fi

echo "==> ci.sh: all checks passed"
