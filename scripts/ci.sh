#!/usr/bin/env bash
# Tier-1 verification for the Erebor reproduction — fully offline.
#
#   scripts/ci.sh          build + test (the tier-1 gate)
#   scripts/ci.sh --smoke  additionally run the bench binaries in smoke
#                          mode (EREBOR_BENCH_SMOKE=1, reduced iteration
#                          counts) and check they emit valid JSON on
#                          stdout.
#
# The workspace has zero external dependencies (see crates/testkit), so
# everything here must succeed with the network disabled.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ $# -gt 1 || ( $# -eq 1 && "$1" != "--smoke" ) ]]; then
    echo "usage: scripts/ci.sh [--smoke]" >&2
    exit 2
fi

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [[ "${1:-}" == "--smoke" ]]; then
    export EREBOR_BENCH_SMOKE=1

    check_json() {
        # Minimal structural check without external tools: a JSON object
        # document spanning exactly the whole stdout payload.
        local out="$1" bin="$2"
        if [[ "$out" != \{* || "$out" != *\} ]]; then
            echo "error: $bin stdout is not a JSON object:" >&2
            echo "$out" >&2
            exit 1
        fi
        if command -v python3 >/dev/null 2>&1; then
            echo "$out" | python3 -c 'import json,sys; json.load(sys.stdin)' \
                || { echo "error: $bin stdout is not valid JSON" >&2; exit 1; }
        fi
    }

    for bin in table3 fig8; do
        echo "==> smoke: cargo run --release -p erebor-bench --bin $bin"
        out="$(cargo run --release -q -p erebor-bench --bin "$bin")"
        check_json "$out" "$bin"
        echo "    $bin: JSON OK (${#out} bytes)"
    done

    echo "==> smoke: cargo bench (testkit harness, reduced samples)"
    cargo bench -p erebor-bench --bench crypto >/dev/null
fi

echo "==> ci.sh: all checks passed"
