//! `erebor-trace`: deterministic event tracing and cycle attribution.
//!
//! The observability substrate for the reproduction. Two pieces:
//!
//! * [`TraceBuffer`] — a per-core bounded ring of typed [`TraceEvent`]s,
//!   each stamped with the *simulated* cycle counter (never wall clock)
//!   and a global sequence number. The same seed therefore yields a
//!   byte-identical trace, and a chaos invariant failure can dump the
//!   last-N events leading up to the violation.
//! * [`Attribution`] — the cycle-attribution profiler: every charged
//!   cycle lands in exactly one [`Bucket`] (monitor / kernel / sandbox /
//!   tdcall / page-walk, with `other` catching boot and harness work), so
//!   the buckets always sum to the machine's total cycle count — the
//!   paper's Table 6 / §7-style cost breakdown.
//!
//! This crate sits *below* `erebor-hw` (it has no dependencies): the
//! machine owns the buffer and the counter, and every upper layer
//! reaches tracing through the `&mut Machine` it already holds. Events
//! carry only primitive payloads for the same reason.
//!
//! JSON export is hand-rolled here (integers stay exact u64; field order
//! is fixed) so exports are byte-stable across runs and independent of
//! any serializer elsewhere in the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::VecDeque;
use std::fmt::Write as _;

/// A cycle-attribution bucket: which part of the stack a charged cycle
/// belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Bucket {
    /// Monitor code: EMC gates, dispatch, interposers, mmu-guard work.
    Monitor,
    /// Deprivileged guest-kernel code.
    Kernel,
    /// Sandbox / user execution (including workload compute).
    Sandbox,
    /// `tdcall` round trips through the TDX module and host.
    Tdcall,
    /// Address translation: TLB lookups and page-table walks.
    PageWalk,
    /// Everything else: boot, firmware, test-harness driving. The
    /// default, so cycles charged before any layer claims a bucket
    /// still land somewhere and the buckets sum to the total.
    #[default]
    Other,
}

impl Bucket {
    /// Stable lowercase name (the JSON key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Bucket::Monitor => "monitor",
            Bucket::Kernel => "kernel",
            Bucket::Sandbox => "sandbox",
            Bucket::Tdcall => "tdcall",
            Bucket::PageWalk => "page_walk",
            Bucket::Other => "other",
        }
    }

    /// All buckets, in export order.
    pub const ALL: [Bucket; 6] = [
        Bucket::Monitor,
        Bucket::Kernel,
        Bucket::Sandbox,
        Bucket::Tdcall,
        Bucket::PageWalk,
        Bucket::Other,
    ];
}

/// Per-bucket cycle totals. All arithmetic saturates, matching the
/// workspace's saturating-counter convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Attribution {
    /// Cycles charged while monitor code ran.
    pub monitor: u64,
    /// Cycles charged while kernel code ran.
    pub kernel: u64,
    /// Cycles charged while sandbox/user code ran.
    pub sandbox: u64,
    /// Cycles charged inside `tdcall`.
    pub tdcall: u64,
    /// Cycles charged by address translation.
    pub page_walk: u64,
    /// Cycles charged before/outside any attributed region.
    pub other: u64,
}

impl Attribution {
    /// Add `n` cycles to `bucket` (saturating).
    pub fn charge(&mut self, bucket: Bucket, n: u64) {
        let slot = self.slot_mut(bucket);
        *slot = slot.saturating_add(n);
    }

    /// The total for one bucket.
    #[must_use]
    pub fn get(&self, bucket: Bucket) -> u64 {
        match bucket {
            Bucket::Monitor => self.monitor,
            Bucket::Kernel => self.kernel,
            Bucket::Sandbox => self.sandbox,
            Bucket::Tdcall => self.tdcall,
            Bucket::PageWalk => self.page_walk,
            Bucket::Other => self.other,
        }
    }

    fn slot_mut(&mut self, bucket: Bucket) -> &mut u64 {
        match bucket {
            Bucket::Monitor => &mut self.monitor,
            Bucket::Kernel => &mut self.kernel,
            Bucket::Sandbox => &mut self.sandbox,
            Bucket::Tdcall => &mut self.tdcall,
            Bucket::PageWalk => &mut self.page_walk,
            Bucket::Other => &mut self.other,
        }
    }

    /// Sum of every bucket (saturating). Equals the machine's total
    /// cycle count when every charge goes through the attributed
    /// counter — which the hw crate guarantees by construction.
    #[must_use]
    pub fn total(&self) -> u64 {
        Bucket::ALL
            .iter()
            .fold(0u64, |acc, &b| acc.saturating_add(self.get(b)))
    }

    /// Elementwise saturating difference `self - earlier`.
    #[must_use]
    pub fn delta(&self, earlier: &Attribution) -> Attribution {
        Attribution {
            monitor: self.monitor.saturating_sub(earlier.monitor),
            kernel: self.kernel.saturating_sub(earlier.kernel),
            sandbox: self.sandbox.saturating_sub(earlier.sandbox),
            tdcall: self.tdcall.saturating_sub(earlier.tdcall),
            page_walk: self.page_walk.saturating_sub(earlier.page_walk),
            other: self.other.saturating_sub(earlier.other),
        }
    }

    /// Deterministic JSON object, buckets in [`Bucket::ALL`] order plus
    /// a trailing exact `total`.
    #[must_use]
    pub fn json(&self) -> String {
        let mut s = String::from("{");
        for b in Bucket::ALL {
            let _ = write!(s, "\"{}\":{},", b.name(), self.get(b));
        }
        let _ = write!(s, "\"total\":{}}}", self.total());
        s
    }
}

/// One typed trace event. Payloads are primitives only (this crate sits
/// below the hardware model) and every string is a static identifier, so
/// serialization needs no escaping and stays byte-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// EMC entry gate taken (PKRS granted).
    GateEnter,
    /// EMC exit gate taken (PKRS revoked, control returned).
    GateExit,
    /// An EMC lifecycle transition: `op` is one of
    /// `create`/`seal`/`downgrade`/`unmap`/`reclaim`/`kill`/`deny`; `arg`
    /// is the sandbox id, region id, page number, or page count the op
    /// concerns.
    Emc {
        /// Lifecycle operation name.
        op: &'static str,
        /// Operation argument (sandbox/region id or count).
        arg: u64,
    },
    /// A page-walk fault: translation failed for `va_page` (VA >> 12).
    PageFault {
        /// Faulting page number.
        va_page: u64,
        /// Whether the access was a write.
        write: bool,
    },
    /// A `tdcall` leaf left the guest.
    TdcallLeave {
        /// Leaf name.
        leaf: &'static str,
    },
    /// The in-flight `tdcall` completed (`ok == false` covers both
    /// faults and error completions).
    TdcallDone {
        /// Whether the leaf completed successfully.
        ok: bool,
    },
    /// A TLB-shootdown IPI was sent to core `to`.
    IpiSent {
        /// Destination core.
        to: u32,
    },
    /// A TLB-shootdown IPI arrived and was serviced on this core.
    IpiReceived {
        /// Initiating core.
        from: u32,
    },
    /// An injected loss: the IPI to core `to` never arrived.
    IpiDropped {
        /// Destination core that kept its stale entries.
        to: u32,
    },
    /// An injected spurious invalidation serviced on this core.
    IpiSpurious,
    /// The chaos injector delivered a fault at the named point.
    ChaosFault {
        /// Injection-point name.
        point: &'static str,
    },
    /// MMU-trace (gated): the initiator committed a translation
    /// revocation for `page` under `root` (`0` = every root) and now owes
    /// the invalidation round. Recorded once per page per shootdown,
    /// before any core invalidates — the opening edge of a
    /// stale-permission window.
    TlbShootdown {
        /// Targeted page-table root (`Frame.0`; `0` for a broadcast).
        root: u64,
        /// Revoked page number (VA >> 12).
        page: u64,
    },
    /// MMU-trace (gated): this core dropped its cached translation(s)
    /// for `page` — the closing edge of any open window for the page.
    TlbInvlpg {
        /// Invalidated page number.
        page: u64,
    },
    /// MMU-trace (gated): this core flushed its entire TLB, closing
    /// every open window on the core.
    TlbFlush,
    /// MMU-trace (gated): a translation on this core was served from its
    /// TLB rather than a fresh walk — the access edge the race detector
    /// checks against open revocation windows.
    TlbHit {
        /// Page-table root the cached entry is tagged with (`Frame.0`).
        root: u64,
        /// Accessed page number.
        page: u64,
    },
}

impl TraceEvent {
    /// Stable snake_case type tag (the JSON `type` field).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::GateEnter => "gate_enter",
            TraceEvent::GateExit => "gate_exit",
            TraceEvent::Emc { .. } => "emc",
            TraceEvent::PageFault { .. } => "page_fault",
            TraceEvent::TdcallLeave { .. } => "tdcall_leave",
            TraceEvent::TdcallDone { .. } => "tdcall_done",
            TraceEvent::IpiSent { .. } => "ipi_sent",
            TraceEvent::IpiReceived { .. } => "ipi_received",
            TraceEvent::IpiDropped { .. } => "ipi_dropped",
            TraceEvent::IpiSpurious => "ipi_spurious",
            TraceEvent::ChaosFault { .. } => "chaos_fault",
            TraceEvent::TlbShootdown { .. } => "tlb_shootdown",
            TraceEvent::TlbInvlpg { .. } => "tlb_invlpg",
            TraceEvent::TlbFlush => "tlb_flush",
            TraceEvent::TlbHit { .. } => "tlb_hit",
        }
    }

    fn write_extra(&self, s: &mut String) {
        match self {
            TraceEvent::GateEnter
            | TraceEvent::GateExit
            | TraceEvent::IpiSpurious
            | TraceEvent::TlbFlush => {}
            TraceEvent::TlbShootdown { root, page } | TraceEvent::TlbHit { root, page } => {
                let _ = write!(s, ",\"root\":{root},\"page\":{page}");
            }
            TraceEvent::TlbInvlpg { page } => {
                let _ = write!(s, ",\"page\":{page}");
            }
            TraceEvent::Emc { op, arg } => {
                let _ = write!(s, ",\"op\":\"{op}\",\"arg\":{arg}");
            }
            TraceEvent::PageFault { va_page, write } => {
                let _ = write!(s, ",\"va_page\":{va_page},\"write\":{write}");
            }
            TraceEvent::TdcallLeave { leaf } => {
                let _ = write!(s, ",\"leaf\":\"{leaf}\"");
            }
            TraceEvent::TdcallDone { ok } => {
                let _ = write!(s, ",\"ok\":{ok}");
            }
            TraceEvent::IpiSent { to } | TraceEvent::IpiDropped { to } => {
                let _ = write!(s, ",\"to\":{to}");
            }
            TraceEvent::IpiReceived { from } => {
                let _ = write!(s, ",\"from\":{from}");
            }
            TraceEvent::ChaosFault { point } => {
                let _ = write!(s, ",\"point\":\"{point}\"");
            }
        }
    }
}

/// One recorded event: global sequence number, simulated-cycle stamp,
/// the recording core, and the event itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Global (cross-core) record order.
    pub seq: u64,
    /// Simulated cycle counter at record time.
    pub cycles: u64,
    /// Core the event happened on.
    pub cpu: u32,
    /// The event.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Deterministic JSON object for this record.
    #[must_use]
    pub fn json(&self) -> String {
        let mut s = format!(
            "{{\"seq\":{},\"cycles\":{},\"cpu\":{},\"type\":\"{}\"",
            self.seq,
            self.cycles,
            self.cpu,
            self.event.kind()
        );
        self.event.write_extra(&mut s);
        s.push('}');
        s
    }
}

impl core::fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "[seq {} cyc {} cpu {}] {:?}",
            self.seq, self.cycles, self.cpu, self.event
        )
    }
}

/// Default per-core ring capacity. Sized so one full-system request
/// round trip (boot → deploy → attest → serve, a few thousand events
/// dominated by shootdown IPIs) keeps its gate and EMC lifecycle events
/// resident alongside the IPI flood.
pub const DEFAULT_CAPACITY: usize = 1024;

/// A per-core bounded ring buffer of [`TraceRecord`]s.
///
/// Eviction is deterministic (oldest record of the recording core's
/// ring), and recording never charges cycles, so tracing cannot perturb
/// the cycle model it observes.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    rings: Vec<VecDeque<TraceRecord>>,
    capacity: usize,
    seq: u64,
    dropped: u64,
}

impl TraceBuffer {
    /// A buffer with one ring per core at [`DEFAULT_CAPACITY`].
    #[must_use]
    pub fn new(cores: usize) -> TraceBuffer {
        TraceBuffer::with_capacity(cores, DEFAULT_CAPACITY)
    }

    /// A buffer with an explicit per-core capacity (min 1).
    #[must_use]
    pub fn with_capacity(cores: usize, capacity: usize) -> TraceBuffer {
        let capacity = capacity.max(1);
        TraceBuffer {
            rings: (0..cores).map(|_| VecDeque::new()).collect(),
            capacity,
            seq: 0,
            dropped: 0,
        }
    }

    /// Record `event` on `cpu` at the given simulated-cycle stamp.
    /// Out-of-range cores fold onto ring 0 (never panics: tracing must
    /// not introduce failure paths into the machine).
    pub fn record(&mut self, cpu: usize, cycles: u64, event: TraceEvent) {
        if self.rings.is_empty() {
            return;
        }
        let idx = if cpu < self.rings.len() { cpu } else { 0 };
        let ring = &mut self.rings[idx];
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped = self.dropped.saturating_add(1);
        }
        ring.push_back(TraceRecord {
            seq: self.seq,
            cycles,
            cpu: cpu as u32,
            event,
        });
        self.seq = self.seq.saturating_add(1);
    }

    /// Records currently held for one core, oldest first.
    #[must_use]
    pub fn core(&self, cpu: usize) -> &VecDeque<TraceRecord> {
        &self.rings[cpu]
    }

    /// Number of cores (rings).
    #[must_use]
    pub fn cores(&self) -> usize {
        self.rings.len()
    }

    /// Per-core ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently held across every ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rings.iter().map(VecDeque::len).sum()
    }

    /// Whether no events have been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rings.iter().all(VecDeque::is_empty)
    }

    /// Records evicted so far (ring overflow).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total records ever recorded (== next sequence number).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.seq
    }

    /// The last `n` retained records across every core, merged in
    /// global (sequence) order — the chaos failure dump.
    #[must_use]
    pub fn last_n(&self, n: usize) -> Vec<TraceRecord> {
        let mut all: Vec<TraceRecord> = self.rings.iter().flatten().copied().collect();
        all.sort_by_key(|r| r.seq);
        let skip = all.len().saturating_sub(n);
        all.split_off(skip)
    }

    /// Decompose the buffer for migration: `(capacity, seq, dropped,
    /// per-core rings oldest-first)`. Together with
    /// [`TraceBuffer::from_parts`] this round-trips the buffer exactly —
    /// including the global sequence counter and eviction count, so a
    /// migrated machine's subsequent trace export is byte-identical to
    /// an unmigrated one's.
    #[must_use]
    pub fn to_parts(&self) -> (usize, u64, u64, Vec<Vec<TraceRecord>>) {
        (
            self.capacity,
            self.seq,
            self.dropped,
            self.rings
                .iter()
                .map(|r| r.iter().copied().collect())
                .collect(),
        )
    }

    /// Rebuild a buffer from [`TraceBuffer::to_parts`] output.
    #[must_use]
    pub fn from_parts(
        capacity: usize,
        seq: u64,
        dropped: u64,
        rings: Vec<Vec<TraceRecord>>,
    ) -> TraceBuffer {
        TraceBuffer {
            rings: rings.into_iter().map(VecDeque::from).collect(),
            capacity: capacity.max(1),
            seq,
            dropped,
        }
    }

    /// Deterministic JSON document: capacity, totals, and each core's
    /// retained records oldest-first.
    #[must_use]
    pub fn json(&self) -> String {
        let mut s = format!(
            "{{\"capacity\":{},\"recorded\":{},\"dropped\":{},\"cores\":[",
            self.capacity, self.seq, self.dropped
        );
        for (i, ring) in self.rings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('[');
            for (j, rec) in ring.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&rec.json());
            }
            s.push(']');
        }
        s.push_str("]}");
        s
    }
}

/// Intern a string, returning a `&'static str` with the same contents.
///
/// Trace events carry `&'static str` payloads by design (no escaping, no
/// allocation on the record path). A migration stream, however, decodes
/// event payloads from bytes; interning gives those decoded strings the
/// required `'static` lifetime. The table is global and append-only:
/// every distinct string is leaked exactly once, and re-interning an
/// already-known string (including every compile-time literal previously
/// interned) returns the same pointer. The set of distinct payload
/// strings in the workspace is a small closed vocabulary, so the leak is
/// bounded in practice.
#[must_use]
pub fn intern(s: &str) -> &'static str {
    use std::collections::BTreeMap;
    use std::sync::{Mutex, OnceLock};
    static TABLE: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut guard = match table.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(&known) = guard.get(s) {
        return known;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    guard.insert(s.to_owned(), leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable_and_deduplicated() {
        let a = intern("migration-test-payload");
        let b = intern("migration-test-payload");
        assert_eq!(a, b);
        assert!(std::ptr::eq(a, b), "same interned pointer");
        let c = intern(&format!("migration-{}", "test-payload"));
        assert!(std::ptr::eq(a, c), "runtime-built string folds in");
    }

    #[test]
    fn parts_roundtrip_exactly() {
        let mut t = TraceBuffer::with_capacity(2, 2);
        t.record(0, 10, TraceEvent::GateEnter);
        t.record(1, 20, TraceEvent::Emc { op: "create", arg: 1 });
        t.record(0, 30, TraceEvent::GateExit);
        t.record(0, 40, TraceEvent::TlbFlush); // evicts GateEnter
        let (cap, seq, dropped, rings) = t.to_parts();
        let rebuilt = TraceBuffer::from_parts(cap, seq, dropped, rings);
        assert_eq!(rebuilt.json(), t.json(), "byte-identical export");
        assert_eq!(rebuilt.recorded(), t.recorded());
        assert_eq!(rebuilt.dropped(), t.dropped());
    }

    #[test]
    fn attribution_saturates_and_sums() {
        let mut a = Attribution::default();
        a.charge(Bucket::Monitor, u64::MAX);
        a.charge(Bucket::Monitor, 1); // would overflow unchecked
        assert_eq!(a.monitor, u64::MAX);
        a.charge(Bucket::Kernel, 7);
        assert_eq!(a.total(), u64::MAX, "total saturates too");
        let d = a.delta(&Attribution::default());
        assert_eq!(d.kernel, 7);
    }

    #[test]
    fn ring_evicts_oldest_deterministically() {
        let mut t = TraceBuffer::with_capacity(2, 2);
        t.record(0, 10, TraceEvent::GateEnter);
        t.record(0, 20, TraceEvent::GateExit);
        t.record(0, 30, TraceEvent::IpiSpurious);
        assert_eq!(t.core(0).len(), 2);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.core(0)[0].event, TraceEvent::GateExit);
        // Core 1 untouched.
        assert!(t.core(1).is_empty());
    }

    #[test]
    fn last_n_merges_in_sequence_order() {
        let mut t = TraceBuffer::new(2);
        t.record(0, 1, TraceEvent::GateEnter);
        t.record(1, 2, TraceEvent::IpiReceived { from: 0 });
        t.record(0, 3, TraceEvent::GateExit);
        let last = t.last_n(2);
        assert_eq!(last.len(), 2);
        assert_eq!(last[0].event, TraceEvent::IpiReceived { from: 0 });
        assert_eq!(last[1].event, TraceEvent::GateExit);
        assert_eq!(t.last_n(100).len(), 3);
    }

    #[test]
    fn json_is_stable_and_structural() {
        let mut t = TraceBuffer::with_capacity(1, 4);
        t.record(0, 5, TraceEvent::Emc { op: "create", arg: 1 });
        t.record(0, 9, TraceEvent::TdcallDone { ok: false });
        let a = t.json();
        let b = t.clone().json();
        assert_eq!(a, b, "same buffer serializes byte-identically");
        assert!(a.starts_with('{') && a.ends_with('}'));
        assert!(a.contains("\"type\":\"emc\""));
        assert!(a.contains("\"op\":\"create\""));
        assert!(a.contains("\"ok\":false"));
        let attr = Attribution {
            monitor: 3,
            ..Attribution::default()
        };
        assert_eq!(
            attr.json(),
            "{\"monitor\":3,\"kernel\":0,\"sandbox\":0,\"tdcall\":0,\
             \"page_walk\":0,\"other\":0,\"total\":3"
                .to_owned()
                + "}"
        );
    }

    #[test]
    fn out_of_range_core_folds_to_ring_zero() {
        let mut t = TraceBuffer::new(1);
        t.record(9, 1, TraceEvent::GateEnter);
        assert_eq!(t.core(0).len(), 1);
        assert_eq!(t.core(0)[0].cpu, 9, "original core id preserved");
    }
}

