//! Seeded fault-injection plans.
//!
//! A [`ChaosPlan`] is an [`Injector`] whose every decision is drawn from
//! the testkit's ChaCha20 [`TestRng`]: two plans built from the same seed
//! make byte-identical decisions given the same sequence of hook calls,
//! which is what makes a failing chaos case replayable from nothing but
//! `(seed, op bytes)`. The plan also keeps the full [`ChaosEvent`] trace
//! of what it injected, so a violation report can show the adversarial
//! schedule that produced it.

use erebor_core::policy;
use erebor_hw::cpu::Domain;
use erebor_hw::fault::Fault;
use erebor_hw::inject::{CoreView, InjectionPoint, Injector};
use erebor_hw::regs::PkrsPerms;
use erebor_testkit::rng::TestRng;

/// Per-hook injection probabilities, in permille (0 disables the hook).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosRates {
    /// `wrmsr` / `mov %cr` / branch faults.
    pub fault: u32,
    /// Interrupt delivered inside a gate window.
    pub preempt: u32,
    /// TLB-shootdown IPI lost in flight.
    pub drop_ipi: u32,
    /// Unrequested remote TLB flush.
    pub spurious: u32,
    /// Frame allocation refused.
    pub alloc_fail: u32,
    /// `tdcall` completes with an error status.
    pub tdcall_fail: u32,
    /// Host flips the sEPT under an in-flight `MapGPA`.
    pub sept_flip: u32,
}

impl Default for ChaosRates {
    fn default() -> ChaosRates {
        ChaosRates {
            fault: 120,
            preempt: 250,
            drop_ipi: 200,
            spurious: 120,
            alloc_fail: 150,
            tdcall_fail: 200,
            sept_flip: 250,
        }
    }
}

/// One injected (or observed) adversarial event, in schedule order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Driver executed op byte `byte` as its `index`-th step.
    Op {
        /// Step number within the case.
        index: usize,
        /// The raw op byte.
        byte: u8,
    },
    /// A fault was injected at an instrumented point.
    Fault(InjectionPoint),
    /// An interrupt was delivered inside a gate window.
    Preempt(InjectionPoint),
    /// A shootdown IPI from `initiator` to `target` was dropped.
    DropIpi {
        /// Core that issued the shootdown.
        initiator: usize,
        /// Core whose invalidation was lost.
        target: usize,
    },
    /// Core `cpu` took an unrequested remote flush.
    Spurious {
        /// The flushed core.
        cpu: usize,
    },
    /// A frame allocation was refused.
    AllocFail,
    /// An in-flight `tdcall` was completed with `status`.
    TdcallFail {
        /// Raw TDX completion status.
        status: u64,
    },
    /// The host contended with an in-flight `MapGPA`.
    SeptFlip,
    /// What the kernel's handler saw during an injected preemption.
    KernelView {
        /// Preempted core.
        cpu: usize,
        /// Raw `IA32_PKRS` at that instant.
        pkrs: u64,
        /// Whether that PKRS still grants monitor-memory access while
        /// kernel or user code runs — the confinement violation.
        monitor_visible: bool,
    },
}

/// TDX completion statuses the plan injects (the three classes
/// `erebor_tdx::tdcall::TdcallError` decodes).
const TDCALL_STATUSES: [u64; 3] = [
    erebor_tdx::tdcall::status::OPERAND_INVALID,
    erebor_tdx::tdcall::status::OPERAND_BUSY,
    erebor_tdx::tdcall::status::LEAF_NOT_SUPPORTED,
];

/// A seeded, trace-recording injector.
#[derive(Debug)]
pub struct ChaosPlan {
    rng: TestRng,
    rates: ChaosRates,
    trace: Vec<ChaosEvent>,
    kernel_saw_monitor_pkrs: bool,
}

impl ChaosPlan {
    /// Build a plan from a seed and rates. Same seed + same hook sequence
    /// → same decisions.
    #[must_use]
    pub fn new(seed: u64, rates: ChaosRates) -> ChaosPlan {
        ChaosPlan {
            rng: TestRng::seed_from_u64(seed),
            rates,
            trace: Vec::new(),
            kernel_saw_monitor_pkrs: false,
        }
    }

    /// Append a driver-side event (the world records its op stream here so
    /// the trace interleaves ops with what they triggered).
    pub fn record(&mut self, ev: ChaosEvent) {
        self.trace.push(ev);
    }

    /// The full schedule so far.
    #[must_use]
    pub fn trace(&self) -> &[ChaosEvent] {
        &self.trace
    }

    /// Take the schedule out (end of case).
    #[must_use]
    pub fn take_trace(&mut self) -> Vec<ChaosEvent> {
        std::mem::take(&mut self.trace)
    }

    /// Whether any injected preemption let kernel/user code observe a
    /// PKRS that still grants monitor memory.
    #[must_use]
    pub fn kernel_saw_monitor_pkrs(&self) -> bool {
        self.kernel_saw_monitor_pkrs
    }

    fn roll(&mut self, permille: u32) -> bool {
        // Always draw, even at rate 0: the draw count (and so the whole
        // downstream schedule) must not depend on which rates are enabled.
        self.rng.below(1000) < u64::from(permille)
    }
}

impl Injector for ChaosPlan {
    fn inject_fault(&mut self, point: InjectionPoint) -> Option<Fault> {
        if self.roll(self.rates.fault) {
            self.trace.push(ChaosEvent::Fault(point));
            return Some(Fault::GeneralProtection("chaos-injected fault"));
        }
        None
    }

    fn preempt(&mut self, point: InjectionPoint) -> bool {
        let hit = self.roll(self.rates.preempt);
        if hit {
            self.trace.push(ChaosEvent::Preempt(point));
        }
        hit
    }

    fn drop_shootdown_ipi(&mut self, initiator: usize, target: usize) -> bool {
        let hit = self.roll(self.rates.drop_ipi);
        if hit {
            self.trace.push(ChaosEvent::DropIpi { initiator, target });
        }
        hit
    }

    fn spurious_shootdown(&mut self, cpu: usize) -> bool {
        let hit = self.roll(self.rates.spurious);
        if hit {
            self.trace.push(ChaosEvent::Spurious { cpu });
        }
        hit
    }

    fn fail_alloc(&mut self) -> bool {
        let hit = self.roll(self.rates.alloc_fail);
        if hit {
            self.trace.push(ChaosEvent::AllocFail);
        }
        hit
    }

    fn host_sept_flip(&mut self) -> bool {
        let hit = self.roll(self.rates.sept_flip);
        if hit {
            self.trace.push(ChaosEvent::SeptFlip);
        }
        hit
    }

    fn tdcall_status(&mut self, _cpu: usize) -> Option<u64> {
        if self.roll(self.rates.tdcall_fail) {
            let status = TDCALL_STATUSES[self.rng.below(3) as usize];
            self.trace.push(ChaosEvent::TdcallFail { status });
            return Some(status);
        }
        None
    }

    fn observe_preemption(&mut self, view: CoreView) {
        let monitor_visible = matches!(view.domain, Domain::Kernel | Domain::User)
            && !PkrsPerms(view.pkrs).access_disabled(policy::PK_MONITOR);
        if monitor_visible {
            self.kernel_saw_monitor_pkrs = true;
        }
        self.trace.push(ChaosEvent::KernelView {
            cpu: view.cpu,
            pkrs: view.pkrs,
            monitor_visible,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erebor_hw::regs::Msr;

    fn drive(plan: &mut ChaosPlan) -> Vec<ChaosEvent> {
        for i in 0..200usize {
            let p = InjectionPoint::Wrmsr {
                cpu: i % 2,
                msr: Msr::Pkrs,
            };
            let _ = plan.inject_fault(p);
            let _ = plan.preempt(InjectionPoint::GateEnter { cpu: i % 2 });
            let _ = plan.drop_shootdown_ipi(0, 1);
            let _ = plan.tdcall_status(0);
        }
        plan.take_trace()
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = ChaosPlan::new(42, ChaosRates::default());
        let mut b = ChaosPlan::new(42, ChaosRates::default());
        assert_eq!(drive(&mut a), drive(&mut b));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaosPlan::new(1, ChaosRates::default());
        let mut b = ChaosPlan::new(2, ChaosRates::default());
        assert_ne!(drive(&mut a), drive(&mut b));
    }

    #[test]
    fn kernel_view_flags_monitor_pkrs() {
        let mut plan = ChaosPlan::new(0, ChaosRates::default());
        plan.observe_preemption(CoreView {
            cpu: 0,
            mode: erebor_hw::cpu::CpuMode::Supervisor,
            domain: Domain::Kernel,
            pkrs: erebor_core::policy::monitor_mode_pkrs().0,
        });
        assert!(plan.kernel_saw_monitor_pkrs());
        let mut ok = ChaosPlan::new(0, ChaosRates::default());
        ok.observe_preemption(CoreView {
            cpu: 0,
            mode: erebor_hw::cpu::CpuMode::Supervisor,
            domain: Domain::Kernel,
            pkrs: erebor_core::policy::normal_mode_pkrs().0,
        });
        assert!(!ok.kernel_saw_monitor_pkrs());
    }
}
