//! Global security invariants checked between adversarial steps.
//!
//! Each check re-derives its claim from machine state alone (registers,
//! in-memory page tables, TLB arrays, shadow stacks) so a bug anywhere in
//! the gate/monitor plumbing shows up as a checker hit rather than a
//! silent corruption. The five invariants mirror the properties §5 of the
//! paper argues for:
//!
//! 1. **PKRS confinement** — a core running kernel or user code never
//!    holds a PKRS that grants monitor-memory access.
//! 2. **EMC consistency** — `in_emc`, the saved-PKRS slot, the domain and
//!    the live PKRS tell one coherent story per core.
//! 3. **W⊕X** — no leaf mapping under any tracked root is simultaneously
//!    writable and executable.
//! 4. **Shadow-stack balance** — interrupt nesting depth equals shadow
//!    stack depth on every core with `SH_STK_EN`.
//! 5. **TLB coherence** — every cached translation matches a fresh walk
//!    of the in-memory tables, except pages whose invalidation IPI the
//!    injector dropped (the recorded tolerated-stale set).

use erebor_core::gate::EmcGate;
use erebor_core::policy;
use erebor_hw::cpu::{Domain, Machine};
use erebor_hw::paging::{pte_slot, Pte};
use erebor_hw::phys::{Frame, PhysMemory};
use erebor_hw::VirtAddr;

/// A failed invariant: which one, and the state that broke it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Short invariant name (stable across runs; replay keys off it).
    pub invariant: &'static str,
    /// Human-readable description of the offending state.
    pub detail: String,
}

impl Violation {
    fn new(invariant: &'static str, detail: String) -> Violation {
        Violation { invariant, detail }
    }
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// Effective translation derived from a fresh page-table walk: target
/// frame, effective writability (AND over levels), effective NX (OR over
/// levels), and the leaf protection key.
fn walk_effective(
    mem: &PhysMemory,
    root: Frame,
    va: VirtAddr,
) -> Option<(Frame, bool, bool, u8)> {
    let mut tbl = root;
    let mut writable = true;
    let mut nx = false;
    for level in (2..=4u8).rev() {
        let entry = Pte(mem.read_u64(pte_slot(tbl, va, level)).ok()?);
        if !entry.present() {
            return None;
        }
        writable &= entry.writable();
        nx |= entry.nx();
        tbl = entry.frame();
    }
    let leaf = Pte(mem.read_u64(pte_slot(tbl, va, 1)).ok()?);
    if !leaf.present() {
        return None;
    }
    Some((
        leaf.frame(),
        writable && leaf.writable(),
        nx || leaf.nx(),
        leaf.pkey(),
    ))
}

/// Invariant 1: kernel/user code never holds monitor-mode PKRS.
///
/// # Errors
/// A [`Violation`] naming the offending core.
pub fn kernel_pkrs_confinement(machine: &Machine) -> Result<(), Violation> {
    for (cpu, c) in machine.cpus.iter().enumerate() {
        if matches!(c.domain, Domain::Kernel | Domain::User)
            && !c.pkrs().access_disabled(policy::PK_MONITOR)
        {
            return Err(Violation::new(
                "pkrs-confinement",
                format!(
                    "cpu {cpu} runs {:?} code with PKRS {:#x} granting monitor memory",
                    c.domain,
                    c.pkrs().0
                ),
            ));
        }
    }
    Ok(())
}

/// Invariant 2: per-core gate state is internally consistent.
///
/// # Errors
/// A [`Violation`] naming the inconsistent core.
pub fn emc_consistency(machine: &Machine, gate: &EmcGate) -> Result<(), Violation> {
    for (cpu, c) in machine.cpus.iter().enumerate() {
        if !gate.in_emc(cpu) {
            continue;
        }
        match gate.saved_pkrs(cpu) {
            None => {
                // A live (unpreempted) EMC: the core must actually be in
                // monitor code with the elevated PKRS. `in_emc` without
                // either means a gate transition tore.
                if c.pkrs() != policy::monitor_mode_pkrs() {
                    return Err(Violation::new(
                        "emc-consistency",
                        format!(
                            "cpu {cpu} in_emc with no save but PKRS {:#x} != monitor mode",
                            c.pkrs().0
                        ),
                    ));
                }
                if c.domain != Domain::Monitor {
                    return Err(Violation::new(
                        "emc-consistency",
                        format!("cpu {cpu} in_emc with no save but domain {:?}", c.domain),
                    ));
                }
            }
            Some(saved) => {
                // A preempted EMC: the elevated PKRS must be stashed, not
                // live, while the handler runs.
                if !c.pkrs().access_disabled(policy::PK_MONITOR) {
                    return Err(Violation::new(
                        "emc-consistency",
                        format!(
                            "cpu {cpu} preempted mid-EMC but live PKRS {:#x} still grants monitor",
                            c.pkrs().0
                        ),
                    ));
                }
                if saved != policy::monitor_mode_pkrs().0 {
                    return Err(Violation::new(
                        "emc-consistency",
                        format!("cpu {cpu} saved PKRS {saved:#x} is not the monitor-mode value"),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Invariant 3: W⊕X over every leaf mapping reachable from `roots`.
///
/// # Errors
/// A [`Violation`] naming the first writable+executable leaf found.
pub fn wx_exclusive(machine: &Machine, roots: &[Frame]) -> Result<(), Violation> {
    for &root in roots {
        let mut stack = vec![(root, 4u8)];
        while let Some((tbl, level)) = stack.pop() {
            for idx in 0..512usize {
                let slot = erebor_hw::PhysAddr(tbl.base().0 + (idx * 8) as u64);
                let Ok(raw) = machine.mem.read_u64(slot) else {
                    continue;
                };
                let entry = Pte(raw);
                if !entry.present() {
                    continue;
                }
                if level > 1 {
                    stack.push((entry.frame(), level - 1));
                } else if entry.writable() && !entry.nx() {
                    return Err(Violation::new(
                        "wx-exclusive",
                        format!(
                            "leaf slot {idx} in table {:?} under root {root:?} maps {:?} W+X",
                            tbl,
                            entry.frame()
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Invariant 4: interrupt nesting equals shadow-stack depth.
///
/// # Errors
/// A [`Violation`] naming the unbalanced core.
pub fn shadow_stack_balance(machine: &Machine) -> Result<(), Violation> {
    for (cpu, c) in machine.cpus.iter().enumerate() {
        if !c.sstk_enabled() {
            continue;
        }
        let sstk = machine.sstk[cpu].depth();
        let ints = machine.interrupt_depth(cpu) as usize;
        if sstk != ints {
            return Err(Violation::new(
                "shadow-stack-balance",
                format!("cpu {cpu}: shadow stack depth {sstk} != interrupt depth {ints}"),
            ));
        }
    }
    Ok(())
}

/// Invariant 5: every live TLB entry matches a fresh walk, modulo the
/// recorded pending-shootdown set.
///
/// # Errors
/// A [`Violation`] naming the stale entry.
pub fn tlb_coherence(machine: &Machine) -> Result<(), Violation> {
    for (cpu, tlb) in machine.tlbs.iter().enumerate() {
        for e in tlb.entries() {
            if machine.shootdown_pending(cpu, e.root, e.page) {
                continue; // a modelled IPI loss: staleness is expected here
            }
            let va = VirtAddr(e.page << 12);
            let fresh = walk_effective(&machine.mem, e.root, va);
            // The dirty bit is excluded: a clean cached entry over a dirty
            // PTE re-walks on write, so it can never grant anything stale.
            let cached = Some((e.frame, e.eff.writable, e.eff.nx, e.eff.pkey));
            if fresh != cached {
                return Err(Violation::new(
                    "tlb-coherence",
                    format!(
                        "cpu {cpu} caches page {:#x} as {cached:?} but tables say {fresh:?} \
                         with no pending shootdown",
                        e.page
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Run every invariant in order; first failure wins.
///
/// # Errors
/// The first [`Violation`] found.
pub fn check_all(machine: &Machine, gate: &EmcGate, roots: &[Frame]) -> Result<(), Violation> {
    kernel_pkrs_confinement(machine)?;
    emc_consistency(machine, gate)?;
    wx_exclusive(machine, roots)?;
    shadow_stack_balance(machine)?;
    tlb_coherence(machine)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use erebor_hw::paging::{map_raw, PteFlags};
    use erebor_hw::regs::{Cr0, Cr4, Msr};

    fn machine() -> (Machine, Frame) {
        let mut m = Machine::new(2, 16 * 1024 * 1024);
        let root = m.mem.alloc_frame().unwrap();
        for c in &mut m.cpus {
            c.cr3 = root;
            c.cr0 = Cr0(Cr0::WP | Cr0::PG);
            c.cr4 = Cr4(Cr4::SMEP | Cr4::SMAP | Cr4::PKS);
            c.domain = Domain::Kernel;
        }
        m.allow_sensitive(Domain::Monitor);
        for cpu in 0..2 {
            m.cpus[cpu].domain = Domain::Monitor;
            m.wrmsr(cpu, Msr::Pkrs, policy::normal_mode_pkrs().0).unwrap();
            m.cpus[cpu].domain = Domain::Kernel;
        }
        (m, root)
    }

    #[test]
    fn clean_machine_passes() {
        let (m, root) = machine();
        let gate = EmcGate::new(erebor_hw::layout::MONITOR_BASE, vec![VirtAddr(0); 2]);
        check_all(&m, &gate, &[root]).unwrap();
    }

    #[test]
    fn kernel_domain_with_monitor_pkrs_is_flagged() {
        let (mut m, _) = machine();
        m.cpus[1].domain = Domain::Monitor;
        m.wrmsr(1, Msr::Pkrs, policy::monitor_mode_pkrs().0).unwrap();
        m.cpus[1].domain = Domain::Kernel;
        let v = kernel_pkrs_confinement(&m).unwrap_err();
        assert_eq!(v.invariant, "pkrs-confinement");
        assert!(v.detail.contains("cpu 1"));
    }

    #[test]
    fn wx_leaf_is_flagged() {
        let (mut m, root) = machine();
        let f = m.mem.alloc_frame().unwrap();
        let wx = PteFlags {
            present: true,
            writable: true,
            nx: false, // writable AND executable
            ..PteFlags::default()
        };
        map_raw(
            &mut m.mem,
            root,
            VirtAddr(0xffff_8000_0040_0000),
            Pte::encode(f, wx),
            erebor_hw::paging::intermediate_for(wx),
        )
        .unwrap();
        let v = wx_exclusive(&m, &[root]).unwrap_err();
        assert_eq!(v.invariant, "wx-exclusive");
    }

    #[test]
    fn stale_tlb_entry_without_pending_record_is_flagged() {
        let (mut m, root) = machine();
        let va = VirtAddr(0xffff_8000_0000_0000);
        let f = m.mem.alloc_frame().unwrap();
        map_raw(
            &mut m.mem,
            root,
            va,
            Pte::encode(f, PteFlags::kernel_rw(0)),
            erebor_hw::paging::intermediate_for(PteFlags::kernel_rw(0)),
        )
        .unwrap();
        m.probe(0, va, erebor_hw::fault::AccessKind::Read).unwrap();
        // Raw-remap the leaf to a different frame without any shootdown:
        // cpu 0's cached translation is now silently stale.
        let other = m.mem.alloc_frame().unwrap();
        let slot = erebor_hw::paging::leaf_slot(&m.mem, root, va).unwrap().unwrap();
        m.mem
            .write_u64(slot, Pte::encode(other, PteFlags::kernel_rw(0)).0)
            .unwrap();
        let v = tlb_coherence(&m).unwrap_err();
        assert_eq!(v.invariant, "tlb-coherence");
        assert!(v.detail.contains("cpu 0"));
        // An invalidation clears the staleness and the checker passes.
        m.invalidate_page(0, va).unwrap();
        tlb_coherence(&m).unwrap();
    }
}
