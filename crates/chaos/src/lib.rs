//! `erebor-chaos`: deterministic fault injection and invariant checking.
//!
//! The standing bug-finding engine for the reproduction. A [`ChaosPlan`]
//! (an [`erebor_hw::inject::Injector`] driven by the testkit's seeded
//! ChaCha20 RNG) schedules adversarial events at the instrumented
//! injection points — interrupts landing inside the EMC gates, host sEPT
//! flips under an in-flight `MapGPA`, frame-allocation failures, `tdcall`
//! error completions, dropped and spurious TLB-shootdown IPIs — while a
//! [`ChaosWorld`] drives random interleavings of gate entries/exits,
//! interrupts, shootdowns and conversions across 2–4 cores. Between every
//! step the global [`invariants`] are re-derived from machine state.
//!
//! Everything is replayable: a case is fully determined by `(seed, op
//! bytes)`, failing op sequences are shrunk with the testkit's byte
//! shrinker, and [`run`] folds every trace into an order-sensitive digest
//! so two runs with the same seed can be compared byte-for-byte.
//!
//! Environment knobs (the `EREBOR_PT_SEED` convention):
//! - `EREBOR_CHAOS_SEED`  — base seed (default in [`ChaosConfig`]).
//! - `EREBOR_CHAOS_CASES` — number of cases.
//! - `EREBOR_CHAOS_OPS`   — op bytes per case.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod invariants;
pub mod plan;
pub mod world;

pub use invariants::Violation;
pub use plan::{ChaosEvent, ChaosPlan, ChaosRates};
pub use world::ChaosWorld;

use erebor_analyze::{detect_races, Finding, MachineView, RaceFinding};
use erebor_hw::inject::InjectorHandle;
use erebor_testkit::rng::TestRng;
use erebor_trace::{TraceEvent, TraceRecord};
use std::sync::{Arc, Mutex, MutexGuard};

/// Machine-trace records retained with a failing case (the tail of the
/// per-core ring buffers at violation time).
pub const FAILURE_TRACE_DEPTH: usize = 32;

/// Per-core trace ring capacity for chaos cases. MMU tracing is on so the
/// race detector sees every revocation/invalidation/hit edge; the rings
/// must hold a whole case or an evicted invalidation could leave a stale
/// window "open" forever (a false positive, not just lost data).
pub const TRACE_RING_DEPTH: usize = 8192;

/// Lock the shared plan, recovering from poisoning: a panicking invariant
/// check inside the injector must not wedge trace collection — the
/// recorded schedule is exactly what we need to diagnose the panic.
fn lock_plan(plan: &Arc<Mutex<ChaosPlan>>) -> MutexGuard<'_, ChaosPlan> {
    plan.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A full chaos campaign: seed, budget, and injection rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Base seed; each case derives its own from this.
    pub seed: u64,
    /// Number of cases to run.
    pub cases: u32,
    /// Op bytes per case.
    pub ops_per_case: usize,
    /// Injection probabilities.
    pub rates: ChaosRates,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0xE2EB_0234,
            cases: 64,
            ops_per_case: 96,
            rates: ChaosRates::default(),
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => panic!("{name} must be a u64, got {raw:?}"),
    }
}

impl ChaosConfig {
    /// Defaults overridden by `EREBOR_CHAOS_SEED` / `EREBOR_CHAOS_CASES` /
    /// `EREBOR_CHAOS_OPS`.
    ///
    /// # Panics
    /// If a set variable does not parse as a `u64` (a silently ignored
    /// typo would silently change what a CI run tests).
    #[must_use]
    pub fn from_env() -> ChaosConfig {
        let mut cfg = ChaosConfig::default();
        if let Some(seed) = env_u64("EREBOR_CHAOS_SEED") {
            cfg.seed = seed;
        }
        if let Some(cases) = env_u64("EREBOR_CHAOS_CASES") {
            cfg.cases = cases as u32;
        }
        if let Some(ops) = env_u64("EREBOR_CHAOS_OPS") {
            cfg.ops_per_case = ops as usize;
        }
        cfg
    }
}

/// Seed for case number `case` under base seed `seed`.
#[must_use]
pub fn case_seed(seed: u64, case: u32) -> u64 {
    seed ^ (u64::from(case) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// The outcome of one executed case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseOutcome {
    /// Full event schedule (ops interleaved with injections).
    pub trace: Vec<ChaosEvent>,
    /// The first invariant violation, if any.
    pub violation: Option<Violation>,
    /// The machine's last [`FAILURE_TRACE_DEPTH`] trace records at the end
    /// of the case — cycle-stamped hardware events (gates, IPIs, faults,
    /// injections) that situate the violation in simulated time. MMU
    /// bookkeeping events (TLB hits/invalidations) are filtered out so
    /// the tail stays readable; the race detector sees the full ring.
    pub machine_trace: Vec<TraceRecord>,
    /// End-of-case state-audit findings (C1–C8 over the world's root,
    /// gate, and sEPT). Any finding is a violation: no op sequence, with
    /// or without injected faults, may leave the state machine bent.
    pub audit_findings: Vec<Finding>,
    /// Stale-permission windows the happens-before race detector found in
    /// the case's MMU trace. Windows caused by an *injected* IPI drop
    /// (`dropped == true`) are the fault model doing its job; an
    /// unexplained window is a violation.
    pub race_findings: Vec<RaceFinding>,
}

/// Whether a trace record is MMU-bookkeeping chatter (kept out of the
/// human-facing failure tail, still fed to the race detector).
fn is_mmu_noise(r: &TraceRecord) -> bool {
    matches!(
        r.event,
        TraceEvent::TlbHit { .. }
            | TraceEvent::TlbInvlpg { .. }
            | TraceEvent::TlbFlush
            | TraceEvent::TlbShootdown { .. }
    )
}

/// Execute one case: build a fresh world (2–4 cores, derived from the
/// seed), install a [`ChaosPlan`] seeded with `case_seed`, run the op
/// bytes, and check every invariant between steps.
#[must_use]
pub fn exec_case(cfg: &ChaosConfig, case_seed: u64, ops: &[u8]) -> CaseOutcome {
    let cores = 2 + (case_seed % 3) as usize;
    let mut world = ChaosWorld::new(cores);
    // Deep rings + MMU tracing: the end-of-case race detector needs every
    // revocation/invalidation/access edge, not just the readable tail.
    world.machine.trace = erebor_trace::TraceBuffer::with_capacity(cores, TRACE_RING_DEPTH);
    world.machine.mmu_trace = true;
    let plan = Arc::new(Mutex::new(ChaosPlan::new(case_seed, cfg.rates)));
    let handle: InjectorHandle = plan.clone();
    world.machine.set_injector(handle);
    let mut violation = None;
    for (index, &byte) in ops.iter().enumerate() {
        lock_plan(&plan).record(ChaosEvent::Op { index, byte });
        if let Err(v) = world.step(byte) {
            violation = Some(v);
            break;
        }
        if let Err(v) = invariants::check_all(&world.machine, &world.gate, &[world.root]) {
            violation = Some(v);
            break;
        }
        if lock_plan(&plan).kernel_saw_monitor_pkrs() {
            violation = Some(Violation {
                invariant: "kernel-view",
                detail: "an injected preemption let kernel/user code observe a PKRS \
                         granting monitor memory"
                    .to_owned(),
            });
            break;
        }
    }
    world.machine.clear_injector();
    let full_trace = world.machine.trace.last_n(usize::MAX);
    let machine_trace: Vec<TraceRecord> = full_trace
        .iter()
        .filter(|r| !is_mmu_noise(r))
        .copied()
        .collect();
    let machine_trace = machine_trace
        .split_at(machine_trace.len().saturating_sub(FAILURE_TRACE_DEPTH))
        .1
        .to_vec();

    // End-of-case static passes: the state auditor over the settled world
    // and the happens-before race detector over the whole MMU trace.
    let view = MachineView {
        machine: &world.machine,
        roots: &[world.root],
        gate: Some(&world.gate),
        monitor: None,
        sept: Some(&world.module.sept),
    };
    let audit_findings = erebor_analyze::audit::audit(&view).findings;
    let race_findings = detect_races(&full_trace, cores);
    if violation.is_none() {
        if let Some(f) = audit_findings.first() {
            violation = Some(Violation {
                invariant: "state-audit",
                detail: f.to_string(),
            });
        } else if let Some(r) = race_findings.iter().find(|r| !r.dropped) {
            // An injected IPI drop (dropped == true) legitimately leaves a
            // stale window — that is the fault being modeled. A window with
            // the IPI *delivered* means an invalidation edge went missing.
            violation = Some(Violation {
                invariant: "race-detector",
                detail: r.to_string(),
            });
        }
    }
    let trace = lock_plan(&plan).take_trace();
    CaseOutcome {
        trace,
        violation,
        machine_trace,
        audit_findings,
        race_findings,
    }
}

/// One shrunk, replayable failure.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseFailure {
    /// Case number within the campaign.
    pub case: u32,
    /// The derived seed — replay with `exec_case(cfg, case_seed, &ops)`.
    pub case_seed: u64,
    /// Shrunk op bytes still reproducing a violation.
    pub ops: Vec<u8>,
    /// The violation the shrunk case produces.
    pub violation: Violation,
    /// The shrunk case's full event trace.
    pub trace: Vec<ChaosEvent>,
    /// The machine's last trace records at violation time (cycle-stamped
    /// hardware events from the replay of the shrunk case).
    pub machine_trace: Vec<TraceRecord>,
}

/// Campaign result: totals, an order-sensitive trace digest, failures.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Base seed the campaign ran under.
    pub seed: u64,
    /// Cases executed.
    pub cases: u32,
    /// Events recorded across every trace.
    pub total_events: u64,
    /// FNV-1a over every case's trace, in order: byte-identical across
    /// replays of the same seed.
    pub digest: u64,
    /// Shrunk failures (empty on a clean run).
    pub failures: Vec<CaseFailure>,
}

impl ChaosReport {
    /// Whether the campaign found no violations.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// A human-readable roll-up (what the CI stage prints).
    #[must_use]
    pub fn summary(&self) -> String {
        let mut s = format!(
            "chaos: seed={:#x} cases={} events={} digest={:#018x} failures={}\n",
            self.seed,
            self.cases,
            self.total_events,
            self.digest,
            self.failures.len()
        );
        for f in &self.failures {
            s.push_str(&format!(
                "  case {} FAILED: {}\n    replay: EREBOR_CHAOS_SEED={} ops={:?}\n    trace: {:?}\n",
                f.case, f.violation, f.case_seed, f.ops, f.trace
            ));
            s.push_str(&format!(
                "    machine trace (last {} events):\n",
                f.machine_trace.len()
            ));
            for r in &f.machine_trace {
                s.push_str(&format!("      {r}\n"));
            }
        }
        s
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Run a full campaign. Failing cases are shrunk to a minimal op sequence
/// that still violates (under the same per-case seed, so the shrunk bytes
/// replay exactly).
#[must_use]
pub fn run(cfg: &ChaosConfig) -> ChaosReport {
    let mut digest = FNV_OFFSET;
    let mut total_events = 0u64;
    let mut failures = Vec::new();
    for case in 0..cfg.cases {
        let cs = case_seed(cfg.seed, case);
        // A distinct stream from the injection plan's, so op generation
        // and injection decisions never entangle.
        let mut rng = TestRng::seed_from_u64(cs ^ 0x6f70_735f); // "ops_"
        let mut ops = vec![0u8; cfg.ops_per_case];
        rng.fill(&mut ops);
        let outcome = exec_case(cfg, cs, &ops);
        total_events += outcome.trace.len() as u64;
        digest = fnv1a(digest, &cs.to_le_bytes());
        digest = fnv1a(digest, format!("{:?}", outcome.trace).as_bytes());
        if let Some(first) = outcome.violation {
            let shrunk = erebor_testkit::prop::shrink_bytes(&ops, &mut |bytes| {
                exec_case(cfg, cs, bytes).violation.is_some()
            });
            let replay = exec_case(cfg, cs, &shrunk);
            failures.push(CaseFailure {
                case,
                case_seed: cs,
                violation: replay.violation.unwrap_or(first),
                trace: replay.trace,
                machine_trace: replay.machine_trace,
                ops: shrunk,
            });
        }
    }
    ChaosReport {
        seed: cfg.seed,
        cases: cfg.cases,
        total_events,
        digest,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ChaosConfig {
        ChaosConfig {
            cases: 8,
            ops_per_case: 64,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn small_campaign_is_clean() {
        let report = run(&small());
        assert!(report.passed(), "{}", report.summary());
        assert!(report.total_events > 0);
    }

    #[test]
    fn same_seed_replays_byte_identically() {
        let a = run(&small());
        let b = run(&small());
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.total_events, b.total_events);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run(&small());
        let b = run(&ChaosConfig {
            seed: 0xDEAD_BEEF,
            ..small()
        });
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn case_seeds_are_distinct() {
        let s: std::collections::BTreeSet<u64> =
            (0..100).map(|c| case_seed(1, c)).collect();
        assert_eq!(s.len(), 100);
    }
}
