//! The adversarial scenario driver.
//!
//! A [`ChaosWorld`] is a small but complete machine — monitor and kernel
//! text mapped W⊕X under protection keys, an IDT whose vectors land on
//! the monitor's `#INT` interposer, per-core shadow stacks, a TDX module
//! with one device frame — across 2–4 cores. [`ChaosWorld::step`] decodes
//! one op byte into a gate/interrupt/TLB/tdcall/allocator action and
//! executes it, tolerating every injected fault the way the platform
//! does: errors roll back, they never panic. The caller checks the global
//! invariants between steps.
//!
//! Everything the driver itself verifies (gate transactionality, the
//! gate-vs-hardware interrupt-depth pairing) is reported as a
//! [`Violation`] so it lands in the same replayable failure report as the
//! global invariants.

use crate::invariants::Violation;
use erebor_core::gate::EmcGate;
use erebor_core::policy;
use erebor_hw::cpu::{Domain, Machine};
use erebor_hw::fault::AccessKind;
use erebor_hw::idt::{vector, Idtr};
use erebor_hw::layout;
use erebor_hw::paging::{intermediate_for, leaf_slot, map_raw, Pte, PteFlags};
use erebor_hw::phys::Frame;
use erebor_hw::regs::{s_cet, Cr0, Cr4, GprContext, Msr};
use erebor_hw::VirtAddr;
use erebor_tdx::tdcall::{tdcall, TdcallLeaf, TdxModule};

/// Where the `#INT` interposer lives (monitor text, not an IBT pad:
/// interrupt delivery is not an indirect branch).
const INTERPOSER: VirtAddr = VirtAddr(layout::MONITOR_BASE.0 + 0x80);
/// The kernel's timer handler body.
const KERNEL_HANDLER: VirtAddr = VirtAddr(layout::KERNEL_BASE.0 + 0x100);
/// The in-memory IDT page.
const IDT_BASE: VirtAddr = VirtAddr(layout::KERNEL_BASE.0 + 0x10_0000);
/// First of the remappable kernel data pages.
const DATA_BASE: VirtAddr = VirtAddr(layout::KERNEL_BASE.0 + 0x20_0000);
/// How many remappable data pages the TLB ops cycle through.
const DATA_PAGES: usize = 8;
/// Cap on frames the allocator op holds live at once.
const ALLOC_RING: usize = 8;

/// A kernel data page with two backing frames the remap op toggles
/// between (each toggle makes every cached translation stale until the
/// accompanying shootdown lands).
#[derive(Debug)]
struct DataPage {
    va: VirtAddr,
    frames: [Frame; 2],
    cur: usize,
}

/// The world under test.
#[derive(Debug)]
pub struct ChaosWorld {
    /// The machine (install the injector on this).
    pub machine: Machine,
    /// The EMC gate under test.
    pub gate: EmcGate,
    /// TDX module backing the tdcall ops.
    pub module: TdxModule,
    /// The single page-table root every core runs on.
    pub root: Frame,
    device: Frame,
    data: Vec<DataPage>,
    saved: Vec<Vec<GprContext>>,
    emc_entered_depth: Vec<Option<u32>>,
    allocated: Vec<Frame>,
    cores: usize,
}

impl ChaosWorld {
    /// Build a booted world with `cores` cores (clamped to 2–4).
    ///
    /// # Panics
    /// On allocation failure during setup (the setup path runs before any
    /// injector is installed, so this is a genuine out-of-memory).
    #[must_use]
    pub fn new(cores: usize) -> ChaosWorld {
        let cores = cores.clamp(2, 4);
        let mut m = Machine::new(cores, 32 * 1024 * 1024);
        let root = m.mem.alloc_frame().unwrap();

        let mon_code = m.mem.alloc_frame().unwrap();
        map_raw(
            &mut m.mem,
            root,
            layout::MONITOR_BASE,
            Pte::encode(mon_code, PteFlags::kernel_rx(policy::PK_MONITOR)),
            intermediate_for(PteFlags::kernel_rx(0)),
        )
        .unwrap();
        let kern_code = m.mem.alloc_frame().unwrap();
        map_raw(
            &mut m.mem,
            root,
            layout::KERNEL_BASE,
            Pte::encode(kern_code, PteFlags::kernel_rx(policy::PK_KTEXT)),
            intermediate_for(PteFlags::kernel_rx(0)),
        )
        .unwrap();
        let idt = m.mem.alloc_frame().unwrap();
        map_raw(
            &mut m.mem,
            root,
            IDT_BASE,
            Pte::encode(idt, PteFlags::kernel_ro(policy::PK_IDT)),
            intermediate_for(PteFlags::kernel_ro(0)),
        )
        .unwrap();

        let mut data = Vec::new();
        for i in 0..DATA_PAGES {
            let va = VirtAddr(DATA_BASE.0 + (i as u64) * 0x1000);
            let frames = [m.mem.alloc_frame().unwrap(), m.mem.alloc_frame().unwrap()];
            map_raw(
                &mut m.mem,
                root,
                va,
                Pte::encode(frames[0], PteFlags::kernel_rw(policy::PK_DEFAULT)),
                intermediate_for(PteFlags::kernel_rw(0)),
            )
            .unwrap();
            data.push(DataPage { va, frames, cur: 0 });
        }

        for c in &mut m.cpus {
            c.cr3 = root;
            c.cr0 = Cr0(Cr0::WP | Cr0::PG);
            c.cr4 = Cr4(Cr4::SMEP | Cr4::SMAP | Cr4::PKS | Cr4::CET);
            c.domain = Domain::Kernel;
            c.ctx.rip = layout::KERNEL_BASE.0;
        }
        m.allow_sensitive(Domain::Monitor);
        for cpu in 0..cores {
            // Boot each core through the monitor: CET on (IBT + shadow
            // stacks), normal-mode PKRS, IDT loaded.
            m.cpus[cpu].domain = Domain::Monitor;
            m.wrmsr(cpu, Msr::SCet, s_cet::ENDBR_EN | s_cet::SH_STK_EN)
                .unwrap();
            m.wrmsr(cpu, Msr::Pkrs, policy::normal_mode_pkrs().0).unwrap();
            m.lidt(cpu, IDT_BASE).unwrap();
            m.cpus[cpu].domain = Domain::Kernel;
        }
        let idtr = Idtr { base: IDT_BASE };
        for vec in [vector::TIMER, vector::DEVICE, vector::IPI] {
            erebor_hw::idt::write_entry_raw(&mut m.mem, root, idtr, vec, INTERPOSER).unwrap();
        }

        m.endbr.add(layout::MONITOR_BASE);
        let gate = EmcGate::new(
            layout::MONITOR_BASE,
            (0..cores)
                .map(|i| VirtAddr(layout::MONITOR_BASE.0 + 0x10000 + (i as u64) * 0x1000))
                .collect(),
        );

        let mut module = TdxModule::new([7u8; 32]);
        let device = m.mem.alloc_frame().unwrap();
        module.sept.accept_private(device);

        ChaosWorld {
            machine: m,
            gate,
            module,
            root,
            device,
            data,
            saved: vec![Vec::new(); cores],
            emc_entered_depth: vec![None; cores],
            allocated: Vec::new(),
            cores,
        }
    }

    /// Number of cores in this world.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Execute one op byte. Injected faults are tolerated (rolled back or
    /// retried later); driver-level consistency failures come back as
    /// violations.
    ///
    /// # Errors
    /// A [`Violation`] when a gate call breaks its transactional contract
    /// or the interrupt bookkeeping desynchronizes.
    pub fn step(&mut self, byte: u8) -> Result<(), Violation> {
        let op = byte % 7;
        let rest = usize::from(byte) / 7;
        let cpu = rest % self.cores;
        let sel = rest / self.cores;
        match op {
            0 => self.op_enter(cpu)?,
            1 => self.op_exit(cpu)?,
            2 => self.op_interrupt(cpu)?,
            3 => self.op_interrupt_return(cpu)?,
            4 => self.op_remap_shootdown(cpu, sel),
            5 => self.op_tdcall(cpu, sel),
            6 => self.op_alloc(),
            _ => unreachable!(),
        }
        self.check_depth_pairing()
    }

    fn op_enter(&mut self, cpu: usize) -> Result<(), Violation> {
        if self.gate.in_emc(cpu) {
            return Ok(()); // gates are per-core non-reentrant
        }
        let pre_domain = self.machine.cpus[cpu].domain;
        let pre_rip = self.machine.cpus[cpu].ctx.rip;
        let pre_pkrs = self.machine.cpus[cpu].msr(Msr::Pkrs);
        match self.gate.enter(&mut self.machine, cpu) {
            Ok(()) => {
                self.emc_entered_depth[cpu] = Some(self.gate.int_depth(cpu));
                Ok(())
            }
            Err(_) => {
                // Transactional contract: a failed entry leaves the core
                // exactly where the caller had it.
                let c = &self.machine.cpus[cpu];
                if self.gate.in_emc(cpu)
                    || c.domain != pre_domain
                    || c.ctx.rip != pre_rip
                    || c.msr(Msr::Pkrs) != pre_pkrs
                {
                    return Err(Violation {
                        invariant: "gate-transactional-enter",
                        detail: format!(
                            "cpu {cpu}: failed enter left in_emc={} domain={:?} pkrs={:#x} \
                             (was domain={pre_domain:?} pkrs={pre_pkrs:#x})",
                            self.gate.in_emc(cpu),
                            c.domain,
                            c.msr(Msr::Pkrs)
                        ),
                    });
                }
                Ok(())
            }
        }
    }

    fn op_exit(&mut self, cpu: usize) -> Result<(), Violation> {
        if !self.gate.in_emc(cpu) || self.gate.saved_pkrs(cpu).is_some() {
            return Ok(()); // nothing to exit, or preempted (handler owns the core)
        }
        match self.gate.exit(&mut self.machine, cpu, layout::KERNEL_BASE) {
            Ok(()) => {
                self.emc_entered_depth[cpu] = None;
                Ok(())
            }
            Err(_) => {
                // Transactional contract: a failed exit means the core
                // never left the EMC, and all three pieces of state must
                // still say so.
                let c = &self.machine.cpus[cpu];
                if !self.gate.in_emc(cpu)
                    || c.domain != Domain::Monitor
                    || c.pkrs() != policy::monitor_mode_pkrs()
                {
                    return Err(Violation {
                        invariant: "gate-transactional-exit",
                        detail: format!(
                            "cpu {cpu}: failed exit left in_emc={} domain={:?} pkrs={:#x}",
                            self.gate.in_emc(cpu),
                            c.domain,
                            c.msr(Msr::Pkrs)
                        ),
                    });
                }
                Ok(())
            }
        }
    }

    fn op_interrupt(&mut self, cpu: usize) -> Result<(), Violation> {
        let Ok((_handler, saved)) = self.machine.deliver_interrupt(cpu, vector::TIMER) else {
            return Ok(());
        };
        if self.gate.interrupt_entry(&mut self.machine, cpu).is_ok() {
            // Interposer hands off to the kernel's handler body. A fault
            // on this branch leaves the handler running in the interposer
            // — harmless, the return op picks it up from there.
            let _ = self.machine.direct_branch(cpu, KERNEL_HANDLER);
            self.saved[cpu].push(saved);
        } else {
            // The `#INT` gate refused (its revoke faulted): delivery is
            // aborted and the interrupted context resumes immediately.
            return match self.machine.iret(cpu, saved) {
                Ok(()) => Ok(()),
                Err(f) => Err(Violation {
                    invariant: "driver-iret",
                    detail: format!("cpu {cpu}: abort-delivery iret failed: {f:?}"),
                }),
            };
        }
        Ok(())
    }

    fn op_interrupt_return(&mut self, cpu: usize) -> Result<(), Violation> {
        // A handler may only return once any EMC it opened itself has been
        // exited; interrupts nested above the EMC's depth return freely.
        if self.gate.in_emc(cpu)
            && self.emc_entered_depth[cpu].is_some_and(|d| self.gate.int_depth(cpu) <= d)
        {
            return Ok(());
        }
        let Some(saved) = self.saved[cpu].pop() else {
            return Ok(());
        };
        // Back through the interposer for the return half of the gate.
        if self.machine.direct_branch(cpu, INTERPOSER).is_err()
            || self.gate.interrupt_return(&mut self.machine, cpu).is_err()
        {
            // Injected fault en route: the handler is still live; retry
            // the return on a later op.
            self.saved[cpu].push(saved);
            return Ok(());
        }
        match self.machine.iret(cpu, saved) {
            Ok(()) => Ok(()),
            Err(f) => Err(Violation {
                invariant: "driver-iret",
                detail: format!("cpu {cpu}: iret failed: {f:?}"),
            }),
        }
    }

    fn op_remap_shootdown(&mut self, cpu: usize, sel: usize) {
        let neighbor = (cpu + 1) % self.cores;
        let page = &mut self.data[sel % DATA_PAGES];
        let va = page.va;
        // Warm two cores' TLBs with the current translation.
        let _ = self.machine.probe(cpu, va, AccessKind::Read);
        let _ = self.machine.probe(neighbor, va, AccessKind::Read);
        // The kernel's PTE edit: retarget the page to its partner frame
        // (a raw direct-map store; coherence now depends on the shootdown).
        page.cur ^= 1;
        let next = page.frames[page.cur];
        if let Ok(Some(slot)) = leaf_slot(&self.machine.mem, self.root, va) {
            let _ = self.machine.mem.write_u64(
                slot,
                Pte::encode(next, PteFlags::kernel_rw(policy::PK_DEFAULT)).0,
            );
        }
        let _ = self.machine.tlb_shootdown(cpu, va);
    }

    fn op_tdcall(&mut self, cpu: usize, sel: usize) {
        if self.gate.in_emc(cpu) && self.gate.saved_pkrs(cpu).is_none() {
            // Monitor context: drive MapGPA conversions on the device
            // frame (every completion class — success, injected error
            // status, host contention — must be tolerated).
            let shared = self.module.sept.is_shared(self.device);
            let _ = tdcall(
                &mut self.module,
                &mut self.machine,
                cpu,
                TdcallLeaf::MapGpa {
                    frame: self.device,
                    shared: !shared,
                },
            );
        } else {
            // Kernel context: touch data pages instead (more TLB traffic).
            let va = self.data[sel % DATA_PAGES].va;
            let _ = self.machine.probe(cpu, va, AccessKind::Write);
        }
    }

    fn op_alloc(&mut self) {
        // Err means injected (or genuine) exhaustion: callers cope.
        if let Ok(f) = self.machine.mem.alloc_frame() {
            self.allocated.push(f);
            if self.allocated.len() > ALLOC_RING {
                let old = self.allocated.remove(0);
                let _ = self.machine.mem.free_frame(old);
            }
        }
    }

    /// The gate's interrupt ledger and the hardware's must agree after
    /// every settled op, or a gate error arm leaked a depth.
    fn check_depth_pairing(&self) -> Result<(), Violation> {
        for cpu in 0..self.cores {
            let g = self.gate.int_depth(cpu);
            let h = self.machine.interrupt_depth(cpu);
            if g != h {
                return Err(Violation {
                    invariant: "int-depth-pairing",
                    detail: format!("cpu {cpu}: gate depth {g} != hardware depth {h}"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_boots_clean() {
        let w = ChaosWorld::new(4);
        assert_eq!(w.cores(), 4);
        crate::invariants::check_all(&w.machine, &w.gate, &[w.root]).unwrap();
    }

    #[test]
    fn uninjected_ops_never_violate() {
        let mut w = ChaosWorld::new(3);
        for byte in 0u16..=255 {
            w.step(byte as u8).unwrap();
            crate::invariants::check_all(&w.machine, &w.gate, &[w.root]).unwrap();
        }
    }
}
