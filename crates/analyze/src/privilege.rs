//! The privilege-separation auditor: enforce the hw/monitor trust
//! boundary statically, over the whole workspace source.
//!
//! Erebor's security argument (DESIGN.md §14) rests on a tiny privileged
//! layer — the raw CPU/frame/MSR/PTE state in `erebor-hw`, the monitor's
//! entry/gate stubs, the isolation backends — mediating everything else.
//! ERIM proves its boundary by scanning binaries for privilege-mutating
//! instructions outside call gates; the Asterinas framekernel proves its
//! memory safety by confining `unsafe` to one auditable core crate. This
//! pass applies the same discipline at the Rust-module level:
//!
//! 1. **Reference graph** — every `use`/path mention of a privileged
//!    symbol ([`PRIVILEGED_SYMBOLS`]: raw `PhysMemory` frame mutation,
//!    PKRS/raw-MSR state, PTE/sEPT construction, domain pools, TLB/IPI
//!    primitives) is attributed to the crate/module it appears in.
//! 2. **Manifest check** — the graph is checked against the declared
//!    [`PRIVILEGE_MANIFEST`]; a mention in a module outside the manifest
//!    is a [`PrivilegeFinding`] (`priv-reach`).
//! 3. **`unsafe` confinement** — the `unsafe` keyword is banned
//!    workspace-wide (`stray-unsafe`); every crate carries
//!    `#![forbid(unsafe_code)]` and this pass keeps it that way even if
//!    an `allow` attribute sneaks in.
//! 4. **Export hygiene** — crate-root `pub use` re-exports must not
//!    re-expose a raw mutator under a shorter path (`pub-leak`): raw
//!    state is named by full module path only, so reaches stay greppable
//!    and attributable.
//!
//! Rule applicability: `priv-reach` binds *shipped library* code.
//! Integration tests, benches, examples, and the harness crates play the
//! untrusted host, the attacker, and the chaos injector by contract —
//! they must reach raw state to corrupt it. Bin entry points are
//! evaluation drivers. `stray-unsafe` binds everything.
//!
//! Waivers are **refused by default**: a `// priv:allow(<rule>)` comment
//! is honored only under [`WaiverPolicy::Honor`] (exploratory local
//! runs); under [`WaiverPolicy::Refuse`] — what CI runs — a waived line
//! still produces a finding, typed `waiver-refused`, so the baseline can
//! only be moved by editing the manifest in code review.

use crate::findings::escape_json;
use crate::lint::{classify, FileClass};
use crate::source::{CodeStripper, TestRegionTracker};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// One privileged symbol the scanner tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrivSymbol {
    /// Source token. Matching requires a non-identifier character (or
    /// line start) before the token; when [`PrivSymbol::prefix`] is set
    /// the token may continue as a longer identifier (`tlb_shootdown`
    /// also matches `tlb_shootdown_mm`).
    pub token: &'static str,
    /// Whether identifier characters may follow the token.
    pub prefix: bool,
    /// Symbol category (stable, used in findings and the graph).
    pub category: &'static str,
    /// What reaching this symbol lets a module do.
    pub what: &'static str,
}

const fn sym(
    token: &'static str,
    prefix: bool,
    category: &'static str,
    what: &'static str,
) -> PrivSymbol {
    PrivSymbol {
        token,
        prefix,
        category,
        what,
    }
}

/// The privileged symbols: mentioning any of these outside the
/// [`PRIVILEGE_MANIFEST`] is a trust-boundary violation. The categories
/// mirror the paper's sensitive-state inventory (Table 2 plus the
/// monitor's own bookkeeping).
pub const PRIVILEGED_SYMBOLS: &[PrivSymbol] = &[
    // Raw physical-frame state: allocate, free, retag, or write DRAM
    // without a CPU access check.
    sym("PhysMemory", true, "raw-frame", "raw DRAM read/write and frame allocation"),
    sym(".mem", false, "raw-frame", "direct reach into the machine's DRAM field"),
    sym("alloc_frame", true, "raw-frame", "allocate physical frames"),
    sym("free_frame", true, "raw-frame", "free physical frames"),
    sym("claim_frame", true, "raw-frame", "claim specific physical frames"),
    sym("claim_region", true, "raw-frame", "claim physical regions"),
    sym("reserve_region", true, "raw-frame", "reserve physical regions"),
    sym("zero_frame", true, "raw-frame", "scrub physical frames"),
    sym("set_frame_key", true, "raw-frame", "program per-frame memory-encryption keys"),
    // PTE / sEPT construction: build or edit translations directly.
    sym("map_raw", true, "pte-construct", "install raw page-table entries"),
    sym("lookup_raw", true, "pte-construct", "walk page tables without access checks"),
    sym("pte_slot", true, "pte-construct", "address raw PTE slots"),
    sym("leaf_slot", true, "pte-construct", "address raw leaf PTE slots"),
    sym("intermediate_for", true, "pte-construct", "derive intermediate PTE flags"),
    sym("Pte::encode", true, "pte-construct", "construct raw PTEs"),
    sym("with_keyid", true, "pte-construct", "stamp key-IDs into PTEs"),
    sym("Sept", true, "pte-construct", "secure-EPT construction and edits"),
    // Raw MSR/CR/PKRS state: mutate privilege registers bypassing the
    // architectural (checked) instruction paths.
    sym("Pkrs", true, "msr-cr-raw", "protection-key rights state"),
    sym("restore_msr", true, "msr-cr-raw", "restore MSRs bypassing pinning checks"),
    sym(".cpus[", false, "msr-cr-raw", "direct reach into per-CPU register state"),
    // Isolation-domain bookkeeping.
    sym("DomainPool", true, "domain", "isolation-domain allocation state"),
    sym("alloc_domain", true, "domain", "allocate isolation domains"),
    sym("free_domain", true, "domain", "free isolation domains"),
    // TLB / IPI primitives: invalidation obligations and their ledgers.
    sym("tlb_shootdown", true, "tlb-ipi", "cross-core invalidation IPIs"),
    sym("flush_tlb", true, "tlb-ipi", "full TLB flushes"),
    sym("invalidate_page", true, "tlb-ipi", "targeted TLB invalidation"),
    sym("bump_mmu_epoch", true, "tlb-ipi", "decision-cache epoch maintenance"),
    sym("force_mmu_epoch", true, "tlb-ipi", "decision-cache epoch override"),
    sym("pending_shootdowns", true, "tlb-ipi", "the dropped-IPI staleness ledger"),
    sym("pending_asid_shootdowns", true, "tlb-ipi", "the coalesced staleness ledger"),
];

/// Raw mutators that must never be re-exported from a crate root
/// (`pub use` in a `lib.rs`): naming them requires the full module path,
/// so every reach stays attributable to the module that took it.
pub const RAW_EXPORT_BANNED: &[&str] = &[
    "PhysMemory",
    "DomainPool",
    "map_raw",
    "lookup_raw",
    "pte_slot",
    "leaf_slot",
];

/// One entry of the privilege manifest: a workspace-relative path prefix
/// plus the reason it is allowed to reach privileged state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Path prefix (workspace-relative, `/`-separated). A trailing `/`
    /// scopes a directory; otherwise the entry names a single file.
    pub path: &'static str,
    /// Documented role of the privileged module.
    pub role: &'static str,
}

/// The declared privileged core. Everything else is unprivileged and may
/// touch hardware only through the safe APIs (the EMC gate,
/// `IsolationBackend`, `Platform`, `erebor_hw::native`).
pub const PRIVILEGE_MANIFEST: &[ManifestEntry] = &[
    ManifestEntry {
        path: "crates/hw/src/",
        role: "hardware substrate: the raw CPU/frame/MSR/PTE/TLB state itself, \
               the isolation backends, and the native-baseline MMU service",
    },
    ManifestEntry {
        path: "crates/tdx/src/",
        role: "TDX substrate: the TDX module, sEPT construction, attestation, \
               migration stream, and the untrusted host VMM model",
    },
    ManifestEntry {
        path: "crates/core/src/",
        role: "the monitor: EMC entry/exit gates, mmu_guard page-table \
               interposition, sandbox lifecycle, verified boot",
    },
    ManifestEntry {
        path: "crates/analyze/src/audit.rs",
        role: "state auditor: read-only raw-state reach to re-derive claims \
               C1-C8 from snapshots",
    },
    ManifestEntry {
        path: "src/platform.rs",
        role: "platform embedder: boots the machine and plays the untrusted \
               host and the in-guest driver",
    },
];

/// Whether `rel` (workspace-relative, `/`-separated) is inside the
/// privileged manifest, returning the matching entry.
#[must_use]
pub fn manifest_entry(rel: &str) -> Option<&'static ManifestEntry> {
    PRIVILEGE_MANIFEST.iter().find(|e| {
        if e.path.ends_with('/') {
            rel.starts_with(e.path)
        } else {
            rel == e.path
        }
    })
}

/// How `priv:allow(...)` waiver comments are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaiverPolicy {
    /// Drop waived findings (exploratory local runs only).
    Honor,
    /// Report waived findings as `waiver-refused` — what CI runs, so the
    /// zero baseline cannot be eroded line by line.
    Refuse,
}

/// One privilege-boundary violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrivilegeFinding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line (0 for whole-file findings).
    pub line: usize,
    /// Rule: `priv-reach`, `stray-unsafe`, `pub-leak`, `waiver-refused`.
    pub rule: &'static str,
    /// The privileged symbol reached (or `unsafe`).
    pub symbol: String,
    /// Symbol category (`raw-frame`, `pte-construct`, `msr-cr-raw`,
    /// `domain`, `tlb-ipi`, `unsafe`).
    pub category: &'static str,
    /// The reaching module (`erebor-kernel::vm` style), i.e. the node in
    /// the reference graph the reach is attributed to.
    pub module: String,
    /// Offending line, trimmed.
    pub excerpt: String,
}

impl PrivilegeFinding {
    /// Deterministic JSON object; every free-form field is escaped.
    #[must_use]
    pub fn json(&self) -> String {
        let mut s = String::from("{\"file\":\"");
        escape_json(&self.file, &mut s);
        let _ = write!(s, "\",\"line\":{},\"rule\":\"{}\",\"symbol\":\"", self.line, self.rule);
        escape_json(&self.symbol, &mut s);
        let _ = write!(s, "\",\"category\":\"{}\",\"module\":\"", self.category);
        escape_json(&self.module, &mut s);
        s.push_str("\",\"excerpt\":\"");
        escape_json(&self.excerpt, &mut s);
        s.push_str("\"}");
        s
    }
}

impl core::fmt::Display for PrivilegeFinding {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} reaches {} ({}) — {}",
            self.file, self.line, self.rule, self.module, self.symbol, self.category, self.excerpt
        )
    }
}

/// One edge of the reference graph: a module mentioning a privileged
/// symbol (privileged modules and harness files included — the graph is
/// the audit trail; findings are the subset that violates the manifest).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrivRef {
    /// The mentioning module (`erebor-hw::cpu` style).
    pub module: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The privileged symbol token.
    pub symbol: &'static str,
    /// Symbol category.
    pub category: &'static str,
    /// Whether the mentioning module is inside the manifest.
    pub privileged: bool,
}

/// The result of a workspace scan.
#[derive(Debug, Clone, Default)]
pub struct PrivilegeReport {
    /// Manifest violations (empty on a clean tree).
    pub findings: Vec<PrivilegeFinding>,
    /// `priv:allow` waivers that suppressed (Honor) or refused (Refuse)
    /// a finding. CI gates on zero.
    pub waivers_seen: u64,
    /// Files scanned.
    pub files_scanned: u64,
    /// Lines scanned (the work/budget metric).
    pub lines_scanned: u64,
    /// Scanned files inside the manifest.
    pub privileged_files: u64,
    /// Manifest entries matched by at least one scanned file.
    pub privileged_modules: u64,
    /// The full reference graph.
    pub references: Vec<PrivRef>,
}

impl PrivilegeReport {
    /// Whether the tree satisfies the boundary with no waivers in play.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.waivers_seen == 0
    }

    /// Scan work performed (budget metric for the bench guard).
    #[must_use]
    pub fn work(&self) -> u64 {
        self.lines_scanned
    }

    /// Reference counts aggregated per module, sorted by module name.
    #[must_use]
    pub fn graph_counts(&self) -> BTreeMap<String, u64> {
        let mut out: BTreeMap<String, u64> = BTreeMap::new();
        for r in &self.references {
            let e = out.entry(r.module.clone()).or_insert(0);
            *e = e.saturating_add(1);
        }
        out
    }

    /// Deterministic JSON document: summary counters, findings, and the
    /// per-module reference graph.
    #[must_use]
    pub fn json(&self) -> String {
        let mut s = String::from("{\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&f.json());
        }
        let _ = write!(
            s,
            "],\"count\":{},\"waivers\":{},\"files_scanned\":{},\"lines_scanned\":{},\
             \"privileged_files\":{},\"privileged_modules\":{},\"graph\":{{",
            self.findings.len(),
            self.waivers_seen,
            self.files_scanned,
            self.lines_scanned,
            self.privileged_files,
            self.privileged_modules
        );
        for (i, (module, n)) in self.graph_counts().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            escape_json(module, &mut s);
            let _ = write!(s, "\":{n}");
        }
        s.push_str("}}");
        s
    }
}

/// Map a workspace-relative path to its module name in the graph:
/// `crates/hw/src/cpu.rs` → `erebor-hw::cpu`, `src/platform.rs` →
/// `erebor::platform`, `tests/analyze.rs` → `tests::analyze`.
#[must_use]
pub fn module_of(rel: &str) -> String {
    let unixy = rel.replace('\\', "/");
    let stemmed = |s: &str| s.trim_end_matches(".rs").replace('/', "::");
    if let Some(rest) = unixy.strip_prefix("crates/") {
        let mut it = rest.splitn(2, '/');
        let krate = it.next().unwrap_or("");
        let tail = it.next().unwrap_or("");
        let tail = tail.strip_prefix("src/").unwrap_or(tail);
        let tail = stemmed(tail);
        if tail.is_empty() || tail == "lib" {
            return format!("erebor-{krate}");
        }
        return format!("erebor-{krate}::{tail}");
    }
    if let Some(rest) = unixy.strip_prefix("src/") {
        let tail = stemmed(rest);
        if tail.is_empty() || tail == "lib" {
            return "erebor".to_owned();
        }
        return format!("erebor::{tail}");
    }
    stemmed(&unixy)
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Every match position of `sym` in `code`, honoring word boundaries.
fn token_matches(code: &str, sym: &PrivSymbol) -> bool {
    let chars: Vec<char> = code.chars().collect();
    let tok: Vec<char> = sym.token.chars().collect();
    if chars.len() < tok.len() {
        return false;
    }
    let starts_ident = tok[0].is_alphanumeric() || tok[0] == '_';
    for i in 0..=(chars.len() - tok.len()) {
        if chars[i..i + tok.len()] != tok[..] {
            continue;
        }
        if starts_ident && i > 0 && is_ident(chars[i - 1]) {
            continue; // mid-identifier
        }
        if !sym.prefix {
            if let Some(&next) = chars.get(i + tok.len()) {
                if is_ident(next) && tok[tok.len() - 1] != '[' && tok[tok.len() - 1] != '.' {
                    continue; // exact-word token continued by an identifier
                }
            }
        }
        return true;
    }
    false
}

fn has_waiver(raw: &str, rule: &str) -> bool {
    raw.contains("priv:allow(") && raw.contains(rule)
}

/// Scan one file's content. Returns the reference-graph edges, the
/// findings (per `policy`), and the number of waivers that suppressed or
/// refused a finding (inert waiver text counts for nothing).
#[must_use]
pub fn scan_source(
    rel: &str,
    content: &str,
    policy: WaiverPolicy,
) -> (Vec<PrivRef>, Vec<PrivilegeFinding>, u64) {
    let unixy = rel.replace('\\', "/");
    let class = classify(&unixy);
    let privileged = manifest_entry(&unixy).is_some();
    let module = module_of(&unixy);
    let is_crate_root = unixy.ends_with("/lib.rs") || unixy == "src/lib.rs";
    let mut refs = Vec::new();
    let mut findings = Vec::new();
    let mut waivers = 0u64;
    let mut stripper = CodeStripper::new();
    let mut tracker = TestRegionTracker::new();
    for (idx, raw) in content.lines().enumerate() {
        let line = idx + 1;
        let stripped = stripper.strip(raw);
        let in_test = tracker.line_starts_in_test() || stripped.contains("#[cfg(test)]");
        tracker.observe(&stripped);
        let excerpt = || raw.trim().chars().take(120).collect::<String>();
        let waivers = &mut waivers;
        let mut push = |rule: &'static str, symbol: &str, category: &'static str| {
            // A waiver is counted only when it actually suppresses (or
            // refuses) a finding — dead waiver text in comments, strings,
            // or docs is inert, so the zero-waiver CI gate measures
            // exactly "findings hidden by waivers".
            let (rule, symbol) = if has_waiver(raw, rule) {
                *waivers = waivers.saturating_add(1);
                match policy {
                    WaiverPolicy::Honor => return,
                    WaiverPolicy::Refuse => ("waiver-refused", symbol),
                }
            } else {
                (rule, symbol)
            };
            findings.push(PrivilegeFinding {
                file: unixy.clone(),
                line,
                rule,
                symbol: symbol.to_owned(),
                category,
                module: module.clone(),
                excerpt: excerpt(),
            });
        };

        // stray-unsafe: workspace-wide, every class, test regions
        // included — `unsafe` is confined to nowhere at all.
        if token_matches(&stripped, &sym("unsafe", false, "unsafe", "")) {
            push("stray-unsafe", "unsafe", "unsafe");
        }

        // pub-leak: crate-root re-exports must not shorten the path to a
        // raw mutator.
        if is_crate_root && stripped.contains("pub use") {
            for banned in RAW_EXPORT_BANNED {
                let probe = sym(banned, false, "export", "");
                if token_matches(&stripped, &probe) {
                    push("pub-leak", banned, "raw-frame");
                }
            }
        }

        // Reference graph + priv-reach.
        for symbol in PRIVILEGED_SYMBOLS {
            if !token_matches(&stripped, symbol) {
                continue;
            }
            refs.push(PrivRef {
                module: module.clone(),
                file: unixy.clone(),
                line,
                symbol: symbol.token,
                category: symbol.category,
                privileged,
            });
            let reach_applies = class == FileClass::Library && !privileged && !in_test;
            if reach_applies {
                push("priv-reach", symbol.token, symbol.category);
            }
        }
    }
    (refs, findings, waivers)
}

/// Scan the whole workspace (same file set as the source lint) and build
/// the report. Results are path-sorted and deterministic.
#[must_use]
pub fn scan_workspace(root: &Path, policy: WaiverPolicy) -> PrivilegeReport {
    let mut report = PrivilegeReport::default();
    let mut matched: BTreeMap<&'static str, bool> = BTreeMap::new();
    for f in crate::lint::workspace_rs_files(root) {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(content) = fs::read_to_string(&f) else {
            continue;
        };
        report.files_scanned = report.files_scanned.saturating_add(1);
        report.lines_scanned = report
            .lines_scanned
            .saturating_add(content.lines().count() as u64);
        if let Some(entry) = manifest_entry(&rel) {
            report.privileged_files = report.privileged_files.saturating_add(1);
            matched.insert(entry.path, true);
        }
        let (refs, findings, waivers) = scan_source(&rel, &content, policy);
        report.references.extend(refs);
        report.findings.extend(findings);
        report.waivers_seen = report.waivers_seen.saturating_add(waivers);
    }
    report.privileged_modules = matched.len() as u64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reach(rel: &str, src: &str) -> Vec<PrivilegeFinding> {
        scan_source(rel, src, WaiverPolicy::Refuse).1
    }

    // ----- red fixtures: each rule fires, exactly once, typed ----------

    #[test]
    fn red_fixture_unprivileged_module_calls_raw_hw_mutator() {
        let src = "fn f(m: &mut Machine) { m.mem.write_u64(pa, v).ok(); }\n";
        let f = reach("crates/kernel/src/bad.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "priv-reach");
        assert_eq!(f[0].symbol, ".mem");
        assert_eq!(f[0].category, "raw-frame");
        assert_eq!(f[0].module, "erebor-kernel::bad");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn red_fixture_stray_unsafe_outside_manifest() {
        let src = "fn f() { let p = 0 as *const u8; unsafe { p.read() }; }\n";
        let f = reach("crates/libos/src/bad.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "stray-unsafe");
        assert_eq!(f[0].symbol, "unsafe");
    }

    #[test]
    fn red_fixture_pub_leak_reexposes_privileged_type() {
        let src = "pub use crate::phys::PhysMemory;\n";
        let f = reach("crates/hw/src/lib.rs", src);
        // The re-export is a pub-leak even though hw itself is privileged.
        let leaks: Vec<_> = f.iter().filter(|x| x.rule == "pub-leak").collect();
        assert_eq!(leaks.len(), 1, "{f:?}");
        assert_eq!(leaks[0].symbol, "PhysMemory");
    }

    // ----- rule applicability ------------------------------------------

    #[test]
    fn manifest_modules_may_reach() {
        let src = "fn f(m: &mut Machine) { paging::map_raw(&mut m.mem, r, va, pte, i).ok(); }\n";
        assert!(reach("crates/core/src/mmu_guard.rs", src).is_empty());
        assert!(reach("crates/hw/src/native.rs", src).is_empty());
        assert!(reach("crates/tdx/src/sept.rs", src).is_empty());
        assert!(reach("crates/analyze/src/audit.rs", src).is_empty());
        assert!(reach("src/platform.rs", src).is_empty());
        // ...but the same line in the kernel is two findings (map_raw + .mem).
        assert_eq!(reach("crates/kernel/src/vm.rs", src).len(), 2);
    }

    #[test]
    fn harness_and_test_regions_are_exempt_from_reach_but_not_unsafe() {
        let reach_src = "fn f(m: &mut M) { m.tlb_shootdown_mm(0, root, &vas).ok(); }\n";
        assert!(reach("tests/attacks.rs", reach_src).is_empty());
        assert!(reach("crates/chaos/src/world.rs", reach_src).is_empty());
        assert!(reach("examples/attack_demos.rs", reach_src).is_empty());
        let test_region = "#[cfg(test)]\nmod tests { fn t(m: &mut M) { m.flush_tlb(0); } }\n";
        assert!(reach("crates/kernel/src/vm.rs", test_region).is_empty());
        // unsafe is banned even in harness code and test regions.
        let unsafe_src = "fn f() { unsafe { x() } }\n";
        assert_eq!(reach("tests/attacks.rs", unsafe_src).len(), 1);
        let unsafe_test = "#[cfg(test)]\nmod tests { fn t() { unsafe { x() } } }\n";
        assert_eq!(reach("crates/kernel/src/vm.rs", unsafe_test).len(), 1);
    }

    #[test]
    fn reach_resumes_after_an_inline_test_module() {
        let src = "#[cfg(test)]\nmod tests { fn t(m: &mut M) { m.flush_tlb(0); } }\n\
                   fn after(m: &mut M) { m.flush_tlb(0); }\n";
        let f = reach("crates/kernel/src/vm.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn forbid_unsafe_code_attribute_is_not_a_stray_unsafe() {
        let src = "#![forbid(unsafe_code)]\nfn ok() {}\n";
        assert!(reach("crates/kernel/src/lib.rs", src).is_empty());
    }

    #[test]
    fn tokens_in_strings_and_comments_do_not_fire() {
        let src = "fn f() { log(\"map_raw unsafe .mem.\"); } // tlb_shootdown PhysMemory\n";
        assert!(reach("crates/kernel/src/a.rs", src).is_empty());
    }

    #[test]
    fn prefix_tokens_cover_the_symbol_family() {
        let src = "fn f(m: &mut M) { m.tlb_shootdown_batch(0, &vas).ok(); }\n";
        let f = reach("crates/kernel/src/a.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].symbol, "tlb_shootdown");
        // Exact-word tokens do not overmatch: `unsafe_code` is not `unsafe`.
        assert!(!token_matches("forbid(unsafe_code)", &sym("unsafe", false, "x", "")));
        // Word start is required: `remap_raw` is not `map_raw`.
        assert!(!token_matches("remap_rawish()", &sym("map_raw", true, "x", "")));
    }

    // ----- waivers ------------------------------------------------------

    #[test]
    fn waivers_are_refused_by_default_and_typed() {
        let src = "fn f(m: &mut M) { m.flush_tlb(0); } // priv:allow(priv-reach)\n";
        let f = reach("crates/kernel/src/a.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "waiver-refused");
        let (_, honored, waivers) =
            scan_source("crates/kernel/src/a.rs", src, WaiverPolicy::Honor);
        assert!(honored.is_empty());
        assert_eq!(waivers, 1);
        // Honored or not, the waiver itself is counted, so CI can fail on
        // any waiver appearing in the tree.
        let (_, _, refused_count) =
            scan_source("crates/kernel/src/a.rs", src, WaiverPolicy::Refuse);
        assert_eq!(refused_count, 1);
    }

    // ----- graph & report ----------------------------------------------

    #[test]
    fn graph_attributes_references_to_modules() {
        let src = "fn f(m: &mut M) { m.mem.alloc_frame().ok(); }\n";
        let (refs, _, _) = scan_source("crates/hw/src/native.rs", src, WaiverPolicy::Refuse);
        assert_eq!(refs.len(), 2); // .mem. and alloc_frame
        assert!(refs.iter().all(|r| r.module == "erebor-hw::native"));
        assert!(refs.iter().all(|r| r.privileged));
    }

    #[test]
    fn module_names() {
        assert_eq!(module_of("crates/hw/src/cpu.rs"), "erebor-hw::cpu");
        assert_eq!(module_of("crates/hw/src/lib.rs"), "erebor-hw");
        assert_eq!(module_of("crates/analyze/src/bin/lint.rs"), "erebor-analyze::bin::lint");
        assert_eq!(module_of("src/platform.rs"), "erebor::platform");
        assert_eq!(module_of("src/lib.rs"), "erebor");
        assert_eq!(module_of("tests/analyze.rs"), "tests::analyze");
    }

    #[test]
    fn report_json_is_escaped_and_structured() {
        let mut r = PrivilegeReport::default();
        r.files_scanned = 2;
        r.lines_scanned = 10;
        r.findings.push(PrivilegeFinding {
            file: "crates/k\"s.rs".to_owned(),
            line: 1,
            rule: "priv-reach",
            symbol: ".mem.".to_owned(),
            category: "raw-frame",
            module: "erebor-kernel::s".to_owned(),
            excerpt: "x\\\"y".to_owned(),
        });
        r.references.push(PrivRef {
            module: "erebor-hw::cpu".to_owned(),
            file: "crates/hw/src/cpu.rs".to_owned(),
            line: 2,
            symbol: "flush_tlb",
            category: "tlb-ipi",
            privileged: true,
        });
        let j = r.json();
        assert!(j.contains("\"count\":1"));
        assert!(j.contains("k\\\"s.rs"));
        assert!(j.contains("\"graph\":{\"erebor-hw::cpu\":1}"));
        assert_eq!(j.matches('"').count() % 2, 0, "balanced quotes: {j}");
        assert_eq!(r.work(), 10);
    }
}
