//! Structured auditor output: findings and the audit report.

use std::fmt::Write as _;

/// Escape a string for embedding in a JSON string literal: the two
/// structural characters plus control bytes. Shared by every structured
/// finding type — file paths and source excerpts flow through here, so a
/// path or line containing `"` or `\` cannot emit malformed JSON.
pub fn escape_json(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// One violated security claim, located as precisely as the walk allows
/// (offending root, VA, PTE path, register, or ledger entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable check name (`wx-exclusive`, `pkey-tagging`, …). Tests and
    /// the chaos harness key off this.
    pub check: &'static str,
    /// The paper claim the check encodes (`C1`–`C8`, DESIGN.md §9).
    pub claim: &'static str,
    /// Human-readable offending state, including the GPA/PTE path for
    /// mapping checks.
    pub detail: String,
}

impl Finding {
    /// Construct a finding.
    #[must_use]
    pub fn new(check: &'static str, claim: &'static str, detail: String) -> Finding {
        Finding {
            check,
            claim,
            detail,
        }
    }

    /// Deterministic JSON object.
    #[must_use]
    pub fn json(&self) -> String {
        let mut s = format!("{{\"check\":\"{}\",\"claim\":\"{}\",\"detail\":\"", self.check, self.claim);
        escape_json(&self.detail, &mut s);
        s.push_str("\"}");
        s
    }
}

impl core::fmt::Display for Finding {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}/{}] {}", self.claim, self.check, self.detail)
    }
}

/// The auditor's result: every finding plus the work the walk performed,
/// in simulated operations. The work counters are the budget the bench
/// guard asserts on — the audit must stay cheap enough to run after every
/// chaos case.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AuditReport {
    /// Violations found (empty for a clean snapshot).
    pub findings: Vec<Finding>,
    /// Distinct page-table roots walked.
    pub roots_walked: u64,
    /// Present leaf mappings visited across every root.
    pub leaf_mappings: u64,
    /// Raw PTE loads issued by the walks (the dominant cost).
    pub pte_reads: u64,
    /// Live TLB entries cross-checked against the tables.
    pub tlb_entries: u64,
    /// IDT vectors resolved and checked.
    pub idt_entries: u64,
    /// Live permission-decision cache entries cross-checked against the
    /// TLB and the register pipeline.
    pub decision_entries: u64,
}

impl AuditReport {
    /// Whether the snapshot satisfied every claim.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings for one named check.
    #[must_use]
    pub fn by_check(&self, check: &str) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.check == check).collect()
    }

    /// Total simulated operations charged to the audit (the bench-guard
    /// budget metric).
    #[must_use]
    pub fn work(&self) -> u64 {
        self.pte_reads
            .saturating_add(self.tlb_entries)
            .saturating_add(self.idt_entries)
            .saturating_add(self.decision_entries)
    }

    /// Deterministic JSON document.
    #[must_use]
    pub fn json(&self) -> String {
        let mut s = String::from("{\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&f.json());
        }
        let _ = write!(
            s,
            "],\"roots_walked\":{},\"leaf_mappings\":{},\"pte_reads\":{},\
             \"tlb_entries\":{},\"idt_entries\":{},\"decision_entries\":{},\"work\":{}}}",
            self.roots_walked,
            self.leaf_mappings,
            self.pte_reads,
            self.tlb_entries,
            self.idt_entries,
            self.decision_entries,
            self.work()
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_json_escapes_structural_characters() {
        let f = Finding::new("wx-exclusive", "C1", "va \"0x1\" \\ path".to_owned());
        let j = f.json();
        assert!(j.contains("\\\"0x1\\\""));
        assert!(j.contains("\\\\ path"));
    }

    #[test]
    fn report_json_is_stable_and_work_sums() {
        let mut r = AuditReport::default();
        r.pte_reads = 10;
        r.tlb_entries = 3;
        r.idt_entries = 2;
        assert_eq!(r.work(), 15);
        assert!(r.is_clean());
        assert_eq!(r.json(), r.clone().json());
        assert!(r.json().contains("\"work\":15"));
    }
}
