//! Shared source-scanning machinery for the token-level passes.
//!
//! Both the [`crate::lint`] rules and the [`crate::privilege`] auditor
//! work line-by-line over raw source text. Two concerns are factored out
//! here so the passes agree on what "code" means:
//!
//! * [`CodeStripper`] — removes the non-code spans a token scan must not
//!   see: line comments, block comments (including multi-line), string
//!   literals (including multi-line and raw strings), and character
//!   literals. Stripped spans are replaced with spaces so column
//!   positions and brace counts survive. Without this, a rule token
//!   appearing in a doc comment, a trace-event name string, or a test
//!   fixture literal would raise a false finding.
//! * [`TestRegionTracker`] — brace-depth-accurate tracking of
//!   `#[cfg(test)]` item spans. The old heuristic ("everything from the
//!   first `#[cfg(test)]` line onward is test code") silently exempted
//!   any library code that happened to follow an *inline* test module;
//!   the tracker instead arms on the attribute, enters the region at the
//!   item's opening brace, and leaves it when the brace depth returns to
//!   the entry level — so code after a test module is linted again.
//!
//! The stripper is deliberately not a Rust lexer: it handles exactly the
//! constructs that occur in this workspace (checked by the unit tests
//! below) and errs on the side of treating ambiguous text as code, which
//! can only ever produce a *louder* lint, never a silent exemption.

/// Cross-line lexical state for [`CodeStripper::strip`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StripState {
    /// Ordinary code.
    Code,
    /// Inside a `/* ... */` block comment (`depth` tracks nesting).
    BlockComment { depth: u32 },
    /// Inside a `"..."` string literal.
    Str,
    /// Inside a raw string literal with `hashes` `#` marks.
    RawStr { hashes: u8 },
}

/// Streaming comment/string/char-literal stripper. Feed it one line at a
/// time; state (open block comments, open multi-line strings) carries
/// across lines.
#[derive(Debug, Clone)]
pub struct CodeStripper {
    state: StripState,
}

impl Default for CodeStripper {
    fn default() -> Self {
        CodeStripper::new()
    }
}

impl CodeStripper {
    /// A stripper at the start of a file.
    #[must_use]
    pub fn new() -> CodeStripper {
        CodeStripper {
            state: StripState::Code,
        }
    }

    /// Return `line` with every non-code span replaced by spaces.
    pub fn strip(&mut self, line: &str) -> String {
        let bytes: Vec<char> = line.chars().collect();
        let mut out = String::with_capacity(line.len());
        let mut i = 0usize;
        while i < bytes.len() {
            match self.state {
                StripState::BlockComment { depth } => {
                    if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                        out.push_str("  ");
                        i += 2;
                        if depth == 1 {
                            self.state = StripState::Code;
                        } else {
                            self.state = StripState::BlockComment { depth: depth - 1 };
                        }
                    } else if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                        out.push_str("  ");
                        i += 2;
                        self.state = StripState::BlockComment { depth: depth + 1 };
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
                StripState::Str => {
                    if bytes[i] == '\\' {
                        out.push_str("  ");
                        i += 2; // skip the escaped char (may run off-line: fine)
                    } else if bytes[i] == '"' {
                        out.push('"');
                        i += 1;
                        self.state = StripState::Code;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
                StripState::RawStr { hashes } => {
                    if bytes[i] == '"' {
                        // Close only on `"` followed by the right number
                        // of `#` marks.
                        let n = hashes as usize;
                        let closes = (0..n).all(|k| bytes.get(i + 1 + k) == Some(&'#'));
                        if closes {
                            out.push('"');
                            for _ in 0..n {
                                out.push(' ');
                            }
                            i += 1 + n;
                            self.state = StripState::Code;
                            continue;
                        }
                    }
                    out.push(' ');
                    i += 1;
                }
                StripState::Code => {
                    let c = bytes[i];
                    if c == '/' && bytes.get(i + 1) == Some(&'/') {
                        // Line comment: drop the rest of the line.
                        break;
                    }
                    if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        out.push_str("  ");
                        i += 2;
                        self.state = StripState::BlockComment { depth: 1 };
                        continue;
                    }
                    if c == '"' {
                        out.push('"');
                        i += 1;
                        self.state = StripState::Str;
                        continue;
                    }
                    // Raw strings: r"..."  r#"..."#  br"..."  (byte-string
                    // prefix handled by the same arm since `b` is emitted
                    // as code and the `r` starts the literal).
                    if c == 'r' && !prev_is_ident(&bytes, i) {
                        let mut j = i + 1;
                        let mut hashes = 0u8;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&'"') {
                            for _ in i..=j {
                                out.push(' ');
                            }
                            i = j + 1;
                            self.state = StripState::RawStr { hashes };
                            continue;
                        }
                    }
                    if c == '\'' {
                        // Char literal vs lifetime. A char literal closes
                        // within a few chars (`'x'`, `'\n'`, `'\u{1F4}'`);
                        // a lifetime never has a closing quote nearby.
                        if let Some(len) = char_literal_len(&bytes, i) {
                            out.push(' ');
                            for _ in 1..len {
                                out.push(' ');
                            }
                            i += len;
                            continue;
                        }
                        out.push('\'');
                        i += 1;
                        continue;
                    }
                    out.push(c);
                    i += 1;
                }
            }
        }
        // A string that was still open at end-of-line: ordinary string
        // literals do continue across lines in Rust.
        out
    }
}

fn prev_is_ident(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_')
}

/// Length (in chars, including both quotes) of a char literal starting at
/// `i`, or `None` if `bytes[i]` starts a lifetime instead.
fn char_literal_len(bytes: &[char], i: usize) -> Option<usize> {
    debug_assert_eq!(bytes.get(i), Some(&'\''));
    if bytes.get(i + 1) == Some(&'\\') {
        // Escaped: scan to the closing quote (bounded: `'\u{10FFFF}'`).
        let end = (i + 12).min(bytes.len());
        return bytes
            .get(i + 3..end)
            .and_then(|w| w.iter().position(|&c| c == '\''))
            .map(|off| off + 4);
    }
    if bytes.get(i + 2) == Some(&'\'') && bytes.get(i + 1) != Some(&'\'') {
        return Some(3);
    }
    None
}

/// Brace-depth-accurate `#[cfg(test)]` region tracking.
///
/// Feed each line twice: [`TestRegionTracker::line_starts_in_test`]
/// *before* scanning the line (whether the line begins inside a test
/// region), then [`TestRegionTracker::observe`] with the *stripped* line
/// to advance the state. A line is "in a test region" for lint purposes
/// if it starts inside one or carries the arming attribute itself.
#[derive(Debug, Clone, Default)]
pub struct TestRegionTracker {
    depth: i64,
    /// `#[cfg(test)]` seen; waiting for the guarded item's `{`.
    armed: bool,
    /// Depth *outside* the region's opening brace while inside one.
    region_entry: Option<i64>,
}

impl TestRegionTracker {
    /// A tracker at the start of a file.
    #[must_use]
    pub fn new() -> TestRegionTracker {
        TestRegionTracker::default()
    }

    /// Whether the next line begins inside a `#[cfg(test)]` item.
    #[must_use]
    pub fn line_starts_in_test(&self) -> bool {
        self.region_entry.is_some() || self.armed
    }

    /// Advance the tracker over one *stripped* line.
    pub fn observe(&mut self, stripped: &str) {
        if stripped.contains("#[cfg(test)]") {
            self.armed = true;
        }
        for c in stripped.chars() {
            match c {
                '{' => {
                    if self.armed && self.region_entry.is_none() {
                        self.region_entry = Some(self.depth);
                        self.armed = false;
                    }
                    self.depth += 1;
                }
                '}' => {
                    self.depth -= 1;
                    if let Some(entry) = self.region_entry {
                        if self.depth <= entry {
                            self.region_entry = None;
                        }
                    }
                }
                // A brace-less guarded item (`#[cfg(test)] mod t;`,
                // `#[cfg(test)] use ...;`) ends at the semicolon
                // without opening a region.
                ';' if self.armed && self.region_entry.is_none() => {
                    self.armed = false;
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip_all(src: &str) -> Vec<String> {
        let mut s = CodeStripper::new();
        src.lines().map(|l| s.strip(l)).collect()
    }

    #[test]
    fn strips_line_and_block_comments() {
        let out = strip_all("let a = 1; // unwrap() here\nlet b = /* panic!( */ 2;\n");
        assert!(!out[0].contains("unwrap"));
        assert!(out[0].contains("let a = 1;"));
        assert!(!out[1].contains("panic"));
        assert!(out[1].contains("2;"));
    }

    #[test]
    fn strips_multiline_block_comments_and_nesting() {
        let out = strip_all("a /* x\n /* y */ still comment\n */ b\n");
        assert!(out[0].starts_with('a'));
        assert!(!out[1].contains("still"));
        assert!(out[2].contains('b'));
    }

    #[test]
    fn strips_string_literals_keeping_quotes() {
        let out = strip_all("let s = \"map_raw inside\"; call();\n");
        assert!(!out[0].contains("map_raw"));
        assert!(out[0].contains("call();"));
    }

    #[test]
    fn strips_escaped_quotes_in_strings() {
        let out = strip_all("let s = \"a \\\" b unwrap() c\"; f();\n");
        assert!(!out[0].contains("unwrap"));
        assert!(out[0].contains("f();"));
    }

    #[test]
    fn strips_raw_strings() {
        let out = strip_all("let s = r\"tlb_shootdown\"; g();\nlet t = r#\"x \" y map_raw\"#; h();\n");
        assert!(!out[0].contains("tlb_shootdown"));
        assert!(out[0].contains("g();"));
        assert!(!out[1].contains("map_raw"));
        assert!(out[1].contains("h();"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let out = strip_all("let c = '\"'; let s: &'a str = x; let q = '{';\n");
        // The quote char literal must not open a string...
        assert!(out[0].contains("let s: &'a str = x;"));
        // ...and the brace char literal must not count as a brace.
        assert!(!out[0].contains('{'));
    }

    #[test]
    fn multiline_strings_carry_state() {
        let out = strip_all("let s = \"first\nsecond unwrap()\nthird\"; tail();\n");
        assert!(!out[1].contains("unwrap"));
        assert!(out[2].contains("tail();"));
    }

    #[test]
    fn tracker_exempts_only_the_test_module_span() {
        let src = "fn a() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { x.unwrap(); }\n\
                   }\n\
                   fn after() { y.unwrap(); }\n";
        let mut strip = CodeStripper::new();
        let mut tr = TestRegionTracker::new();
        let mut in_test = Vec::new();
        for line in src.lines() {
            let stripped = strip.strip(line);
            let starts = tr.line_starts_in_test() || stripped.contains("#[cfg(test)]");
            tr.observe(&stripped);
            in_test.push(starts);
        }
        assert_eq!(in_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn tracker_handles_braceless_cfg_test_items() {
        let src = "#[cfg(test)]\nuse helper::thing;\nfn real() {}\n";
        let mut strip = CodeStripper::new();
        let mut tr = TestRegionTracker::new();
        let mut in_test = Vec::new();
        for line in src.lines() {
            let stripped = strip.strip(line);
            let starts = tr.line_starts_in_test() || stripped.contains("#[cfg(test)]");
            tr.observe(&stripped);
            in_test.push(starts);
        }
        // The attribute and its one-item span are exempt; code after the
        // semicolon is not.
        assert_eq!(in_test, vec![true, true, false]);
    }

    #[test]
    fn tracker_ignores_braces_in_strings_and_comments() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                       const S: &str = \"}\"; // } in string and comment }\n\
                   }\n\
                   fn after() {}\n";
        let mut strip = CodeStripper::new();
        let mut tr = TestRegionTracker::new();
        let mut in_test = Vec::new();
        for line in src.lines() {
            let stripped = strip.strip(line);
            let starts = tr.line_starts_in_test() || stripped.contains("#[cfg(test)]");
            tr.observe(&stripped);
            in_test.push(starts);
        }
        assert_eq!(in_test, vec![true, true, true, true, false]);
    }
}
