//! `erebor-analyze`: static analysis over the simulated machine, its
//! traces, and the workspace source.
//!
//! Three deterministic, hermetic passes (no external dependencies):
//!
//! * [`audit`] — the **state auditor**: an exhaustive walk of every
//!   page-table tree reachable from any tracked CR3, the sEPT, the IDT,
//!   and the pinned MSRs, mechanically verifying machine-checkable
//!   encodings of the paper's security claims C1–C8 (DESIGN.md §9 maps
//!   each check to its claim). Unlike the chaos invariants — which probe
//!   the states a campaign happens to visit — the auditor proves the
//!   claims over a whole snapshot, so every boot and every chaos case
//!   becomes a proof obligation rather than a lucky trip-wire.
//! * [`race`] — the **trace race detector**: a vector-clock
//!   happens-before pass over the [`erebor_trace::TraceRecord`] stream
//!   that flags stale-permission windows: a core's TLB-served access to
//!   a page after its revocation (unmap/downgrade/shootdown) without an
//!   intervening invalidation or shootdown-IPI ack edge on that core.
//! * [`lint`] — the **source lint**: token-level workspace rules (no
//!   `unwrap`/`expect`/`panic!` in library code outside tests,
//!   saturating arithmetic on stats counters, no `Ordering::Relaxed`,
//!   the `EREBOR_JSON:` marker in every JSON-emitting bin), run by
//!   `cargo run -p erebor-analyze --bin lint`.
//! * [`privilege`] — the **privilege-separation auditor**: a
//!   workspace-wide module-level reference graph of every mention of a
//!   privileged symbol (raw frame mutation, MSR/CR/PKRS state, PTE and
//!   sEPT construction, domain pools, TLB/IPI primitives, `unsafe`),
//!   checked against the declared privilege manifest — the allowlisted
//!   trusted core (`erebor-hw`, the monitor, the TDX substrate, the
//!   state auditor, the platform embedder). Zero findings is the CI
//!   baseline; waivers are refused by default. Run by
//!   `cargo run -p erebor-analyze --bin privilege` (DESIGN.md §14).
//!
//! Everything reports through the structured types in [`findings`] with
//! hand-rolled, byte-stable JSON like the rest of the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audit;
pub mod findings;
pub mod lint;
pub mod privilege;
pub mod race;
pub mod source;

pub use audit::MachineView;
pub use findings::{AuditReport, Finding};
pub use privilege::{PrivilegeFinding, PrivilegeReport};
pub use race::{detect_races, RaceFinding};
