//! The state auditor: exhaustive static verification of the paper's
//! security claims over a machine snapshot.
//!
//! Each check re-derives its claim from raw state — in-memory page
//! tables, the frame table, the sEPT, TLB arrays, registers — with no
//! help from the code paths that *established* that state, so a bug in
//! the gate/monitor/mmu-guard plumbing surfaces as a structured
//! [`Finding`] pointing at the offending GPA/PTE path. DESIGN.md §9
//! gives the full check → claim (C1–C9) mapping and the encoding each
//! check uses.
//!
//! The auditor never mutates the machine: every read is a raw physical
//! load (`PhysMemory::read_u64`), never a CPU access, so auditing cannot
//! perturb TLBs, cycle counts, or traces.

use crate::findings::{AuditReport, Finding};
use erebor_core::gate::EmcGate;
use erebor_core::monitor::Monitor;
use erebor_core::policy::{self, FrameKind};
use erebor_hw::cpu::{Domain, Machine};
use erebor_hw::isolation::IsolationBackend;
use erebor_hw::paging::Pte;
use erebor_hw::phys::PhysMemory;
use erebor_hw::regs::Msr;
use erebor_hw::{idt, layout, Frame, PhysAddr, VirtAddr};
use erebor_tdx::sept::{GpaState, Sept};
use std::collections::{BTreeMap, BTreeSet};

/// Everything the auditor may look at. The machine and at least one
/// page-table root are mandatory; the monitor-side views are optional so
/// the same auditor runs over the monitor-less chaos world (where only
/// the hardware-level checks apply).
#[derive(Debug, Clone, Copy)]
pub struct MachineView<'a> {
    /// The simulated machine (registers, DRAM, TLBs, shadow stacks).
    pub machine: &'a Machine,
    /// Page-table roots to walk, in addition to any the monitor knows.
    pub roots: &'a [Frame],
    /// EMC gate state, for PKRS-confinement exemptions mid-EMC.
    pub gate: Option<&'a EmcGate>,
    /// The monitor (frame table, sandboxes, interposer addresses).
    /// Enables the policy-level checks (C2–C5, C7, and the bookkeeping
    /// half of C8).
    pub monitor: Option<&'a Monitor>,
    /// The TDX module's secure EPT.
    pub sept: Option<&'a Sept>,
}

/// One present leaf mapping discovered by the exhaustive walk, with the
/// page-walk-effective permissions (writable AND-ed, NX OR-ed, user
/// AND-ed over the levels) and the slot path that produced it.
struct LeafMapping {
    root: Frame,
    va: VirtAddr,
    pte: Pte,
    slot: PhysAddr,
    writable: bool,
    nx: bool,
    user: bool,
}

impl LeafMapping {
    fn detail(&self) -> String {
        format!(
            "root {:#x} va {:#x} slot {:#x} -> frame {:#x} pte {:#x} (w={} nx={} user={} pk={})",
            self.root.0,
            self.va.0,
            self.slot.0,
            self.pte.frame().0,
            self.pte.0,
            self.writable,
            self.nx,
            self.user,
            self.pte.pkey()
        )
    }
}

fn saturating_bump(counter: &mut u64) {
    *counter = counter.saturating_add(1);
}

/// Exhaustively enumerate the present leaf mappings under `root`,
/// reconstructing each virtual address from the table indices (canonical
/// sign-extension included).
fn walk_root(mem: &PhysMemory, root: Frame, report: &mut AuditReport, out: &mut Vec<LeafMapping>) {
    let mut stack: Vec<(Frame, u8, u64, bool, bool, bool)> = vec![(root, 4, 0, true, false, true)];
    while let Some((tbl, level, prefix, w, nx, user)) = stack.pop() {
        for idx in 0..512u64 {
            let slot = PhysAddr(tbl.base().0 + idx * 8);
            saturating_bump(&mut report.pte_reads);
            let Ok(raw) = mem.read_u64(slot) else {
                continue; // table frame beyond DRAM: nothing mapped here
            };
            let entry = Pte(raw);
            if !entry.present() {
                continue;
            }
            let shift = 12 + 9 * u64::from(level - 1);
            let mut va = prefix | (idx << shift);
            if level == 4 && idx >= 256 {
                va |= 0xffff_0000_0000_0000; // canonical upper half
            }
            let w2 = w && entry.writable();
            let nx2 = nx || entry.nx();
            let user2 = user && entry.user();
            if level > 1 {
                stack.push((entry.frame(), level - 1, va, w2, nx2, user2));
            } else {
                saturating_bump(&mut report.leaf_mappings);
                out.push(LeafMapping {
                    root,
                    va: VirtAddr(va),
                    pte: entry,
                    slot,
                    writable: w2,
                    nx: nx2,
                    user: user2,
                });
            }
        }
    }
}

/// Fresh effective translation for one page (the TLB cross-check),
/// counting its PTE loads against the report budget.
fn walk_effective(
    mem: &PhysMemory,
    root: Frame,
    va: VirtAddr,
    report: &mut AuditReport,
) -> Option<(Frame, bool, bool, u8, u16)> {
    let mut tbl = root;
    let mut writable = true;
    let mut nx = false;
    for level in (2..=4u8).rev() {
        saturating_bump(&mut report.pte_reads);
        let entry = Pte(mem.read_u64(erebor_hw::paging::pte_slot(tbl, va, level)).ok()?);
        if !entry.present() {
            return None;
        }
        writable &= entry.writable();
        nx |= entry.nx();
        tbl = entry.frame();
    }
    saturating_bump(&mut report.pte_reads);
    let leaf = Pte(mem.read_u64(erebor_hw::paging::pte_slot(tbl, va, 1)).ok()?);
    if !leaf.present() {
        return None;
    }
    if leaf.keyid() != mem.frame_key(leaf.frame()) {
        // A fresh walk would fault with `KeyMismatch` (TME-MK): the
        // mapping's key-ID no longer matches the frame's programmed key.
        return None;
    }
    Some((
        leaf.frame(),
        writable && leaf.writable(),
        nx || leaf.nx(),
        leaf.pkey(),
        leaf.keyid(),
    ))
}

/// Run the full audit over `view`. Deterministic: same snapshot, same
/// report (findings are emitted in walk order, roots in sorted order).
#[must_use]
pub fn audit(view: &MachineView) -> AuditReport {
    let mut report = AuditReport::default();

    // Root set: caller-supplied roots plus everything the monitor tracks
    // (kernel root, registered user address spaces, sandbox roots).
    let mut roots: Vec<Frame> = view.roots.to_vec();
    if let Some(mon) = view.monitor {
        roots.extend(mon.address_space_roots());
        roots.extend(mon.sandboxes.values().map(|s| s.root));
    }
    roots.sort_by_key(|r| r.0);
    roots.dedup();

    let mem = &view.machine.mem;
    let mut leaves: Vec<LeafMapping> = Vec::new();
    for &root in &roots {
        saturating_bump(&mut report.roots_walked);
        walk_root(mem, root, &mut report, &mut leaves);
    }

    check_wx(view, &leaves, &mut report);
    check_pkey_tagging(view, &leaves, &mut report);
    check_confined_unreachable(view, &leaves, &mut report);
    check_sstk_protected(view, &leaves, &mut report);
    check_control_transfer(view, &mut report);
    check_msr_pinning(view, &mut report);
    check_sept_consistency(view, &leaves, &mut report);
    check_ledger_consistency(view, &leaves, &mut report);
    check_decision_consistency(view, &mut report);
    report
}

/// C1 `wx-exclusive`: no leaf is walk-effectively writable+executable,
/// and (when the frame table is available to name kinds) no frame is
/// executable via one path while plainly writable — under a key normal
/// mode can store through — via another.
fn check_wx(view: &MachineView, leaves: &[LeafMapping], report: &mut AuditReport) {
    for m in leaves {
        if m.writable && !m.nx {
            report.findings.push(Finding::new(
                "wx-exclusive",
                "C1",
                format!("writable+executable leaf: {}", m.detail()),
            ));
        }
    }
    if view.monitor.is_none() {
        // Without the monitor's policy there is no notion of which
        // cross-path aliases are sanctioned; the per-leaf form above is
        // the whole hardware-level claim.
        return;
    }
    let normal = policy::normal_mode_pkrs();
    // frame -> (first executable path, first normal-mode-writable path)
    let mut paths: BTreeMap<u64, (Option<usize>, Option<usize>)> = BTreeMap::new();
    for (i, m) in leaves.iter().enumerate() {
        let e = paths.entry(m.pte.frame().0).or_default();
        if !m.nx && e.0.is_none() {
            e.0 = Some(i);
        }
        let pk = m.pte.pkey();
        // A write path only counts if normal-mode PKRS permits it *and*
        // the mapping's key-ID matches the frame's programmed key (a
        // keyed mismatch faults the walk under TME-MK).
        if m.writable
            && !normal.access_disabled(pk)
            && !normal.write_disabled(pk)
            && m.pte.keyid() == view.machine.mem.frame_key(m.pte.frame())
            && e.1.is_none()
        {
            e.1 = Some(i);
        }
    }
    for (frame, (exec, write)) in paths {
        if let (Some(x), Some(w)) = (exec, write) {
            if x != w {
                report.findings.push(Finding::new(
                    "wx-exclusive",
                    "C1",
                    format!(
                        "frame {:#x} executable via one path and normal-writable via another: \
                         exec [{}], write [{}]",
                        frame,
                        leaves[x].detail(),
                        leaves[w].detail()
                    ),
                ));
            }
        }
    }
}

/// C2 `pkey-tagging`: a frame whose kind demands a restrictive
/// protection key (monitor, PTP, kernel text, shadow stack, IDT) must
/// never be reachable through a leaf carrying the *default* key — that
/// would hand normal-mode code an ungoverned view of protected memory.
fn check_pkey_tagging(view: &MachineView, leaves: &[LeafMapping], report: &mut AuditReport) {
    let Some(mon) = view.monitor else { return };
    for m in leaves {
        let kind = mon.frames.kind(m.pte.frame());
        let want = policy::pkey_for(kind);
        if want != policy::PK_DEFAULT && m.pte.pkey() == policy::PK_DEFAULT {
            report.findings.push(Finding::new(
                "pkey-tagging",
                "C2",
                format!(
                    "{kind:?} frame demands pk{want} but is mapped with the default key: {}",
                    m.detail()
                ),
            ));
        }
        // Confined frames: every supervisor view must carry exactly the
        // tag the owning sandbox's isolation domain prescribes — the
        // sandbox pkey under PKS, the monitor pkey plus the sandbox
        // key-ID under TME-MK. Re-derived from the backend, so the check
        // states the same claim generically over mechanisms.
        if let FrameKind::Confined { sandbox } = kind {
            if !m.user {
                if let Some(s) = mon.sandboxes.get(&sandbox) {
                    let tag = mon.backend.frame_tag(s.domain);
                    if m.pte.pkey() != tag.pkey || m.pte.keyid() != tag.keyid {
                        report.findings.push(Finding::new(
                            "pkey-tagging",
                            "C2",
                            format!(
                                "confined frame of sandbox {sandbox} demands tag \
                                 (pk{}, key {}) but a supervisor view carries \
                                 (pk{}, key {}): {}",
                                tag.pkey,
                                tag.keyid,
                                m.pte.pkey(),
                                m.pte.keyid(),
                                m.detail()
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// C3 `confined-unreachable`: sandbox confined memory is reachable only
/// from its owning sandbox's address space (or under the monitor key).
/// After seal/unmap/kill the kernel and every other sandbox must have no
/// path to the frame.
fn check_confined_unreachable(view: &MachineView, leaves: &[LeafMapping], report: &mut AuditReport) {
    let Some(mon) = view.monitor else { return };
    for m in leaves {
        let FrameKind::Confined { sandbox } = mon.frames.kind(m.pte.frame()) else {
            continue;
        };
        if !m.user && policy::normal_mode_pkrs().access_disabled(m.pte.pkey()) {
            // A supervisor alias normal mode cannot touch: the monitor
            // key (TME-MK aliases) or a sandbox domain key (PKS aliases)
            // — both access-disabled outside an EMC.
            continue;
        }
        let owner_root = mon.sandboxes.get(&sandbox).map(|s| s.root);
        if owner_root != Some(m.root) {
            report.findings.push(Finding::new(
                "confined-unreachable",
                "C3",
                format!(
                    "confined frame of sandbox {sandbox} reachable outside its address space: {}",
                    m.detail()
                ),
            ));
        }
    }
}

/// C4 `sstk-protected`: shadow-stack frames are never writable to normal
/// stores — any writable leaf must carry the shadow-stack key (which
/// normal mode can only read through) or the monitor key.
fn check_sstk_protected(view: &MachineView, leaves: &[LeafMapping], report: &mut AuditReport) {
    let Some(mon) = view.monitor else { return };
    for m in leaves {
        if mon.frames.kind(m.pte.frame()) != FrameKind::ShadowStack {
            continue;
        }
        let pk = m.pte.pkey();
        if m.writable && pk != policy::PK_SSTK && pk != policy::PK_MONITOR {
            report.findings.push(Finding::new(
                "sstk-protected",
                "C4",
                format!("shadow-stack frame writable under pk{pk}: {}", m.detail()),
            ));
        }
    }
}

/// C5 `control-transfer`: every architectural entry point into the
/// monitor — the EMC gate, the syscall/interrupt interposers, every
/// installed IDT vector, every live `IA32_LSTAR` — lands on an ENDBR
/// target inside the monitor half.
fn check_control_transfer(view: &MachineView, report: &mut AuditReport) {
    let Some(mon) = view.monitor else { return };
    // Syscall/interrupt interposition is the exit-protection layer
    // (§6.2); the LibOS-MMU ablation runs a monitor without it, with
    // LSTAR and the IDT legitimately still pointing into the kernel.
    if !mon.cfg.exit_protection() {
        return;
    }
    let machine = view.machine;
    let named = [
        ("gate entry", mon.gate.entry),
        ("syscall interposer", mon.syscall_interposer),
        ("interrupt interposer", mon.interrupt_interposer),
    ];
    for (what, va) in named {
        if !layout::is_monitor(va) {
            report.findings.push(Finding::new(
                "control-transfer",
                "C5",
                format!("{what} {:#x} is outside the monitor half", va.0),
            ));
        } else if !machine.endbr.is_target(va) {
            report.findings.push(Finding::new(
                "control-transfer",
                "C5",
                format!("{what} {:#x} is not an ENDBR target", va.0),
            ));
        }
    }
    // The hardware IDT, exactly as delivery would read it: resolve each
    // vector's slot through the core's live CR3 with raw physical loads.
    let mut seen: BTreeSet<(u64, u64)> = BTreeSet::new();
    for c in &machine.cpus {
        let Some(idtr) = c.idtr else { continue };
        if !seen.insert((c.cr3.0, idtr.base.0)) {
            continue; // identical table already checked
        }
        for vec in 0..idt::VECTORS as u64 {
            let va = idtr.base.add(vec * idt::ENTRY_SIZE);
            saturating_bump(&mut report.idt_entries);
            let Ok(Some(leaf)) = erebor_hw::paging::lookup_raw(&machine.mem, c.cr3, va) else {
                report.findings.push(Finding::new(
                    "control-transfer",
                    "C5",
                    format!("IDT page for vector {vec} unmapped under root {:#x}", c.cr3.0),
                ));
                continue;
            };
            let slot = PhysAddr(leaf.frame().base().0 + va.page_offset());
            let Ok(handler) = machine.mem.read_u64(slot) else {
                continue;
            };
            if handler == 0 {
                continue; // empty vector: delivery refuses it
            }
            let handler = VirtAddr(handler);
            if !layout::is_monitor(handler) {
                report.findings.push(Finding::new(
                    "control-transfer",
                    "C5",
                    format!(
                        "IDT vector {vec} lands at {:#x}, outside the monitor half",
                        handler.0
                    ),
                ));
            } else if !machine.endbr.is_target(handler) {
                report.findings.push(Finding::new(
                    "control-transfer",
                    "C5",
                    format!("IDT vector {vec} handler {:#x} is not an ENDBR target", handler.0),
                ));
            }
        }
    }
}

/// C6 `msr-pinning`: the privileged register state the monitor pins
/// stays pinned — `CR0.WP` set under paging, normal-mode PKRS denying
/// the monitor key outside an EMC, and `IA32_LSTAR` still pointing at
/// the monitor's syscall interposer.
fn check_msr_pinning(view: &MachineView, report: &mut AuditReport) {
    let machine = view.machine;
    let gate = view.gate.or(view.monitor.map(|m| &m.gate));
    for (cpu, c) in machine.cpus.iter().enumerate() {
        if c.cr0.pg() && !c.cr0.wp() {
            report.findings.push(Finding::new(
                "msr-pinning",
                "C6",
                format!("cpu {cpu}: CR0.WP clear under paging (cr0 {:#x})", c.cr0.0),
            ));
        }
        // The monitor-key discipline only exists where a monitor (or at
        // least its gate) does; native CVMs run with PKRS wide open.
        let monitor_mode = gate.is_some() || view.monitor.is_some();
        let in_emc = gate.is_some_and(|g| g.in_emc(cpu));
        if monitor_mode
            && c.cr4.pks()
            && matches!(c.domain, Domain::Kernel | Domain::User)
            && !in_emc
            && !c.pkrs().access_disabled(policy::PK_MONITOR)
        {
            report.findings.push(Finding::new(
                "msr-pinning",
                "C6",
                format!(
                    "cpu {cpu}: {:?}-domain PKRS {:#x} grants the monitor key outside an EMC",
                    c.domain,
                    c.pkrs().0
                ),
            ));
        }
        if let Some(mon) = view.monitor.filter(|m| m.cfg.exit_protection()) {
            let lstar = c.msr(Msr::Lstar);
            if lstar != 0 && lstar != mon.syscall_interposer.0 {
                report.findings.push(Finding::new(
                    "msr-pinning",
                    "C6",
                    format!(
                        "cpu {cpu}: IA32_LSTAR {lstar:#x} moved off the syscall interposer {:#x}",
                        mon.syscall_interposer.0
                    ),
                ));
            }
        }
    }
}

/// C7 `sept-consistency`: the guest's mappings agree with the sEPT —
/// frames the guest maps as ordinary memory are accepted private, and
/// every host-shared GPA is typed `SharedDevice` in the frame table (so
/// nothing secret can sit in a window the host can read).
fn check_sept_consistency(view: &MachineView, leaves: &[LeafMapping], report: &mut AuditReport) {
    let (Some(mon), Some(sept)) = (view.monitor, view.sept) else {
        return;
    };
    let mut checked: BTreeSet<u64> = BTreeSet::new();
    for m in leaves {
        let f = m.pte.frame();
        if !checked.insert(f.0) {
            continue;
        }
        let kind = mon.frames.kind(f);
        match sept.state(f) {
            Some(GpaState::Shared) if kind != FrameKind::SharedDevice => {
                report.findings.push(Finding::new(
                    "sept-consistency",
                    "C7",
                    format!("host-shared frame mapped as {kind:?}: {}", m.detail()),
                ));
            }
            Some(GpaState::Private) if kind == FrameKind::SharedDevice => {
                report.findings.push(Finding::new(
                    "sept-consistency",
                    "C7",
                    format!("SharedDevice frame still sEPT-private: {}", m.detail()),
                ));
            }
            _ => {}
        }
    }
    for f in sept.shared_frames() {
        let kind = mon.frames.kind(f);
        if !matches!(kind, FrameKind::SharedDevice | FrameKind::Unused) {
            report.findings.push(Finding::new(
                "sept-consistency",
                "C7",
                format!("sEPT-shared frame {:#x} is typed {kind:?} in the frame table", f.0),
            ));
        }
    }
}

/// C8 `ledger-consistency`: the hardware/monitor bookkeeping matches the
/// tables — every live TLB entry agrees with a fresh walk unless its
/// staleness is recorded in the `pending_shootdowns` ledger, and no
/// frame the monitor accounts as fully unmapped is still reachable.
fn check_ledger_consistency(view: &MachineView, leaves: &[LeafMapping], report: &mut AuditReport) {
    let machine = view.machine;
    for (cpu, tlb) in machine.tlbs.iter().enumerate() {
        for e in tlb.entries() {
            saturating_bump(&mut report.tlb_entries);
            if machine.shootdown_pending(cpu, e.root, e.page) {
                continue; // recorded (tolerated) staleness
            }
            let va = VirtAddr(e.page << 12);
            let fresh = walk_effective(&machine.mem, e.root, va, report);
            // Dirty state excluded: a clean cached entry over a dirty PTE
            // re-walks on write, so it can never grant anything stale.
            let cached = Some((e.frame, e.eff.writable, e.eff.nx, e.eff.pkey, e.eff.keyid));
            if fresh != cached {
                report.findings.push(Finding::new(
                    "ledger-consistency",
                    "C8",
                    format!(
                        "cpu {cpu} TLB caches page {:#x} as {cached:?} but the tables say \
                         {fresh:?} with no pending-shootdown record",
                        e.page
                    ),
                ));
            }
        }
    }
    let Some(mon) = view.monitor else { return };
    for m in leaves {
        let f = m.pte.frame();
        if matches!(mon.frames.kind(f), FrameKind::UserAnon { .. }) && mon.frames.mapcount(f) == 0
        {
            report.findings.push(Finding::new(
                "ledger-consistency",
                "C8",
                format!("frame accounted fully unmapped but still reachable: {}", m.detail()),
            ));
        }
    }
}

/// C9 `decision-consistency`: a *live* permission-decision cache (context
/// and MMU epoch both matching the machine) serves its entries to the
/// batch fast path with no further checks, so every entry must still be
/// backed by the state it memoized — each decision is treated as an
/// individual access, never coalesced, so one stale entry among many
/// fresh ones is still a finding. Concretely, for each cached decision:
/// a live TLB entry for the same root/page/class must exist and resolve
/// to the same frame, a write decision demands that entry be dirty (the
/// slow path re-walks clean entries for dirty promotion; the fast path
/// must not have skipped that), and the architectural permission pipeline
/// evaluated against the *current* registers must still allow the access.
/// Pages in the `pending_shootdowns` ledger are tolerated staleness,
/// exactly as in C8. Dead caches (context or epoch mismatch) serve
/// nothing and are skipped — the fast path re-keys them before use.
fn check_decision_consistency(view: &MachineView, report: &mut AuditReport) {
    let machine = view.machine;
    for (cpu, c) in machine.cpus.iter().enumerate() {
        let ctx = machine.live_ctx(cpu);
        let cache = machine.decision_cache(cpu);
        if !cache.valid_for(&ctx, machine.mmu_epoch()) {
            continue;
        }
        let env = erebor_hw::mmu::MmuEnv {
            root: c.cr3,
            cr0: c.cr0,
            cr4: c.cr4,
            mode: c.mode,
            rflags: c.rflags(),
            pkrs: c.pkrs(),
        };
        for (kind, d) in cache.entries() {
            saturating_bump(&mut report.decision_entries);
            if machine.shootdown_pending(cpu, ctx.root, d.page) {
                continue; // recorded (tolerated) staleness
            }
            let va = VirtAddr(d.page << 12);
            let Some(e) = machine.tlbs[cpu].lookup(ctx.root, va, kind) else {
                report.findings.push(Finding::new(
                    "decision-consistency",
                    "C9",
                    format!(
                        "cpu {cpu} live decision cache holds {kind:?} page {:#x} -> frame {:#x} \
                         with no backing TLB entry",
                        d.page, d.frame.0
                    ),
                ));
                continue;
            };
            if e.frame != d.frame {
                report.findings.push(Finding::new(
                    "decision-consistency",
                    "C9",
                    format!(
                        "cpu {cpu} decision for {kind:?} page {:#x} resolves to frame {:#x} but \
                         the TLB holds frame {:#x}",
                        d.page, d.frame.0, e.frame.0
                    ),
                ));
                continue;
            }
            if kind == erebor_hw::AccessKind::Write && !e.dirty {
                report.findings.push(Finding::new(
                    "decision-consistency",
                    "C9",
                    format!(
                        "cpu {cpu} write decision for page {:#x} backed by a clean TLB entry \
                         (dirty promotion skipped)",
                        d.page
                    ),
                ));
                continue;
            }
            if let Err(fault) = erebor_hw::mmu::check_access(&env, va, kind, e.eff) {
                report.findings.push(Finding::new(
                    "decision-consistency",
                    "C9",
                    format!(
                        "cpu {cpu} decision grants {kind:?} to page {:#x} but the live pipeline \
                         denies it: {fault:?}",
                        d.page
                    ),
                ));
            }
        }
    }
}
