//! The hermetic source lint: token-level rules over the workspace
//! source, with no parser dependency (`syn`-free by design — the rules
//! are line-shaped and a full AST would buy nothing but a dependency).
//!
//! Rules:
//!
//! * `no-panic` — no `.unwrap()`, `.expect(`, or `panic!(` in *library*
//!   code outside `#[cfg(test)]` regions. Bins, benches, examples,
//!   integration tests, and the harness crates (`testkit`, `bench`,
//!   `chaos` — whose contract is to abort loudly on harness misuse) are
//!   exempt. A documented waiver is spelled `// lint:allow(panic)` on
//!   the offending line. Files on the [`STRICT_NO_PANIC_FILES`] list are
//!   held to a stronger contract: the rule applies to their *entire*
//!   content (test regions included) and waivers are not honored —
//!   these files sit on the migration-peer input path, where a panic is
//!   a remote denial of service against the monitor.
//! * `saturating-counters` — stats counters never use bare `+=`/`-=`
//!   (the workspace convention is `saturating_add`/`saturating_sub` so
//!   long campaigns cannot overflow-panic in debug builds). Waiver:
//!   `lint:allow(counter)`.
//! * `no-relaxed` — `Ordering::Relaxed` is banned on synchronization
//!   atomics (the workspace is single-threaded-deterministic; any
//!   atomic that appears must order). Waiver: `lint:allow(relaxed)`.
//! * `json-marker` — every bin that serializes JSON (calls `.json()`)
//!   must emit the `EREBOR_JSON:` marker CI greps for.
//!
//! `#[cfg(test)]` regions are tracked brace-accurately by
//! [`crate::source::TestRegionTracker`]: only the guarded item's span is
//! exempt, so library code following an *inline* test module is linted
//! like any other code. Comments, string literals, and char literals are
//! stripped by [`crate::source::CodeStripper`] before token matching.

use crate::findings::escape_json;
use crate::source::{CodeStripper, TestRegionTracker};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// One lint rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number (0 for whole-file rules).
    pub line: usize,
    /// Stable rule name.
    pub rule: &'static str,
    /// The offending line, trimmed.
    pub excerpt: String,
}

impl LintFinding {
    /// Deterministic JSON object. `file` and `excerpt` are escaped so a
    /// path or source line containing `"` or `\` cannot break the
    /// document CI extracts from the `EREBOR_JSON:` marker.
    #[must_use]
    pub fn json(&self) -> String {
        let mut s = String::from("{\"file\":\"");
        escape_json(&self.file, &mut s);
        let _ = write!(s, "\",\"line\":{},\"rule\":\"{}\",\"excerpt\":\"", self.line, self.rule);
        escape_json(&self.excerpt, &mut s);
        s.push_str("\"}");
        s
    }
}

impl core::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.excerpt)
    }
}

/// How a source file is classified for rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Shipped library code: every rule applies.
    Library,
    /// A `src/bin/` entry point: panic rule relaxed, JSON-marker rule on.
    Bin,
    /// Tests, benches, examples, and harness crates: only the atomic and
    /// counter rules apply.
    Harness,
}

/// Crates whose whole purpose is driving tests/benches/chaos; their
/// libraries abort on harness misuse by contract.
const HARNESS_CRATES: [&str; 3] = ["crates/testkit", "crates/bench", "crates/chaos"];

/// Files that parse or act on migration-peer-controlled input, where a
/// panic is a remote denial of service: the `no-panic` rule applies to
/// their entire content — `#[cfg(test)]` regions included — and
/// `lint:allow(panic)` waivers are not honored.
pub const STRICT_NO_PANIC_FILES: [&str; 3] = [
    "crates/crypto/src/kx.rs",
    "crates/kernel/src/kernel.rs",
    "crates/kernel/src/vfs.rs",
];

/// Classify a workspace-relative path.
#[must_use]
pub fn classify(rel: &str) -> FileClass {
    let unixy = rel.replace('\\', "/");
    if unixy.contains("/bin/") {
        return FileClass::Bin; // bins stay bins even inside harness crates
    }
    if HARNESS_CRATES.iter().any(|c| unixy.starts_with(c)) {
        return FileClass::Harness;
    }
    if unixy.starts_with("tests/")
        || unixy.contains("/tests/")
        || unixy.contains("/benches/")
        || unixy.starts_with("examples/")
        || unixy.contains("/examples/")
    {
        return FileClass::Harness;
    }
    FileClass::Library
}

fn has_waiver(line: &str, what: &str) -> bool {
    line.contains("lint:allow(") && line.contains(what)
}

/// Lint one file's content. `rel` is the workspace-relative path used in
/// findings and for classification.
#[must_use]
pub fn lint_source(rel: &str, content: &str) -> Vec<LintFinding> {
    let class = classify(rel);
    let strict = {
        let unixy = rel.replace('\\', "/");
        STRICT_NO_PANIC_FILES.iter().any(|f| unixy == *f)
    };
    let mut findings = Vec::new();
    let mut stripper = CodeStripper::new();
    let mut tracker = TestRegionTracker::new();
    for (idx, raw) in content.lines().enumerate() {
        let line = idx + 1;
        // Comments and literals carry waivers, prose, and fixtures; strip
        // them for token scans but keep the raw line for waiver detection.
        let stripped = stripper.strip(raw);
        let in_test_region = tracker.line_starts_in_test() || stripped.contains("#[cfg(test)]");
        tracker.observe(&stripped);
        let code: &str = &stripped;
        let excerpt = || raw.trim().chars().take(120).collect::<String>();

        let panic_rule_applies =
            strict || (class == FileClass::Library && !in_test_region && !has_waiver(raw, "panic"));
        if panic_rule_applies
            && (code.contains(".unwrap()") || code.contains(".expect(") || code.contains("panic!("))
        {
            findings.push(LintFinding {
                file: rel.to_owned(),
                line,
                rule: "no-panic",
                excerpt: excerpt(),
            });
        }
        if !in_test_region
            && !has_waiver(raw, "counter")
            && code.contains("stats.")
            && (code.contains("+=") || code.contains("-="))
        {
            findings.push(LintFinding {
                file: rel.to_owned(),
                line,
                rule: "saturating-counters",
                excerpt: excerpt(),
            });
        }
        // Token split so the lint does not flag its own rule definition.
        let relaxed_tok = concat!("Ordering::", "Relaxed");
        if code.contains(relaxed_tok) && !has_waiver(raw, "relaxed") {
            findings.push(LintFinding {
                file: rel.to_owned(),
                line,
                rule: "no-relaxed",
                excerpt: excerpt(),
            });
        }
    }
    if class == FileClass::Bin && content.contains(".json()") && !content.contains("EREBOR_JSON") {
        findings.push(LintFinding {
            file: rel.to_owned(),
            line: 0,
            rule: "json-marker",
            excerpt: "bin serializes JSON without the EREBOR_JSON: marker".to_owned(),
        });
    }
    findings
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Every `.rs` file the workspace passes scan: the root `src/`,
/// `tests/`, and `examples/` trees plus each crate's `src/` and
/// `benches/`. Path-sorted for determinism. Shared by the source lint
/// and the privilege auditor so both passes see the same tree.
#[must_use]
pub fn workspace_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("src"), &mut files);
    collect_rs_files(&root.join("tests"), &mut files);
    collect_rs_files(&root.join("examples"), &mut files);
    let crates = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates) {
        let mut dirs: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        dirs.sort();
        for d in dirs {
            collect_rs_files(&d.join("src"), &mut files);
            collect_rs_files(&d.join("benches"), &mut files);
        }
    }
    files.sort();
    files
}

/// Lint every `.rs` file under the workspace root's `src/` and
/// `crates/*/src/` trees (the shipped source; integration tests and
/// examples are classified, not skipped, so the counter/atomic rules
/// still see them). Results are sorted by path for determinism.
#[must_use]
pub fn lint_workspace(root: &Path) -> Vec<LintFinding> {
    let files = workspace_rs_files(root);
    let mut findings = Vec::new();
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(content) = fs::read_to_string(&f) else {
            continue;
        };
        findings.extend(lint_source(&rel, &content));
    }
    findings
}

/// Deterministic JSON report over a finding set.
#[must_use]
pub fn report_json(findings: &[LintFinding]) -> String {
    let mut s = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&f.json());
    }
    let _ = write!(s, "],\"count\":{}}}", findings.len());
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_paths() {
        assert_eq!(classify("crates/core/src/monitor.rs"), FileClass::Library);
        assert_eq!(classify("crates/analyze/src/bin/lint.rs"), FileClass::Bin);
        assert_eq!(classify("crates/testkit/src/prop.rs"), FileClass::Harness);
        assert_eq!(classify("tests/chaos.rs"), FileClass::Harness);
        assert_eq!(classify("crates/bench/benches/paging.rs"), FileClass::Harness);
    }

    #[test]
    fn flags_panics_in_library_code_only() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(lint_source("crates/core/src/a.rs", src).len(), 1);
        assert!(lint_source("tests/a.rs", src).is_empty());
        assert!(lint_source("crates/testkit/src/a.rs", src).is_empty());
    }

    #[test]
    fn test_region_and_waiver_are_exempt() {
        let src = "fn f() { a.expect(\"x\") } // lint:allow(panic)\n\
                   #[cfg(test)]\nmod tests { fn g() { b.unwrap(); } }\n";
        assert!(lint_source("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn code_after_an_inline_test_module_is_linted_again() {
        // The old heuristic skipped everything after the first
        // `#[cfg(test)]` line; the brace tracker must resume linting
        // once the test module closes.
        let src = "#[cfg(test)]\n\
                   mod tests {\n    fn g() { b.unwrap(); }\n}\n\
                   fn after() { c.unwrap(); }\n";
        let f = lint_source("crates/core/src/a.rs", src);
        assert_eq!(f.len(), 1, "exactly the post-module panic: {f:?}");
        assert_eq!(f[0].line, 5);
        assert_eq!(f[0].rule, "no-panic");
    }

    #[test]
    fn tokens_inside_string_literals_do_not_fire() {
        let src = "fn f() { log(\"call .unwrap() later\"); }\n";
        assert!(lint_source("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn finding_json_escapes_file_and_excerpt() {
        let f = LintFinding {
            file: "crates/we\"ird\\path.rs".to_owned(),
            line: 3,
            rule: "no-panic",
            excerpt: "let s = \"x\\y\";".to_owned(),
        };
        let j = f.json();
        assert!(j.contains("we\\\"ird\\\\path.rs"));
        assert!(j.contains("\\\"x\\\\y\\\";"));
        // The document as a whole must stay parseable: an even number of
        // *structural* (unescaped) quotes.
        let mut structural = 0usize;
        let mut esc = false;
        for c in j.chars() {
            if esc {
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else if c == '"' {
                structural += 1;
            }
        }
        assert_eq!(structural % 2, 0, "unbalanced structural quotes: {j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn strict_files_flag_panics_in_test_regions_and_ignore_waivers() {
        // Test regions are NOT exempt on the strict list…
        let in_tests = "#[cfg(test)]\nmod tests { fn g() { b.unwrap(); } }\n";
        for f in STRICT_NO_PANIC_FILES {
            let found = lint_source(f, in_tests);
            assert_eq!(found.len(), 1, "{f} must be strict");
            assert_eq!(found[0].rule, "no-panic");
        }
        // …and neither are waivers.
        let waived = "fn f() { a.expect(\"x\") } // lint:allow(panic)\n";
        assert_eq!(lint_source("crates/crypto/src/kx.rs", waived).len(), 1);
        // Ordinary library files keep the relaxed contract.
        assert!(lint_source("crates/crypto/src/ed25519.rs", waived).is_empty());
        assert!(lint_source("crates/crypto/src/ed25519.rs", in_tests).is_empty());
    }

    #[test]
    fn strict_file_list_holds_in_the_workspace() {
        // The three migration-peer input files really are panic-free
        // end to end; if this fails, a panic crept back in.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        for f in STRICT_NO_PANIC_FILES {
            let Ok(content) = fs::read_to_string(root.join(f)) else {
                continue; // tolerated: analyze may be vendored standalone
            };
            let findings: Vec<_> = lint_source(f, &content)
                .into_iter()
                .filter(|x| x.rule == "no-panic")
                .collect();
            assert!(findings.is_empty(), "{f} regressed: {findings:?}");
        }
    }

    #[test]
    fn flags_bare_counter_arithmetic_everywhere() {
        let src = "self.stats.tlb_hits += 1;\n";
        let f = lint_source("crates/hw/src/a.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "saturating-counters");
        // Applies in harness code too: overflow aborts a campaign.
        assert_eq!(lint_source("crates/chaos/src/a.rs", src).len(), 1);
        let ok = "self.stats.tlb_hits = self.stats.tlb_hits.saturating_add(1);\n";
        assert!(lint_source("crates/hw/src/a.rs", ok).is_empty());
    }

    #[test]
    fn flags_relaxed_ordering() {
        let src = concat!("a.fetch_add(1, Ordering::", "Relaxed);\n");
        let f = lint_source("crates/hw/src/a.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-relaxed");
    }

    #[test]
    fn flags_json_bins_without_marker() {
        let src = "fn main() { println!(\"{}\", report.json()); }\n";
        let f = lint_source("crates/bench/src/bin/out.rs", src);
        assert!(f.iter().any(|f| f.rule == "json-marker"));
        let ok = "fn main() { println!(\"EREBOR_JSON:{}\", report.json()); }\n";
        assert!(lint_source("crates/bench/src/bin/out.rs", ok).is_empty());
    }

    #[test]
    fn report_json_counts() {
        let f = lint_source("crates/core/src/a.rs", "x.unwrap();\n");
        let j = report_json(&f);
        assert!(j.contains("\"count\":1"));
        assert!(j.contains("\"rule\":\"no-panic\""));
    }
}
