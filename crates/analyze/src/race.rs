//! The trace race detector: a vector-clock happens-before pass over a
//! [`TraceRecord`] stream that flags **stale-permission windows**.
//!
//! A window opens on a *revocation edge* — the initiator publishing a
//! permission downgrade for a page (`tlb_shootdown` under MMU tracing,
//! or the monitor's `emc unmap`/`downgrade` lifecycle events) — and
//! closes on each core independently when that core drops the cached
//! translation (`tlb_invlpg` for the page, any `tlb_flush`) or when a
//! shootdown-IPI ack edge from the initiator reaches it (`ipi_sent` →
//! `ipi_received`, tracked with per-core vector clocks). A TLB-served
//! access (`tlb_hit`) on a core inside one of its open windows is a
//! stale-permission race: the core used a translation the rest of the
//! system believes revoked.
//!
//! Windows whose invalidation IPI the fault injector *dropped* are
//! reported with [`RaceFinding::dropped`] set: the staleness is a
//! modelled loss (mirroring the hardware `pending_shootdowns` ledger),
//! which chaos campaigns tolerate while a real missing-shootdown bug —
//! `dropped == false` — fails the case.
//!
//! Raw PTE rewrites that bypass every revocation edge are invisible to
//! the detector by design (there is no anchor event); the state
//! auditor's C8 ledger check covers that class statically.

use erebor_trace::{TraceEvent, TraceRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One detected stale-permission window use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceFinding {
    /// Core that used the stale translation.
    pub cpu: u32,
    /// Page number (VA >> 12) the access hit.
    pub page: u64,
    /// Root the revocation targeted (`0` = every root).
    pub root: u64,
    /// Sequence number of the revocation edge that opened the window.
    pub revoke_seq: u64,
    /// Sequence number of the stale access.
    pub access_seq: u64,
    /// Whether the window is explained by an injected IPI loss.
    pub dropped: bool,
}

impl RaceFinding {
    /// Deterministic JSON object.
    #[must_use]
    pub fn json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"cpu\":{},\"page\":{},\"root\":{},\"revoke_seq\":{},\"access_seq\":{},\
             \"dropped\":{}}}",
            self.cpu, self.page, self.root, self.revoke_seq, self.access_seq, self.dropped
        );
        s
    }
}

impl core::fmt::Display for RaceFinding {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "cpu {} hit stale page {:#x} at seq {} (revoked at seq {}, root {:#x}{})",
            self.cpu,
            self.page,
            self.access_seq,
            self.revoke_seq,
            self.root,
            if self.dropped { ", IPI dropped" } else { "" }
        )
    }
}

/// An open stale-permission window on one core.
#[derive(Debug, Clone)]
struct Window {
    root: u64,
    revoke_seq: u64,
    initiator: usize,
    /// The initiator's clock component at revocation time: an
    /// `ipi_received` from the initiator carrying a later component is an
    /// ack edge that closes the window.
    revoke_clock: u64,
    dropped: bool,
    reported: bool,
}

/// Detector state: per-core vector clocks, in-flight IPI channel
/// snapshots, and per-core open windows.
struct Detector {
    cores: usize,
    clocks: Vec<Vec<u64>>,
    /// FIFO of clock snapshots per (from, to) channel, pushed at
    /// `ipi_sent` and joined at `ipi_received`.
    channels: BTreeMap<(usize, usize), Vec<Vec<u64>>>,
    /// Open windows keyed by (core, page). A newer revocation for the
    /// same page supersedes the old window (any still-cached entry is
    /// covered by the newer, stricter revocation).
    windows: BTreeMap<(usize, u64), Window>,
    findings: Vec<RaceFinding>,
}

impl Detector {
    fn new(cores: usize) -> Detector {
        Detector {
            cores,
            clocks: vec![vec![0; cores]; cores],
            channels: BTreeMap::new(),
            windows: BTreeMap::new(),
            findings: Vec::new(),
        }
    }

    fn core_index(&self, cpu: u32) -> usize {
        let c = cpu as usize;
        if c < self.cores {
            c
        } else {
            0 // out-of-range cores fold to ring 0, as the trace buffer does
        }
    }

    fn open_windows(&mut self, initiator: usize, root: u64, page: u64, seq: u64) {
        let revoke_clock = self.clocks[initiator][initiator];
        for core in 0..self.cores {
            self.windows.insert(
                (core, page),
                Window {
                    root,
                    revoke_seq: seq,
                    initiator,
                    revoke_clock,
                    dropped: false,
                    reported: false,
                },
            );
        }
    }

    fn step(&mut self, rec: &TraceRecord) {
        let cpu = self.core_index(rec.cpu);
        // Every event advances its core's own clock component.
        self.clocks[cpu][cpu] = self.clocks[cpu][cpu].saturating_add(1);
        match rec.event {
            TraceEvent::TlbShootdown { root, page } => {
                self.open_windows(cpu, root, page, rec.seq);
            }
            TraceEvent::Emc { op: "unmap" | "downgrade", arg } => {
                // Lifecycle revocation: the root is not carried, so the
                // window matches accesses under any root.
                self.open_windows(cpu, 0, arg, rec.seq);
            }
            TraceEvent::TlbInvlpg { page } => {
                self.windows.remove(&(cpu, page));
            }
            TraceEvent::TlbFlush => {
                let stale: Vec<(usize, u64)> = self
                    .windows
                    .keys()
                    .filter(|&&(c, _)| c == cpu)
                    .copied()
                    .collect();
                for k in stale {
                    self.windows.remove(&k);
                }
            }
            TraceEvent::IpiSent { to } => {
                let to = self.core_index(to);
                let snapshot = self.clocks[cpu].clone();
                self.channels.entry((cpu, to)).or_default().push(snapshot);
            }
            TraceEvent::IpiDropped { to } => {
                // The initiator knows this core never saw the
                // invalidation: mark every window it opened there as a
                // modelled loss.
                let to = self.core_index(to);
                for w in self
                    .windows
                    .iter_mut()
                    .filter(|(&(c, _), w)| c == to && w.initiator == cpu)
                    .map(|(_, w)| w)
                {
                    w.dropped = true;
                }
            }
            TraceEvent::IpiReceived { from } => {
                let from = self.core_index(from);
                let snapshot = {
                    let queue = self.channels.entry((from, cpu)).or_default();
                    if queue.is_empty() {
                        None
                    } else {
                        Some(queue.remove(0))
                    }
                };
                if let Some(snap) = snapshot {
                    for (mine, theirs) in self.clocks[cpu].iter_mut().zip(&snap) {
                        *mine = (*mine).max(*theirs);
                    }
                }
                // Ack edge: windows whose revocation happened-before this
                // delivery are closed on the receiving core.
                let seen = self.clocks[cpu][from];
                let acked: Vec<(usize, u64)> = self
                    .windows
                    .iter()
                    .filter(|(&(c, _), w)| {
                        c == cpu && w.initiator == from && w.revoke_clock <= seen
                    })
                    .map(|(&k, _)| k)
                    .collect();
                for k in acked {
                    self.windows.remove(&k);
                }
            }
            TraceEvent::TlbHit { root, page } => {
                if let Some(w) = self.windows.get_mut(&(cpu, page)) {
                    let root_matches = w.root == 0 || w.root == root;
                    if root_matches && !w.reported {
                        w.reported = true;
                        self.findings.push(RaceFinding {
                            cpu: rec.cpu,
                            page,
                            root: w.root,
                            revoke_seq: w.revoke_seq,
                            access_seq: rec.seq,
                            dropped: w.dropped,
                        });
                    }
                }
            }
            _ => {}
        }
    }
}

/// Run the happens-before pass over `records` (any order; they are
/// re-sorted by global sequence number) for a machine with `cores`
/// cores. Returns every stale-window use, one finding per window.
#[must_use]
pub fn detect_races(records: &[TraceRecord], cores: usize) -> Vec<RaceFinding> {
    let cores = cores.max(1);
    let mut sorted: Vec<&TraceRecord> = records.iter().collect();
    sorted.sort_by_key(|r| r.seq);
    let mut det = Detector::new(cores);
    for rec in sorted {
        det.step(rec);
    }
    det.findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, cpu: u32, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            seq,
            cycles: seq * 10,
            cpu,
            event,
        }
    }

    #[test]
    fn delivered_shootdown_opens_no_window() {
        let t = vec![
            rec(0, 0, TraceEvent::TlbShootdown { root: 7, page: 0x40 }),
            rec(1, 0, TraceEvent::IpiSent { to: 1 }),
            rec(2, 1, TraceEvent::IpiReceived { from: 0 }),
            rec(3, 1, TraceEvent::TlbInvlpg { page: 0x40 }),
            rec(4, 0, TraceEvent::TlbInvlpg { page: 0x40 }),
            rec(5, 1, TraceEvent::TlbHit { root: 7, page: 0x40 }),
        ];
        assert!(detect_races(&t, 2).is_empty());
    }

    #[test]
    fn dropped_ipi_then_hit_is_a_dropped_finding() {
        let t = vec![
            rec(0, 0, TraceEvent::TlbShootdown { root: 7, page: 0x40 }),
            rec(1, 0, TraceEvent::IpiSent { to: 1 }),
            rec(2, 0, TraceEvent::IpiDropped { to: 1 }),
            rec(3, 0, TraceEvent::TlbInvlpg { page: 0x40 }),
            rec(4, 1, TraceEvent::TlbHit { root: 7, page: 0x40 }),
        ];
        let f = detect_races(&t, 2);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].cpu, 1);
        assert_eq!(f[0].page, 0x40);
        assert!(f[0].dropped);
    }

    #[test]
    fn missing_shootdown_after_unmap_is_a_real_finding() {
        // The monitor revoked the page but no shootdown/invalidation ever
        // reached core 1: its later TLB-served access is the bug class
        // the hand-written stale-TLB attack tests probe.
        let t = vec![
            rec(0, 0, TraceEvent::Emc { op: "unmap", arg: 0x99 }),
            rec(1, 1, TraceEvent::TlbHit { root: 3, page: 0x99 }),
        ];
        let f = detect_races(&t, 2);
        assert_eq!(f.len(), 1);
        assert!(!f[0].dropped, "no injected loss explains this window");
        assert_eq!(f[0].revoke_seq, 0);
        assert_eq!(f[0].access_seq, 1);
    }

    #[test]
    fn full_flush_closes_every_window_on_the_core() {
        let t = vec![
            rec(0, 0, TraceEvent::TlbShootdown { root: 0, page: 0x10 }),
            rec(1, 0, TraceEvent::TlbShootdown { root: 0, page: 0x11 }),
            rec(2, 1, TraceEvent::TlbFlush),
            rec(3, 1, TraceEvent::TlbHit { root: 5, page: 0x10 }),
            rec(4, 1, TraceEvent::TlbHit { root: 5, page: 0x11 }),
        ];
        assert!(detect_races(&t, 2).is_empty());
    }

    #[test]
    fn root_targeted_window_ignores_other_address_spaces() {
        let t = vec![
            rec(0, 0, TraceEvent::TlbShootdown { root: 7, page: 0x40 }),
            rec(1, 1, TraceEvent::TlbHit { root: 8, page: 0x40 }),
        ];
        assert!(
            detect_races(&t, 2).is_empty(),
            "a hit under a different root is a different translation"
        );
        let t2 = vec![
            rec(0, 0, TraceEvent::TlbShootdown { root: 7, page: 0x40 }),
            rec(1, 1, TraceEvent::TlbHit { root: 7, page: 0x40 }),
        ];
        assert_eq!(detect_races(&t2, 2).len(), 1);
    }

    #[test]
    fn ack_edge_via_vector_clock_closes_without_explicit_invlpg() {
        // Core 1 receives the shootdown IPI sent after the revocation;
        // the happens-before edge alone must close the window even if
        // the per-page invalidation event was lost from the ring.
        let t = vec![
            rec(0, 0, TraceEvent::TlbShootdown { root: 7, page: 0x40 }),
            rec(1, 0, TraceEvent::IpiSent { to: 1 }),
            rec(2, 1, TraceEvent::IpiReceived { from: 0 }),
            rec(3, 1, TraceEvent::TlbHit { root: 7, page: 0x40 }),
        ];
        assert!(detect_races(&t, 2).is_empty());
    }

    #[test]
    fn batched_accesses_register_individually() {
        // A batch fast path replays one TlbHit per access — never a
        // coalesced summary event — so distinct stale pages touched by
        // the same batch each produce their own finding, and the access
        // sequence numbers identify the individual ops inside the batch.
        let t = vec![
            rec(0, 0, TraceEvent::TlbShootdown { root: 7, page: 0x40 }),
            rec(1, 0, TraceEvent::TlbShootdown { root: 7, page: 0x41 }),
            rec(2, 1, TraceEvent::TlbHit { root: 7, page: 0x40 }),
            rec(3, 1, TraceEvent::TlbHit { root: 7, page: 0x41 }),
            rec(4, 1, TraceEvent::TlbHit { root: 7, page: 0x40 }),
        ];
        let f = detect_races(&t, 2);
        assert_eq!(f.len(), 2, "one finding per stale page, none hidden");
        assert_eq!(f[0].access_seq, 2, "first batched access, not a summary");
        assert_eq!(f[1].access_seq, 3);
    }

    #[test]
    fn each_window_reports_once() {
        let t = vec![
            rec(0, 0, TraceEvent::Emc { op: "downgrade", arg: 0x40 }),
            rec(1, 1, TraceEvent::TlbHit { root: 1, page: 0x40 }),
            rec(2, 1, TraceEvent::TlbHit { root: 1, page: 0x40 }),
        ];
        assert_eq!(detect_races(&t, 2).len(), 1, "deduped per window");
    }
}
