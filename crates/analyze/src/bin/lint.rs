//! Workspace source lint runner: `cargo run -p erebor-analyze --bin lint`.
//!
//! Walks the workspace source from the manifest root (or a path given as
//! the first argument), prints each finding, emits the machine-readable
//! report on the `EREBOR_JSON:` marker line, and exits non-zero when any
//! rule fired.

use erebor_analyze::lint;
use std::path::PathBuf;

fn main() {
    let root = std::env::args().nth(1).map_or_else(
        || {
            // The bin runs from anywhere inside the workspace; the crate
            // manifest dir is crates/analyze, two levels below the root.
            let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            manifest
                .parent()
                .and_then(|p| p.parent())
                .map_or(manifest.clone(), PathBuf::from)
        },
        PathBuf::from,
    );
    let findings = lint::lint_workspace(&root);
    for f in &findings {
        println!("lint: {f}");
    }
    println!("EREBOR_JSON:{}", lint::report_json(&findings));
    if !findings.is_empty() {
        std::process::exit(1);
    }
}
