//! Privilege-separation auditor runner:
//! `cargo run -p erebor-analyze --bin privilege`.
//!
//! Scans the workspace source from the manifest root (or a path given as
//! the first argument), checks every privileged-symbol reference against
//! the declared privilege manifest (DESIGN.md §14), prints each finding,
//! emits the machine-readable report on the `EREBOR_JSON:` marker line,
//! and exits non-zero when any rule fired **or any waiver comment exists
//! in the tree** — the CI baseline is zero findings, zero waivers. Pass
//! `--honor-waivers` for exploratory local runs only.

use erebor_analyze::privilege::{self, WaiverPolicy};
use std::path::PathBuf;

fn main() {
    let mut policy = WaiverPolicy::Refuse;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--honor-waivers" {
            policy = WaiverPolicy::Honor;
        } else {
            root = Some(PathBuf::from(arg));
        }
    }
    let root = root.unwrap_or_else(|| {
        // The bin runs from anywhere inside the workspace; the crate
        // manifest dir is crates/analyze, two levels below the root.
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(|p| p.parent())
            .map_or(manifest.clone(), PathBuf::from)
    });
    let report = privilege::scan_workspace(&root, policy);
    for f in &report.findings {
        println!("privilege: {f}");
    }
    println!("EREBOR_JSON:{}", report.json());
    let waivers_block = policy == WaiverPolicy::Refuse && report.waivers_seen > 0;
    if !report.findings.is_empty() || waivers_block {
        std::process::exit(1);
    }
}
