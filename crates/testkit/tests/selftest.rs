//! The testkit testing itself: generator ranges, shrinking behavior,
//! seed determinism, and the macro surface end to end.

use erebor_testkit::prelude::*;
use erebor_testkit::prop::{run_case, shrink_bytes, CaseError, Source};
use erebor_testkit::rng::TestRng;
use erebor_testkit::{collection, prop_oneof};

// ====================================================================
// Generator ranges
// ====================================================================

#[test]
fn generator_ranges_are_respected() {
    let mut src = Source::fresh(TestRng::seed_from_u64(11));
    for _ in 0..500 {
        let v = (10u64..20).generate(&mut src);
        assert!((10..20).contains(&v), "{v}");
        let w = (3u8..=7).generate(&mut src);
        assert!((3..=7).contains(&w), "{w}");
        let f = (0.25f64..0.75).generate(&mut src);
        assert!((0.25..0.75).contains(&f), "{f}");
        let s = "[a-c]{2,4}".generate(&mut src);
        assert!((2..=4).contains(&s.len()), "{s:?}");
        assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        let xs = collection::vec(any::<u8>(), 1..5).generate(&mut src);
        assert!((1..5).contains(&xs.len()));
    }
}

#[test]
fn oneof_and_map_compose() {
    let strat = prop_oneof![
        Just(0u64),
        (1u64..10).prop_map(|x| x * 100),
        (10u64..20).prop_map(|x| x + 1000),
    ];
    let mut src = Source::fresh(TestRng::seed_from_u64(5));
    let mut seen_arms = [false; 3];
    for _ in 0..300 {
        let v = strat.generate(&mut src);
        match v {
            0 => seen_arms[0] = true,
            100..=900 => seen_arms[1] = true,
            1010..=1019 => seen_arms[2] = true,
            other => panic!("value {other} outside every arm"),
        }
    }
    assert!(seen_arms.iter().all(|&b| b), "{seen_arms:?}");
}

#[test]
fn collections_meet_size_bounds() {
    let mut src = Source::fresh(TestRng::seed_from_u64(9));
    for _ in 0..100 {
        let set = collection::btree_set(0u64..1000, 4..16).generate(&mut src);
        assert!(set.len() <= 15);
        let map = collection::btree_map("[a-z]{1,8}", any::<u8>(), 0..8).generate(&mut src);
        assert!(map.len() <= 7);
    }
}

#[test]
fn same_seed_generates_identical_values() {
    let gen = |seed| {
        let mut src = Source::fresh(TestRng::seed_from_u64(seed));
        collection::vec(any::<u64>(), 0..32).generate(&mut src)
    };
    assert_eq!(gen(7), gen(7));
    assert_ne!(gen(7), gen(8));
}

// ====================================================================
// Shrinking
// ====================================================================

/// Replays `bytes` through a u64 range draw and fails iff >= 1000.
fn fails_ge_1000(bytes: &[u8]) -> bool {
    let v = (0u64..10000).generate(&mut Source::replay(bytes));
    v >= 1000
}

#[test]
fn shrinker_reaches_a_local_minimum() {
    // Find a failing case first.
    let consumed = (0..64)
        .find_map(|seed| {
            let mut case = Source::fresh(TestRng::seed_from_u64(seed));
            let v = (0u64..10000).generate(&mut case);
            (v >= 1000).then(|| case.consumed().to_vec())
        })
        .expect("no failing case in 64 seeds");
    let minimal = shrink_bytes(&consumed, &mut fails_ge_1000);
    let v = (0u64..10000).generate(&mut Source::replay(&minimal));
    // Still failing...
    assert!(v >= 1000, "shrunk input no longer fails: {v}");
    // ...and a fixed point: another full shrink pass finds nothing.
    let again = shrink_bytes(&minimal, &mut fails_ge_1000);
    assert_eq!(again, minimal, "not a local minimum");
    // Greedy byte shrinking should land well below the starting draw's
    // expected midpoint (~5000).
    assert!(v < 2100, "poor shrink: {v}");
}

#[test]
fn shrinker_shortens_vectors() {
    // Fail iff the vec contains an element >= 128. Minimal failing input
    // should shrink the vector sharply from the original draw.
    let strat = || collection::vec(any::<u8>(), 0..64);
    let fails = |bytes: &[u8]| {
        strat()
            .generate(&mut Source::replay(bytes))
            .iter()
            .any(|&b| b >= 128)
    };
    let mut found = None;
    for seed in 0..64 {
        let mut src = Source::fresh(TestRng::seed_from_u64(seed));
        let v = strat().generate(&mut src);
        if v.len() >= 8 && v.iter().any(|&b| b >= 128) {
            found = Some(src.consumed().to_vec());
            break;
        }
    }
    let consumed = found.expect("no failing case in 64 seeds");
    let minimal = shrink_bytes(&consumed, &mut |b| fails(b));
    let v = strat().generate(&mut Source::replay(&minimal));
    assert!(v.iter().any(|&b| b >= 128), "shrunk input no longer fails");
    assert!(v.len() <= 2, "vector did not shrink: {v:?}");
}

#[test]
fn run_case_converts_panics_to_failures() {
    let mut case = |_: &mut Source| -> Result<(), CaseError> {
        panic!("boom {}", 42);
    };
    let mut src = Source::fresh(TestRng::seed_from_u64(0));
    match run_case(&mut case, &mut src) {
        Err(CaseError::Fail(msg)) => assert!(msg.contains("boom 42"), "{msg}"),
        other => panic!("expected Fail, got {other:?}"),
    }
}

// ====================================================================
// The macro surface end to end
// ====================================================================

proptest! {
    #[test]
    fn macro_roundtrip_u64(x in 0u64..1000, y in 0u64..1000) {
        prop_assert_eq!(x + y, y + x);
        prop_assert!(x < 1000 && y < 1000);
    }

    #[test]
    fn macro_assume_rejects(x in 0u64..100) {
        prop_assume!(x % 2 == 0);
        prop_assert_eq!(x % 2, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn macro_config_override(v in collection::vec(any::<u8>(), 0..10)) {
        prop_assert!(v.len() < 10);
    }
}

#[test]
fn failing_property_reports_seed_and_minimal_input() {
    let result = std::panic::catch_unwind(|| {
        erebor_testkit::prop::run(
            &Config::with_cases(50),
            "selftest_failing_property",
            |src| {
                let x = (0u64..10000).generate(src);
                if x >= 1000 {
                    return Err(CaseError::Fail(format!("{x} too big")));
                }
                Ok(())
            },
            |src| format!("  x = {:?}\n", (0u64..10000).generate(src)),
        );
    });
    let msg = match result {
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .expect("string panic payload"),
        Ok(()) => panic!("property unexpectedly passed"),
    };
    assert!(msg.contains("EREBOR_PT_SEED="), "{msg}");
    assert!(msg.contains("minimal failing input"), "{msg}");
    assert!(msg.contains("x = "), "{msg}");
}
