//! A minimal JSON value + serializer (no external deps) for the bench
//! harness's machine-readable output and the bench bins' stat dumps.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (non-finite serializes as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// An empty object.
    #[must_use]
    pub fn obj() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Insert a field (builder style). No-op on non-objects.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        if let Json::Obj(m) = &mut self {
            m.insert(key.to_string(), value.into());
        }
        self
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 9.0e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

impl core::fmt::Display for Json {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_and_shapes() {
        let j = Json::obj()
            .field("name", "a\"b\\c\n")
            .field("n", 42u64)
            .field("x", 1.5)
            .field("ok", true)
            .field("items", Json::Arr(vec![Json::Null, Json::Num(2.0)]));
        assert_eq!(
            j.to_string(),
            r#"{"items":[null,2],"n":42,"name":"a\"b\\c\n","ok":true,"x":1.5}"#
        );
    }

    #[test]
    fn integers_stay_integral() {
        assert_eq!(Json::Num(1224.0).to_string(), "1224");
        assert_eq!(Json::Num(0.56).to_string(), "0.56");
    }
}
