//! A criterion-compatible micro-bench harness: warmup, calibrated
//! iteration counts, mean/p50/p99 statistics, and machine-readable JSON
//! output for `BENCH_*.json` trajectory tracking.
//!
//! Surface kept source-compatible with the criterion subset the bench
//! files use: [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Throughput`], `criterion_group!`, `criterion_main!`, [`black_box`].
//!
//! Environment knobs:
//! - `EREBOR_BENCH_SMOKE=1` — smoke mode: minimal warmup/samples, for CI.
//! - `EREBOR_BENCH_JSON=<path>` — also write the JSON document to a file.
//! - `EREBOR_BENCH_SAMPLES=<n>` — override the per-benchmark sample count.

use crate::json::Json;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark throughput annotation.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Whether smoke mode (tiny iteration budgets) is active.
#[must_use]
pub fn smoke() -> bool {
    std::env::var("EREBOR_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Summary statistics over per-iteration sample means, in nanoseconds.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Mean of sample means.
    pub mean_ns: f64,
    /// Median.
    pub p50_ns: f64,
    /// 99th percentile.
    pub p99_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
}

/// Compute [`Stats`] from raw per-iteration sample means.
///
/// Percentiles use the nearest-rank method on the sorted samples:
/// `p50` is the element at ceil(0.50·n)−1, `p99` at ceil(0.99·n)−1.
///
/// # Panics
/// Panics if `samples` is empty.
#[must_use]
pub fn stats_of(samples: &[f64]) -> Stats {
    assert!(!samples.is_empty(), "stats of empty sample set");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
    let rank = |p: f64| -> f64 {
        let n = sorted.len();
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        sorted[idx]
    };
    Stats {
        mean_ns: sorted.iter().sum::<f64>() / sorted.len() as f64,
        p50_ns: rank(0.50),
        p99_ns: rank(0.99),
        min_ns: sorted[0],
        max_ns: sorted[sorted.len() - 1],
    }
}

/// One finished benchmark.
#[derive(Clone, Debug)]
struct Record {
    group: Option<String>,
    name: String,
    iters_per_sample: u64,
    samples: usize,
    stats: Stats,
    throughput: Option<Throughput>,
}

impl Record {
    fn full_name(&self) -> String {
        match &self.group {
            Some(g) => format!("{g}/{}", self.name),
            None => self.name.clone(),
        }
    }

    fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .field("name", self.full_name())
            .field("iters_per_sample", self.iters_per_sample)
            .field("samples", self.samples)
            .field("mean_ns", self.stats.mean_ns)
            .field("p50_ns", self.stats.p50_ns)
            .field("p99_ns", self.stats.p99_ns)
            .field("min_ns", self.stats.min_ns)
            .field("max_ns", self.stats.max_ns);
        match self.throughput {
            Some(Throughput::Bytes(b)) => {
                j = j.field("throughput_bytes", b).field(
                    "mib_per_s",
                    b as f64 / (1 << 20) as f64 / (self.stats.mean_ns * 1e-9),
                );
            }
            Some(Throughput::Elements(e)) => {
                j = j
                    .field("throughput_elements", e)
                    .field("elements_per_s", e as f64 / (self.stats.mean_ns * 1e-9));
            }
            None => {}
        }
        j
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    warmup: Duration,
    sample_target: Duration,
    samples: usize,
    result: Option<(u64, Vec<f64>)>,
}

impl core::fmt::Debug for Bencher {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Bencher")
            .field("samples", &self.samples)
            .finish_non_exhaustive()
    }
}

impl Bencher {
    /// Run `f` under warmup + calibrated sampling; records the result.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup: run until the warmup budget is spent, counting runs to
        // seed the calibration.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warmup {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Calibrate iterations per sample to hit the sample target.
        let iters = ((self.sample_target.as_secs_f64() / per_iter.max(1e-9)) as u64).max(1);
        let mut sample_means = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            sample_means.push(elapsed / iters as f64);
        }
        self.result = Some((iters, sample_means));
    }
}

/// Global benchmark driver (criterion-compatible subset).
pub struct Criterion {
    records: Vec<Record>,
    meta: Vec<(String, Json)>,
    warmup: Duration,
    sample_target: Duration,
    samples: usize,
}

impl core::fmt::Debug for Criterion {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Criterion")
            .field("records", &self.records.len())
            .finish_non_exhaustive()
    }
}

impl Default for Criterion {
    fn default() -> Criterion {
        let smoke = smoke();
        let samples = std::env::var("EREBOR_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if smoke { 5 } else { 30 });
        Criterion {
            records: Vec::new(),
            meta: Vec::new(),
            warmup: Duration::from_millis(if smoke { 2 } else { 150 }),
            sample_target: Duration::from_millis(if smoke { 1 } else { 10 }),
            samples,
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        self.run_one(None, name.into(), None, None, f);
    }

    /// Attach an extra top-level JSON field to the final summary (emitted
    /// under `"meta"`). Benchmarks use this for simulator-side counters —
    /// deterministic cycle costs, TLB hit rates — that wall-clock stats
    /// can't carry. Re-using a key overwrites the earlier value.
    pub fn meta(&mut self, key: impl Into<String>, value: impl Into<Json>) {
        let key = key.into();
        self.meta.retain(|(k, _)| *k != key);
        self.meta.push((key, value.into()));
    }

    /// Open a named group (for throughput / sample-size annotations).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    fn run_one(
        &mut self,
        group: Option<String>,
        name: String,
        throughput: Option<Throughput>,
        sample_size: Option<usize>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        let mut b = Bencher {
            warmup: self.warmup,
            sample_target: self.sample_target,
            samples: sample_size.unwrap_or(self.samples),
            result: None,
        };
        f(&mut b);
        let Some((iters, sample_means)) = b.result else {
            // Closure never called iter(); record nothing.
            return;
        };
        let stats = stats_of(&sample_means);
        let rec = Record {
            group,
            name,
            iters_per_sample: iters,
            samples: sample_means.len(),
            stats,
            throughput,
        };
        eprintln!(
            "bench {:<40} mean {:>12.1} ns  p50 {:>12.1} ns  p99 {:>12.1} ns  ({} iters/sample)",
            rec.full_name(),
            stats.mean_ns,
            stats.p50_ns,
            stats.p99_ns,
            iters
        );
        self.records.push(rec);
    }

    /// Emit the JSON document (stdout, plus `EREBOR_BENCH_JSON` if set).
    /// Called by `criterion_main!` after all groups run.
    pub fn final_summary(&self) {
        let mut doc = Json::obj()
            .field("harness", "erebor-testkit")
            .field("smoke", smoke())
            .field(
                "benchmarks",
                Json::Arr(self.records.iter().map(Record::to_json).collect()),
            );
        if !self.meta.is_empty() {
            let mut m = Json::obj();
            for (k, v) in &self.meta {
                m = m.field(k, v.clone());
            }
            doc = doc.field("meta", m);
        }
        let text = doc.to_string();
        // The `EREBOR_JSON:` marker lets CI extract the document with a
        // grep instead of assuming it is the last stdout line (which
        // breaks silently the moment anything prints after it).
        println!("EREBOR_JSON:{text}");
        if let Ok(path) = std::env::var("EREBOR_BENCH_JSON") {
            if !path.is_empty() {
                if let Err(e) = std::fs::write(&path, &text) {
                    eprintln!("bench: could not write {path}: {e}");
                }
            }
        }
    }
}

/// A group of related benchmarks sharing annotations.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl core::fmt::Debug for BenchmarkGroup<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BenchmarkGroup").finish_non_exhaustive()
    }
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = Some(n);
    }

    /// Run one benchmark within the group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let (group, t, s) = (self.name.clone(), self.throughput, self.sample_size);
        self.c.run_one(Some(group), name.into(), t, s, f);
    }

    /// Close the group (no-op; kept for criterion compatibility).
    pub fn finish(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_synthetic_sample() {
        // 1..=100: mean 50.5, p50 = 50 (nearest rank), p99 = 99.
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = stats_of(&xs);
        assert!((s.mean_ns - 50.5).abs() < 1e-9);
        assert!((s.p50_ns - 50.0).abs() < 1e-9);
        assert!((s.p99_ns - 99.0).abs() < 1e-9);
        assert!((s.min_ns - 1.0).abs() < 1e-9);
        assert!((s.max_ns - 100.0).abs() < 1e-9);
    }

    #[test]
    fn stats_single_sample() {
        let s = stats_of(&[7.0]);
        assert_eq!(s.mean_ns, 7.0);
        assert_eq!(s.p50_ns, 7.0);
        assert_eq!(s.p99_ns, 7.0);
    }
}
