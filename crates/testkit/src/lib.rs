//! # erebor-testkit — hermetic in-tree test & bench harness
//!
//! The workspace's replacement for `proptest`, `criterion` and `rand`:
//! a fully deterministic, zero-external-dependency harness so the whole
//! evaluation pipeline builds and runs offline.
//!
//! * [`rng`] — the ChaCha20-keystream [`rng::TestRng`] (same construction
//!   as the monitor's boot DRBG) with integer/float range helpers.
//! * [`prop`] — seeded property testing with greedy byte-stream
//!   shrinking; `EREBOR_PT_SEED` / `EREBOR_PT_CASES` overrides.
//! * [`bench`] — criterion-compatible micro-bench harness with warmup,
//!   calibrated iteration counts, mean/p50/p99 stats and JSON output.
//! * [`json`] — a tiny JSON writer for machine-readable stat dumps.
//!
//! Migrated proptest suites keep their source shape: import
//! `use erebor_testkit::prelude::*;` and alias
//! `use erebor_testkit as proptest;` so `proptest::collection::vec(..)`
//! paths keep resolving.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bench;
pub mod json;
pub mod prop;
pub mod rng;

pub use prop::collection;

/// Everything a property-test file needs (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::prop::{
        any, Arbitrary, BoxedStrategy, CaseError, Config, Just, ProptestConfig, Source, Strategy,
    };
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Mirrors `proptest!`:
///
/// ```
/// use erebor_testkit::prelude::*;
///
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # fn main() {}
/// ```
///
/// An optional `#![proptest_config(ProptestConfig::with_cases(n))]`
/// header overrides the case count for every test in the block.
// The `#[test]` in the example is the macro's actual input syntax, not a
// unit test smuggled into a doctest — the doctest only needs to compile.
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::prop::Config::default()) $($rest)* }
    };
}

/// Internal muncher for [`proptest!`]. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      #[test]
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let __cfg = $cfg;
            $crate::prop::run(
                &__cfg,
                stringify!($name),
                |__src| -> ::std::result::Result<(), $crate::prop::CaseError> {
                    $(let $arg = $crate::prop::Strategy::generate(&($strat), __src);)+
                    $body
                    ::std::result::Result::Ok(())
                },
                |__src| {
                    let mut __out = ::std::string::String::new();
                    $(
                        let $arg = $crate::prop::Strategy::generate(&($strat), __src);
                        __out.push_str(&::std::format!(
                            "  {} = {:?}\n", stringify!($arg), &$arg
                        ));
                        let _ = &$arg;
                    )+
                    __out
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::prop::OneOf {
            options: ::std::vec![
                $($crate::prop::Strategy::boxed($strat)),+
            ],
        }
    };
}

/// Assert inside a property; failure aborts the case (and shrinks).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::prop::CaseError::Fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Discard the current case unless `cond` holds (does not count toward
/// the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::prop::CaseError::Reject(
                ::std::format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

/// Bundle bench functions into a group (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::bench::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Entry point running bench groups and emitting the JSON summary
/// (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}
