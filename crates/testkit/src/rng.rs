//! The testkit's deterministic random generator.
//!
//! A ChaCha20-keystream DRBG (the same construction as the monitor's
//! boot-time [`erebor_core`]-style `DetRng`), extended with the integer
//! and float range helpers that property generation and workload traces
//! need. Same seed → same stream, on every platform.

use erebor_crypto::chacha20;

/// Deterministic ChaCha20-based RNG.
#[derive(Clone)]
pub struct TestRng {
    key: [u8; 32],
    counter: u32,
    buf: [u8; 64],
    used: usize,
}

impl TestRng {
    /// Seed from 32 bytes of key material.
    #[must_use]
    pub fn from_seed(seed: [u8; 32]) -> TestRng {
        TestRng {
            key: seed,
            counter: 0,
            buf: [0; 64],
            used: 64,
        }
    }

    /// Seed from a `u64` (replicated into the 32-byte key with distinct
    /// lane tags so nearby seeds give unrelated streams).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut key = [0u8; 32];
        for (lane, chunk) in key.chunks_mut(8).enumerate() {
            let tagged = seed ^ (lane as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            chunk.copy_from_slice(&tagged.to_le_bytes());
        }
        TestRng::from_seed(key)
    }

    fn refill(&mut self) {
        let nonce = [0u8; 12];
        self.buf = chacha20::block(&self.key, &nonce, self.counter);
        self.counter = self.counter.wrapping_add(1);
        self.used = 0;
    }

    /// One pseudorandom byte.
    pub fn next_byte(&mut self) -> u8 {
        if self.used >= 64 {
            self.refill();
        }
        let b = self.buf[self.used];
        self.used += 1;
        b
    }

    /// Fill `out` with pseudorandom bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        for b in out {
            *b = self.next_byte();
        }
    }

    /// A uniform `u32`.
    pub fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill(&mut b);
        u32::from_le_bytes(b)
    }

    /// A uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill(&mut b);
        u64::from_le_bytes(b)
    }

    /// A uniform value in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift reduction: unbiased enough for test generation
        // and monotone-ish in the raw draw, which helps shrinking.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A uniform value in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// A uniform value in `[lo, hi]`.
    pub fn range_u64_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit_f64() * (hi - lo)
    }
}

impl core::fmt::Debug for TestRng {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TestRng")
            .field("counter", &self.counter)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::seed_from_u64(7);
        let mut b = TestRng::seed_from_u64(7);
        let mut c = TestRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respected() {
        let mut r = TestRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = r.range_f64(0.5, 1.5);
            assert!((0.5..1.5).contains(&f));
            let i = r.range_u64_inclusive(3, 3);
            assert_eq!(i, 3);
        }
    }

    #[test]
    fn full_u64_inclusive_range_does_not_overflow() {
        let mut r = TestRng::seed_from_u64(2);
        let _ = r.range_u64_inclusive(0, u64::MAX);
    }
}
