//! Deterministic property testing with greedy byte-stream shrinking.
//!
//! The model follows Hypothesis rather than classic QuickCheck: every
//! strategy draws from a recorded byte [`Source`]. A fresh case records
//! the bytes it consumed; shrinking then edits that byte buffer (deleting
//! blocks, zeroing and halving bytes) and replays the generator over the
//! shrunk buffer. Because all structure is derived from the bytes, the
//! same shrinker works through `prop_map`, `prop_oneof!`, tuples and
//! collections with no per-strategy shrink code.
//!
//! Reproducibility: each test derives a fixed base seed from its name, so
//! failures are deterministic run-to-run with no state files. Set
//! `EREBOR_PT_SEED=<u64>` to explore a different seed and
//! `EREBOR_PT_CASES=<n>` to override the case count.

use crate::rng::TestRng;
use std::collections::HashSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::panic::{self, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::{Mutex, OnceLock};
use std::thread::ThreadId;

// ====================================================================
// Byte source
// ====================================================================

/// The byte stream a test case draws from: RNG-backed while exploring,
/// buffer-backed (zeros past the end) while replaying a shrink candidate.
pub struct Source {
    data: Vec<u8>,
    pos: usize,
    rng: Option<TestRng>,
}

impl core::fmt::Debug for Source {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Source")
            .field("len", &self.data.len())
            .field("pos", &self.pos)
            .field("generative", &self.rng.is_some())
            .finish()
    }
}

impl Source {
    /// A generative source: fresh bytes from `rng`, recorded as consumed.
    #[must_use]
    pub fn fresh(rng: TestRng) -> Source {
        Source {
            data: Vec::new(),
            pos: 0,
            rng: Some(rng),
        }
    }

    /// A replay source over a fixed buffer; reads past the end yield 0,
    /// which drives every strategy toward its minimal value.
    #[must_use]
    pub fn replay(data: &[u8]) -> Source {
        Source {
            data: data.to_vec(),
            pos: 0,
            rng: None,
        }
    }

    /// The bytes consumed so far (the shrinkable record of this case).
    #[must_use]
    pub fn consumed(&self) -> &[u8] {
        &self.data[..self.pos.min(self.data.len())]
    }

    /// Draw one byte.
    pub fn next_byte(&mut self) -> u8 {
        if self.pos >= self.data.len() {
            match &mut self.rng {
                Some(rng) => {
                    let mut block = [0u8; 64];
                    rng.fill(&mut block);
                    self.data.extend_from_slice(&block);
                }
                None => {
                    self.pos += 1;
                    return 0;
                }
            }
        }
        let b = self.data[self.pos];
        self.pos += 1;
        b
    }

    /// Draw `N` bytes.
    pub fn bytes<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = self.next_byte();
        }
        out
    }

    /// Draw a raw little-endian `u64`. All-zero bytes give 0, and zeroing
    /// any byte strictly reduces the value — the property the shrinker
    /// relies on.
    pub fn next_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.bytes::<8>())
    }

    /// A value in `[0, n)`, monotone in the raw draw.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A float in `[0, 1)`, monotone in the raw draw.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ====================================================================
// Strategies
// ====================================================================

/// A composable value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value from the byte source.
    fn generate(&self, src: &mut Source) -> Self::Value;

    /// Map the generated value through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`] (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |src| self.generate(src)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut Source) -> T>);

impl<T> core::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BoxedStrategy").finish_non_exhaustive()
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, src: &mut Source) -> T {
        (self.0)(src)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _src: &mut Source) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F> core::fmt::Debug for Map<S, F> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Map").finish_non_exhaustive()
    }
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, src: &mut Source) -> U {
        (self.f)(self.inner.generate(src))
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct OneOf<T> {
    /// The alternatives.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> core::fmt::Debug for OneOf<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("OneOf")
            .field("options", &self.options.len())
            .finish()
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, src: &mut Source) -> T {
        debug_assert!(!self.options.is_empty());
        let idx = src.below(self.options.len() as u64) as usize;
        self.options[idx].generate(src)
    }
}

// --- integer / float ranges as strategies ---------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn generate(&self, src: &mut Source) -> $t {
                debug_assert!(self.start < self.end);
                let span = (self.end as u64) - (self.start as u64);
                self.start + src.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn generate(&self, src: &mut Source) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                debug_assert!(lo <= hi);
                if lo == 0 && hi == u64::MAX {
                    return src.next_u64() as $t;
                }
                (lo + src.below(hi - lo + 1)) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, src: &mut Source) -> f64 {
        self.start + src.unit_f64() * (self.end - self.start)
    }
}

// --- tuples ---------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, src: &mut Source) -> Self::Value {
                ($(self.$idx.generate(src),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

// --- any::<T>() -----------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draw an arbitrary value.
    fn arbitrary(src: &mut Source) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty : $n:expr),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(src: &mut Source) -> $t {
                <$t>::from_le_bytes(src.bytes::<$n>())
            }
        }
    )*};
}

impl_arbitrary_int!(u8:1, u16:2, u32:4, u64:8, i8:1, i16:2, i32:4, i64:8);

impl Arbitrary for usize {
    fn arbitrary(src: &mut Source) -> usize {
        src.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(src: &mut Source) -> bool {
        src.next_byte() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(src: &mut Source) -> [u8; N] {
        src.bytes::<N>()
    }
}

/// Strategy for an [`Arbitrary`] type.
pub struct Any<T>(PhantomData<T>);

impl<T> core::fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Any").finish_non_exhaustive()
    }
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, src: &mut Source) -> T {
        T::arbitrary(src)
    }
}

/// The full-range strategy for `T` (proptest's `any::<T>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// --- string patterns ------------------------------------------------

/// `&str` patterns act as string strategies. Supported forms: a charset
/// repetition `[<chars>]{m,n}` (with `a-z` style ranges inside the
/// brackets) or, failing to parse as that, the literal string itself.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, src: &mut Source) -> String {
        match parse_charset_pattern(self) {
            Some((chars, lo, hi)) => {
                let len = lo + src.below((hi - lo + 1) as u64) as usize;
                (0..len)
                    .map(|_| chars[src.below(chars.len() as u64) as usize])
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

fn parse_charset_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let (set, rep) = rest.split_at(close);
    let rep = rep.strip_prefix(']')?.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match rep.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = rep.parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    let mut chars = Vec::new();
    let cs: Vec<char> = set.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            for c in cs[i]..=cs[i + 2] {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, lo, hi))
}

// ====================================================================
// Collections
// ====================================================================

/// Collection strategies (`vec`, `btree_set`, `btree_map`).
pub mod collection {
    use super::{Source, Strategy};
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::{Range, RangeInclusive};

    /// A size range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub lo: usize,
        /// Maximum length (inclusive).
        pub hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl SizeRange {
        fn draw(self, src: &mut Source) -> usize {
            self.lo + src.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    /// `Vec` of values from `elem` with a length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S> core::fmt::Debug for VecStrategy<S> {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.debug_struct("VecStrategy").finish_non_exhaustive()
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, src: &mut Source) -> Vec<S::Value> {
            let len = self.size.draw(src);
            (0..len).map(|_| self.elem.generate(src)).collect()
        }
    }

    /// `BTreeSet` of values from `elem`; insertion collisions mean the
    /// result may be smaller than the drawn size (minimum best-effort,
    /// as in proptest).
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S> core::fmt::Debug for BTreeSetStrategy<S> {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.debug_struct("BTreeSetStrategy").finish_non_exhaustive()
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, src: &mut Source) -> BTreeSet<S::Value> {
            let len = self.size.draw(src);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < len && attempts < len * 8 {
                out.insert(self.elem.generate(src));
                attempts += 1;
            }
            out
        }
    }

    /// `BTreeMap` with keys from `key` and values from `value`.
    pub fn btree_map<K, V>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> core::fmt::Debug for BTreeMapStrategy<K, V> {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.debug_struct("BTreeMapStrategy").finish_non_exhaustive()
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, src: &mut Source) -> BTreeMap<K::Value, V::Value> {
            let len = self.size.draw(src);
            let mut out = BTreeMap::new();
            let mut attempts = 0;
            while out.len() < len && attempts < len * 8 {
                out.insert(self.key.generate(src), self.value.generate(src));
                attempts += 1;
            }
            out
        }
    }
}

pub use collection::SizeRange;

// ====================================================================
// Runner + shrinking
// ====================================================================

/// Per-suite configuration. Aliased as `ProptestConfig` so migrated
/// suites keep their `ProptestConfig::with_cases(n)` overrides.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of successful cases required.
    pub cases: u32,
}

/// proptest-compatible name for [`Config`].
pub type ProptestConfig = Config;

impl Config {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum CaseError {
    /// The property failed (assertion or panic).
    Fail(String),
    /// The case was rejected by `prop_assume!` and should not count.
    Reject(String),
}

/// Outcome of running one case, used by the shrinker's predicate.
fn case_fails(result: &Result<(), CaseError>) -> bool {
    matches!(result, Err(CaseError::Fail(_)))
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse() {
        Ok(v) => Some(v),
        // A set-but-unparseable knob must not silently fall back to the
        // default seed — the user would believe they are replaying a
        // failure when they are not.
        Err(e) => panic!("[testkit] {name}={raw:?} is not a u64 ({e})"),
    }
}

/// FNV-1a of the test name: the per-test default seed, stable across
/// runs and processes, so failures reproduce with no state files.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

// --- panic-message silencing while exploring ------------------------
//
// Exploration and shrinking intentionally trigger panics (unwrap/expect
// inside property bodies). The default hook would spam stderr, so a
// forwarding hook suppresses output for threads currently inside the
// runner and leaves every other thread's panics untouched.

fn silenced_threads() -> &'static Mutex<HashSet<ThreadId>> {
    static SET: OnceLock<Mutex<HashSet<ThreadId>>> = OnceLock::new();
    SET.get_or_init(|| Mutex::new(HashSet::new()))
}

fn install_silencing_hook() {
    static INSTALL: OnceLock<()> = OnceLock::new();
    INSTALL.get_or_init(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let silenced = silenced_threads()
                .lock()
                .map(|s| s.contains(&std::thread::current().id()))
                .unwrap_or(false);
            if !silenced {
                prev(info);
            }
        }));
    });
}

struct SilenceGuard;

impl SilenceGuard {
    fn new() -> SilenceGuard {
        install_silencing_hook();
        if let Ok(mut s) = silenced_threads().lock() {
            s.insert(std::thread::current().id());
        }
        SilenceGuard
    }
}

impl Drop for SilenceGuard {
    fn drop(&mut self) {
        if let Ok(mut s) = silenced_threads().lock() {
            s.remove(&std::thread::current().id());
        }
    }
}

/// Run `case` under `catch_unwind`, turning panics into [`CaseError::Fail`].
pub fn run_case(
    case: &mut dyn FnMut(&mut Source) -> Result<(), CaseError>,
    src: &mut Source,
) -> Result<(), CaseError> {
    match panic::catch_unwind(AssertUnwindSafe(|| case(src))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("panic (non-string payload)");
            Err(CaseError::Fail(format!("panic: {msg}")))
        }
    }
}

/// Greedily shrink `bytes` while `fails` holds. Passes: delete blocks of
/// descending size, zero bytes, halve bytes. Repeats until a full sweep
/// makes no progress (a local minimum) or the attempt budget is spent.
pub fn shrink_bytes(bytes: &[u8], fails: &mut dyn FnMut(&[u8]) -> bool) -> Vec<u8> {
    let mut best = bytes.to_vec();
    let mut budget: u32 = 4000;
    loop {
        let mut improved = false;

        // Pass 1: delete contiguous blocks (shortens collections and
        // drops whole draws).
        for block in [64usize, 32, 16, 8, 4, 2, 1] {
            let mut i = 0;
            while i + block <= best.len() {
                if budget == 0 {
                    return best;
                }
                let mut cand = best.clone();
                cand.drain(i..i + block);
                budget -= 1;
                if fails(&cand) {
                    best = cand;
                    improved = true;
                    // Same index now holds the next block.
                } else {
                    i += 1;
                }
            }
        }

        // Pass 2: zero individual bytes (drives numeric draws to their
        // minimum and oneof choices to the first alternative).
        for i in 0..best.len() {
            if best[i] == 0 {
                continue;
            }
            if budget == 0 {
                return best;
            }
            let mut cand = best.clone();
            cand[i] = 0;
            budget -= 1;
            if fails(&cand) {
                best = cand;
                improved = true;
            }
        }

        // Pass 3: halve bytes toward zero (finer-grained minimization
        // when zeroing overshoots).
        for i in 0..best.len() {
            if best[i] == 0 {
                continue;
            }
            if budget == 0 {
                return best;
            }
            let mut cand = best.clone();
            cand[i] /= 2;
            budget -= 1;
            if fails(&cand) {
                best = cand;
                improved = true;
            }
        }

        if !improved {
            return best;
        }
    }
}

/// Drive one property: explore `cfg.cases` cases, shrink the first
/// failure, and panic with a reproducible report. Invoked by the
/// `proptest!` macro; not usually called directly.
///
/// # Panics
/// Panics (failing the enclosing `#[test]`) when the property fails.
pub fn run(
    cfg: &Config,
    name: &str,
    mut case: impl FnMut(&mut Source) -> Result<(), CaseError>,
    describe: impl Fn(&mut Source) -> String,
) {
    let seed = env_u64("EREBOR_PT_SEED").unwrap_or_else(|| name_seed(name));
    let cases = env_u64("EREBOR_PT_CASES").map_or(cfg.cases, |n| n as u32);
    let max_attempts = cases.saturating_mul(10).max(100);

    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u32;
    let failure = loop {
        if passed >= cases {
            return;
        }
        if attempt >= max_attempts {
            assert!(
                passed > 0,
                "[testkit] property '{name}' rejected every case \
                 ({rejected} rejections); weaken prop_assume!"
            );
            return; // Too many rejections but some passes: accept.
        }
        let case_rng =
            TestRng::seed_from_u64(seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut src = Source::fresh(case_rng);
        let result = {
            let _quiet = SilenceGuard::new();
            run_case(&mut case, &mut src)
        };
        attempt += 1;
        match result {
            Ok(()) => passed += 1,
            Err(CaseError::Reject(_)) => rejected += 1,
            Err(CaseError::Fail(msg)) => break (src.consumed().to_vec(), msg, attempt - 1),
        }
    };

    let (consumed, first_msg, failing_attempt) = failure;
    let minimal = {
        let _quiet = SilenceGuard::new();
        shrink_bytes(&consumed, &mut |cand| {
            case_fails(&run_case(&mut case, &mut Source::replay(cand)))
        })
    };
    let final_msg = match run_case(&mut case, &mut Source::replay(&minimal)) {
        Err(CaseError::Fail(m)) => m,
        _ => first_msg, // Flaky under replay; report the original message.
    };
    let values = describe(&mut Source::replay(&minimal));
    panic!(
        "[testkit] property '{name}' failed (attempt {failing_attempt}, \
         {passed} cases passed)\n\
         [testkit] failure: {final_msg}\n\
         [testkit] minimal failing input:\n{values}\
         [testkit] reproduce with: EREBOR_PT_SEED={seed} \
         (deterministic default seed for this test)"
    );
}
