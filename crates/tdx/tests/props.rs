//! Property-based tests for the TDX-module simulator.

use erebor_hw::phys::PhysMemory;
use erebor_hw::Frame;
use erebor_tdx::attest::{expected_mrtd, verify_quote, Attestation};
use erebor_tdx::sept::{GpaState, Sept};
use erebor_tdx::HostVmm;
use erebor_testkit::collection;
use erebor_testkit::prelude::*;

proptest! {
    #[test]
    fn sept_state_machine(ops in collection::vec((0u64..16, any::<bool>()), 0..64)) {
        let mut sept = Sept::new();
        let mut model = std::collections::BTreeMap::new();
        for f in 0..16u64 {
            sept.accept_private(Frame(f));
            model.insert(f, GpaState::Private);
        }
        for (f, to_shared) in ops {
            let to = if to_shared { GpaState::Shared } else { GpaState::Private };
            let res = sept.convert(Frame(f), to);
            let cur = model[&f];
            if cur == to {
                prop_assert!(res.is_err(), "same-state convert must fail");
            } else {
                prop_assert!(res.is_ok());
                model.insert(f, to);
            }
            prop_assert_eq!(sept.state(Frame(f)), Some(model[&f]));
        }
        let shared_model: Vec<u64> = model
            .iter()
            .filter(|(_, s)| **s == GpaState::Shared)
            .map(|(f, _)| *f)
            .collect();
        let shared_sept: Vec<u64> = sept.shared_frames().map(|f| f.0).collect();
        prop_assert_eq!(shared_sept, shared_model);
    }

    #[test]
    fn host_visibility_follows_sept_exactly(shared_mask in any::<u16>()) {
        let mut mem = PhysMemory::new(16 * 4096);
        let mut sept = Sept::new();
        let mut host = HostVmm::new();
        for f in 0..16u64 {
            sept.accept_private(Frame(f));
            mem.write(Frame(f).base(), &[f as u8 + 1; 8]).unwrap();
            if shared_mask >> f & 1 == 1 {
                sept.convert(Frame(f), GpaState::Shared).unwrap();
            }
        }
        for f in 0..16u64 {
            let visible = host.read_guest(&mem, &sept, Frame(f)).is_ok();
            prop_assert_eq!(visible, shared_mask >> f & 1 == 1);
        }
    }

    #[test]
    fn mrtd_order_and_content_sensitivity(
        imgs in collection::vec(collection::vec(any::<u8>(), 1..64), 1..5),
    ) {
        // expected_mrtd models exactly the module's extension chain.
        let mut att = Attestation::new([9; 32]);
        for img in &imgs {
            att.extend_mrtd(img);
        }
        att.seal_mrtd();
        let refs: Vec<&[u8]> = imgs.iter().map(Vec::as_slice).collect();
        prop_assert_eq!(att.mrtd(), expected_mrtd(&refs));
        // Permuting two distinct images changes the measurement.
        if imgs.len() >= 2 && imgs[0] != imgs[1] {
            let mut swapped = imgs.clone();
            swapped.swap(0, 1);
            let refs2: Vec<&[u8]> = swapped.iter().map(Vec::as_slice).collect();
            prop_assert_ne!(att.mrtd(), expected_mrtd(&refs2));
        }
    }

    #[test]
    fn quotes_bind_report_data(
        rd1 in any::<[u8; 32]>(),
        rd2 in any::<[u8; 32]>(),
    ) {
        prop_assume!(rd1 != rd2);
        let mut att = Attestation::new([3; 32]);
        att.extend_mrtd(b"fw");
        att.seal_mrtd();
        let mut d1 = [0u8; 64];
        d1[..32].copy_from_slice(&rd1);
        let mut d2 = [0u8; 64];
        d2[..32].copy_from_slice(&rd2);
        let q1 = att.quote(att.tdreport(d1));
        // Splicing rd2 into q1's signed report must invalidate it.
        let mut forged = q1.clone();
        forged.report.report_data = d2;
        let expect = expected_mrtd(&[b"fw"]);
        prop_assert!(verify_quote(&att.root_public(), &q1, &expect).is_ok());
        prop_assert!(verify_quote(&att.root_public(), &forged, &expect).is_err());
    }
}
