//! The untrusted host hypervisor (VMM) model.
//!
//! The host is an *attacker* in Erebor's threat model (§3.2): everything it
//! can observe, record, or inject is modelled here so tests can drive it.
//! Crucially, its memory view is gated by the [`crate::sept::Sept`]: shared
//! frames are fully visible and writable (including by device DMA); private
//! frames are cryptographically opaque (reads fail in the model).

use crate::sept::Sept;
use erebor_hw::phys::PhysMemory;
use erebor_hw::{Frame, PAGE_SIZE};
use erebor_wire::{WireError, WireReader, WireWriter};

/// Host-side access failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostAccessError {
    /// The frame is TD-private: hardware memory encryption blocks the host.
    PrivateMemory(Frame),
    /// The address is outside guest DRAM.
    OutOfRange,
}

impl core::fmt::Display for HostAccessError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HostAccessError::PrivateMemory(fr) => {
                write!(f, "host access to private {fr:?} blocked")
            }
            HostAccessError::OutOfRange => write!(f, "host access out of range"),
        }
    }
}

impl std::error::Error for HostAccessError {}

/// The untrusted hypervisor: GHCI emulation, shared-memory access, devices,
/// and an observation log for leak tests.
#[derive(Debug, Default)]
pub struct HostVmm {
    /// Every byte string the host has observed flowing out of the guest
    /// (vmcall arguments, shared-page reads). Leak tests grep this.
    pub observed: Vec<Vec<u8>>,
    /// Number of hypercalls serviced.
    pub vmcalls: u64,
    /// Emulated cpuid results (leaf → eax..edx).
    cpuid_table: Vec<(u32, [u32; 4])>,
}

impl HostVmm {
    /// A host with the default cpuid emulation table.
    #[must_use]
    pub fn new() -> HostVmm {
        HostVmm {
            observed: Vec::new(),
            vmcalls: 0,
            cpuid_table: vec![
                (0x0, [0x16, 0x756e_6547, 0x6c65_746e, 0x4965_6e69]), // GenuineIntel
                (0x1, [0x000c_06f2, 0x0010_0800, 0x7ffa_fbff, 0xbfeb_fbff]),
                (0x7, [0, 0x009c_4fbb, 0x1840_0f5e, 0xbc18_0410]),
            ],
        }
    }

    /// Emulate `cpuid` for the guest (a GHCI synchronous exit).
    pub fn emulate_cpuid(&mut self, leaf: u32) -> [u32; 4] {
        self.vmcalls += 1;
        self.observed.push(leaf.to_le_bytes().to_vec());
        self.cpuid_table
            .iter()
            .find(|(l, _)| *l == leaf)
            .map_or([0; 4], |(_, v)| *v)
    }

    /// Record arbitrary vmcall payload the guest exposed (GHCI data).
    pub fn record_vmcall(&mut self, payload: &[u8]) {
        self.vmcalls += 1;
        self.observed.push(payload.to_vec());
    }

    /// Host (or BIOS) read of guest memory — succeeds only for shared
    /// frames.
    ///
    /// # Errors
    /// [`HostAccessError::PrivateMemory`] for private frames.
    pub fn read_guest(
        &mut self,
        mem: &PhysMemory,
        sept: &Sept,
        frame: Frame,
    ) -> Result<Vec<u8>, HostAccessError> {
        if !sept.is_shared(frame) {
            return Err(HostAccessError::PrivateMemory(frame));
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        mem.read(frame.base(), &mut buf)
            .map_err(|_| HostAccessError::OutOfRange)?;
        self.observed.push(buf.clone());
        Ok(buf)
    }

    /// Device DMA write into guest memory — IOMMU restricts it to shared
    /// frames (§2.1).
    ///
    /// # Errors
    /// [`HostAccessError::PrivateMemory`] for private frames.
    pub fn dma_write(
        &mut self,
        mem: &mut PhysMemory,
        sept: &Sept,
        frame: Frame,
        data: &[u8],
    ) -> Result<(), HostAccessError> {
        if !sept.is_shared(frame) {
            return Err(HostAccessError::PrivateMemory(frame));
        }
        mem.write(frame.base(), &data[..data.len().min(PAGE_SIZE)])
            .map_err(|_| HostAccessError::OutOfRange)
    }

    /// Device DMA read — same IOMMU restriction.
    ///
    /// # Errors
    /// [`HostAccessError::PrivateMemory`] for private frames.
    pub fn dma_read(
        &mut self,
        mem: &PhysMemory,
        sept: &Sept,
        frame: Frame,
    ) -> Result<Vec<u8>, HostAccessError> {
        self.read_guest(mem, sept, frame)
    }

    /// Serialise the host's observation log and hypercall counter. The
    /// cpuid table is deterministic from [`HostVmm::new`] and is not
    /// exported. Migrating the *attacker's* log keeps leak audits valid
    /// across the move: anything the source leaked stays on the record.
    #[must_use]
    pub fn export_state(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(self.vmcalls);
        w.seq(self.observed.len());
        for o in &self.observed {
            w.bytes(o);
        }
        w.finish()
    }

    /// Rebuild a host from [`HostVmm::export_state`] bytes.
    ///
    /// # Errors
    /// [`WireError`] on truncation, oversized entries, or trailing bytes.
    pub fn import_state(bytes: &[u8]) -> Result<HostVmm, WireError> {
        let mut r = WireReader::new(bytes);
        let vmcalls = r.u64()?;
        let n = r.seq(8)?;
        let mut observed = Vec::with_capacity(n);
        for _ in 0..n {
            observed.push(r.bytes()?.to_vec());
        }
        r.finish()?;
        let mut host = HostVmm::new();
        host.vmcalls = vmcalls;
        host.observed = observed;
        Ok(host)
    }

    /// Whether any observed byte string contains `needle` — the leak-test
    /// predicate.
    #[must_use]
    pub fn observed_contains(&self, needle: &[u8]) -> bool {
        !needle.is_empty()
            && self
                .observed
                .iter()
                .any(|o| o.windows(needle.len()).any(|w| w == needle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sept::GpaState;

    #[test]
    fn host_blocked_from_private_memory() {
        let mut mem = PhysMemory::new(1 << 20);
        let mut sept = Sept::new();
        let f = mem.alloc_frame().unwrap();
        sept.accept_private(f);
        mem.write(f.base(), b"client secret").unwrap();
        let mut host = HostVmm::new();
        assert_eq!(
            host.read_guest(&mem, &sept, f),
            Err(HostAccessError::PrivateMemory(f))
        );
        assert!(!host.observed_contains(b"client secret"));
    }

    #[test]
    fn host_sees_shared_memory() {
        let mut mem = PhysMemory::new(1 << 20);
        let mut sept = Sept::new();
        let f = mem.alloc_frame().unwrap();
        sept.accept_private(f);
        sept.convert(f, GpaState::Shared).unwrap();
        mem.write(f.base(), b"network packet").unwrap();
        let mut host = HostVmm::new();
        let seen = host.read_guest(&mem, &sept, f).unwrap();
        assert_eq!(&seen[..14], b"network packet");
        assert!(host.observed_contains(b"network packet"));
    }

    #[test]
    fn dma_restricted_to_shared() {
        let mut mem = PhysMemory::new(1 << 20);
        let mut sept = Sept::new();
        let private = mem.alloc_frame().unwrap();
        let shared = mem.alloc_frame().unwrap();
        sept.accept_private(private);
        sept.accept_private(shared);
        sept.convert(shared, GpaState::Shared).unwrap();
        let mut host = HostVmm::new();
        assert!(host.dma_write(&mut mem, &sept, private, b"inject").is_err());
        host.dma_write(&mut mem, &sept, shared, b"packet in")
            .unwrap();
        let mut b = [0u8; 9];
        mem.read(shared.base(), &mut b).unwrap();
        assert_eq!(&b, b"packet in");
    }

    #[test]
    fn cpuid_emulation_counts_vmcalls() {
        let mut host = HostVmm::new();
        let v = host.emulate_cpuid(0);
        assert_eq!(v[1], 0x756e_6547); // "Genu"
        assert_eq!(host.emulate_cpuid(0xdead_beef), [0; 4]);
        assert_eq!(host.vmcalls, 2);
    }
}
