//! # erebor-tdx — the TDX-module and host simulator
//!
//! Models the *guest-visible* behaviour of Intel TDX (§2.1) that Erebor's
//! drop-in claim rests on:
//!
//! * [`sept`] — the secure EPT: every guest physical frame is *private*
//!   (inaccessible to the host and devices) or *shared* (host/DMA visible).
//!   Conversion happens only through `tdcall MapGPA`.
//! * [`mod@tdcall`] — the privileged `tdcall` instruction and its leaves:
//!   `MapGpa`, `VmCall` (GHCI synchronous exits), `TdReport`,
//!   `RtmrExtend`. The ring/domain guard comes from `erebor-hw`, so the
//!   monitor's exclusive control over GHCI (Table 2) is enforced at the
//!   same place all sensitive instructions are.
//! * [`attest`] — MRTD/RTMR measurement registers, TDREPORT with an HMAC
//!   integrity binding, and CPU-root-signed quotes (Ed25519 by a simulated
//!   Intel provisioning key).
//! * [`host`] — the *untrusted* hypervisor: it observes every shared frame,
//!   emulates `cpuid`/MSR exits, runs devices (DMA restricted to shared
//!   memory), and injects interrupts. Attack tests drive this interface.
//! * [`migrate`] — TD live migration: the attested handshake and the
//!   sealed, sequence-numbered record stream that moves pages and TD
//!   state between machines without ever trusting the transport.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attest;
pub mod host;
pub mod migrate;
pub mod sept;
pub mod tdcall;

pub use attest::{Quote, TdReport};
pub use host::HostVmm;
pub use migrate::{MigrationDest, MigrationError, MigrationKey, MigrationSource};
pub use sept::{GpaState, Sept};
pub use tdcall::{tdcall, TdcallLeaf, TdcallResult, TdxModule};
