//! The secure EPT: private/shared state per guest physical frame.
//!
//! The TDX module is the only writer of this table; the guest influences it
//! exclusively through `tdcall MapGPA` (§2.1), and the host can allocate or
//! reclaim, but never read, private frames.

use erebor_hw::Frame;
use erebor_wire::{WireError, WireReader, WireWriter};
use std::collections::BTreeMap;

/// Host-visibility state of a guest physical frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpaState {
    /// Encrypted, guest-only. Host and device access is blocked.
    Private,
    /// Host- and DMA-visible (the CVM "shared" window).
    Shared,
}

/// Secure EPT error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeptError {
    /// Frame was never accepted into the TD.
    NotAccepted(Frame),
    /// Frame is already in the requested state.
    AlreadyInState(Frame, GpaState),
}

impl core::fmt::Display for SeptError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SeptError::NotAccepted(fr) => write!(f, "{fr:?} not accepted into the TD"),
            SeptError::AlreadyInState(fr, s) => write!(f, "{fr:?} already {s:?}"),
        }
    }
}

impl std::error::Error for SeptError {}

/// The secure EPT.
#[derive(Debug, Default, Clone)]
pub struct Sept {
    state: BTreeMap<u64, GpaState>,
}

impl Sept {
    /// Empty table.
    #[must_use]
    pub fn new() -> Sept {
        Sept::default()
    }

    /// Accept a frame into the TD as private (boot-time / host allocation
    /// path). Idempotent for private frames.
    pub fn accept_private(&mut self, frame: Frame) {
        self.state.insert(frame.0, GpaState::Private);
    }

    /// Current state of a frame.
    #[must_use]
    pub fn state(&self, frame: Frame) -> Option<GpaState> {
        self.state.get(&frame.0).copied()
    }

    /// Whether a frame is currently shared (host/DMA visible).
    #[must_use]
    pub fn is_shared(&self, frame: Frame) -> bool {
        self.state(frame) == Some(GpaState::Shared)
    }

    /// Convert a frame between private and shared (the `MapGPA` leaf).
    ///
    /// # Errors
    /// [`SeptError`] if the frame is unknown or already in that state.
    pub fn convert(&mut self, frame: Frame, to: GpaState) -> Result<(), SeptError> {
        let cur = self.state(frame).ok_or(SeptError::NotAccepted(frame))?;
        if cur == to {
            return Err(SeptError::AlreadyInState(frame, to));
        }
        self.state.insert(frame.0, to);
        Ok(())
    }

    /// All currently shared frames (host's view of the shared window).
    pub fn shared_frames(&self) -> impl Iterator<Item = Frame> + '_ {
        self.state
            .iter()
            .filter(|(_, s)| **s == GpaState::Shared)
            .map(|(f, _)| Frame(*f))
    }

    /// Number of accepted frames.
    #[must_use]
    pub fn accepted_count(&self) -> usize {
        self.state.len()
    }

    /// Serialise the table for migration: every accepted frame with its
    /// private/shared state, in ascending frame order.
    #[must_use]
    pub fn export_state(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.seq(self.state.len());
        for (frame, st) in &self.state {
            w.u64(*frame);
            w.u8(match st {
                GpaState::Private => 0,
                GpaState::Shared => 1,
            });
        }
        w.finish()
    }

    /// Rebuild a table from [`Sept::export_state`] bytes.
    ///
    /// # Errors
    /// [`WireError`] on truncation, an unknown state tag, out-of-order or
    /// duplicate frames, or trailing bytes.
    pub fn import_state(bytes: &[u8]) -> Result<Sept, WireError> {
        let mut r = WireReader::new(bytes);
        let n = r.seq(9)?;
        let mut state = BTreeMap::new();
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            let frame = r.u64()?;
            if prev.is_some_and(|p| frame <= p) {
                return Err(WireError::BadValue {
                    what: "sEPT frames out of order",
                });
            }
            prev = Some(frame);
            let st = match r.u8()? {
                0 => GpaState::Private,
                1 => GpaState::Shared,
                tag => {
                    return Err(WireError::BadTag {
                        what: "GpaState",
                        tag: u64::from(tag),
                    })
                }
            };
            state.insert(frame, st);
        }
        r.finish()?;
        Ok(Sept { state })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_and_convert() {
        let mut sept = Sept::new();
        sept.accept_private(Frame(10));
        assert_eq!(sept.state(Frame(10)), Some(GpaState::Private));
        sept.convert(Frame(10), GpaState::Shared).unwrap();
        assert!(sept.is_shared(Frame(10)));
        sept.convert(Frame(10), GpaState::Private).unwrap();
        assert!(!sept.is_shared(Frame(10)));
    }

    #[test]
    fn convert_unknown_frame_rejected() {
        let mut sept = Sept::new();
        assert_eq!(
            sept.convert(Frame(5), GpaState::Shared),
            Err(SeptError::NotAccepted(Frame(5)))
        );
    }

    #[test]
    fn double_convert_rejected() {
        let mut sept = Sept::new();
        sept.accept_private(Frame(1));
        sept.convert(Frame(1), GpaState::Shared).unwrap();
        assert_eq!(
            sept.convert(Frame(1), GpaState::Shared),
            Err(SeptError::AlreadyInState(Frame(1), GpaState::Shared))
        );
    }

    #[test]
    fn shared_enumeration() {
        let mut sept = Sept::new();
        for f in 0..6 {
            sept.accept_private(Frame(f));
        }
        sept.convert(Frame(2), GpaState::Shared).unwrap();
        sept.convert(Frame(4), GpaState::Shared).unwrap();
        let shared: Vec<Frame> = sept.shared_frames().collect();
        assert_eq!(shared, vec![Frame(2), Frame(4)]);
    }
}
