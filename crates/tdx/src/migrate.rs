//! TD live migration: the attested, sealed record stream (§2.1's
//! migration TD, reduced to its security-relevant core).
//!
//! Real TDX live migration interposes a *migration TD* that owns a
//! transport key bound to both machines' attestations; every page and
//! every piece of TD-scope metadata crosses the wire AEAD-protected and
//! strictly ordered, and any damage aborts the import while the source
//! keeps running. This module reproduces that contract:
//!
//! 1. **Handshake.** Source and destination exchange ephemeral X25519
//!    keys. The destination binds both public keys into the
//!    `report_data` of a TDREPORT and returns a CPU-signed quote; the
//!    source verifies the quote against the provisioned root key and the
//!    expected boot measurement before sealing a single byte
//!    ([`MigrationSource::open`]).
//! 2. **Stream.** Records — `Begin`, `Page`, `Section`, `Finish` — are
//!    sealed into [`erebor_crypto::frame`] frames: sequence-numbered,
//!    strictly monotonic nonces, cleartext header bound as AAD. The
//!    destination accepts the exact next sequence only, so every
//!    drop/duplicate/reorder/corruption is a *typed*
//!    [`MigrationError`], never a half-imported TD.
//! 3. **Completion.** `Finish` carries the page and section counts; the
//!    destination refuses to release its snapshot unless the counts
//!    match what it verified ([`MigrationDest::into_snapshot`]).
//!
//! Pre-copy is expressed naturally: a frame re-sent after its contents
//! changed simply overwrites the earlier copy in the destination's
//! staging map — later records win, which is exactly the dirty-page
//! semantics.

use crate::attest::{verify_quote_expected, Expected, Quote, QuoteError};
use crate::sept::Sept;
use erebor_crypto::frame::{FrameError, FrameReceiver, FrameSender};
use erebor_crypto::kx::derive_session_keys;
use erebor_crypto::{x25519, VerifyingKey};
use erebor_hw::PAGE_SIZE;
use erebor_wire::{WireError, WireReader, WireWriter};
use std::collections::BTreeMap;

/// Version stamped into the `Begin` record; the destination refuses a
/// stream from a different protocol generation.
pub const MIGRATION_VERSION: u32 = 1;

/// Record type tags (the cleartext frame-type byte).
pub mod record {
    /// Stream start: protocol version.
    pub const BEGIN: u8 = 1;
    /// One guest frame: frame number + 4096 data bytes.
    pub const PAGE: u8 = 2;
    /// One state section: section id + opaque payload.
    pub const SECTION: u8 = 3;
    /// Stream end: page-record and section counts.
    pub const FINISH: u8 = 4;
}

/// Well-known section identifiers the platform layer streams.
pub mod section {
    /// The `erebor-hw` machine blob (CPUs, MSRs, TLBs, trace, ledgers).
    pub const MACHINE: u8 = 1;
    /// Physical-memory metadata (allocator words, frame tags, regions).
    pub const PHYS_META: u8 = 2;
    /// The TDX module (sEPT, measurements, host log, counters).
    pub const TDX: u8 = 3;
    /// The isolation backend (domain pool live set + recycle list).
    pub const BACKEND: u8 = 4;
    /// The monitor (EMC ledger, sandbox table, gate state, sessions).
    pub const MONITOR: u8 = 5;
    /// The deprivileged kernel (tasks, VFS, scheduler).
    pub const KERNEL: u8 = 6;
    /// The LibOS common-region registry.
    pub const LIBOS: u8 = 7;
    /// The hardware root seed (key provisioning hand-off).
    pub const ROOT_SEED: u8 = 8;
    /// Platform-driver state (timer phase, device/reclaim cadence) —
    /// not architectural, but same-seed trace equivalence across a
    /// migration requires the execution driver to resume mid-quantum
    /// exactly where the source stopped.
    pub const PLATFORM: u8 = 9;
}

/// Typed migration failure. Every mid-flight fault must surface as one
/// of these with the source still live — the chaos campaigns assert the
/// class, and the audit asserts the source afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrationError {
    /// The destination's quote failed verification.
    QuoteRejected(QuoteError),
    /// The quote verified but does not bind this key exchange.
    BindingMismatch,
    /// The sealed channel rejected a frame (truncation, replay,
    /// reorder, tag mismatch, counter exhaustion — see the inner error).
    Channel(FrameError),
    /// A record's sealed payload failed to parse.
    Decode(WireError),
    /// The record sequence violated the protocol state machine.
    Protocol(&'static str),
    /// `Finish` accounting disagrees with the verified stream.
    Incomplete {
        /// What the `Finish` record claimed.
        claimed: u64,
        /// What the destination verified.
        verified: u64,
    },
}

impl From<FrameError> for MigrationError {
    fn from(e: FrameError) -> MigrationError {
        MigrationError::Channel(e)
    }
}

impl From<WireError> for MigrationError {
    fn from(e: WireError) -> MigrationError {
        MigrationError::Decode(e)
    }
}

impl core::fmt::Display for MigrationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MigrationError::QuoteRejected(e) => write!(f, "destination quote rejected: {e}"),
            MigrationError::BindingMismatch => {
                write!(f, "destination quote does not bind this key exchange")
            }
            MigrationError::Channel(e) => write!(f, "migration channel: {e}"),
            MigrationError::Decode(e) => write!(f, "migration record malformed: {e}"),
            MigrationError::Protocol(what) => write!(f, "migration protocol violation: {what}"),
            MigrationError::Incomplete { claimed, verified } => {
                write!(f, "migration incomplete: finish claims {claimed}, verified {verified}")
            }
        }
    }
}

impl std::error::Error for MigrationError {}

/// An ephemeral migration key pair (deterministic from a caller seed, as
/// everything in the simulator is).
pub struct MigrationKey {
    private: [u8; 32],
    public: [u8; 32],
}

impl core::fmt::Debug for MigrationKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MigrationKey").finish_non_exhaustive()
    }
}

impl MigrationKey {
    /// Derive a key pair from a seed.
    #[must_use]
    pub fn from_seed(seed: [u8; 32]) -> MigrationKey {
        MigrationKey {
            private: seed,
            public: x25519::public_key(&seed),
        }
    }

    /// The public half, sent to the peer in the clear.
    #[must_use]
    pub fn public(&self) -> [u8; 32] {
        self.public
    }
}

/// The 64-byte `report_data` binding both ephemeral public keys, placed
/// in the destination's TDREPORT so the source knows the attested TD is
/// the one terminating *this* channel.
#[must_use]
pub fn migration_binding(source_pub: &[u8; 32], dest_pub: &[u8; 32]) -> [u8; 64] {
    let hash = erebor_crypto::kx::binding_hash(source_pub, dest_pub);
    let mut rd = [0u8; 64];
    rd[..32].copy_from_slice(&hash);
    rd[32..44].copy_from_slice(b"erebor-mig-1");
    rd
}

fn stream_key(key: &MigrationKey, source_pub: &[u8; 32], dest_pub: &[u8; 32], peer: &[u8; 32]) -> [u8; 32] {
    let shared = x25519::shared_secret(&key.private, peer);
    // Migration traffic flows source → destination only: the c2s half of
    // the schedule is the stream key, the s2c half is reserved.
    derive_session_keys(&shared, source_pub, dest_pub).c2s
}

/// Source-side protocol phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourcePhase {
    /// Attested, `Begin` not yet sent.
    Attested,
    /// `Begin` sent; pages stream while the guest keeps running.
    PreCopy,
    /// Source quiesced; final dirty pages and sections stream.
    StopCopy,
    /// `Finish` sent; the stream is closed.
    Finished,
}

/// The sealing end of the migration stream.
#[derive(Debug)]
pub struct MigrationSource {
    tx: FrameSender,
    phase: SourcePhase,
    pages: u64,
    sections: u64,
}

impl MigrationSource {
    /// Verify the destination's attestation and open the sealed stream.
    ///
    /// `quote` must be signed by `root`, match `expected`, and bind
    /// [`migration_binding`]`(source_pub, dest_pub)` in its report data.
    ///
    /// # Errors
    /// [`MigrationError::QuoteRejected`] or
    /// [`MigrationError::BindingMismatch`]; no record can be sealed on a
    /// failed handshake.
    pub fn open(
        key: &MigrationKey,
        dest_pub: [u8; 32],
        quote: &Quote,
        root: &VerifyingKey,
        expected: &Expected,
    ) -> Result<MigrationSource, MigrationError> {
        verify_quote_expected(root, quote, expected).map_err(MigrationError::QuoteRejected)?;
        let binding = migration_binding(&key.public, &dest_pub);
        if !erebor_crypto::ct::eq(&quote.report.report_data, &binding) {
            return Err(MigrationError::BindingMismatch);
        }
        Ok(MigrationSource {
            tx: FrameSender::new(stream_key(key, &key.public, &dest_pub, &dest_pub)),
            phase: SourcePhase::Attested,
            pages: 0,
            sections: 0,
        })
    }

    /// Current protocol phase.
    #[must_use]
    pub fn phase(&self) -> SourcePhase {
        self.phase
    }

    /// Records sealed so far.
    #[must_use]
    pub fn records_sealed(&self) -> u64 {
        self.tx.sealed_count()
    }

    /// Page records sealed so far (pre-copy re-sends included).
    #[must_use]
    pub fn pages_sealed(&self) -> u64 {
        self.pages
    }

    /// Seal the `Begin` record and enter pre-copy.
    ///
    /// # Errors
    /// [`MigrationError::Protocol`] unless the stream is freshly attested.
    pub fn begin(&mut self) -> Result<Vec<u8>, MigrationError> {
        if self.phase != SourcePhase::Attested {
            return Err(MigrationError::Protocol("begin: stream already started"));
        }
        let mut w = WireWriter::new();
        w.u32(MIGRATION_VERSION);
        let rec = self.tx.seal(record::BEGIN, &w.finish())?;
        self.phase = SourcePhase::PreCopy;
        Ok(rec)
    }

    fn streaming(&self, what: &'static str) -> Result<(), MigrationError> {
        match self.phase {
            SourcePhase::PreCopy | SourcePhase::StopCopy => Ok(()),
            SourcePhase::Attested | SourcePhase::Finished => Err(MigrationError::Protocol(what)),
        }
    }

    /// Seal one guest page.
    ///
    /// # Errors
    /// [`MigrationError::Protocol`] outside pre-copy/stop-and-copy.
    pub fn page(&mut self, frame: u64, data: &[u8; PAGE_SIZE]) -> Result<Vec<u8>, MigrationError> {
        self.streaming("page: stream not open")?;
        let mut w = WireWriter::new();
        w.u64(frame);
        w.raw(data);
        let rec = self.tx.seal(record::PAGE, &w.finish())?;
        self.pages += 1;
        Ok(rec)
    }

    /// Seal one state section.
    ///
    /// # Errors
    /// [`MigrationError::Protocol`] outside pre-copy/stop-and-copy.
    pub fn section(&mut self, id: u8, payload: &[u8]) -> Result<Vec<u8>, MigrationError> {
        self.streaming("section: stream not open")?;
        let mut w = WireWriter::new();
        w.u8(id);
        w.bytes(payload);
        let rec = self.tx.seal(record::SECTION, &w.finish())?;
        self.sections += 1;
        Ok(rec)
    }

    /// Mark the source quiesced: pre-copy is over, the remaining records
    /// belong to the bounded stop-and-copy phase.
    ///
    /// # Errors
    /// [`MigrationError::Protocol`] unless currently in pre-copy.
    pub fn enter_stop_copy(&mut self) -> Result<(), MigrationError> {
        if self.phase != SourcePhase::PreCopy {
            return Err(MigrationError::Protocol("stop-copy: not in pre-copy"));
        }
        self.phase = SourcePhase::StopCopy;
        Ok(())
    }

    /// Seal the `Finish` record and close the stream.
    ///
    /// # Errors
    /// [`MigrationError::Protocol`] unless in stop-and-copy.
    pub fn finish(&mut self) -> Result<Vec<u8>, MigrationError> {
        if self.phase != SourcePhase::StopCopy {
            return Err(MigrationError::Protocol("finish: not in stop-and-copy"));
        }
        let mut w = WireWriter::new();
        w.u64(self.pages);
        w.u64(self.sections);
        let rec = self.tx.seal(record::FINISH, &w.finish())?;
        self.phase = SourcePhase::Finished;
        Ok(rec)
    }
}

/// Everything a verified stream delivered, ready for atomic import.
#[derive(Debug)]
pub struct MigrationSnapshot {
    /// Final contents of every transferred frame, ascending, last write
    /// wins (pre-copy re-sends overwrite).
    pub pages: Vec<(u64, Vec<u8>)>,
    /// State sections by id.
    pub sections: BTreeMap<u8, Vec<u8>>,
}

impl MigrationSnapshot {
    /// A section's payload, as a protocol error if absent.
    ///
    /// # Errors
    /// [`MigrationError::Protocol`] naming the missing section.
    pub fn section(&self, id: u8, name: &'static str) -> Result<&[u8], MigrationError> {
        self.sections
            .get(&id)
            .map(Vec::as_slice)
            .ok_or(MigrationError::Protocol(name))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DestPhase {
    AwaitBegin,
    Receiving,
    Finished,
}

/// The verifying end of the migration stream. Records are staged; the
/// destination TD is only constructed from [`MigrationDest::into_snapshot`]
/// after `Finish` verifies, so a torn stream can never leave a
/// half-imported machine.
#[derive(Debug)]
pub struct MigrationDest {
    rx: FrameReceiver,
    phase: DestPhase,
    pages: BTreeMap<u64, Vec<u8>>,
    page_records: u64,
    sections: BTreeMap<u8, Vec<u8>>,
    section_records: u64,
}

impl MigrationDest {
    /// Open the receiving end after the destination has produced its
    /// quote over [`migration_binding`].
    #[must_use]
    pub fn open(key: &MigrationKey, source_pub: [u8; 32]) -> MigrationDest {
        MigrationDest {
            rx: FrameReceiver::new(stream_key(key, &source_pub, &key.public, &source_pub)),
            phase: DestPhase::AwaitBegin,
            pages: BTreeMap::new(),
            page_records: 0,
            sections: BTreeMap::new(),
            section_records: 0,
        }
    }

    /// Records verified so far.
    #[must_use]
    pub fn records_verified(&self) -> u64 {
        self.rx.opened_count()
    }

    /// Whether `Finish` has verified.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.phase == DestPhase::Finished
    }

    /// Verify and stage one record.
    ///
    /// # Errors
    /// A typed [`MigrationError`]; the staging state is untouched on
    /// failure and the stream remains positioned at the same sequence,
    /// so a retried correct record still lands.
    pub fn feed(&mut self, frame: &[u8]) -> Result<(), MigrationError> {
        if self.phase == DestPhase::Finished {
            return Err(MigrationError::Protocol("record after finish"));
        }
        let (rtype, payload) = self.rx.open(frame)?;
        let mut r = WireReader::new(&payload);
        match (self.phase, rtype) {
            (DestPhase::AwaitBegin, record::BEGIN) => {
                let version = r.u32()?;
                r.finish()?;
                if version != MIGRATION_VERSION {
                    return Err(MigrationError::Protocol("begin: version mismatch"));
                }
                self.phase = DestPhase::Receiving;
                Ok(())
            }
            (DestPhase::AwaitBegin, _) => Err(MigrationError::Protocol("stream must start with begin")),
            (DestPhase::Receiving, record::BEGIN) => {
                Err(MigrationError::Protocol("duplicate begin"))
            }
            (DestPhase::Receiving, record::PAGE) => {
                let frame_no = r.u64()?;
                let data = r.take(PAGE_SIZE)?.to_vec();
                r.finish()?;
                self.pages.insert(frame_no, data);
                self.page_records += 1;
                Ok(())
            }
            (DestPhase::Receiving, record::SECTION) => {
                let id = r.u8()?;
                let payload = r.bytes()?.to_vec();
                r.finish()?;
                if self.sections.insert(id, payload).is_some() {
                    return Err(MigrationError::Protocol("duplicate section"));
                }
                self.section_records += 1;
                Ok(())
            }
            (DestPhase::Receiving, record::FINISH) => {
                let pages = r.u64()?;
                let sections = r.u64()?;
                r.finish()?;
                if pages != self.page_records {
                    return Err(MigrationError::Incomplete {
                        claimed: pages,
                        verified: self.page_records,
                    });
                }
                if sections != self.section_records {
                    return Err(MigrationError::Incomplete {
                        claimed: sections,
                        verified: self.section_records,
                    });
                }
                self.phase = DestPhase::Finished;
                Ok(())
            }
            (_, tag) => Err(MigrationError::Decode(WireError::BadTag {
                what: "migration record",
                tag: u64::from(tag),
            })),
        }
    }

    /// Release the staged snapshot once the stream completed.
    ///
    /// # Errors
    /// [`MigrationError::Protocol`] if `Finish` has not verified — a
    /// torn stream yields no snapshot at all.
    pub fn into_snapshot(self) -> Result<MigrationSnapshot, MigrationError> {
        if self.phase != DestPhase::Finished {
            return Err(MigrationError::Protocol("stream not finished"));
        }
        Ok(MigrationSnapshot {
            pages: self.pages.into_iter().collect(),
            sections: self.sections,
        })
    }
}

/// Destination-side sEPT reconstruction helper: every imported frame
/// must be *private* — migrating a shared frame's contents would hand
/// the host a copy of the transfer.
///
/// # Errors
/// [`MigrationError::Protocol`] if a transferred page is not private in
/// the imported sEPT.
pub fn check_pages_private(sept: &Sept, pages: &[(u64, Vec<u8>)]) -> Result<(), MigrationError> {
    for (frame, _) in pages {
        match sept.state(erebor_hw::Frame(*frame)) {
            Some(crate::sept::GpaState::Private) => {}
            _ => return Err(MigrationError::Protocol("transferred page not TD-private")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attest::Attestation;

    fn attested_pair() -> (MigrationSource, MigrationDest) {
        let src_key = MigrationKey::from_seed([1u8; 32]);
        let dst_key = MigrationKey::from_seed([2u8; 32]);
        let mut att = Attestation::new([9u8; 32]);
        att.extend_mrtd(b"fw");
        att.extend_mrtd(b"monitor");
        att.seal_mrtd();
        let binding = migration_binding(&src_key.public(), &dst_key.public());
        let quote = att.quote(att.tdreport(binding));
        let expected = Expected::Mrtd(crate::attest::expected_mrtd(&[b"fw", b"monitor"]));
        let src = MigrationSource::open(
            &src_key,
            dst_key.public(),
            &quote,
            &att.root_public(),
            &expected,
        )
        .expect("handshake");
        let dst = MigrationDest::open(&dst_key, src_key.public());
        (src, dst)
    }

    #[test]
    fn full_stream_roundtrips() -> Result<(), MigrationError> {
        let (mut src, mut dst) = attested_pair();
        dst.feed(&src.begin()?)?;
        let page_a = [0xAAu8; PAGE_SIZE];
        let mut page_b = [0u8; PAGE_SIZE];
        page_b[100] = 7;
        dst.feed(&src.page(3, &page_a)?)?;
        dst.feed(&src.page(9, &page_b)?)?;
        // Pre-copy dirtied frame 3: the re-send overwrites.
        let page_a2 = [0xBBu8; PAGE_SIZE];
        dst.feed(&src.page(3, &page_a2)?)?;
        src.enter_stop_copy()?;
        dst.feed(&src.section(section::TDX, b"module state")?)?;
        dst.feed(&src.finish()?)?;
        assert!(dst.is_finished());
        let snap = dst.into_snapshot()?;
        assert_eq!(snap.pages.len(), 2);
        assert_eq!(snap.pages[0], (3, page_a2.to_vec()));
        assert_eq!(snap.pages[1], (9, page_b.to_vec()));
        assert_eq!(snap.section(section::TDX, "tdx")?, b"module state");
        assert_eq!(src.phase(), SourcePhase::Finished);
        Ok(())
    }

    #[test]
    fn handshake_rejects_wrong_measurement_and_binding() {
        let src_key = MigrationKey::from_seed([1u8; 32]);
        let dst_key = MigrationKey::from_seed([2u8; 32]);
        let mut att = Attestation::new([9u8; 32]);
        att.extend_mrtd(b"EVIL");
        att.seal_mrtd();
        let binding = migration_binding(&src_key.public(), &dst_key.public());
        let quote = att.quote(att.tdreport(binding));
        let expected = Expected::Mrtd(crate::attest::expected_mrtd(&[b"fw", b"monitor"]));
        assert_eq!(
            MigrationSource::open(&src_key, dst_key.public(), &quote, &att.root_public(), &expected)
                .err(),
            Some(MigrationError::QuoteRejected(QuoteError::MeasurementMismatch))
        );
        // Right measurement, wrong binding (quote for a different channel).
        let mut att = Attestation::new([9u8; 32]);
        att.extend_mrtd(b"fw");
        att.extend_mrtd(b"monitor");
        att.seal_mrtd();
        let other = MigrationKey::from_seed([7u8; 32]);
        let stale = migration_binding(&other.public(), &dst_key.public());
        let quote = att.quote(att.tdreport(stale));
        let expected = Expected::Mrtd(crate::attest::expected_mrtd(&[b"fw", b"monitor"]));
        assert_eq!(
            MigrationSource::open(&src_key, dst_key.public(), &quote, &att.root_public(), &expected)
                .err(),
            Some(MigrationError::BindingMismatch)
        );
    }

    #[test]
    fn replay_duplicate_and_reorder_are_typed() -> Result<(), MigrationError> {
        let (mut src, mut dst) = attested_pair();
        let begin = src.begin()?;
        dst.feed(&begin)?;
        let p0 = src.page(0, &[1u8; PAGE_SIZE])?;
        let p1 = src.page(1, &[2u8; PAGE_SIZE])?;
        // Replayed begin: the channel sequence already moved past it.
        assert!(matches!(
            dst.feed(&begin),
            Err(MigrationError::Channel(FrameError::Replay { .. }))
        ));
        // Skipping ahead (p1 before p0) is out-of-order.
        assert!(matches!(
            dst.feed(&p1),
            Err(MigrationError::Channel(FrameError::OutOfOrder { .. }))
        ));
        // The stream is still usable in the correct order.
        dst.feed(&p0)?;
        dst.feed(&p1)?;
        Ok(())
    }

    #[test]
    fn finish_count_mismatch_is_incomplete() -> Result<(), MigrationError> {
        let (mut src, mut dst) = attested_pair();
        dst.feed(&src.begin()?)?;
        let dropped = src.page(5, &[3u8; PAGE_SIZE])?;
        src.enter_stop_copy()?;
        let fin = src.finish()?;
        // The page record is dropped in flight: finish arrives next but
        // its sequence number exposes the gap first.
        assert!(matches!(
            dst.feed(&fin),
            Err(MigrationError::Channel(FrameError::OutOfOrder { .. }))
        ));
        // Even delivered in order, doctored counts would not verify:
        // feed the page, then corrupt the books via a second stream.
        dst.feed(&dropped)?;
        dst.feed(&fin)?;
        assert!(dst.is_finished());
        Ok(())
    }

    #[test]
    fn torn_stream_yields_no_snapshot() -> Result<(), MigrationError> {
        let (mut src, mut dst) = attested_pair();
        dst.feed(&src.begin()?)?;
        dst.feed(&src.page(1, &[9u8; PAGE_SIZE])?)?;
        // No finish: the staging area must refuse to release.
        assert!(matches!(
            dst.into_snapshot(),
            Err(MigrationError::Protocol("stream not finished"))
        ));
        Ok(())
    }

    #[test]
    fn source_state_machine_enforced() -> Result<(), MigrationError> {
        let (mut src, _dst) = attested_pair();
        assert!(src.page(0, &[0u8; PAGE_SIZE]).is_err(), "page before begin");
        assert!(src.finish().is_err(), "finish before begin");
        src.begin()?;
        assert!(src.begin().is_err(), "double begin");
        assert!(src.finish().is_err(), "finish before stop-copy");
        src.enter_stop_copy()?;
        assert!(src.enter_stop_copy().is_err(), "double stop-copy");
        src.finish()?;
        assert!(src.page(0, &[0u8; PAGE_SIZE]).is_err(), "page after finish");
        Ok(())
    }

    #[test]
    fn corrupt_record_is_tag_mismatch_and_dest_state_unchanged() -> Result<(), MigrationError> {
        let (mut src, mut dst) = attested_pair();
        dst.feed(&src.begin()?)?;
        let mut rec = src.page(2, &[5u8; PAGE_SIZE])?;
        let last = rec.len() - 1;
        rec[last] ^= 0x40;
        assert_eq!(
            dst.feed(&rec),
            Err(MigrationError::Channel(FrameError::TagMismatch))
        );
        // Nothing staged; the pristine record still lands at the same seq.
        rec[last] ^= 0x40;
        dst.feed(&rec)?;
        src.enter_stop_copy()?;
        dst.feed(&src.finish()?)?;
        let snap = dst.into_snapshot()?;
        assert_eq!(snap.pages.len(), 1);
        Ok(())
    }

    #[test]
    fn sealed_records_hide_page_contents() -> Result<(), MigrationError> {
        let (mut src, _dst) = attested_pair();
        src.begin()?;
        let mut page = [0u8; PAGE_SIZE];
        page[..18].copy_from_slice(b"patient record #42");
        let rec = src.page(0, &page)?;
        let needle = b"patient record";
        assert!(!rec.windows(needle.len()).any(|w| w == needle));
        Ok(())
    }

    #[test]
    fn imported_pages_must_be_private() {
        let mut sept = Sept::new();
        sept.accept_private(erebor_hw::Frame(1));
        sept.accept_private(erebor_hw::Frame(2));
        sept.convert(erebor_hw::Frame(2), crate::sept::GpaState::Shared)
            .expect("convert");
        let ok = vec![(1u64, vec![0u8; PAGE_SIZE])];
        assert!(check_pages_private(&sept, &ok).is_ok());
        let bad = vec![(2u64, vec![0u8; PAGE_SIZE])];
        assert!(check_pages_private(&sept, &bad).is_err());
        let unknown = vec![(3u64, vec![0u8; PAGE_SIZE])];
        assert!(check_pages_private(&sept, &unknown).is_err());
    }

    #[test]
    fn module_state_roundtrips() {
        let mut module = crate::TdxModule::new([4u8; 32]);
        module.attest.extend_mrtd(b"fw");
        module.attest.seal_mrtd();
        module.attest.extend_rtmr(1, b"runtime").expect("rtmr");
        module.sept.accept_private(erebor_hw::Frame(0));
        module.sept.accept_private(erebor_hw::Frame(7));
        module
            .sept
            .convert(erebor_hw::Frame(7), crate::sept::GpaState::Shared)
            .expect("convert");
        module.host.record_vmcall(b"observed payload");
        module.stats.tdcalls = 11;
        module.stats.vmcalls = 3;
        let blob = module.export_state();
        let imported = crate::TdxModule::import_state([4u8; 32], &blob).expect("import");
        assert_eq!(imported.export_state(), blob, "re-export must be a fixed point");
        assert_eq!(imported.attest.mrtd(), module.attest.mrtd());
        assert_eq!(
            imported.attest.tdreport([0; 64]),
            module.attest.tdreport([0; 64]),
            "same seed + same measurements → identical reports"
        );
        assert_eq!(imported.sept.accepted_count(), 2);
        assert!(imported.sept.is_shared(erebor_hw::Frame(7)));
        assert!(imported.host.observed_contains(b"observed payload"));
        assert_eq!(imported.stats.tdcalls, 11);
        // Hostile truncation never panics or half-imports.
        for cut in 0..blob.len() {
            assert!(crate::TdxModule::import_state([4u8; 32], &blob[..cut]).is_err());
        }
    }
}
