//! The `tdcall` instruction and the TDX-module leaf dispatch.
//!
//! `tdcall` is a sensitive instruction (Table 2): the ring/domain guard from
//! `erebor-hw` runs first, so after Erebor's boot only the monitor can reach
//! any leaf — which is exactly how the monitor monopolises memory
//! conversion, synchronous exits and attestation (§5.2, §6.3).

use crate::attest::{Attestation, Quote, TdReport};
use crate::host::HostVmm;
use crate::sept::{GpaState, Sept, SeptError};
use erebor_hw::cpu::Machine;
use erebor_hw::fault::{Fault, VeReason};
use erebor_hw::idt::vector;
use erebor_hw::regs::GprContext;
use erebor_hw::{Frame, VirtAddr};
use erebor_trace::{Bucket, TraceEvent};
use erebor_wire::{WireError, WireReader, WireWriter};

/// Operations the guest may request from the host through GHCI `vmcall`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmcallOp {
    /// Emulate `cpuid`.
    Cpuid {
        /// Requested leaf.
        leaf: u32,
    },
    /// Expose arbitrary data to the host (models MMIO/PIO/MSR exit
    /// payloads — and the covert channel AV2/AV3 abuse this).
    Data(Vec<u8>),
    /// `hlt` until the next interrupt.
    Halt,
}

/// `tdcall` leaves the simulator implements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TdcallLeaf {
    /// Convert a guest frame between private and shared (`MapGPA`).
    MapGpa {
        /// Frame to convert.
        frame: Frame,
        /// `true` → shared, `false` → private.
        shared: bool,
    },
    /// Synchronous exit to the host (GHCI `tdg.vp.vmcall`).
    VmCall(VmcallOp),
    /// Generate a TDREPORT over 64 bytes of caller data.
    TdReport {
        /// Data bound into the report (e.g. a key-exchange hash).
        report_data: Box<[u8; 64]>,
    },
    /// Turn a report into a CPU-signed quote.
    GetQuote(Box<TdReport>),
    /// Extend a runtime measurement register.
    RtmrExtend {
        /// RTMR index (0..4).
        index: usize,
        /// Data to extend with.
        data: Vec<u8>,
    },
}

impl TdcallLeaf {
    /// Stable snake_case leaf identifier (recorded in the trace buffer).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TdcallLeaf::MapGpa { .. } => "map_gpa",
            TdcallLeaf::VmCall(_) => "vmcall",
            TdcallLeaf::TdReport { .. } => "tdreport",
            TdcallLeaf::GetQuote(_) => "get_quote",
            TdcallLeaf::RtmrExtend { .. } => "rtmr_extend",
        }
    }
}

/// Leaf-level completion failure, mirroring the RAX status-code classes
/// of the real TDX-module ABI. These are *completions*, not faults: the
/// instruction retired, the module just declined the request — callers
/// must check and handle them rather than assume success.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TdcallError {
    /// `TDX_OPERAND_INVALID`-class: a leaf argument was rejected.
    InvalidOperand,
    /// The module does not implement the requested leaf.
    LeafNotSupported,
    /// `TDX_OPERAND_BUSY`-class: host/module contention, retryable.
    Busy,
}

/// Raw status-code classes (high word of RAX in the real ABI).
pub mod status {
    /// `TDX_OPERAND_INVALID` class code.
    pub const OPERAND_INVALID: u64 = 0xC000_0100_0000_0000;
    /// `TDX_OPERAND_BUSY` class code.
    pub const OPERAND_BUSY: u64 = 0x8000_0200_0000_0000;
    /// Unsupported-leaf class code.
    pub const LEAF_NOT_SUPPORTED: u64 = 0xC000_0000_0000_0000;
}

impl TdcallError {
    /// Decode a raw completion status into an error class.
    #[must_use]
    pub fn from_status(raw: u64) -> TdcallError {
        match raw {
            status::OPERAND_INVALID => TdcallError::InvalidOperand,
            status::OPERAND_BUSY => TdcallError::Busy,
            _ => TdcallError::LeafNotSupported,
        }
    }

    /// Whether retrying the same leaf can succeed.
    #[must_use]
    pub fn retryable(self) -> bool {
        self == TdcallError::Busy
    }
}

/// Result of a retired `tdcall`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TdcallResult {
    /// Leaf completed with no payload.
    Ok,
    /// `cpuid` emulation result.
    Cpuid([u32; 4]),
    /// A generated report.
    Report(Box<TdReport>),
    /// A signed quote.
    Quote(Box<Quote>),
    /// The instruction retired but the module declined the leaf.
    Failed(TdcallError),
}

impl TdcallResult {
    /// The completion error, if the leaf failed.
    #[must_use]
    pub fn error(&self) -> Option<TdcallError> {
        match self {
            TdcallResult::Failed(e) => Some(*e),
            _ => None,
        }
    }

    /// The report payload, if any.
    #[must_use]
    pub fn into_report(self) -> Option<Box<TdReport>> {
        match self {
            TdcallResult::Report(r) => Some(r),
            _ => None,
        }
    }

    /// The quote payload, if any.
    #[must_use]
    pub fn into_quote(self) -> Option<Box<Quote>> {
        match self {
            TdcallResult::Quote(q) => Some(q),
            _ => None,
        }
    }

    /// The `cpuid` payload, if any.
    #[must_use]
    pub fn cpuid(&self) -> Option<[u32; 4]> {
        match self {
            TdcallResult::Cpuid(v) => Some(*v),
            _ => None,
        }
    }
}

/// Per-CVM counters the evaluation harness reads (Table 6 columns).
#[derive(Debug, Default, Clone, Copy)]
pub struct TdxStats {
    /// `tdcall` round trips.
    pub tdcalls: u64,
    /// `MapGPA` conversions.
    pub mapgpa: u64,
    /// Synchronous exits (`vmcall`).
    pub vmcalls: u64,
    /// Injected `#VE` exceptions.
    pub ve_injected: u64,
    /// Generated reports.
    pub tdreports: u64,
}

impl TdxStats {
    /// Serialise the counters for migration. These are *architectural*
    /// for a TD: the real module's TD-scope metadata fields travel with
    /// the TD, and the audit trail must not reset across a move.
    #[must_use]
    pub fn export_state(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        for v in [
            self.tdcalls,
            self.mapgpa,
            self.vmcalls,
            self.ve_injected,
            self.tdreports,
        ] {
            w.u64(v);
        }
        w.finish()
    }

    /// Rebuild counters from [`TdxStats::export_state`] bytes.
    ///
    /// # Errors
    /// [`WireError`] on truncation or trailing bytes.
    pub fn import_state(bytes: &[u8]) -> Result<TdxStats, WireError> {
        let mut r = WireReader::new(bytes);
        let s = TdxStats {
            tdcalls: r.u64()?,
            mapgpa: r.u64()?,
            vmcalls: r.u64()?,
            ve_injected: r.u64()?,
            tdreports: r.u64()?,
        };
        r.finish()?;
        Ok(s)
    }

    /// Fieldwise saturating difference `self - earlier`, for interval
    /// measurements between two snapshots.
    #[must_use]
    pub fn delta(&self, earlier: &TdxStats) -> TdxStats {
        TdxStats {
            tdcalls: self.tdcalls.saturating_sub(earlier.tdcalls),
            mapgpa: self.mapgpa.saturating_sub(earlier.mapgpa),
            vmcalls: self.vmcalls.saturating_sub(earlier.vmcalls),
            ve_injected: self.ve_injected.saturating_sub(earlier.ve_injected),
            tdreports: self.tdreports.saturating_sub(earlier.tdreports),
        }
    }
}

/// The TDX module: sEPT, attestation state, the untrusted host, and
/// counters.
pub struct TdxModule {
    /// The secure EPT.
    pub sept: Sept,
    /// Measurement and quoting state.
    pub attest: Attestation,
    /// The untrusted hypervisor.
    pub host: HostVmm,
    /// Event counters.
    pub stats: TdxStats,
}

impl TdxModule {
    /// Create a module with a deterministic hardware root seed.
    #[must_use]
    pub fn new(root_seed: [u8; 32]) -> TdxModule {
        TdxModule {
            sept: Sept::new(),
            attest: Attestation::new(root_seed),
            host: HostVmm::new(),
            stats: TdxStats::default(),
        }
    }

    /// Serialise the whole module — sEPT, measurements, host log,
    /// counters — for migration.
    #[must_use]
    pub fn export_state(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.bytes(&self.sept.export_state());
        w.bytes(&self.attest.export_state());
        w.bytes(&self.host.export_state());
        w.bytes(&self.stats.export_state());
        w.finish()
    }

    /// Rebuild a module from [`TdxModule::export_state`] bytes and the
    /// destination machine's hardware root seed.
    ///
    /// # Errors
    /// [`WireError`] if any nested section is malformed.
    pub fn import_state(root_seed: [u8; 32], bytes: &[u8]) -> Result<TdxModule, WireError> {
        let mut r = WireReader::new(bytes);
        let sept = Sept::import_state(r.bytes()?)?;
        let attest = Attestation::import_state(root_seed, r.bytes()?)?;
        let host = HostVmm::import_state(r.bytes()?)?;
        let stats = TdxStats::import_state(r.bytes()?)?;
        r.finish()?;
        Ok(TdxModule {
            sept,
            attest,
            host,
            stats,
        })
    }

    /// Inject a `#VE` into the guest for a synchronous exit cause: the TDX
    /// module traps the event and re-enters the guest at its `#VE` handler
    /// (Fig. 1 steps ①–②). Returns `(handler, saved context)`.
    ///
    /// # Errors
    /// Propagates IDT delivery failures.
    pub fn inject_ve(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        _reason: VeReason,
    ) -> Result<(VirtAddr, GprContext), Fault> {
        self.stats.ve_injected = self.stats.ve_injected.saturating_add(1);
        machine.deliver_interrupt(cpu, vector::VE)
    }

    /// TDX-module handling of an *asynchronous* exit: the guest context is
    /// saved and scrubbed before the host runs, so the host observes only
    /// zeros (§2.1). Returns the host-visible context.
    pub fn async_exit_context_protect(&mut self, machine: &mut Machine, cpu: usize) -> GprContext {
        machine.cycles.charge(machine.costs.tdx_context_protect);
        let mut host_view = machine.cpus[cpu].ctx;
        host_view.scrub();
        host_view.rip = 0;
        host_view
    }
}

impl core::fmt::Debug for TdxModule {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TdxModule")
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// Execute a `tdcall` on core `cpu`.
///
/// # Errors
/// * `#GP` from user mode (the paper relies on this: a userspace `tdcall`
///   traps, §2.1);
/// * `#UD` from a domain whose verified image lacks the instruction (the
///   deprivileged kernel after Erebor's boot scan);
/// * `#VE` wrapping leaf-level errors (e.g. bad `MapGPA`).
pub fn tdcall(
    module: &mut TdxModule,
    machine: &mut Machine,
    cpu: usize,
    leaf: TdcallLeaf,
) -> Result<TdcallResult, Fault> {
    machine.tdcall_guard(cpu)?;
    let prev_bucket = machine.cycles.set_bucket(Bucket::Tdcall);
    machine.trace_event(cpu, TraceEvent::TdcallLeave { leaf: leaf.name() });
    let r = tdcall_body(module, machine, cpu, leaf);
    let ok = matches!(&r, Ok(result) if result.error().is_none());
    machine.trace_event(cpu, TraceEvent::TdcallDone { ok });
    machine.cycles.set_bucket(prev_bucket);
    r
}

fn tdcall_body(
    module: &mut TdxModule,
    machine: &mut Machine,
    cpu: usize,
    leaf: TdcallLeaf,
) -> Result<TdcallResult, Fault> {
    module.stats.tdcalls = module.stats.tdcalls.saturating_add(1);
    let c = &machine.costs;
    machine
        .cycles
        .charge(2 * (c.vm_transition + c.tdx_context_protect + c.tdx_dispatch));
    if let Some(raw) = machine.chaos_tdcall_status(cpu) {
        // Injected module-level refusal: the instruction retires with an
        // error completion status instead of dispatching the leaf.
        return Ok(TdcallResult::Failed(TdcallError::from_status(raw)));
    }

    match leaf {
        TdcallLeaf::MapGpa { frame, shared } => {
            module.stats.mapgpa = module.stats.mapgpa.saturating_add(1);
            let to = if shared {
                GpaState::Shared
            } else {
                GpaState::Private
            };
            match module.sept.convert(frame, to) {
                Ok(()) => {
                    if machine.chaos_host_sept_flip() {
                        // The untrusted host contends with the conversion
                        // mid-flight (a concurrent sEPT operation): the
                        // module reverts it and completes with BUSY, as
                        // the real module does under `TDX_OPERAND_BUSY`.
                        let back = if shared {
                            GpaState::Private
                        } else {
                            GpaState::Shared
                        };
                        let _ = module.sept.convert(frame, back);
                        return Ok(TdcallResult::Failed(TdcallError::Busy));
                    }
                    // Conversion scrubs contents in both directions: private
                    // data never leaks through a conversion, and host data
                    // never pre-seeds private memory.
                    machine
                        .mem
                        .zero_frame(frame)
                        .map_err(|_| Fault::Unrecoverable("MapGPA left DRAM"))?;
                    Ok(TdcallResult::Ok)
                }
                Err(SeptError::AlreadyInState(..)) => Ok(TdcallResult::Ok),
                Err(SeptError::NotAccepted(_)) => {
                    Err(Fault::VirtualizationException(VeReason::EptViolation))
                }
            }
        }
        TdcallLeaf::VmCall(op) => {
            module.stats.vmcalls = module.stats.vmcalls.saturating_add(1);
            machine.cycles.charge(machine.costs.vmm_dispatch / 2);
            match op {
                VmcallOp::Cpuid { leaf } => {
                    Ok(TdcallResult::Cpuid(module.host.emulate_cpuid(leaf)))
                }
                VmcallOp::Data(payload) => {
                    module.host.record_vmcall(&payload);
                    Ok(TdcallResult::Ok)
                }
                VmcallOp::Halt => {
                    module.host.record_vmcall(b"hlt");
                    Ok(TdcallResult::Ok)
                }
            }
        }
        TdcallLeaf::TdReport { report_data } => {
            module.stats.tdreports = module.stats.tdreports.saturating_add(1);
            machine.cycles.charge(machine.costs.tdreport_generate);
            Ok(TdcallResult::Report(Box::new(
                module.attest.tdreport(*report_data),
            )))
        }
        TdcallLeaf::GetQuote(report) => {
            if !module.attest.report_mac_valid(&report) {
                return Err(Fault::GeneralProtection("GetQuote: report MAC invalid"));
            }
            // Quote generation flows through the host quoting service.
            machine.cycles.charge(machine.costs.vmm_dispatch);
            Ok(TdcallResult::Quote(Box::new(module.attest.quote(*report))))
        }
        TdcallLeaf::RtmrExtend { index, data } => {
            module
                .attest
                .extend_rtmr(index, &data)
                .map_err(|_| Fault::GeneralProtection("RTMR index out of range"))?;
            Ok(TdcallResult::Ok)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erebor_hw::cpu::{CpuMode, Domain};

    fn setup() -> (TdxModule, Machine) {
        let mut machine = Machine::new(1, 16 * 1024 * 1024);
        machine.allow_sensitive(Domain::Monitor);
        machine.cpus[0].domain = Domain::Monitor;
        let mut module = TdxModule::new([9u8; 32]);
        for f in 0..machine.mem.total_frames() {
            module.sept.accept_private(Frame(f));
        }
        (module, machine)
    }

    #[test]
    fn tdcall_denied_from_user_mode() {
        let (mut module, mut machine) = setup();
        machine.cpus[0].mode = CpuMode::User;
        let err = tdcall(
            &mut module,
            &mut machine,
            0,
            TdcallLeaf::VmCall(VmcallOp::Halt),
        )
        .unwrap_err();
        assert!(matches!(err, Fault::GeneralProtection(_)));
    }

    #[test]
    fn tdcall_denied_from_deprivileged_kernel() {
        let (mut module, mut machine) = setup();
        machine.cpus[0].domain = Domain::Kernel; // not sensitive-capable
        let err = tdcall(
            &mut module,
            &mut machine,
            0,
            TdcallLeaf::VmCall(VmcallOp::Data(b"leak".to_vec())),
        )
        .unwrap_err();
        assert!(matches!(err, Fault::UndefinedInstruction(_)));
        assert!(!module.host.observed_contains(b"leak"));
    }

    #[test]
    fn mapgpa_scrubs_contents() {
        let (mut module, mut machine) = setup();
        let f = machine.mem.alloc_frame().unwrap();
        machine.mem.write(f.base(), b"private secret").unwrap();
        tdcall(
            &mut module,
            &mut machine,
            0,
            TdcallLeaf::MapGpa {
                frame: f,
                shared: true,
            },
        )
        .unwrap();
        let seen = module
            .host
            .read_guest(&machine.mem, &module.sept, f)
            .unwrap();
        assert!(seen.iter().all(|&b| b == 0), "conversion must scrub");
    }

    #[test]
    fn vmcall_exposes_data_to_host() {
        let (mut module, mut machine) = setup();
        tdcall(
            &mut module,
            &mut machine,
            0,
            TdcallLeaf::VmCall(VmcallOp::Data(b"intentional".to_vec())),
        )
        .unwrap();
        assert!(module.host.observed_contains(b"intentional"));
        assert_eq!(module.stats.vmcalls, 1);
    }

    #[test]
    fn tdreport_and_quote_flow() {
        let (mut module, mut machine) = setup();
        module.attest.extend_mrtd(b"fw");
        module.attest.seal_mrtd();
        let rd = Box::new([7u8; 64]);
        let report = tdcall(
            &mut module,
            &mut machine,
            0,
            TdcallLeaf::TdReport { report_data: rd },
        )
        .unwrap()
        .into_report();
        assert!(report.is_some(), "TdReport leaf must yield a report");
        let report = report.unwrap();
        let quote = tdcall(&mut module, &mut machine, 0, TdcallLeaf::GetQuote(report))
            .unwrap()
            .into_quote();
        assert!(quote.is_some(), "GetQuote leaf must yield a quote");
        let quote = quote.unwrap();
        crate::attest::verify_quote(
            &module.attest.root_public(),
            &quote,
            &crate::attest::expected_mrtd(&[b"fw"]),
        )
        .unwrap();
    }

    #[test]
    fn forged_report_cannot_be_quoted() {
        let (mut module, mut machine) = setup();
        let mut report = module.attest.tdreport([0; 64]);
        report.mrtd[0] ^= 1; // attacker edits the measurement
        let err = tdcall(
            &mut module,
            &mut machine,
            0,
            TdcallLeaf::GetQuote(Box::new(report)),
        )
        .unwrap_err();
        assert!(matches!(err, Fault::GeneralProtection(_)));
    }

    #[test]
    fn tdcall_charges_paper_scale_cycles() {
        let (mut module, mut machine) = setup();
        let before = machine.cycles.total();
        tdcall(
            &mut module,
            &mut machine,
            0,
            TdcallLeaf::VmCall(VmcallOp::Halt),
        )
        .unwrap();
        let cost = machine.cycles.total() - before;
        // Paper Table 3: tdcall ≈ 5276 cycles.
        assert!((4000..=7000).contains(&cost), "tdcall cost {cost}");
    }

    /// Injector failing every tdcall with a fixed raw status.
    struct StatusInjector(u64);
    impl erebor_hw::inject::Injector for StatusInjector {
        fn tdcall_status(&mut self, _cpu: usize) -> Option<u64> {
            Some(self.0)
        }
    }

    #[test]
    fn injected_status_fails_leaf_without_fault_or_panic() {
        let (mut module, mut machine) = setup();
        machine.set_injector(erebor_hw::inject::handle(StatusInjector(
            status::OPERAND_BUSY,
        )));
        let res = tdcall(
            &mut module,
            &mut machine,
            0,
            TdcallLeaf::VmCall(VmcallOp::Halt),
        )
        .unwrap();
        assert_eq!(res.error(), Some(TdcallError::Busy));
        assert!(res.error().unwrap().retryable());
        // The leaf never dispatched: no vmcall reached the host.
        assert_eq!(module.stats.vmcalls, 0);
        // Accessors degrade gracefully instead of panicking.
        assert!(res.cpuid().is_none());
        assert!(res.into_report().is_none());
        machine.clear_injector();
        let res = tdcall(
            &mut module,
            &mut machine,
            0,
            TdcallLeaf::VmCall(VmcallOp::Halt),
        )
        .unwrap();
        assert!(res.error().is_none());
    }

    #[test]
    fn status_codes_decode_to_error_classes() {
        assert_eq!(
            TdcallError::from_status(status::OPERAND_INVALID),
            TdcallError::InvalidOperand
        );
        assert_eq!(
            TdcallError::from_status(status::OPERAND_BUSY),
            TdcallError::Busy
        );
        assert_eq!(
            TdcallError::from_status(status::LEAF_NOT_SUPPORTED),
            TdcallError::LeafNotSupported
        );
        assert_eq!(
            TdcallError::from_status(0xdead_beef),
            TdcallError::LeafNotSupported,
            "unknown codes decode conservatively"
        );
        assert!(!TdcallError::InvalidOperand.retryable());
    }

    /// Injector contending with exactly one MapGPA conversion.
    struct SeptFlipper {
        armed: bool,
    }
    impl erebor_hw::inject::Injector for SeptFlipper {
        fn host_sept_flip(&mut self) -> bool {
            std::mem::take(&mut self.armed)
        }
    }

    #[test]
    fn host_contention_reverts_mapgpa_and_reports_busy() {
        let (mut module, mut machine) = setup();
        let f = machine.mem.alloc_frame().unwrap();
        machine.mem.write(f.base(), b"private secret").unwrap();
        machine.set_injector(erebor_hw::inject::handle(SeptFlipper { armed: true }));
        let res = tdcall(
            &mut module,
            &mut machine,
            0,
            TdcallLeaf::MapGpa {
                frame: f,
                shared: true,
            },
        )
        .unwrap();
        assert_eq!(res.error(), Some(TdcallError::Busy));
        // The conversion did not stick and nothing was scrubbed or leaked:
        // the frame is still private, contents intact, host cannot read it.
        assert!(!module.sept.is_shared(f));
        let mut buf = vec![0u8; 14];
        machine.mem.read(f.base(), &mut buf).unwrap();
        assert_eq!(&buf, b"private secret");
        assert!(module.host.read_guest(&machine.mem, &module.sept, f).is_err());
        // Retry (injector disarmed) completes and scrubs as usual.
        let res = tdcall(
            &mut module,
            &mut machine,
            0,
            TdcallLeaf::MapGpa {
                frame: f,
                shared: true,
            },
        )
        .unwrap();
        assert!(res.error().is_none());
        assert!(module.sept.is_shared(f));
    }

    #[test]
    fn ve_injection_counts() {
        let (mut module, mut machine) = setup();
        // No IDT loaded → delivery fails, but the counter still reflects
        // the injection attempt.
        let _ = module.inject_ve(&mut machine, 0, VeReason::Cpuid);
        assert_eq!(module.stats.ve_injected, 1);
    }

    #[test]
    fn async_exit_scrubs_host_visible_context() {
        let (mut module, mut machine) = setup();
        machine.cpus[0].ctx.gpr = [0x4242; 16];
        let host_view = module.async_exit_context_protect(&mut machine, 0);
        assert!(host_view.is_scrubbed());
        // The guest's real context is untouched.
        assert_eq!(machine.cpus[0].ctx.gpr[0], 0x4242);
    }
}
