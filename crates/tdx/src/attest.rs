//! Measurement registers, TDREPORT and quotes (§2.1 "remote attestation").
//!
//! The simulated hardware holds an Ed25519 provisioning key whose public
//! half plays the role of Intel's root of trust: clients are provisioned
//! with it out of band and verify quotes against it. `MRTD` measures the
//! boot-time images (firmware + monitor, §5.1 stage one); the four RTMRs
//! are runtime-extendable.

use erebor_crypto::hmac::hmac_sha256;
use erebor_crypto::sha256::Sha256;
use erebor_crypto::{SigningKey, VerifyingKey};
use erebor_wire::{WireError, WireReader, WireWriter};

/// The TDREPORT structure: measurements plus caller-supplied report data,
/// integrity-bound with the module's HMAC key (the expensive part of
/// `tdcall.tdreport`, per the paper's Table 4 note).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TdReport {
    /// Boot measurement (firmware + monitor images).
    pub mrtd: [u8; 32],
    /// Runtime measurement registers.
    pub rtmr: [[u8; 32]; 4],
    /// 64 bytes of caller data (e.g. the key-exchange binding hash).
    pub report_data: [u8; 64],
    /// Module-keyed integrity MAC.
    pub mac: [u8; 32],
}

impl TdReport {
    fn body(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(32 * 5 + 64);
        b.extend_from_slice(&self.mrtd);
        for r in &self.rtmr {
            b.extend_from_slice(r);
        }
        b.extend_from_slice(&self.report_data);
        b
    }
}

/// A CPU-signed quote over a TDREPORT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// The embedded report.
    pub report: TdReport,
    /// Ed25519 signature by the hardware provisioning key.
    pub signature: [u8; 64],
}

/// RTMR index out of range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtmrIndexOutOfRange;

impl core::fmt::Display for RtmrIndexOutOfRange {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "RTMR index out of range (0..4)")
    }
}

impl std::error::Error for RtmrIndexOutOfRange {}

/// Quote verification failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuoteError {
    /// The signature does not verify under the expected root key.
    BadSignature,
    /// MRTD does not match the expected boot measurement.
    MeasurementMismatch,
}

impl core::fmt::Display for QuoteError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            QuoteError::BadSignature => write!(f, "quote signature invalid"),
            QuoteError::MeasurementMismatch => write!(f, "quote MRTD mismatch"),
        }
    }
}

impl std::error::Error for QuoteError {}

/// Measurement and quoting state held by the TDX module.
pub struct Attestation {
    mrtd: [u8; 32],
    mrtd_sealed: bool,
    rtmr: [[u8; 32]; 4],
    root_key: SigningKey,
    mac_key: [u8; 32],
}

impl Attestation {
    /// Create with a deterministic per-machine root seed.
    #[must_use]
    pub fn new(root_seed: [u8; 32]) -> Attestation {
        Attestation {
            mrtd: [0; 32],
            mrtd_sealed: false,
            rtmr: [[0; 32]; 4],
            root_key: SigningKey::from_seed(root_seed),
            mac_key: erebor_crypto::sha256(&root_seed),
        }
    }

    /// The public root key clients are provisioned with.
    #[must_use]
    pub fn root_public(&self) -> VerifyingKey {
        self.root_key.verifying_key()
    }

    /// Extend MRTD with a boot-time image (stage-one measurement, §5.1).
    ///
    /// # Panics
    /// Panics if called after [`Attestation::seal_mrtd`] — boot measurement
    /// is immutable once the TD starts executing.
    pub fn extend_mrtd(&mut self, image_bytes: &[u8]) {
        assert!(!self.mrtd_sealed, "MRTD is sealed after boot");
        let mut h = Sha256::new();
        h.update(&self.mrtd);
        h.update(&erebor_crypto::sha256(image_bytes));
        self.mrtd = h.finalize();
    }

    /// Seal MRTD at first TD entry.
    pub fn seal_mrtd(&mut self) {
        self.mrtd_sealed = true;
    }

    /// Current MRTD value.
    #[must_use]
    pub fn mrtd(&self) -> [u8; 32] {
        self.mrtd
    }

    /// Extend an RTMR (runtime measurement).
    ///
    /// # Errors
    /// [`RtmrIndexOutOfRange`] for indices ≥ 4.
    pub fn extend_rtmr(&mut self, index: usize, data: &[u8]) -> Result<(), RtmrIndexOutOfRange> {
        let slot = self.rtmr.get_mut(index).ok_or(RtmrIndexOutOfRange)?;
        let mut h = Sha256::new();
        h.update(&*slot);
        h.update(&erebor_crypto::sha256(data));
        *slot = h.finalize();
        Ok(())
    }

    /// Generate a TDREPORT binding `report_data`.
    #[must_use]
    pub fn tdreport(&self, report_data: [u8; 64]) -> TdReport {
        let mut r = TdReport {
            mrtd: self.mrtd,
            rtmr: self.rtmr,
            report_data,
            mac: [0; 32],
        };
        r.mac = hmac_sha256(&self.mac_key, &r.body());
        r
    }

    /// Check a report's integrity MAC (module-local check).
    #[must_use]
    pub fn report_mac_valid(&self, report: &TdReport) -> bool {
        erebor_crypto::ct::eq(&hmac_sha256(&self.mac_key, &report.body()), &report.mac)
    }

    /// Serialise the measurement state for migration: MRTD, the sealed
    /// flag, and the four RTMRs. Key material is *not* exported — the
    /// destination reconstructs it from the hardware root seed, exactly
    /// as [`Attestation::new`] does.
    #[must_use]
    pub fn export_state(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.raw(&self.mrtd);
        w.bool(self.mrtd_sealed);
        for r in &self.rtmr {
            w.raw(r);
        }
        w.finish()
    }

    /// Rebuild measurement state from [`Attestation::export_state`] bytes
    /// plus the destination's root seed.
    ///
    /// # Errors
    /// [`WireError`] on truncation or trailing bytes.
    pub fn import_state(root_seed: [u8; 32], bytes: &[u8]) -> Result<Attestation, WireError> {
        let mut r = WireReader::new(bytes);
        let mrtd: [u8; 32] = r.array()?;
        let mrtd_sealed = r.bool()?;
        let mut rtmr = [[0u8; 32]; 4];
        for slot in &mut rtmr {
            *slot = r.array()?;
        }
        r.finish()?;
        let mut att = Attestation::new(root_seed);
        att.mrtd = mrtd;
        att.mrtd_sealed = mrtd_sealed;
        att.rtmr = rtmr;
        Ok(att)
    }

    /// Sign a report into a quote (the quoting path; in real TDX this
    /// involves the quoting enclave — collapsed here into the module).
    #[must_use]
    pub fn quote(&self, report: TdReport) -> Quote {
        let mut msg = b"TDX-QUOTE-v1".to_vec();
        msg.extend_from_slice(&report.body());
        let signature = self.root_key.sign(&msg);
        Quote { report, signature }
    }
}

impl core::fmt::Debug for Attestation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Attestation")
            .field("mrtd", &self.mrtd)
            .field("sealed", &self.mrtd_sealed)
            .finish_non_exhaustive()
    }
}

/// What a verifier expects the quote to attest.
///
/// In a plain TDX deployment the firmware+monitor measurement is in MRTD
/// (§5.1). In a paravisor-enhanced CVM (§10), MRTD reflects the
/// paravisor; Erebor's measurement moves to a runtime measurement
/// register, so verifiers check MRTD = paravisor *and* RTMR\[0\] = monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expected {
    /// Plain deployment: MRTD covers firmware + monitor.
    Mrtd([u8; 32]),
    /// Paravisor deployment: MRTD covers the paravisor, RTMR\[0\] covers
    /// firmware + monitor.
    ParavisorRtmr {
        /// Expected paravisor measurement (MRTD).
        mrtd: [u8; 32],
        /// Expected firmware+monitor measurement (RTMR\[0\]).
        rtmr0: [u8; 32],
    },
}

/// Client-side quote verification: signature under the provisioned root
/// key, then the expected boot measurement(s).
///
/// # Errors
/// [`QuoteError`] naming the failed check.
pub fn verify_quote_expected(
    root: &VerifyingKey,
    quote: &Quote,
    expected: &Expected,
) -> Result<(), QuoteError> {
    let mut msg = b"TDX-QUOTE-v1".to_vec();
    msg.extend_from_slice(&quote.report.body());
    root.verify(&msg, &quote.signature)
        .map_err(|_| QuoteError::BadSignature)?;
    let ok = match expected {
        Expected::Mrtd(m) => erebor_crypto::ct::eq(&quote.report.mrtd, m),
        Expected::ParavisorRtmr { mrtd, rtmr0 } => {
            erebor_crypto::ct::eq(&quote.report.mrtd, mrtd)
                && erebor_crypto::ct::eq(&quote.report.rtmr[0], rtmr0)
        }
    };
    if !ok {
        return Err(QuoteError::MeasurementMismatch);
    }
    Ok(())
}

/// Convenience for the plain deployment (MRTD check only).
///
/// # Errors
/// [`QuoteError`] naming the failed check.
pub fn verify_quote(
    root: &VerifyingKey,
    quote: &Quote,
    expected_mrtd: &[u8; 32],
) -> Result<(), QuoteError> {
    verify_quote_expected(root, quote, &Expected::Mrtd(*expected_mrtd))
}

/// Compute the MRTD a verifier *expects* for a given boot image sequence
/// (what the paper's client derives from the open-source firmware and
/// monitor, §5.1).
#[must_use]
pub fn expected_mrtd(images: &[&[u8]]) -> [u8; 32] {
    let mut mrtd = [0u8; 32];
    for img in images {
        let mut h = Sha256::new();
        h.update(&mrtd);
        h.update(&erebor_crypto::sha256(img));
        mrtd = h.finalize();
    }
    mrtd
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_roundtrip() {
        let mut att = Attestation::new([5u8; 32]);
        att.extend_mrtd(b"firmware image");
        att.extend_mrtd(b"monitor image");
        att.seal_mrtd();
        let mut rd = [0u8; 64];
        rd[..4].copy_from_slice(b"bind");
        let quote = att.quote(att.tdreport(rd));
        let expect = expected_mrtd(&[b"firmware image", b"monitor image"]);
        verify_quote(&att.root_public(), &quote, &expect).unwrap();
        assert_eq!(quote.report.report_data[..4], *b"bind");
    }

    #[test]
    fn wrong_measurement_rejected() {
        let mut att = Attestation::new([5u8; 32]);
        att.extend_mrtd(b"firmware image");
        att.extend_mrtd(b"EVIL monitor");
        att.seal_mrtd();
        let quote = att.quote(att.tdreport([0; 64]));
        let expect = expected_mrtd(&[b"firmware image", b"monitor image"]);
        assert_eq!(
            verify_quote(&att.root_public(), &quote, &expect),
            Err(QuoteError::MeasurementMismatch)
        );
    }

    #[test]
    fn forged_signature_rejected() {
        let mut att = Attestation::new([5u8; 32]);
        att.extend_mrtd(b"fw");
        att.seal_mrtd();
        let mut quote = att.quote(att.tdreport([0; 64]));
        quote.report.report_data[0] ^= 1; // tamper after signing
        assert_eq!(
            verify_quote(&att.root_public(), &quote, &expected_mrtd(&[b"fw"])),
            Err(QuoteError::BadSignature)
        );
    }

    #[test]
    fn impersonation_with_other_key_rejected() {
        let mut real = Attestation::new([5u8; 32]);
        real.extend_mrtd(b"fw");
        real.seal_mrtd();
        // Attacker with a different root key (e.g. a non-TDX machine).
        let mut fake = Attestation::new([6u8; 32]);
        fake.extend_mrtd(b"fw");
        fake.seal_mrtd();
        let quote = fake.quote(fake.tdreport([0; 64]));
        assert_eq!(
            verify_quote(&real.root_public(), &quote, &expected_mrtd(&[b"fw"])),
            Err(QuoteError::BadSignature)
        );
    }

    #[test]
    fn report_mac_detects_tamper() {
        let att = Attestation::new([7u8; 32]);
        let mut r = att.tdreport([1; 64]);
        assert!(att.report_mac_valid(&r));
        r.rtmr[0][0] ^= 1;
        assert!(!att.report_mac_valid(&r));
    }

    #[test]
    fn rtmr_extension_order_matters() {
        let mut a = Attestation::new([1u8; 32]);
        let mut b = Attestation::new([1u8; 32]);
        a.extend_rtmr(0, b"x").unwrap();
        a.extend_rtmr(0, b"y").unwrap();
        b.extend_rtmr(0, b"y").unwrap();
        b.extend_rtmr(0, b"x").unwrap();
        assert_ne!(a.tdreport([0; 64]).rtmr[0], b.tdreport([0; 64]).rtmr[0]);
        assert!(a.extend_rtmr(4, b"z").is_err());
    }

    #[test]
    #[should_panic(expected = "MRTD is sealed")]
    fn mrtd_immutable_after_seal() {
        let mut att = Attestation::new([1u8; 32]);
        att.seal_mrtd();
        att.extend_mrtd(b"late image");
    }
}
