//! Regression guards: the regenerated tables/figures must keep the paper's
//! shape (ratios, orderings, bands). These are the quantitative claims of
//! EXPERIMENTS.md, executable.

#[test]
fn table3_shape() {
    let rows = erebor_bench::table3::run();
    let get = |n: &str| rows.iter().find(|r| r.name == n).expect(n).cycles as f64;
    let emc = get("EMC");
    // Paper: EMC 1224; syscall 0.56×; tdcall 4.31×; vmcall 3.29×.
    assert!((900.0..1700.0).contains(&emc), "EMC = {emc}");
    let syscall_ratio = get("SYSCALL") / emc;
    assert!(
        (0.3..0.8).contains(&syscall_ratio),
        "syscall/EMC = {syscall_ratio:.2}"
    );
    let tdcall_ratio = get("TDCALL") / emc;
    assert!(
        (3.0..6.0).contains(&tdcall_ratio),
        "tdcall/EMC = {tdcall_ratio:.2}"
    );
    let vmcall = get("VMCALL");
    assert!(
        vmcall < get("TDCALL"),
        "non-TD vmcall is cheaper (no context protect)"
    );
    assert!(
        vmcall > emc,
        "vmcall still beats EMC by a wide margin in cost"
    );
}

#[test]
fn table4_shape() {
    let rows = erebor_bench::table4::run();
    let get = |op: &str| rows.iter().find(|r| r.op == op).expect(op);
    // MMU suffers the most (paper 58.5×), GHCI barely (1.01×).
    assert!(
        get("MMU").times() > 30.0,
        "MMU ratio {:.1}",
        get("MMU").times()
    );
    assert!(
        get("GHCI").times() < 1.1,
        "GHCI ratio {:.3}",
        get("GHCI").times()
    );
    for op in ["CR", "IDT", "MSR"] {
        let t = get(op).times();
        assert!(
            (3.0..8.0).contains(&t),
            "{op} ratio {t:.1} (paper 4.4–5.4x)"
        );
    }
    let smap = get("SMAP").times();
    assert!(
        (10.0..40.0).contains(&smap),
        "SMAP ratio {smap:.1} (paper 20.8x)"
    );
    // Native columns match Table 4's absolute scale by construction.
    assert_eq!(get("MMU").native, 23);
    assert!((280..300).contains(&get("CR").native));
}

#[test]
fn fig8_shape() {
    let rows = erebor_bench::fig8::run(128);
    for r in &rows {
        assert!(r.ratio() > 1.0, "{} must cost more under Erebor", r.name);
    }
    let get = |n: &str| rows.iter().find(|r| r.name == n).expect(n).ratio();
    // Fault/fork paths dominate syscall-only paths.
    assert!(get("pagefault") > get("null"), "pagefault > null");
    assert!(
        get("fork") > get("pagefault"),
        "fork is the worst (MMU-heavy)"
    );
    assert!(get("null") < 3.0, "null syscall interposition bounded");
}

#[test]
fn memsave_shape() {
    let r = erebor_bench::memsave::run(8);
    // Paper: ~36 GB → ~8 GB.
    assert!(
        (7.0..9.0).contains(&r.shared_gb),
        "shared {:.1} GB",
        r.shared_gb
    );
    assert!(
        (34.0..38.0).contains(&r.replicated_gb),
        "replicated {:.1} GB",
        r.replicated_gb
    );
    assert!(r.saving() > 0.7, "saving {:.2}", r.saving());
    // Physically, the model pages exist exactly once.
    assert_eq!(r.common_frames, 1024);
    assert!(r.confined_frames >= 8 * 512);
}
