//! Criterion: real-time performance of the simulated privilege machinery
//! (EMC gates, syscall path, interrupt interposition).

use erebor_testkit::bench::Criterion;
use erebor_testkit::{criterion_group, criterion_main};
use erebor::{Mode, Platform};
use erebor_core::emc::EmcRequest;
use erebor_libos::api::Sys;

fn bench_gates(c: &mut Criterion) {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    c.bench_function("emc_nop_roundtrip", |b| {
        b.iter(|| {
            p.cvm
                .monitor
                .emc(&mut p.cvm.machine, &mut p.cvm.tdx, 0, EmcRequest::Nop)
                .expect("emc")
        });
    });

    let mut p = Platform::boot(Mode::Full).expect("boot");
    p.cvm.monitor.cfg.timer_quantum_cycles = u64::MAX / 4;
    let pid = p.spawn_native().expect("spawn");
    c.bench_function("interposed_syscall_getpid", |b| {
        b.iter(|| {
            p.proc(pid)
                .syscall(erebor_kernel::syscall::nr::GETPID, [0; 6])
                .expect("sys")
        });
    });

    let mut p = Platform::boot(Mode::Native).expect("boot");
    p.cvm.monitor.cfg.timer_quantum_cycles = u64::MAX / 4;
    let pid = p.spawn_native().expect("spawn");
    c.bench_function("native_syscall_getpid", |b| {
        b.iter(|| {
            p.proc(pid)
                .syscall(erebor_kernel::syscall::nr::GETPID, [0; 6])
                .expect("sys")
        });
    });
}

fn bench_boot(c: &mut Criterion) {
    let mut group = c.benchmark_group("boot");
    group.sample_size(10);
    group.bench_function("full_boot", |b| {
        b.iter(|| Platform::boot(Mode::Full).expect("boot"));
    });
    group.finish();
}

criterion_group!(benches, bench_gates, bench_boot);
criterion_main!(benches);
