//! Criterion: cost of the static analysis passes, plus the audit-work
//! meta counters the CI smoke stage budgets.
//!
//! The auditor is meant to run after boot and inside every chaos case,
//! so its cost must stay bounded: the `audit_*` meta entries pin the
//! amount of state it walks on a freshly booted Full platform (PTE
//! reads, TLB entries, IDT entries), and CI asserts the total stays
//! under a fixed budget with zero findings.

use erebor::eanalyze::detect_races;
use erebor::{Mode, Platform, TraceEvent, TraceRecord};
use erebor_testkit::bench::Criterion;
use erebor_testkit::{criterion_group, criterion_main};

fn bench_audit(c: &mut Criterion) {
    let p = Platform::boot(Mode::Full).expect("boot");
    let report = p.audit();
    c.meta("audit_findings", report.findings.len() as f64);
    c.meta("audit_roots_walked", report.roots_walked as f64);
    c.meta("audit_leaf_mappings", report.leaf_mappings as f64);
    c.meta("audit_pte_reads", report.pte_reads as f64);
    c.meta("audit_work", report.work() as f64);
    c.bench_function("audit_boot_snapshot", |b| {
        b.iter(|| p.audit());
    });
}

fn bench_race_detector(c: &mut Criterion) {
    // A synthetic 4-core trace mixing revocations, acks, and hits —
    // the same shapes a chaos case produces, at a fixed size.
    let cores = 4;
    let mut records = Vec::new();
    for i in 0u64..4096 {
        let cpu = (i % cores as u64) as u32;
        let event = match i % 5 {
            0 => TraceEvent::TlbShootdown {
                root: 7,
                page: i % 64,
            },
            1 => TraceEvent::IpiSent {
                to: (cpu + 1) % cores as u32,
            },
            2 => TraceEvent::IpiReceived {
                from: (cpu + cores as u32 - 1) % cores as u32,
            },
            3 => TraceEvent::TlbInvlpg { page: i % 64 },
            _ => TraceEvent::TlbHit {
                root: 7,
                page: i % 64,
            },
        };
        records.push(TraceRecord {
            seq: i,
            cycles: i * 10,
            cpu,
            event,
        });
    }
    c.meta("race_trace_records", records.len() as f64);
    c.bench_function("race_detect_4k_records", |b| {
        b.iter(|| detect_races(&records, cores));
    });
}

criterion_group!(benches, bench_audit, bench_race_detector);
criterion_main!(benches);
