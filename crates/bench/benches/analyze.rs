//! Criterion: cost of the static analysis passes, plus the audit-work
//! meta counters the CI smoke stage budgets.
//!
//! The auditor is meant to run after boot and inside every chaos case,
//! so its cost must stay bounded: the `audit_*` meta entries pin the
//! amount of state it walks on a freshly booted Full platform (PTE
//! reads, TLB entries, IDT entries), and CI asserts the total stays
//! under a fixed budget with zero findings.

use erebor::eanalyze::detect_races;
use erebor::eanalyze::privilege::{scan_workspace, WaiverPolicy};
use erebor::{Mode, Platform, TraceEvent, TraceRecord};
use erebor_testkit::bench::Criterion;
use erebor_testkit::{criterion_group, criterion_main};
use std::path::PathBuf;

/// Ceiling on the privilege scan's work metric (lines of workspace
/// source scanned). The workspace sits well under half of this; growth
/// past the ceiling means the scan (which CI runs on every `--analyze`)
/// stopped being cheap and the budget needs a deliberate revisit.
const PRIVILEGE_WORK_BUDGET: u64 = 200_000;

fn bench_audit(c: &mut Criterion) {
    let p = Platform::boot(Mode::Full).expect("boot");
    let report = p.audit();
    c.meta("audit_findings", report.findings.len() as f64);
    c.meta("audit_roots_walked", report.roots_walked as f64);
    c.meta("audit_leaf_mappings", report.leaf_mappings as f64);
    c.meta("audit_pte_reads", report.pte_reads as f64);
    c.meta("audit_work", report.work() as f64);
    c.bench_function("audit_boot_snapshot", |b| {
        b.iter(|| p.audit());
    });
}

fn bench_race_detector(c: &mut Criterion) {
    // A synthetic 4-core trace mixing revocations, acks, and hits —
    // the same shapes a chaos case produces, at a fixed size.
    let cores = 4;
    let mut records = Vec::new();
    for i in 0u64..4096 {
        let cpu = (i % cores as u64) as u32;
        let event = match i % 5 {
            0 => TraceEvent::TlbShootdown {
                root: 7,
                page: i % 64,
            },
            1 => TraceEvent::IpiSent {
                to: (cpu + 1) % cores as u32,
            },
            2 => TraceEvent::IpiReceived {
                from: (cpu + cores as u32 - 1) % cores as u32,
            },
            3 => TraceEvent::TlbInvlpg { page: i % 64 },
            _ => TraceEvent::TlbHit {
                root: 7,
                page: i % 64,
            },
        };
        records.push(TraceRecord {
            seq: i,
            cycles: i * 10,
            cpu,
            event,
        });
    }
    c.meta("race_trace_records", records.len() as f64);
    c.bench_function("race_detect_4k_records", |b| {
        b.iter(|| detect_races(&records, cores));
    });
}

fn bench_privilege(c: &mut Criterion) {
    // crates/bench -> workspace root is two levels up.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .expect("workspace root");
    let report = scan_workspace(&root, WaiverPolicy::Refuse);
    assert!(
        report.is_clean(),
        "privilege boundary violated in-bench: {:?}",
        report.findings
    );
    assert!(
        report.work() <= PRIVILEGE_WORK_BUDGET,
        "privilege scan over budget: {} > {PRIVILEGE_WORK_BUDGET} lines",
        report.work()
    );
    c.meta("privilege_findings", report.findings.len() as f64);
    c.meta("privilege_waivers", report.waivers_seen as f64);
    c.meta("privilege_files_scanned", report.files_scanned as f64);
    c.meta("privilege_modules", report.privileged_modules as f64);
    c.meta("privilege_work", report.work() as f64);
    c.bench_function("privilege_scan_workspace", |b| {
        b.iter(|| scan_workspace(&root, WaiverPolicy::Refuse));
    });
}

criterion_group!(benches, bench_audit, bench_race_detector, bench_privilege);
criterion_main!(benches);
