//! Criterion: the simulated MMU paths (checked mapping, permission walks).

use erebor_testkit::bench::Criterion;
use erebor_testkit::{criterion_group, criterion_main};
use erebor::{Mode, Platform};
use erebor_hw::fault::AccessKind;
use erebor_hw::VirtAddr;
use erebor_libos::api::Sys;

fn bench_paging(c: &mut Criterion) {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    p.cvm.monitor.cfg.timer_quantum_cycles = u64::MAX / 4;
    p.reclaim_period_ticks = 0;
    let pid = p.spawn_native().expect("spawn");
    let va = p
        .proc(pid)
        .syscall(erebor_kernel::syscall::nr::MMAP, [0, 4096, 3, 0, 0, 0])
        .expect("mmap");
    p.proc(pid).touch(va, true).expect("touch");

    c.bench_function("mmu_probe_mapped_page", |b| {
        b.iter(|| {
            p.cvm
                .machine
                .probe(0, VirtAddr(va), AccessKind::Read)
                .expect("probe")
        });
    });

    // Simulator-side translation cost, deterministic (cycle-model, not
    // wall-clock): one probe served from the TLB vs one after a flush.
    // These land in the JSON `meta` block so CI can assert the TLB is
    // actually short-circuiting the four-level walk.
    let m = &mut p.cvm.machine;
    m.probe(0, VirtAddr(va), AccessKind::Read).expect("warm");
    let before = m.cycles.total();
    m.probe(0, VirtAddr(va), AccessKind::Read).expect("hit");
    let hit_cycles = m.cycles.total() - before;
    m.flush_tlb(0);
    let before = m.cycles.total();
    m.probe(0, VirtAddr(va), AccessKind::Read).expect("cold");
    let cold_cycles = m.cycles.total() - before;
    c.meta("sim_cycles_per_probe_tlb_hit", hit_cycles as f64);
    c.meta("sim_cycles_per_probe_tlb_cold", cold_cycles as f64);

    c.bench_function("mmu_probe_tlb_hit", |b| {
        // The first probe fills; every timed iteration after it hits.
        b.iter(|| {
            p.cvm
                .machine
                .probe(0, VirtAddr(va), AccessKind::Read)
                .expect("probe")
        });
    });

    c.bench_function("mmu_probe_tlb_cold", |b| {
        b.iter(|| {
            p.cvm.machine.flush_tlb(0);
            p.cvm
                .machine
                .probe(0, VirtAddr(va), AccessKind::Read)
                .expect("probe")
        });
    });

    // A fixed address so the page-table pages are reused across the hot
    // loop (criterion runs millions of iterations).
    let fixed = 0x7a00_0000_0000u64;
    c.bench_function("mmap_fault_unmap_cycle", |b| {
        b.iter(|| {
            let a = p
                .proc(pid)
                .syscall(erebor_kernel::syscall::nr::MMAP, [fixed, 4096, 3, 0, 0, 0])
                .expect("mmap");
            p.proc(pid).touch(a, true).expect("touch");
            p.proc(pid)
                .syscall(erebor_kernel::syscall::nr::MUNMAP, [a, 4096, 0, 0, 0, 0])
                .expect("munmap");
        });
    });

    // Aggregate translation-path counters over the whole bench run.
    let stats = p.cvm.machine.stats;
    c.meta("tlb_hit_rate", stats.hit_rate());
    c.meta("tlb_hits", stats.tlb_hits as f64);
    c.meta("tlb_misses", stats.tlb_misses as f64);
    c.meta("tlb_flushes", stats.tlb_flushes as f64);
    c.meta("tlb_shootdown_ipis", stats.tlb_shootdown_ipis as f64);
}

criterion_group!(benches, bench_paging);
criterion_main!(benches);
