//! Criterion: the simulated MMU paths (checked mapping, permission walks).

use erebor_testkit::bench::Criterion;
use erebor_testkit::{criterion_group, criterion_main};
use erebor::{Mode, Platform};
use erebor_hw::fault::AccessKind;
use erebor_hw::VirtAddr;
use erebor_libos::api::Sys;

fn bench_paging(c: &mut Criterion) {
    let mut p = Platform::boot(Mode::Full).expect("boot");
    p.cvm.monitor.cfg.timer_quantum_cycles = u64::MAX / 4;
    p.reclaim_period_ticks = 0;
    let pid = p.spawn_native().expect("spawn");
    let va = p
        .proc(pid)
        .syscall(erebor_kernel::syscall::nr::MMAP, [0, 4096, 3, 0, 0, 0])
        .expect("mmap");
    p.proc(pid).touch(va, true).expect("touch");

    c.bench_function("mmu_probe_mapped_page", |b| {
        b.iter(|| {
            p.cvm
                .machine
                .probe(0, VirtAddr(va), AccessKind::Read)
                .expect("probe")
        });
    });

    // A fixed address so the page-table pages are reused across the hot
    // loop (criterion runs millions of iterations).
    let fixed = 0x7a00_0000_0000u64;
    c.bench_function("mmap_fault_unmap_cycle", |b| {
        b.iter(|| {
            let a = p
                .proc(pid)
                .syscall(erebor_kernel::syscall::nr::MMAP, [fixed, 4096, 3, 0, 0, 0])
                .expect("mmap");
            p.proc(pid).touch(a, true).expect("touch");
            p.proc(pid)
                .syscall(erebor_kernel::syscall::nr::MUNMAP, [a, 4096, 0, 0, 0, 0])
                .expect("munmap");
        });
    });
}

criterion_group!(benches, bench_paging);
criterion_main!(benches);
