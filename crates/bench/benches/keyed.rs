//! Criterion: EMC gate cost as a function of concurrently-resident
//! sandbox count, per isolation backend — the measurement behind the
//! "keyed backend lifts the ceiling without a gate-path tax" claim.
//!
//! Shapes: 16 / 64 / 256 resident confined sandboxes, under PKS and
//! under TME-MK. PKS caps out at 10 usable keys, so its larger shapes
//! churn (create + kill, exercising domain recycling) down to its peak
//! residency; the keyed backend holds every sandbox live at once. Each
//! shape deploys one measured service on top and reports the mean
//! monitor-bucket (gate + interposition) cycle delta per request, then
//! must pass the full state audit.
//!
//! Headline metas in `BENCH_keyed.json` (`scripts/ci.sh --keyed`
//! re-asserts them from the persisted document):
//!
//! - `keyed_max_live` vs `keyed_max_live_floor` (256) — peak
//!   concurrently-live TME-MK domains;
//! - `keyed_gate_overhead` vs `keyed_gate_overhead_ceiling` — TME-MK
//!   gate cycles over PKS gate cycles at the same (16-resident) shape.
//!   The keyed access check rides the MMU walk, not the gate, so the
//!   ratio must stay ~1;
//! - `keyed_gate_cycles_{pks,tmemk}_{16,64,256}` — the full matrix
//!   (PKS shapes past capacity are measured at peak residency, with
//!   the remaining population churned through recycled domains).

use erebor::ehw::isolation::{BackendKind, IsolationBackend};
use erebor::{BootConfig, Mode, Platform};
use erebor_core::emc::EmcRequest;
use erebor_testkit::bench::{smoke, Criterion};
use erebor_testkit::{criterion_group, criterion_main};
use erebor_trace::Bucket;
use erebor_workloads::env::SandboxedWorkload;
use erebor_workloads::fleet::FleetClass;

/// Per-sandbox confined declaration (sandbox-private address spaces, so
/// one VA serves every resident).
const CONFINED_VA: erebor::ehw::VirtAddr = erebor::ehw::VirtAddr(0x7000_0000);

fn boot_keyed_platform(backend: BackendKind) -> Platform {
    let mut config = erebor_core::config::ExecConfig::new(Mode::Full);
    config.output_pad_quantum = 512;
    config.backend = backend;
    let cfg = BootConfig {
        cores: 8,
        dram_bytes: 2 * 1024 * 1024 * 1024,
        config,
        ..BootConfig::default()
    };
    Platform::boot_with(cfg).expect("keyed boot")
}

struct ShapeResult {
    /// Mean monitor-bucket cycles per served request.
    gate_mean: f64,
    /// Peak concurrently-live domains (residents + the measured service).
    peak_live: u16,
    /// Sandboxes created over the shape (> peak under PKS churn).
    created: usize,
}

/// Populate `residents` confined sandboxes (churning once the backend's
/// capacity is reached, so PKS shapes past 10 keys still create the full
/// count through recycled domains), then serve `requests` against one
/// deployed service and attribute the gate cost.
fn run_shape(backend: BackendKind, residents: usize, requests: usize) -> ShapeResult {
    let mut p = boot_keyed_platform(backend);
    let cap = usize::from(p.cvm.monitor.backend.capacity() - p.cvm.monitor.backend.reserved());
    // Leave one domain for the measured service deployed below.
    let live_target = residents.min(cap - 1);
    let mut live = std::collections::VecDeque::new();
    let mut created = 0usize;
    for _ in 0..residents {
        p.enter_kernel_mode();
        if live.len() >= live_target {
            let victim = live.pop_front().expect("non-empty at target");
            p.cvm
                .monitor
                .kill_sandbox(&mut p.cvm.machine, victim, "keyed churn");
        }
        let id = p
            .cvm
            .monitor
            .create_sandbox(&mut p.cvm.machine, 0, 8)
            .expect("resident create");
        p.cvm
            .monitor
            .emc(
                &mut p.cvm.machine,
                &mut p.cvm.tdx,
                0,
                EmcRequest::DeclareConfined {
                    sandbox: id.0,
                    va: CONFINED_VA,
                    pages: 1,
                    executable: false,
                },
            )
            .expect("declare confined");
        live.push_back(id);
        created += 1;
    }

    let mut svc = p
        .deploy(
            Box::new(SandboxedWorkload::new(FleetClass::Nginx.workload(8))),
            4096,
        )
        .expect("deploy measured service");
    let mut client = p.connect_client(&svc, [7; 32]).expect("attest");
    let peak_live = p.cvm.monitor.backend.live_domains();

    // One warmup request, then the attributed run.
    p.serve_request(&mut svc, &mut client, b"f=512").expect("warmup");
    let before = p.cvm.machine.cycles.attribution().get(Bucket::Monitor);
    for _ in 0..requests {
        p.serve_request(&mut svc, &mut client, b"f=512").expect("serve");
    }
    let after = p.cvm.machine.cycles.attribution().get(Bucket::Monitor);

    let report = p.audit();
    assert!(
        report.is_clean(),
        "{:?}/{residents} shape broke an audit claim: {}",
        backend,
        report.json()
    );

    ShapeResult {
        gate_mean: (after - before) as f64 / requests as f64,
        peak_live,
        created,
    }
}

fn bench_keyed(c: &mut Criterion) {
    let requests = if smoke() { 8 } else { 64 };
    let shapes = [16usize, 64, 256];
    let max_live_floor = 256.0;
    let overhead_ceiling = 1.10;

    let mut keyed_max_live = 0u16;
    let mut baseline = None;
    let mut overhead = None;
    for backend in [BackendKind::Pks, BackendKind::TmeMk] {
        for residents in shapes {
            let r = run_shape(backend, residents, requests);
            let name = format!(
                "keyed_gate_cycles_{}_{residents}",
                backend.label().to_lowercase()
            );
            c.meta(name, r.gate_mean);
            assert_eq!(r.created, residents, "every shape creates its full count");
            match backend {
                BackendKind::Pks => {
                    assert!(
                        u64::from(r.peak_live) <= 16,
                        "PKS can never exceed its key space"
                    );
                    if residents == shapes[0] {
                        baseline = Some(r.gate_mean);
                    }
                }
                BackendKind::TmeMk => {
                    assert_eq!(
                        usize::from(r.peak_live),
                        residents + 1,
                        "keyed backend holds every sandbox live"
                    );
                    keyed_max_live = keyed_max_live.max(r.peak_live);
                    if residents == shapes[0] {
                        let base = baseline.expect("PKS shapes run first");
                        overhead = Some(r.gate_mean / base);
                    }
                }
            }
        }
    }
    let overhead = overhead.expect("both 16-resident shapes measured");

    // Domain create/kill round trip on the keyed backend: the recycling
    // hot path (alloc + PCONFIG-equivalent teardown fence).
    let mut p = boot_keyed_platform(BackendKind::TmeMk);
    p.enter_kernel_mode();
    c.bench_function("keyed_create_kill_roundtrip", |b| {
        b.iter(|| {
            let id = p
                .cvm
                .monitor
                .create_sandbox(&mut p.cvm.machine, 0, 4)
                .expect("create");
            p.cvm
                .monitor
                .kill_sandbox(&mut p.cvm.machine, id, "bench churn");
        });
    });

    c.meta("keyed_requests_per_shape", requests as f64);
    c.meta("keyed_max_live", f64::from(keyed_max_live));
    c.meta("keyed_max_live_floor", max_live_floor);
    c.meta("keyed_gate_overhead", overhead);
    c.meta("keyed_gate_overhead_ceiling", overhead_ceiling);
    c.meta("keyed_capacity_pks", 16.0);
    c.meta("keyed_capacity_tmemk", 4096.0);

    assert!(
        f64::from(keyed_max_live) >= max_live_floor,
        "keyed backend must confine >= {max_live_floor} concurrent sandboxes, \
         peaked at {keyed_max_live}"
    );
    assert!(
        overhead <= overhead_ceiling,
        "keyed check must ride the walk, not the gate: TME-MK gate cost \
         {overhead:.3}x PKS at the same shape (ceiling {overhead_ceiling}x)"
    );
}

criterion_group!(benches, bench_keyed);
criterion_main!(benches);
