//! Criterion: the fleet-scale serving campaign — hundreds of concurrent
//! sandboxes, a six-figure request stream, and kill/redeploy churn —
//! with the fleet fast paths (bitmap frame scan, O(1) sandbox lookup,
//! coalesced shootdowns) on vs ablated.
//!
//! The headline numbers land in the JSON `meta` block so CI
//! (`scripts/ci.sh --fleet`) can assert them from the persisted
//! `BENCH_fleet.json`:
//!
//! - `fleet_sandboxes` / `fleet_requests` — campaign scale (ISSUE floors
//!   256 and 100k for the full run);
//! - `fleet_determinism` — 1.0 iff two same-seed fleet runs produced
//!   byte-identical trace documents and counter snapshots;
//! - `fleet_speedup` vs `fleet_speedup_floor` — whole-campaign
//!   wall-clock ratio, asserted against the *self-described* floor
//!   (5x for the full campaign, where ablated deploy/churn scans
//!   dominate; 1x for the tiny smoke shape) here *and* in CI;
//! - `fleet_gate_p50_cycles` / `_p99_` / `_p999_` — per-request
//!   monitor-bucket (gate + interposition) cycle deltas;
//! - `fleet_throughput_rps` — serve-phase requests per wall-clock
//!   second with the fast paths on.
//!
//! The red ablation asserts live here too: the ablated campaign must
//! never touch a fast-path structure (all lookup counters and the
//! bitmap word-scan counter pinned at zero), and both campaigns must
//! allocate the exact same number of frames — the fast scan is a
//! different search, not a different answer. Full observational
//! equivalence is `tests/fleet_equivalence.rs`'s job.

use std::time::Instant;

use erebor::{BootConfig, Mode, Platform};
use erebor_core::channel::Client;
use erebor_testkit::bench::{smoke, Criterion};
use erebor_testkit::{criterion_group, criterion_main};
use erebor_trace::Bucket;
use erebor_workloads::env::SandboxedWorkload;
use erebor_workloads::fleet::{FleetConfig, FleetDriver, FleetOp, LatencyRecorder};

/// FNV-1a over the deterministic trace document: cheap, stable digest
/// for the byte-identical determinism claim.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn boot_fleet_platform(fleet_mode: bool) -> Platform {
    let mut config = erebor_core::config::ExecConfig::new(Mode::Full);
    // Small pad quantum keeps reply sealing cheap at request volume.
    config.output_pad_quantum = 512;
    // 64–768 concurrent sandboxes is far past the 10 usable PKS keys:
    // fleet scale runs on the keyed TME-MK backend (create_sandbox now
    // fails typed at capacity instead of silently wrapping onto a live
    // key, so the old config would refuse the campaign outright).
    config.backend = erebor::ehw::isolation::BackendKind::TmeMk;
    let cfg = BootConfig {
        cores: 32,
        dram_bytes: 10 * 1024 * 1024 * 1024,
        config,
        ..BootConfig::default()
    };
    let mut p = Platform::boot_with(cfg).expect("fleet boot");
    p.set_fleet_mode(fleet_mode);
    // Scope the observability counters to the campaign: boot itself ran
    // with the default (fast) configuration before the flip.
    p.cvm.machine.mem.alloc_stats = Default::default();
    p.cvm.monitor.lookup_stats.reset();
    p
}

struct CampaignResult {
    wall_secs: f64,
    serve_secs: f64,
    requests: u64,
    latency: LatencyRecorder,
    trace_digest: u64,
    snapshot: String,
    allocated_frames: u64,
    words_scanned: u64,
    lookup_hits: u64,
}

/// Interpret the deterministic op schedule against one platform.
fn run_campaign(cfg: FleetConfig, fleet_mode: bool) -> CampaignResult {
    let t0 = Instant::now();
    let mut p = boot_fleet_platform(fleet_mode);
    let ops = FleetDriver::new(cfg).schedule();
    let mut svcs: Vec<Option<erebor::ServiceInstance>> =
        (0..cfg.sandboxes).map(|_| None).collect();
    let mut clients: Vec<Option<Client>> = (0..cfg.clients).map(|_| None).collect();
    let mut latency = LatencyRecorder::new();
    let mut requests = 0u64;
    let mut serve_secs = 0.0f64;
    for op in ops {
        match op {
            FleetOp::Deploy { slot, class } => {
                let program = SandboxedWorkload::new(class.workload(cfg.private_pages));
                svcs[slot] = Some(
                    p.deploy(Box::new(program), cfg.budget_pages)
                        .expect("fleet deploy"),
                );
            }
            FleetOp::Connect { slot } => {
                let svc = svcs[slot].as_ref().expect("connect before deploy");
                let seed = [u8::try_from(slot & 0xff).expect("masked"); 32];
                clients[slot] = Some(p.connect_client(svc, seed).expect("fleet attest"));
            }
            FleetOp::Request { slot, payload } => {
                let svc = svcs[slot].as_mut().expect("request before deploy");
                let client = clients[slot].as_mut().expect("request before connect");
                let gate_before = p.cvm.machine.cycles.attribution().get(Bucket::Monitor);
                let t = Instant::now();
                p.serve_request(svc, client, &payload).expect("fleet serve");
                serve_secs += t.elapsed().as_secs_f64();
                let gate_after = p.cvm.machine.cycles.attribution().get(Bucket::Monitor);
                latency.push(gate_after - gate_before);
                requests += 1;
            }
            FleetOp::Churn { slot, class } => {
                let old = svcs[slot].take().expect("churn before deploy");
                p.cvm
                    .monitor
                    .kill_sandbox(&mut p.cvm.machine, old.sandbox, "fleet churn");
                let program = SandboxedWorkload::new(class.workload(cfg.private_pages));
                svcs[slot] = Some(
                    p.deploy(Box::new(program), cfg.budget_pages)
                        .expect("fleet redeploy"),
                );
            }
        }
    }
    let wall_secs = t0.elapsed().as_secs_f64();
    let report = p.audit();
    assert!(report.is_clean(), "fleet campaign broke an audit claim");
    let stats = p.lookup_stats();
    CampaignResult {
        wall_secs,
        serve_secs,
        requests,
        latency,
        trace_digest: fnv1a(p.trace_json().as_bytes()),
        snapshot: format!("{:?}", p.snapshot()),
        allocated_frames: p.cvm.machine.mem.allocated_frames(),
        words_scanned: p.alloc_stats().words_scanned,
        lookup_hits: stats.root_index_lookups()
            + stats.as_index_lookups()
            + stats.cpuid_mru_hits(),
    }
}

fn bench_fleet(c: &mut Criterion) {
    let (cfg, floor) = if smoke() {
        // CI shape: too small for the scan costs to dominate, so the
        // floor only demands "not materially slower" (first-run host
        // warmup noise is comparable to the whole campaign here).
        (FleetConfig::smoke(), 0.75)
    } else {
        (FleetConfig::full(), 5.0)
    };

    // Two same-seed fleet runs: the determinism claim.
    let fast = run_campaign(cfg, true);
    let fast2 = run_campaign(cfg, true);
    assert_eq!(
        fast.trace_digest, fast2.trace_digest,
        "same-seed fleet campaigns must produce byte-identical traces"
    );
    assert_eq!(
        fast.snapshot, fast2.snapshot,
        "same-seed fleet campaigns must produce identical counter snapshots"
    );
    let deterministic = f64::from(
        u8::from(fast.trace_digest == fast2.trace_digest && fast.snapshot == fast2.snapshot),
    );

    // The ablated baseline: every fleet fast path off.
    let slow = run_campaign(cfg, false);

    // Red ablation asserts: off means *off* — no fast-path structure
    // may be consulted — and the fast scan must allocate the exact
    // same frames the linear scan did.
    assert_eq!(
        slow.lookup_hits, 0,
        "ablated campaign must never hit a lookup index"
    );
    assert_eq!(
        slow.words_scanned, 0,
        "ablated campaign must never scan a summary word"
    );
    assert!(
        fast.lookup_hits > 0 && fast.words_scanned > 0,
        "fleet campaign must exercise the fast paths"
    );
    assert_eq!(
        fast.allocated_frames, slow.allocated_frames,
        "fast and ablated campaigns must allocate identical frame counts"
    );

    // Best-of-two on the fast side: the first campaign of the process
    // pays one-time host warmup (page faults, allocator pools) that the
    // later ablated run does not.
    let fast_wall = fast.wall_secs.min(fast2.wall_secs);
    let speedup = slow.wall_secs / fast_wall;
    let throughput = fast.requests as f64 / fast.serve_secs;

    // A criterion-visible per-request timing on a warm fleet platform.
    let mut p = boot_fleet_platform(true);
    let mut svc = p
        .deploy(
            Box::new(SandboxedWorkload::new(
                erebor_workloads::fleet::FleetClass::Nginx.workload(cfg.private_pages),
            )),
            cfg.budget_pages,
        )
        .expect("deploy");
    let mut client = p.connect_client(&svc, [9; 32]).expect("attest");
    c.bench_function("fleet_request_roundtrip", |b| {
        b.iter(|| p.serve_request(&mut svc, &mut client, b"f=16384").expect("serve"));
    });

    c.meta("fleet_sandboxes", cfg.sandboxes as f64);
    c.meta("fleet_requests", fast.requests as f64);
    c.meta("fleet_churn", cfg.churn as f64);
    c.meta("fleet_determinism", deterministic);
    c.meta("fleet_speedup", speedup);
    c.meta("fleet_speedup_floor", floor);
    c.meta("fleet_wall_secs", fast_wall);
    c.meta("fleet_ablated_wall_secs", slow.wall_secs);
    c.meta("fleet_throughput_rps", throughput);
    c.meta("fleet_gate_p50_cycles", fast.latency.quantile(0.5) as f64);
    c.meta("fleet_gate_p99_cycles", fast.latency.quantile(0.99) as f64);
    c.meta("fleet_gate_p999_cycles", fast.latency.quantile(0.999) as f64);
    c.meta("fleet_gate_mean_cycles", fast.latency.mean() as f64);
    c.meta("fleet_allocated_frames", fast.allocated_frames as f64);
    c.meta("fleet_words_scanned", fast.words_scanned as f64);
    c.meta("fleet_lookup_hits", fast.lookup_hits as f64);

    assert!(
        (deterministic - 1.0).abs() < f64::EPSILON,
        "fleet campaign must be deterministic"
    );
    assert!(
        speedup >= floor,
        "fleet fast paths must be >={floor}x the ablated campaign: \
         {fast_wall:.2}s vs {:.2}s ({speedup:.2}x)",
        slow.wall_secs
    );
    assert!(
        fast.latency.quantile(0.999) > 0,
        "gate latency tail must be measured"
    );
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
