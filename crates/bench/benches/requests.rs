//! Criterion: full request round trips through the simulated platform —
//! the harness's own performance (not the paper's cycle model).

use erebor_testkit::bench::Criterion;
use erebor_testkit::{criterion_group, criterion_main};
use erebor::{Mode, Platform};
use erebor_workloads::hello::HelloWorld;

fn bench_requests(c: &mut Criterion) {
    let mut g = c.benchmark_group("request_roundtrip");
    g.sample_size(20);
    for mode in [Mode::Native, Mode::Full] {
        let mut p = Platform::boot(mode).expect("boot");
        let (mut svc, mut client, native_pid) = if mode == Mode::Full {
            let svc = p
                .deploy(Box::new(HelloWorld { len: 8 }), 4096)
                .expect("deploy");
            let client = p.connect_client(&svc, [1; 32]).expect("attest");
            (Some(svc), Some(client), None)
        } else {
            (None, None, Some(p.spawn_native().expect("spawn")))
        };
        g.bench_function(format!("{mode:?}"), |b| {
            b.iter(|| match (&mut svc, &mut client) {
                (Some(svc), Some(client)) => p.serve_request(svc, client, b"req").expect("serve"),
                _ => {
                    use erebor_libos::api::Sys;
                    let pid = native_pid.expect("native task");
                    let v = p
                        .proc(pid)
                        .syscall(erebor_kernel::syscall::nr::GETPID, [0; 6])
                        .expect("sys");
                    vec![v as u8]
                }
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("attestation");
    g.sample_size(20);
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let svc = p
        .deploy(Box::new(HelloWorld::default()), 4096)
        .expect("deploy");
    g.bench_function("handshake_and_verify", |b| {
        let mut seed = [0u8; 32];
        b.iter(|| {
            seed[0] = seed[0].wrapping_add(1);
            p.connect_client(&svc, seed).expect("attest")
        });
    });
    g.finish();
}

criterion_group!(benches, bench_requests);
criterion_main!(benches);
