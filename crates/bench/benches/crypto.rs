//! Criterion: throughput of the from-scratch crypto substrate.

use erebor_testkit::bench::{Criterion, Throughput};
use erebor_testkit::{criterion_group, criterion_main};
use erebor_crypto::{aead, ed25519, sha256, x25519};

fn bench_crypto(c: &mut Criterion) {
    let data = vec![0xa5u8; 16 * 1024];
    let mut g = c.benchmark_group("crypto");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("sha256_16k", |b| b.iter(|| sha256::sha256(&data)));
    let key = [7u8; 32];
    let nonce = [3u8; 12];
    g.bench_function("chacha20poly1305_seal_16k", |b| {
        b.iter(|| aead::seal(&key, &nonce, b"", &data));
    });
    g.finish();

    c.bench_function("x25519_shared_secret", |b| {
        let private = [9u8; 32];
        let public = x25519::public_key(&[5u8; 32]);
        b.iter(|| x25519::shared_secret(&private, &public));
    });

    let sk = ed25519::SigningKey::from_seed([1u8; 32]);
    let msg = b"attestation report body";
    let sig = sk.sign(msg);
    c.bench_function("ed25519_sign", |b| b.iter(|| sk.sign(msg)));
    c.bench_function("ed25519_verify", |b| {
        let vk = sk.verifying_key();
        b.iter(|| vk.verify(msg, &sig).expect("valid"));
    });
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
