//! Criterion: TD live-migration throughput and stop-and-copy pause.
//!
//! The headline numbers land in the JSON `meta` block so CI
//! (`scripts/ci.sh --migrate`) can assert them from the persisted
//! `BENCH_migrate.json`:
//!
//! - `migrate_pages_per_sec` — end-to-end sealed-page throughput of a
//!   full outbound transfer (resident sweep + stop-and-copy), wall
//!   clock, asserted ≥ 1 000 pages/sec here *and* in CI;
//! - `migrate_stopcopy_pause_ns` — wall-clock length of the
//!   stop-and-copy window (quiesce → final dirty drain → sections →
//!   finish record), the time the TD is actually paused; asserted
//!   under an absolute ceiling (the *bounded* stop-and-copy claim —
//!   the pause carries residual dirt plus fixed section exports, never
//!   the resident sweep);
//! - `migrate_stopcopy_pause_cycles` — simulated guest cycles consumed
//!   inside that window (shootdown draining is charged to the machine);
//! - `migrate_records_sealed` / `migrate_sections` /
//!   `migrate_precopy_pages` / `migrate_stopcopy_pages` — transfer
//!   shape, cross-checked against the record-count identity
//!   `records = pages + sections + begin + finish`;
//! - `migrate_import_ok` — the timed stream actually imports on a fresh
//!   destination with byte-identical trace JSON (1.0 or the bench
//!   panics).
//!
//! Fault handling is not this bench's job — the chaos campaign in
//! `tests/migration.rs` proves every damaged stream aborts typed; this
//! bench proves the transfer itself is fast and its pause bounded.

use std::time::Instant;

use erebor::ecore::channel::Client;
use erebor::{BootConfig, ExecConfig, MigrationKey, Mode, Platform};
use erebor_testkit::bench::{smoke, Criterion};
use erebor_testkit::{criterion_group, criterion_main};
use erebor_workloads::hello::HelloWorld;

const SEED: u64 = 0x4D16_7A7E;

/// Absolute stop-and-copy pause ceiling: the pause carries residual
/// dirty pages plus the fixed section exports, never the resident
/// sweep, so it must stay flat as the fleet grows. 100 ms is ~25x the
/// measured pause at this shape — a regression tripwire, not a target.
const PAUSE_CEILING_NS: f64 = 100_000_000.0;

fn boot() -> Platform {
    Platform::boot_with(BootConfig {
        seed: SEED,
        config: ExecConfig::new(Mode::Full),
        ..BootConfig::default()
    })
    .expect("boot")
}

/// A source platform with live sandboxes and served traffic, so the
/// transfer carries a realistic resident set (kernel, LibOS, sandbox
/// heaps, sealed-channel state).
fn build_src(sandboxes: u8) -> (Platform, erebor::ServiceInstance, Client) {
    let mut p = boot();
    let mut live = None;
    for i in 0..sandboxes {
        let mut svc = p
            .deploy(Box::new(HelloWorld { len: 4 }), 4096)
            .expect("deploy");
        let mut client = p.connect_client(&svc, [i + 1; 32]).expect("attest");
        p.serve_request(&mut svc, &mut client, b"warm")
            .expect("serve");
        live = Some((svc, client));
    }
    let (svc, client) = live.expect("at least one sandbox");
    (p, svc, client)
}

fn bench_migrate(c: &mut Criterion) {
    let sandboxes: u8 = if smoke() { 4 } else { 8 };
    let (mut src, mut svc, mut client) = build_src(sandboxes);
    let src_key = MigrationKey::from_seed([0x3A; 32]);
    let dest_key = MigrationKey::from_seed([0xC3; 32]);

    // One measured transfer with the begin/round/finish split exposed,
    // so the stop-and-copy window is timed on its own. The TD keeps
    // serving between the sweep and the pause — the dirtied pages drain
    // through a pre-copy round, which is exactly what keeps the pause
    // bounded. The destination platform only answers the offer here;
    // import correctness is re-proven below on a fresh boot.
    let offer_dest = boot();
    let offer = offer_dest.migration_offer(&dest_key, &src_key.public());

    let t0 = Instant::now();
    let (mut mig, mut records) = src.migrate_begin(&src_key, &offer).expect("begin");
    src.serve_request(&mut svc, &mut client, b"mid-flight")
        .expect("serve while migrating");
    records.extend(src.migrate_precopy_round(&mut mig).expect("round"));
    let precopy_ns = t0.elapsed().as_nanos() as f64;
    let t1 = Instant::now();
    let cycles1 = src.cvm.machine.cycles.total();
    let (tail, report) = src.migrate_finish(mig).expect("finish");
    let stopcopy_ns = t1.elapsed().as_nanos() as f64;
    let stopcopy_cycles = src.cvm.machine.cycles.total() - cycles1;
    let total_ns = precopy_ns + stopcopy_ns;
    records.extend(tail);

    let pages = report.precopy_pages + report.stopcopy_pages;
    let pages_per_sec = pages as f64 / (total_ns * 1e-9);

    // The timed stream must be a *working* stream: import it on a fresh
    // destination and require byte-identical trace JSON.
    let mut dest = boot();
    dest.migrate_from(&dest_key, src_key.public(), &records)
        .expect("import");
    let import_ok = if dest.trace_json() == src.trace_json() {
        1.0
    } else {
        0.0
    };

    // Steady-state wall-clock for the full transfer (offer reuse is
    // sound: migrate_to re-arms dirty tracking per call and the offer
    // only binds keys and measurement).
    let mut g = c.benchmark_group("migrate");
    g.sample_size(if smoke() { 3 } else { 10 });
    g.bench_function("full_transfer", |b| {
        b.iter(|| {
            let (records, report) = src.migrate_to(&src_key, &offer).expect("out");
            assert!(!records.is_empty() && report.sections == 9);
            records.len()
        })
    });
    g.finish();

    c.meta("migrate_pages_per_sec", pages_per_sec);
    c.meta("migrate_precopy_ns", precopy_ns);
    c.meta("migrate_stopcopy_pause_ns", stopcopy_ns);
    c.meta("migrate_stopcopy_pause_cycles", stopcopy_cycles as f64);
    c.meta("migrate_records_sealed", report.records_sealed as f64);
    c.meta("migrate_sections", report.sections as f64);
    c.meta("migrate_precopy_pages", report.precopy_pages as f64);
    c.meta("migrate_stopcopy_pages", report.stopcopy_pages as f64);
    c.meta("migrate_precopy_rounds", report.precopy_rounds as f64);
    c.meta("migrate_sandboxes", sandboxes as f64);
    c.meta("migrate_import_ok", import_ok);
    c.meta("migrate_pages_per_sec_floor", 1_000.0);
    c.meta("migrate_stopcopy_pause_ceiling_ns", PAUSE_CEILING_NS);

    // Meta asserts (the ISSUE's acceptance floors). CI re-asserts the
    // same floors from the persisted BENCH_migrate.json.
    assert_eq!(import_ok, 1.0, "timed stream must import byte-identically");
    assert_eq!(report.sections, 9, "all state sections must travel");
    assert_eq!(
        report.records_sealed,
        pages + report.sections + 2,
        "record count must be pages + sections + begin + finish"
    );
    assert!(
        pages_per_sec >= 1_000.0,
        "migration throughput below floor: {pages_per_sec:.0} pages/sec"
    );
    assert!(
        stopcopy_ns <= PAUSE_CEILING_NS,
        "stop-and-copy pause above its ceiling: {stopcopy_ns:.0} ns \
         (transfer total {total_ns:.0} ns)"
    );
    assert!(
        report.stopcopy_pages <= report.precopy_pages,
        "pre-copy must carry the bulk: {} stop-copy vs {} pre-copy pages",
        report.stopcopy_pages,
        report.precopy_pages
    );
}

criterion_group!(benches, bench_migrate);
criterion_main!(benches);
