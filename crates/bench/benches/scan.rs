//! Criterion: the monitor's byte-level kernel verification (§5.1) — the
//! boot-time cost of the drop-in design.

use erebor_testkit::bench::{Criterion, Throughput};
use erebor_testkit::{criterion_group, criterion_main};
use erebor_hw::image::Image;
use erebor_hw::insn;
use erebor_hw::layout::KERNEL_BASE;

fn bench_scan(c: &mut Criterion) {
    for size_kb in [64usize, 512, 4096] {
        let img = Image::builder("k")
            .benign_text(".text", KERNEL_BASE, size_kb * 1024, 9)
            .build();
        let bytes = img.sections[0].bytes.clone();
        let mut g = c.benchmark_group("kernel_scan");
        g.throughput(Throughput::Bytes(bytes.len() as u64));
        g.bench_function(format!("scan_{size_kb}k"), |b| {
            b.iter(|| insn::scan(&bytes).len());
        });
        g.finish();
    }
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);
