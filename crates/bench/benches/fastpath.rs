//! Criterion: the batched execution fast path vs the slow permission
//! pipeline on a paging-heavy workload.
//!
//! The headline numbers land in the JSON `meta` block so CI
//! (`scripts/ci.sh --fastpath`) can assert them from the persisted
//! `BENCH_fastpath.json`:
//!
//! - `fastpath_events_per_sec` / `slowpath_events_per_sec` — wall-clock
//!   batch-op throughput with the decision cache on vs off (same
//!   machine shape, same op program, `mmu_trace` off so hits take the
//!   deferred-side-effect path);
//! - `fastpath_speedup` — the ratio, asserted ≥ 5 here *and* in CI;
//! - `decision_hit_rate` — fraction of batch ops served from the
//!   decision cache on the cached run, asserted ≥ 0.9.
//!
//! The equivalence of the two paths is not this bench's job — the
//! differential suite (`tests/fastpath_equivalence.rs`) proves the
//! observable state byte-identical; this bench proves the memoization
//! actually pays.

use std::time::Instant;

use erebor_hw::cpu::{Domain, Machine};
use erebor_hw::fault::AccessKind;
use erebor_hw::paging::{self, Pte, PteFlags};
use erebor_hw::regs::{Cr0, Cr4};
use erebor_hw::{BatchOp, Frame, VirtAddr};
use erebor_testkit::bench::{smoke, Criterion};
use erebor_testkit::{criterion_group, criterion_main};

/// Mapped kernel pages the workload cycles over (within one TLB/decision
/// set's worth of slots, so the cache stays warm like a hot loop would).
const PAGES: u64 = 8;
const BASE: u64 = 0xffff_8000_0000_0000;

fn build() -> (Machine, Frame) {
    let mut m = Machine::new(2, 32 * 1024 * 1024);
    let root = m.mem.alloc_frame().expect("root");
    let flags = PteFlags {
        present: true,
        writable: true,
        user: false,
        accessed: false,
        dirty: false,
        nx: true,
        pkey: 0,
    };
    for i in 0..PAGES {
        let frame = m.mem.alloc_frame().expect("frame");
        paging::map_raw(
            &mut m.mem,
            root,
            VirtAddr(BASE + i * 0x1000),
            Pte::encode(frame, flags),
            paging::intermediate_for(flags),
        )
        .expect("map");
    }
    for c in &mut m.cpus {
        c.cr3 = root;
        c.cr0 = Cr0(Cr0::WP | Cr0::PG);
        c.cr4 = Cr4(Cr4::SMEP | Cr4::SMAP | Cr4::PKS);
        c.domain = Domain::Monitor;
    }
    m.allow_sensitive(Domain::Monitor);
    // Deferred-side-effect fast path: no per-hit trace events.
    m.mmu_trace = false;
    (m, root)
}

/// The paging workload: a straight-line batch of permission checks over
/// the working set — the translation/permission path the decision cache
/// memoizes, matching the probe-based shape of the `paging` bench. The
/// DRAM transfer itself costs the same with the cache on or off, so the
/// headline workload isolates what the cache actually changes.
fn workload() -> Vec<BatchOp> {
    let mut ops = Vec::new();
    for round in 0..32u64 {
        for i in 0..PAGES {
            let va = VirtAddr(BASE + i * 0x1000 + (round % 8) * 64);
            ops.push(BatchOp::Probe {
                va,
                kind: if (round + i) % 2 == 0 {
                    AccessKind::Read
                } else {
                    AccessKind::Write
                },
            });
        }
    }
    ops
}

/// A marshalling-shaped batch (probes, loads, stores) for the
/// criterion-visible timings: the realistic mix a batched
/// syscall-argument copy would issue.
fn mixed_workload() -> Vec<BatchOp> {
    let mut ops = Vec::new();
    for round in 0..32u64 {
        for i in 0..PAGES {
            let va = VirtAddr(BASE + i * 0x1000 + (round % 8) * 64);
            ops.push(match (round + i) % 4 {
                0 => BatchOp::Probe {
                    va,
                    kind: AccessKind::Read,
                },
                1 => BatchOp::ReadU64 { va },
                2 => BatchOp::WriteU64 {
                    va,
                    v: round << 32 | i,
                },
                _ => BatchOp::Probe {
                    va,
                    kind: AccessKind::Write,
                },
            });
        }
    }
    ops
}

/// Wall-clock ops/sec for `ops` replayed `reps` times on `m`.
fn events_per_sec(m: &mut Machine, ops: &[BatchOp], reps: u64) -> f64 {
    let t = Instant::now();
    let mut executed = 0u64;
    for _ in 0..reps {
        let out = m.run_batch(0, ops);
        assert!(out.fault.is_none(), "workload must not fault: {:?}", out.fault);
        executed += out.executed as u64;
    }
    executed as f64 / t.elapsed().as_secs_f64()
}

fn bench_fastpath(c: &mut Criterion) {
    let ops = workload();
    let reps = if smoke() { 4_000 } else { 20_000 };

    // Criterion-visible per-batch timings for the two configurations, on
    // both the probe (paging) and the marshalling-shaped mixed batch.
    let mixed = mixed_workload();
    let (mut fast, _) = build();
    assert!(fast.fastpath_enabled);
    c.bench_function("batch_probe_fastpath_on", |b| {
        b.iter(|| fast.run_batch(0, &ops));
    });
    c.bench_function("batch_mixed_fastpath_on", |b| {
        b.iter(|| fast.run_batch(0, &mixed));
    });
    let (mut slow, _) = build();
    slow.fastpath_enabled = false;
    c.bench_function("batch_probe_fastpath_off", |b| {
        b.iter(|| slow.run_batch(0, &ops));
    });
    c.bench_function("batch_mixed_fastpath_off", |b| {
        b.iter(|| slow.run_batch(0, &mixed));
    });

    // Headline throughput on fresh machines (warmup batch excluded from
    // neither side: both pay their cold misses, the steady state
    // dominates at `reps` repetitions).
    let (mut fast, _) = build();
    let fast_eps = events_per_sec(&mut fast, &ops, reps);
    let stats = fast.fastpath;
    let (mut slow, _) = build();
    slow.fastpath_enabled = false;
    let slow_eps = events_per_sec(&mut slow, &ops, reps);
    let speedup = fast_eps / slow_eps;
    let hit_rate = stats.hit_rate();

    c.meta("fastpath_events_per_sec", fast_eps);
    c.meta("slowpath_events_per_sec", slow_eps);
    c.meta("fastpath_speedup", speedup);
    c.meta("decision_hit_rate", hit_rate);
    c.meta("fastpath_batches", stats.batches as f64);
    c.meta("fastpath_slow_ops", stats.slow_ops as f64);

    // Meta asserts (the ISSUE's acceptance floors). The ablated run must
    // also be a true ablation — zero cached decisions served.
    assert_eq!(
        slow.fastpath.decision_hits, 0,
        "ablated machine must never serve a cached decision"
    );
    assert!(
        hit_rate >= 0.9,
        "decision-cache hit rate too low on the paging workload: {hit_rate}"
    );
    assert!(
        speedup >= 5.0,
        "fast path must be >=5x the slow path on the paging workload: \
         {fast_eps:.0} vs {slow_eps:.0} events/sec ({speedup:.2}x)"
    );
}

criterion_group!(benches, bench_fastpath);
criterion_main!(benches);
