//! Ablation studies beyond the paper's figures (DESIGN.md §3):
//! EMC gate cost breakdown, batched vs. per-page MMU updates (§9.1's
//! suggested optimization), CET shadow-stack cost (§7's omitted checks),
//! and the output-padding quantum sweep (§6.3).

use erebor::{BootConfig, Mode, Platform};
use erebor_core::config::ExecConfig;
use erebor_workloads::hello::HelloWorld;
use erebor_workloads::lmbench;

fn boot_cfg(f: impl Fn(&mut ExecConfig)) -> Platform {
    let mut cfg = BootConfig {
        config: ExecConfig::new(Mode::Full),
        ..BootConfig::default()
    };
    f(&mut cfg.config);
    Platform::boot_with(cfg).expect("boot")
}

fn main() {
    gate_breakdown();
    batched_mmu();
    shadow_stack_cost();
    padding_sweep();
}

/// Where do the EMC's ~1.2k cycles go?
fn gate_breakdown() {
    println!("=== EMC gate cost breakdown ===");
    let p = Platform::boot(Mode::Full).expect("boot");
    let c = &p.cvm.machine.costs;
    let rows = [
        ("PKRS rdmsr (entry+exit)", 2 * c.rdmsr),
        ("PKRS wrmsr (entry+exit)", 2 * c.wrmsr),
        (
            "spills/fills + stack switch",
            2 * (6 * c.mem_op + c.stack_switch + 2 * c.alu),
        ),
        ("serializing-write overhead", 2 * c.gate_overhead),
        (
            "branch + endbr + ret",
            2 * (4 * c.walk_level) + c.endbr_check + c.call_ret,
        ),
    ];
    let total: u64 = rows.iter().map(|(_, v)| v).sum();
    for (name, v) in rows {
        println!(
            "  {name:<30} {v:>5} cyc ({:>4.1}%)",
            v as f64 / total as f64 * 100.0
        );
    }
    println!("  {:<30} {total:>5} cyc", "total (model)");
    println!("  serializing PKRS writes dominate — the paper's explanation for");
    println!("  EMC ≈ 2x syscall (Table 3).\n");
}

/// Batched vs. per-page MMU updates, measured on the fork benchmark.
fn batched_mmu() {
    println!("=== batched MMU updates (fork benchmark, §9.1) ===");
    let fork = |batched: bool| -> f64 {
        let mut p = boot_cfg(|c| c.batched_mmu = batched);
        p.cvm.monitor.cfg.timer_quantum_cycles = u64::MAX / 4;
        p.reclaim_period_ticks = 0;
        let pid = p.spawn_native().expect("spawn");
        let mut h = p.proc(pid);
        lmbench::bench_fork(&mut h, 16)
            .expect("bench")
            .cycles_per_op
    };
    let plain = fork(false);
    let batch = fork(true);
    println!("  per-page EMCs : {plain:>9.0} cyc/fork");
    println!(
        "  batched EMCs  : {batch:>9.0} cyc/fork  ({:+.1}%)",
        (batch / plain - 1.0) * 100.0
    );
    println!("  confirms §9.1: \"overhead could be lowered if batched MMU update is enabled\"\n");
}

/// Shadow-stack (backward CFI) cost on a full request round trip.
fn shadow_stack_cost() {
    println!("=== CET shadow-stack cost (§7 limitation, lifted) ===");
    let serve = |sst: bool| -> u64 {
        let mut p = boot_cfg(|c| c.shadow_stacks = sst);
        let mut svc = p
            .deploy(Box::new(HelloWorld::default()), 4096)
            .expect("deploy");
        let mut client = p.connect_client(&svc, [5; 32]).expect("attest");
        let before = p.snapshot().cycles;
        p.serve_request(&mut svc, &mut client, b"x").expect("serve");
        p.snapshot().cycles - before
    };
    let without = serve(false);
    let with = serve(true);
    println!("  IBT only      : {without:>9} cyc/request");
    println!(
        "  IBT + SST     : {with:>9} cyc/request  ({:+.3}%)",
        (with as f64 / without as f64 - 1.0) * 100.0
    );
    println!("  matches the paper's claim that the omitted checks are near-free.\n");
}

/// Output-padding quantum: bandwidth overhead vs. leakage granularity.
fn padding_sweep() {
    println!("=== output-padding quantum sweep (§6.3) ===");
    println!(
        "  {:<10} {:>12} {:>14}",
        "quantum", "record size", "overhead for 1B"
    );
    for quantum in [256usize, 1024, 4096, 16384] {
        let mut p = boot_cfg(|c| c.output_pad_quantum = quantum);
        let mut svc = p
            .deploy(Box::new(HelloWorld { len: 1 }), 4096)
            .expect("deploy");
        let mut client = p.connect_client(&svc, [8; 32]).expect("attest");
        p.client_send(&svc, &mut client, b"r").expect("send");
        let pid = svc.pid;
        let req = svc.os.input(&mut p.proc(pid)).expect("input");
        let res = svc
            .program
            .serve(&mut svc.os, &mut p.proc(pid), &req)
            .expect("serve");
        svc.os.output(&mut p.proc(pid), &res).expect("output");
        let record = p.cvm.monitor.fetch_output(svc.sandbox).expect("record");
        println!(
            "  {:<10} {:>10} B {:>13.0}x",
            quantum,
            record.len(),
            record.len() as f64
        );
    }
    println!("  larger quanta hide more (coarser size channel) at linear bandwidth cost.");
}
