//! Regenerates Table 4: privileged-operation costs, native vs Erebor.

fn main() {
    let rows = erebor_bench::table4::run();
    println!("Table 4: OS privileged-instruction overheads (CPU cycles)");
    println!(
        "{:<6} {:>10} {:>10} {:>8}",
        "op", "native", "erebor", "times"
    );
    for r in &rows {
        println!(
            "{:<6} {:>10} {:>10} {:>7.2}x",
            r.op,
            r.native,
            r.erebor,
            r.times()
        );
    }
    println!("\npaper: MMU 23→1345 (58.5x), CR 294→1593 (5.4x), IDT 260→1369 (5.3x),");
    println!("       MSR 364→1613 (4.4x), SMAP 62→1291 (20.8x), GHCI 126806→128081 (1.01x)");
}
