//! Regenerates Fig. 10: background server relative throughput.

fn main() {
    let rows = erebor_bench::fig10::run();
    println!("Fig. 10: relative throughput of background programs (Erebor / native)");
    println!("{:<9} {:>10} {:>10}", "server", "size", "relative");
    let mut sums: std::collections::BTreeMap<&str, (f64, usize)> = Default::default();
    for r in &rows {
        println!(
            "{:<9} {:>10} {:>9.3}",
            r.server,
            human(r.size),
            r.relative()
        );
        let e = sums.entry(r.server).or_insert((0.0, 0));
        e.0 += r.relative();
        e.1 += 1;
    }
    for (s, (sum, n)) in sums {
        println!("{s}: mean relative throughput {:.3}", sum / n as f64);
    }
    println!("\nthroughput relative to native (50 cols = 1.0):");
    for r in &rows {
        let bars = "█".repeat((r.relative() * 50.0).round() as usize);
        println!(
            "  {:<8}{:>6} {bars} {:.2}",
            r.server,
            human(r.size),
            r.relative()
        );
    }
    println!("\npaper: OpenSSH mean -8.2% (max -18% small files), Nginx mean -5.1% (max -17.6%),");
    println!("       <5% reduction for large files");
}

fn human(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{}MB", b >> 20)
    } else {
        format!("{}KB", b >> 10)
    }
}
