//! Regenerates the §9.2 memory-saving claim: common sharing vs replication.

fn main() {
    let r = erebor_bench::memsave::run(8);
    println!(
        "§9.2 memory accounting for {} concurrent llama sandboxes:",
        r.instances
    );
    println!(
        "  with common sharing (Erebor): {:>6.1} GB logical",
        r.shared_gb
    );
    println!(
        "  with replication (native):    {:>6.1} GB logical",
        r.replicated_gb
    );
    println!("  saving: {:.1}%", r.saving() * 100.0);
    println!(
        "  physical: {} common frames shared once, {} confined frames total",
        r.common_frames, r.confined_frames
    );
    println!("\npaper: ~36 GB -> ~8 GB for 8 containers (4 GB model), up to 89.1% saving");
}
