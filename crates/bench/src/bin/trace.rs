//! Emits the deterministic event trace and cycle-attribution profile of
//! one full-system request round trip.
//!
//! Stdout carries a single `EREBOR_JSON:`-marked document:
//! `{"cycles":..,"attribution":{..},"trace":{..}}`. Two runs with the same
//! build are byte-identical — the CI `--trace` stage relies on that and on
//! the attribution buckets summing to the cycle total.

fn main() {
    use erebor::{Mode, Platform};
    use erebor_workloads::hello::HelloWorld;

    let mut p = Platform::boot(Mode::Full).expect("boot");
    let mut svc = p
        .deploy(Box::new(HelloWorld { len: 4 }), 4096)
        .expect("deploy");
    let mut client = p.connect_client(&svc, [7u8; 32]).expect("connect");
    let reply = p
        .serve_request(&mut svc, &mut client, b"hi")
        .expect("serve");
    assert_eq!(reply, b"AAAA", "canonical request must round-trip");
    println!("EREBOR_JSON:{}", p.trace_json());
}
