//! Regenerates Fig. 9: real-world workload overhead across configurations.

use erebor::Mode;

fn main() {
    let rows = erebor_bench::fig9::run();
    println!("Fig. 9: normalized runtime (native = 1.00)");
    print!("{:<12}", "workload");
    for m in Mode::ALL {
        print!(" {:>11}", m.label());
    }
    println!();
    for r in &rows {
        print!("{:<12}", r.workload);
        for i in 0..5 {
            print!(" {:>11.4}", 1.0 + r.overhead(i));
        }
        println!();
    }
    let geo = erebor_bench::fig9::geomean_full_overhead(&rows);
    println!(
        "\ngeomean full-system overhead: {:.1}%  (paper: 8.1%, range 4.5–13.2%)",
        geo * 100.0
    );
    println!("\nfull-system overhead (one ░ ≈ 0.25%):");
    for r in &rows {
        let pct = r.overhead(4) * 100.0;
        let bars = "░".repeat((pct * 4.0).round() as usize);
        println!("  {:<12} {bars} {pct:.1}%", r.workload);
    }
}
