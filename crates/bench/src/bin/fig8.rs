//! Regenerates Fig. 8: LMBench latency ratios, Erebor vs native.
//!
//! Human-readable table and bar chart on stderr; a machine-readable JSON
//! document on stdout. `EREBOR_BENCH_SMOKE=1` reduces the per-benchmark
//! op count for fast CI runs.

use erebor_testkit::json::Json;

fn main() {
    let ops = if erebor_testkit::bench::smoke() { 32 } else { 512 };
    let (rows, stats) = erebor_bench::fig8::run_with_stats(ops);
    eprintln!("Fig. 8: LMBench system benchmarks (cycles/op; bar = Erebor/native)");
    eprintln!(
        "{:<12} {:>12} {:>12} {:>8}",
        "bench", "native", "erebor", "ratio"
    );
    for r in &rows {
        eprintln!(
            "{:<12} {:>12.0} {:>12.0} {:>7.2}x",
            r.name,
            r.native,
            r.erebor,
            r.ratio()
        );
    }
    eprintln!("\nlatency ratio (one █ ≈ 0.25x):");
    for r in &rows {
        let bars = "█".repeat((r.ratio() * 4.0).round() as usize);
        eprintln!("  {:<12} {bars} {:.2}x", r.name, r.ratio());
    }
    eprintln!("\npaper: ratios 1.0–3.8x; pagefault highest (3.8x), fork also high");

    let json_rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj()
                .field("name", r.name)
                .field("native_cycles_per_op", r.native)
                .field("erebor_cycles_per_op", r.erebor)
                .field("ratio", r.ratio())
        })
        .collect();
    let doc = Json::obj()
        .field("experiment", "fig8")
        .field("ops", ops)
        .field("smoke", erebor_testkit::bench::smoke())
        .field("rows", json_rows)
        .field("stats", stats.to_json());
    println!("EREBOR_JSON:{doc}");
}
