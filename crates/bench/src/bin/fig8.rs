//! Regenerates Fig. 8: LMBench latency ratios, Erebor vs native.

fn main() {
    let rows = erebor_bench::fig8::run(512);
    println!("Fig. 8: LMBench system benchmarks (cycles/op; bar = Erebor/native)");
    println!(
        "{:<12} {:>12} {:>12} {:>8}",
        "bench", "native", "erebor", "ratio"
    );
    for r in &rows {
        println!(
            "{:<12} {:>12.0} {:>12.0} {:>7.2}x",
            r.name,
            r.native,
            r.erebor,
            r.ratio()
        );
    }
    println!("\nlatency ratio (one █ ≈ 0.25x):");
    for r in &rows {
        let bars = "█".repeat((r.ratio() * 4.0).round() as usize);
        println!("  {:<12} {bars} {:.2}x", r.name, r.ratio());
    }
    println!("\npaper: ratios 1.0–3.8x; pagefault highest (3.8x), fork also high");
}
