//! Regenerates Table 6: program execution statistics under Erebor.

fn main() {
    let rows = erebor_bench::table6::run();
    println!("Table 6: program execution statistics (rates per simulated second)");
    println!(
        "{:<12} {:>7} {:>8} {:>7} {:>8} {:>9} {:>8} {:>8} {:>8} {:>8}",
        "program",
        "#PF/s",
        "#Timer/s",
        "#VE/s",
        "total/s",
        "EMC/s",
        "time(s)",
        "conf MB",
        "com MB",
        "init ovh"
    );
    for r in &rows {
        println!(
            "{:<12} {:>7.0} {:>8.0} {:>7.0} {:>8.0} {:>9.0} {:>8.2} {:>8} {:>8} {:>7.1}%",
            r.workload,
            r.pf_rate,
            r.timer_rate,
            r.ve_rate,
            r.total_rate(),
            r.emc_rate,
            r.time,
            r.conf_mb,
            r.com_mb,
            r.init_overhead * 100.0
        );
    }
    println!("\npaper (llama row): #PF 1.8k, #Timer 0.9k, #VE 1.7k, total 4.4k, EMC 46.9k,");
    println!("                   time 52.85s, conf 501MB, com 4096MB, init +52.7%");
}
