//! Runs every table/figure regeneration in sequence (EXPERIMENTS.md input).

fn main() {
    for bin in [
        "table3",
        "table4",
        "fig8",
        "fig9",
        "table6",
        "fig10",
        "memsave",
        "ablations",
    ] {
        println!("==================== {bin} ====================");
        let status = std::process::Command::new(
            std::env::current_exe().unwrap().parent().unwrap().join(bin),
        )
        .status()
        .expect("run sibling binary");
        assert!(status.success(), "{bin} failed");
        println!();
    }
}
