//! Regenerates Table 3: privilege-transition round-trip costs.

fn main() {
    let rows = erebor_bench::table3::run();
    let emc = rows
        .iter()
        .find(|r| r.name == "EMC")
        .map_or(1, |r| r.cycles);
    println!("Table 3: privilege-transition costs (CPU cycles, round trip)");
    println!("{:<10} {:>8} {:>8}", "call", "#cycle", "×EMC");
    for r in &rows {
        println!(
            "{:<10} {:>8} {:>7.2}x",
            r.name,
            r.cycles,
            r.cycles as f64 / emc as f64
        );
    }
    println!("\npaper:      EMC 1224 (1x), SYSCALL 684 (0.56x), TDCALL 5276 (4.31x), VMCALL 4031 (3.29x)");
}
