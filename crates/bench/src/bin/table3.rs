//! Regenerates Table 3: privilege-transition round-trip costs.
//!
//! Human-readable table on stderr; a machine-readable JSON document on
//! stdout (same convention as the testkit bench harness), so CI can
//! pipe/parse the stats. `EREBOR_BENCH_SMOKE=1` reduces iterations.

use erebor_testkit::json::Json;

fn main() {
    let (rows, stats) = erebor_bench::table3::run_with_stats();
    let emc = rows
        .iter()
        .find(|r| r.name == "EMC")
        .map_or(1, |r| r.cycles);
    eprintln!("Table 3: privilege-transition costs (CPU cycles, round trip)");
    eprintln!("{:<10} {:>8} {:>8}", "call", "#cycle", "×EMC");
    for r in &rows {
        eprintln!(
            "{:<10} {:>8} {:>7.2}x",
            r.name,
            r.cycles,
            r.cycles as f64 / emc as f64
        );
    }
    eprintln!("\npaper:      EMC 1224 (1x), SYSCALL 684 (0.56x), TDCALL 5276 (4.31x), VMCALL 4031 (3.29x)");

    let json_rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj()
                .field("name", r.name)
                .field("cycles", r.cycles)
                .field("x_emc", r.cycles as f64 / emc as f64)
        })
        .collect();
    let doc = Json::obj()
        .field("experiment", "table3")
        .field("unit", "cycles")
        .field("smoke", erebor_testkit::bench::smoke())
        .field("rows", json_rows)
        .field("stats", stats.to_json());
    println!("EREBOR_JSON:{doc}");
}
