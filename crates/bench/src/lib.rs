//! # erebor-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§9):
//!
//! | Experiment | Paper artifact | Entry point |
//! |---|---|---|
//! | Privilege-transition costs | Table 3 | [`table3::run`] |
//! | Privileged-operation costs | Table 4 | [`table4::run`] |
//! | LMBench system benchmarks | Fig. 8  | [`fig8::run`] |
//! | Real-world workload overhead | Fig. 9 | [`fig9::run`] |
//! | Program execution statistics | Table 6 | [`table6::run`] |
//! | Background server throughput | Fig. 10 | [`fig10::run`] |
//! | Common-memory savings | §9.2 claim | [`memsave::run`] |
//!
//! Each module returns structured rows; the `src/bin/*` binaries print
//! them in the paper's layout. All measurements are deterministic
//! simulated cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use erebor::platform::Platform;
use erebor::Mode;
use erebor_core::stats::MonitorStats;
use erebor_hw::HwStats;
use erebor_testkit::json::Json;
use erebor_trace::{Attribution, Bucket};
use erebor_workloads::Workload;

/// Translation-path and monitor counters captured from one benchmark
/// platform, for the machine-readable `stats` block of the bench
/// binaries (Table 3 / Fig. 8 JSON).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Hardware-model counters (TLB hits/misses/flushes/shootdowns).
    pub hw: HwStats,
    /// Monitor event counters (EMCs, PTE updates, exits).
    pub monitor: MonitorStats,
    /// Per-bucket cycle attribution (sums to the machine's total).
    pub attribution: Attribution,
    /// Trace events recorded on the platform (retained + evicted).
    pub trace_events: u64,
}

impl RunStats {
    /// Snapshot the counters of a platform after a run.
    #[must_use]
    pub fn capture(p: &Platform) -> RunStats {
        RunStats {
            hw: p.cvm.machine.stats,
            monitor: p.cvm.monitor.stats,
            attribution: p.cvm.machine.cycles.attribution(),
            trace_events: p.cvm.machine.trace.recorded(),
        }
    }

    /// Render as the `stats` JSON block.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let hw = Json::obj()
            .field("tlb_hits", self.hw.tlb_hits)
            .field("tlb_misses", self.hw.tlb_misses)
            .field("tlb_hit_rate", self.hw.hit_rate())
            .field("tlb_flushes", self.hw.tlb_flushes)
            .field("tlb_page_invalidations", self.hw.tlb_page_invalidations)
            .field("tlb_shootdown_ipis", self.hw.tlb_shootdown_ipis);
        let monitor = Json::obj()
            .field("emc_calls", self.monitor.emc_calls)
            .field("pte_updates", self.monitor.pte_updates)
            .field("user_copies", self.monitor.user_copies)
            .field("ghci_ops", self.monitor.ghci_ops)
            .field("sandbox_exits", self.monitor.sandbox_total_exits())
            .field("emc_denied", self.monitor.emc_denied);
        let mut attribution = Json::obj();
        for b in Bucket::ALL {
            attribution = attribution.field(b.name(), self.attribution.get(b));
        }
        attribution = attribution.field("total", self.attribution.total());
        Json::obj()
            .field("hw", hw)
            .field("monitor", monitor)
            .field("attribution", attribution)
            .field("trace_events", self.trace_events)
    }
}

/// A fresh-instance constructor for one workload.
pub type WorkloadCtor = Box<dyn Fn() -> Box<dyn Workload>>;

/// Construct the five Table 5 workloads with their standard requests.
#[must_use]
pub fn paper_workloads() -> Vec<(WorkloadCtor, Vec<u8>)> {
    vec![
        (
            Box::new(|| Box::new(erebor_workloads::llm::LlmInference::default()) as _),
            b"gen=12;translate the following text into french".to_vec(),
        ),
        (
            Box::new(|| Box::new(erebor_workloads::imgproc::ImageProc::default()) as _),
            b"n=2;7".to_vec(),
        ),
        (
            Box::new(|| Box::new(erebor_workloads::retrieval::Retrieval::default()) as _),
            b"q=20000;3".to_vec(),
        ),
        (
            Box::new(|| Box::new(erebor_workloads::graph::GraphRank) as _),
            b"iters=4;9".to_vec(),
        ),
        (
            Box::new(|| Box::new(erebor_workloads::ids::Ids::default()) as _),
            erebor_workloads::ids::synthetic_log(3500, 11, true),
        ),
    ]
}

/// Put the driving core back into kernel execution context (ring 0,
/// kernel domain) — the state from which the kernel issues EMCs. Bench
/// code needs this after driving user-mode activity.
pub fn kernel_ctx(p: &mut Platform) {
    p.enter_kernel_mode();
}

/// Geometric mean of a slice.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Table 3: privilege-transition round-trip costs.
pub mod table3 {
    use super::{Mode, Platform};
    use erebor_core::emc::EmcRequest;
    use erebor_tdx::tdcall::{tdcall, TdcallLeaf, VmcallOp};

    /// One transition class.
    #[derive(Debug, Clone)]
    pub struct Row {
        /// Transition name.
        pub name: &'static str,
        /// Round-trip cycles.
        pub cycles: u64,
    }

    /// Measure all four transitions of Table 3 with the default
    /// iteration count (reduced under `EREBOR_BENCH_SMOKE`).
    ///
    /// # Panics
    /// Panics on platform failures (bench binary context).
    #[must_use]
    pub fn run() -> Vec<Row> {
        run_with_iters(if erebor_testkit::bench::smoke() { 8 } else { 64 })
    }

    /// Like [`run`], but also returns the counters of the Full platform
    /// used for the EMC measurement.
    ///
    /// # Panics
    /// Panics on platform failures (bench binary context).
    #[must_use]
    pub fn run_with_stats() -> (Vec<Row>, super::RunStats) {
        inner(if erebor_testkit::bench::smoke() { 8 } else { 64 })
    }

    /// Measure all four transitions of Table 3, averaging over `iters`
    /// round trips each.
    ///
    /// # Panics
    /// Panics on platform failures (bench binary context).
    #[must_use]
    pub fn run_with_iters(iters: u64) -> Vec<Row> {
        inner(iters).0
    }

    fn inner(iters: u64) -> (Vec<Row>, super::RunStats) {
        let iters = iters.max(1);
        let mut rows = Vec::new();

        // Empty EMC round trip.
        let mut p = Platform::boot(Mode::Full).expect("boot full");
        let before = p.cvm.machine.cycles.total();
        for _ in 0..iters {
            p.cvm
                .monitor
                .emc(&mut p.cvm.machine, &mut p.cvm.tdx, 0, EmcRequest::Nop)
                .expect("nop emc");
        }
        rows.push(Row {
            name: "EMC",
            cycles: (p.cvm.machine.cycles.total() - before) / iters,
        });
        let stats = super::RunStats::capture(&p);

        // Empty syscall (native, no interposition, no timer noise).
        let mut p = Platform::boot(Mode::Native).expect("boot native");
        p.cvm.monitor.cfg.timer_quantum_cycles = u64::MAX / 4;
        let pid = p.spawn_native().expect("spawn");
        {
            use erebor_libos::api::Sys;
            // Warm the dispatch path once.
            p.proc(pid)
                .syscall(erebor_kernel::syscall::nr::GETPID, [0; 6])
                .expect("getpid");
            let before = p.cvm.machine.cycles.total();
            for _ in 0..iters {
                p.proc(pid)
                    .syscall(erebor_kernel::syscall::nr::GETPID, [0; 6])
                    .expect("getpid");
            }
            rows.push(Row {
                name: "SYSCALL",
                cycles: (p.cvm.machine.cycles.total() - before) / iters,
            });
        }

        // tdcall round trip: measured from the (privileged) native guest
        // kernel — the hardware cost is identical in every configuration.
        let mut p = Platform::boot(Mode::Native).expect("boot native");
        let before = p.cvm.machine.cycles.total();
        for _ in 0..iters {
            tdcall(
                &mut p.cvm.tdx,
                &mut p.cvm.machine,
                0,
                TdcallLeaf::VmCall(VmcallOp::Halt),
            )
            .expect("tdcall");
        }
        let tdcall_cycles = (p.cvm.machine.cycles.total() - before) / iters;
        rows.push(Row {
            name: "TDCALL",
            cycles: tdcall_cycles,
        });

        // vmcall in a normal (non-TD) guest: no TDX-module context
        // protection, straight VMM round trip (modelled composite).
        let c = &p.cvm.machine.costs;
        rows.push(Row {
            name: "VMCALL",
            cycles: 2 * c.vm_transition + c.vmm_dispatch,
        });

        (rows, stats)
    }
}

/// Table 4: individual privileged-operation costs, native vs Erebor.
pub mod table4 {
    use super::{Mode, Platform};
    use erebor_core::emc::{CopyDir, EmcRequest, EmcResponse};
    use erebor_hw::paging;
    use erebor_hw::regs::{Cr0, Msr};
    use erebor_hw::VirtAddr;
    use erebor_tdx::tdcall::{tdcall, TdcallLeaf};

    /// One operation class.
    #[derive(Debug, Clone)]
    pub struct Row {
        /// Operation name (Table 4 row).
        pub op: &'static str,
        /// Native cycles.
        pub native: u64,
        /// Erebor (EMC-delegated) cycles.
        pub erebor: u64,
    }

    impl Row {
        /// Erebor/native ratio.
        #[must_use]
        pub fn times(&self) -> f64 {
            self.erebor as f64 / self.native as f64
        }
    }

    fn measure(
        machine: &mut erebor_hw::cpu::Machine,
        mut f: impl FnMut(&mut erebor_hw::cpu::Machine),
    ) -> u64 {
        const ITERS: u64 = 32;
        let before = machine.cycles.total();
        for _ in 0..ITERS {
            f(machine);
        }
        (machine.cycles.total() - before) / ITERS
    }

    /// Measure all six operation classes.
    ///
    /// # Panics
    /// Panics on platform failures (bench binary context).
    #[allow(clippy::too_many_lines)]
    #[must_use]
    pub fn run() -> Vec<Row> {
        // --- native numbers (privileged kernel) -------------------------
        let mut native = Platform::boot(Mode::Native).expect("boot native");
        let nm = &mut native.cvm.machine;
        // MMU: native_set_pte — one ordered store to a PTE slot.
        let root = nm.cpus[0].cr3;
        let slot = paging::pte_slot(root, VirtAddr(0x7f55_0000_0000), 4);
        let n_mmu = measure(nm, |m| {
            let v = m.mem.read_u64(slot).unwrap_or(0);
            m.mem.write_u64(slot, v).ok();
            m.cycles.charge(m.costs.pte_store);
        });
        let n_cr = measure(nm, |m| {
            m.write_cr0(0, Cr0::WP | Cr0::PG).expect("cr0");
        });
        let n_idt = measure(nm, |m| {
            m.lidt(0, erebor_core::boot::IDT_VA).expect("lidt");
        });
        let n_msr = measure(nm, |m| {
            m.wrmsr(0, Msr::Lstar, erebor_kernel::entry::SYSCALL.0)
                .expect("wrmsr");
        });
        let n_smap = measure(nm, |m| {
            m.stac(0).expect("stac");
            m.clac(0).expect("clac");
        });
        let n_ghci = {
            let before = native.cvm.machine.cycles.total();
            tdcall(
                &mut native.cvm.tdx,
                &mut native.cvm.machine,
                0,
                TdcallLeaf::TdReport {
                    report_data: Box::new([0u8; 64]),
                },
            )
            .expect("tdreport");
            native.cvm.machine.cycles.total() - before
        };

        // --- Erebor numbers (EMC-delegated) -----------------------------
        let mut p = Platform::boot(Mode::Full).expect("boot full");
        // A user page to protect-toggle (the MMU row's PTE update).
        let pid = p.spawn_native().expect("spawn");
        let uroot = p.kernel.task(pid).expect("task").root;
        {
            use erebor_libos::api::Sys;
            let va = p
                .proc(pid)
                .syscall(erebor_kernel::syscall::nr::MMAP, [0, 4096, 3, 0, 0, 0])
                .expect("mmap");
            p.proc(pid).touch(va, true).expect("touch");
            super::kernel_ctx(&mut p);
            let e_mmu = {
                const ITERS: u64 = 32;
                let before = p.cvm.machine.cycles.total();
                for i in 0..ITERS {
                    p.cvm
                        .monitor
                        .emc(
                            &mut p.cvm.machine,
                            &mut p.cvm.tdx,
                            0,
                            EmcRequest::ProtectUserPage {
                                root: uroot,
                                va: VirtAddr(va),
                                writable: i % 2 == 0,
                            },
                        )
                        .expect("protect");
                }
                (p.cvm.machine.cycles.total() - before) / ITERS
            };
            let emc = |p: &mut Platform, req: EmcRequest| -> u64 {
                const ITERS: u64 = 32;
                let before = p.cvm.machine.cycles.total();
                for _ in 0..ITERS {
                    p.cvm
                        .monitor
                        .emc(&mut p.cvm.machine, &mut p.cvm.tdx, 0, req.clone())
                        .expect("emc");
                }
                (p.cvm.machine.cycles.total() - before) / ITERS
            };
            let e_cr = emc(
                &mut p,
                EmcRequest::WriteCr {
                    which: 0,
                    value: Cr0::WP | Cr0::PG,
                },
            );
            let e_idt = emc(
                &mut p,
                EmcRequest::SetVectorHandler {
                    vec: erebor_hw::idt::vector::TIMER,
                    handler: erebor_kernel::entry::TIMER,
                },
            );
            let e_msr = emc(
                &mut p,
                EmcRequest::WrMsr {
                    msr: Msr::Lstar,
                    value: erebor_kernel::entry::SYSCALL.0,
                },
            );
            let e_smap = emc(
                &mut p,
                EmcRequest::UserCopy {
                    dir: CopyDir::FromUser,
                    root: uroot,
                    user_va: VirtAddr(va),
                    bytes: vec![0u8; 8],
                },
            );
            let e_ghci = {
                let before = p.cvm.machine.cycles.total();
                match p
                    .cvm
                    .monitor
                    .emc(
                        &mut p.cvm.machine,
                        &mut p.cvm.tdx,
                        0,
                        EmcRequest::AttestReport {
                            report_data: Box::new([0u8; 64]),
                        },
                    )
                    .expect("attest")
                {
                    EmcResponse::Report(_) => {}
                    other => panic!("unexpected response {other:?}"),
                }
                p.cvm.machine.cycles.total() - before
            };

            vec![
                Row {
                    op: "MMU",
                    native: n_mmu,
                    erebor: e_mmu,
                },
                Row {
                    op: "CR",
                    native: n_cr,
                    erebor: e_cr,
                },
                Row {
                    op: "IDT",
                    native: n_idt,
                    erebor: e_idt,
                },
                Row {
                    op: "MSR",
                    native: n_msr,
                    erebor: e_msr,
                },
                Row {
                    op: "SMAP",
                    native: n_smap,
                    erebor: e_smap,
                },
                Row {
                    op: "GHCI",
                    native: n_ghci,
                    erebor: e_ghci,
                },
            ]
        }
    }
}

/// Fig. 8: LMBench system benchmarks, native vs Erebor.
pub mod fig8 {
    use super::{Mode, Platform};
    use erebor_workloads::lmbench;

    /// One benchmark's pair of latencies.
    #[derive(Debug, Clone)]
    pub struct Row {
        /// Benchmark name.
        pub name: &'static str,
        /// Native cycles/op.
        pub native: f64,
        /// Erebor cycles/op.
        pub erebor: f64,
    }

    impl Row {
        /// Erebor/native latency ratio (the Fig. 8 bar height).
        #[must_use]
        pub fn ratio(&self) -> f64 {
            self.erebor / self.native
        }
    }

    /// Run the suite under both configurations.
    ///
    /// # Panics
    /// Panics on platform failures (bench binary context).
    #[must_use]
    pub fn run(ops: u64) -> Vec<Row> {
        run_with_stats(ops).0
    }

    /// Like [`run`], but also returns the counters of the Full (Erebor)
    /// configuration's run.
    ///
    /// # Panics
    /// Panics on platform failures (bench binary context).
    #[must_use]
    pub fn run_with_stats(ops: u64) -> (Vec<Row>, super::RunStats) {
        let run_one = |mode: Mode| -> (Vec<lmbench::BenchResult>, super::RunStats) {
            let mut p = Platform::boot(mode).expect("boot");
            // LMBench isolates per-op latency; suppress timer noise.
            p.cvm.monitor.cfg.timer_quantum_cycles = u64::MAX / 4;
            p.reclaim_period_ticks = 0;
            let pid = p.spawn_native().expect("spawn");
            let mut h = p.proc(pid);
            let results = lmbench::run_suite(&mut h, ops).expect("suite");
            let stats = super::RunStats::capture(&p);
            (results, stats)
        };
        let (native, _) = run_one(Mode::Native);
        let (erebor, stats) = run_one(Mode::Full);
        let rows = native
            .iter()
            .zip(erebor.iter())
            .map(|(n, e)| {
                debug_assert_eq!(n.name, e.name);
                Row {
                    name: n.name,
                    native: n.cycles_per_op,
                    erebor: e.cycles_per_op,
                }
            })
            .collect();
        (rows, stats)
    }
}

/// Fig. 9: real-world workload runtime overhead across configurations.
pub mod fig9 {
    use super::{geomean, paper_workloads, Mode};
    use erebor::runner::run_workload;

    /// One workload's normalized runtimes.
    #[derive(Debug, Clone)]
    pub struct Row {
        /// Workload name.
        pub workload: &'static str,
        /// Serve cycles per mode, in [`Mode::ALL`] order.
        pub cycles: [u64; 5],
    }

    impl Row {
        /// Overhead of mode index `i` relative to native.
        #[must_use]
        pub fn overhead(&self, i: usize) -> f64 {
            self.cycles[i] as f64 / self.cycles[0] as f64 - 1.0
        }
    }

    /// Run every workload under every mode.
    ///
    /// # Panics
    /// Panics on platform failures (bench binary context).
    #[must_use]
    pub fn run() -> Vec<Row> {
        let mut rows = Vec::new();
        for (ctor, request) in paper_workloads() {
            let mut cycles = [0u64; 5];
            let mut name = "";
            for (i, mode) in Mode::ALL.iter().enumerate() {
                let report = run_workload(*mode, ctor(), &request).expect("run");
                cycles[i] = report.cycles();
                name = report.workload;
            }
            rows.push(Row {
                workload: name,
                cycles,
            });
        }
        rows
    }

    /// Geomean full-system overhead across workloads (the paper's 8.1%).
    #[must_use]
    pub fn geomean_full_overhead(rows: &[Row]) -> f64 {
        geomean(&rows.iter().map(|r| 1.0 + r.overhead(4)).collect::<Vec<_>>()) - 1.0
    }
}

/// Table 6: program execution statistics under the full system.
pub mod table6 {
    use super::{paper_workloads, Mode};
    use erebor::runner::run_workload;

    /// One workload's statistics row.
    #[derive(Debug, Clone)]
    pub struct Row {
        /// Workload name.
        pub workload: &'static str,
        /// Page-fault exits per second.
        pub pf_rate: f64,
        /// Timer exits per second.
        pub timer_rate: f64,
        /// `#VE` exits per second.
        pub ve_rate: f64,
        /// EMCs per second.
        pub emc_rate: f64,
        /// Serve time (simulated seconds).
        pub time: f64,
        /// Confined logical MB.
        pub conf_mb: u64,
        /// Common logical MB.
        pub com_mb: u64,
        /// Initialization overhead vs native (fraction).
        pub init_overhead: f64,
    }

    impl Row {
        /// Total sandbox exits per second.
        #[must_use]
        pub fn total_rate(&self) -> f64 {
            self.pf_rate + self.timer_rate + self.ve_rate
        }
    }

    /// Run every workload under the full system and collect rates.
    ///
    /// # Panics
    /// Panics on platform failures (bench binary context).
    #[must_use]
    pub fn run() -> Vec<Row> {
        let mut rows = Vec::new();
        for (ctor, request) in paper_workloads() {
            let native = run_workload(Mode::Native, ctor(), &request).expect("native");
            let full = run_workload(Mode::Full, ctor(), &request).expect("full");
            let d = &full.serve;
            rows.push(Row {
                workload: full.workload,
                pf_rate: full.rate(d.monitor.sandbox_pf_exits),
                timer_rate: full.rate(d.monitor.sandbox_timer_exits),
                ve_rate: full.rate(d.monitor.sandbox_ve_exits),
                emc_rate: full.rate(d.monitor.emc_calls),
                time: full.seconds(),
                conf_mb: full.params.logical_private >> 20,
                com_mb: full.params.logical_shared >> 20,
                init_overhead: full.init_cycles as f64 / native.init_cycles.max(1) as f64 - 1.0,
            });
        }
        rows
    }
}

/// Fig. 10: background server throughput across file sizes.
pub mod fig10 {
    use super::{Mode, Platform};
    use erebor_workloads::servers;

    /// One (server, size) pair.
    #[derive(Debug, Clone)]
    pub struct Row {
        /// "openssh" or "nginx".
        pub server: &'static str,
        /// File size in bytes.
        pub size: u64,
        /// Native throughput (bytes per simulated cycle).
        pub native_tput: f64,
        /// Erebor throughput.
        pub erebor_tput: f64,
    }

    impl Row {
        /// Relative throughput (the Fig. 10 y-axis).
        #[must_use]
        pub fn relative(&self) -> f64 {
            self.erebor_tput / self.native_tput
        }
    }

    fn requests_for(size: u64) -> u64 {
        // Keep total transferred volume roughly constant across sizes.
        (32 * 1024 * 1024 / size).clamp(2, 256)
    }

    /// Run the sweep for both servers under both configurations.
    ///
    /// # Panics
    /// Panics on platform failures (bench binary context).
    #[must_use]
    pub fn run() -> Vec<Row> {
        let mut rows = Vec::new();
        type ServerFn = fn(
            &mut dyn erebor_libos::api::Sys,
            u64,
            u64,
        ) -> Result<servers::TransferResult, erebor_libos::api::SysError>;
        for (server, f) in [
            ("openssh", servers::openssh as ServerFn),
            ("nginx", servers::nginx as ServerFn),
        ] {
            for size in servers::fig10_sizes() {
                let reqs = requests_for(size);
                let measure = |mode: Mode| -> f64 {
                    let mut p = Platform::boot(mode).expect("boot");
                    let pid = p.spawn_native().expect("spawn");
                    let mut h = p.proc(pid);
                    let r = f(&mut h, size, reqs).expect("serve");
                    r.bytes_per_cycle
                };
                rows.push(Row {
                    server,
                    size,
                    native_tput: measure(Mode::Native),
                    erebor_tput: measure(Mode::Full),
                });
            }
        }
        rows
    }
}

/// §9.2 memory-saving claim: common sharing across sandboxes.
pub mod memsave {
    use super::{Mode, Platform};
    use erebor_workloads::llm::LlmInference;
    use erebor_workloads::{SandboxedWorkload, Workload};

    /// The memory comparison for N concurrent instances.
    #[derive(Debug, Clone)]
    pub struct Report {
        /// Instances deployed.
        pub instances: u64,
        /// Logical GB with Erebor's common sharing.
        pub shared_gb: f64,
        /// Logical GB with native per-process replication.
        pub replicated_gb: f64,
        /// Physical frames actually holding common data (shared once).
        pub common_frames: u64,
        /// Physical frames holding confined data (per sandbox).
        pub confined_frames: u64,
    }

    impl Report {
        /// Fraction of memory saved by sharing.
        #[must_use]
        pub fn saving(&self) -> f64 {
            1.0 - self.shared_gb / self.replicated_gb
        }
    }

    /// Deploy `n` llama instances in one CVM and account memory.
    ///
    /// # Panics
    /// Panics on platform failures (bench binary context).
    #[must_use]
    pub fn run(n: u64) -> Report {
        let mut platform = Platform::boot(Mode::Full).expect("boot");
        let params = LlmInference::default().params();
        let mut services = Vec::new();
        for _ in 0..n {
            let svc = platform
                .deploy(
                    Box::new(SandboxedWorkload::new(LlmInference::default())),
                    1 << 20,
                )
                .expect("deploy");
            services.push(svc);
        }
        let conf_logical = params.logical_private as f64 / (1u64 << 30) as f64;
        let com_logical = params.logical_shared as f64 / (1u64 << 30) as f64;
        let common_frames = platform
            .cvm
            .monitor
            .frames
            .count_kind(|k| matches!(k, erebor_core::policy::FrameKind::Common { .. }));
        let confined_frames = platform
            .cvm
            .monitor
            .frames
            .count_kind(|k| matches!(k, erebor_core::policy::FrameKind::Confined { .. }));
        Report {
            instances: n,
            shared_gb: n as f64 * conf_logical + com_logical,
            replicated_gb: n as f64 * (conf_logical + com_logical),
            common_frames,
            confined_frames,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }
}
