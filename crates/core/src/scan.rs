//! Kernel image verification (§5.1 stage two).
//!
//! The monitor byte-scans every executable section of the kernel image for
//! sensitive-instruction encodings before mapping any of it executable.
//! Data sections may contain arbitrary bytes — W⊕X and NX make them
//! unexecutable.

use erebor_hw::image::Image;
use erebor_hw::insn::Finding;

/// Verification failure: sensitive instructions found in executable
/// sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanRejection {
    /// `(section, finding)` pairs, in scan order.
    pub findings: Vec<(String, Finding)>,
}

impl core::fmt::Display for ScanRejection {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "kernel image rejected: {} sensitive instruction(s), first {:?} in {} at +{:#x}",
            self.findings.len(),
            self.findings[0].1.class,
            self.findings[0].0,
            self.findings[0].1.offset
        )
    }
}

impl std::error::Error for ScanRejection {}

/// Verify a kernel image (or a text patch in context): executable sections
/// must contain no sensitive-instruction byte sequences.
///
/// # Errors
/// [`ScanRejection`] listing every finding.
pub fn verify_image(image: &Image) -> Result<(), ScanRejection> {
    let findings = image.scan_sensitive();
    if findings.is_empty() {
        Ok(())
    } else {
        Err(ScanRejection { findings })
    }
}

/// Verify a raw text patch (the `text_poke` path, §7). The patch is
/// checked both alone and against the bytes that will precede/follow it,
/// so an instruction cannot be assembled across the patch boundary.
///
/// # Errors
/// [`ScanRejection`] if the patched window would contain a sensitive
/// instruction.
pub fn verify_text_patch(before: &[u8], patch: &[u8], after: &[u8]) -> Result<(), ScanRejection> {
    // Window: up to 3 trailing bytes of `before` + patch + 3 leading bytes
    // of `after` (the longest sensitive encoding is 4 bytes).
    let b = &before[before.len().saturating_sub(3)..];
    let a = &after[..after.len().min(3)];
    let mut window = Vec::with_capacity(b.len() + patch.len() + a.len());
    window.extend_from_slice(b);
    window.extend_from_slice(patch);
    window.extend_from_slice(a);
    let findings = erebor_hw::insn::scan(&window);
    if findings.is_empty() {
        Ok(())
    } else {
        Err(ScanRejection {
            findings: findings
                .into_iter()
                .map(|f| (".text-patch".to_string(), f))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erebor_hw::image::SectionKind;
    use erebor_hw::insn::{encode, SensitiveClass};
    use erebor_hw::VirtAddr;

    #[test]
    fn benign_image_passes() {
        let img = Image::builder("kernel")
            .benign_text(".text", VirtAddr(0xffff_8000_0000_0000), 128 * 1024, 7)
            .section(
                ".data",
                VirtAddr(0xffff_8000_0100_0000),
                SectionKind::Data,
                encode(SensitiveClass::Wrmsr), // data may contain the bytes
            )
            .build();
        verify_image(&img).unwrap();
    }

    #[test]
    fn image_with_hidden_tdcall_rejected() {
        let mut text = vec![0x90u8; 4096];
        text.splice(1000..1000, encode(SensitiveClass::Tdcall));
        let img = Image::builder("kernel")
            .section(
                ".text",
                VirtAddr(0xffff_8000_0000_0000),
                SectionKind::Text,
                text,
            )
            .build();
        let err = verify_image(&img).unwrap_err();
        assert!(err
            .findings
            .iter()
            .any(|(_, f)| f.class == SensitiveClass::Tdcall));
        assert!(err.to_string().contains("rejected"));
    }

    #[test]
    fn text_patch_straddling_attack_rejected() {
        // before ends with 0x0f; patch starts with 0x30 → together: wrmsr.
        let before = [0x90, 0x90, 0x0f];
        let patch = [0x30, 0x90];
        let err = verify_text_patch(&before, &patch, &[]).unwrap_err();
        assert_eq!(err.findings[0].1.class, SensitiveClass::Wrmsr);
        // The same patch with a clean prefix is fine.
        verify_text_patch(&[0x90, 0x90, 0x90], &patch, &[]).unwrap();
    }

    #[test]
    fn text_patch_suffix_straddle_rejected() {
        // patch ends with 66 0f 01; after begins with cc → tdcall.
        let patch = [0x90, 0x66, 0x0f, 0x01];
        let after = [0xcc, 0x90];
        assert!(verify_text_patch(&[], &patch, &after).is_err());
    }
}
