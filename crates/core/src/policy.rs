//! Protection-key assignments and the monitor's physical frame table.
//!
//! The frame table is the monitor's ground truth for the isolation policies
//! of §5.2 and §6.1: every frame has exactly one *kind*, and the mapping
//! policy ([`crate::mmu_guard`]) consults it before any PTE is installed.

use erebor_hw::regs::PkrsPerms;
use erebor_hw::Frame;

/// Protection key for ordinary kernel data (kernel-writable).
pub const PK_DEFAULT: u8 = 0;
/// Protection key for monitor code/data/stacks: access-disabled in normal
/// mode.
pub const PK_MONITOR: u8 = 1;
/// Protection key for page-table pages: write-disabled in normal mode
/// (the Nested Kernel invariant).
pub const PK_PTP: u8 = 2;
/// Protection key for kernel text: write-disabled (W⊕X).
pub const PK_KTEXT: u8 = 3;
/// Protection key for CET shadow stacks: write-disabled.
pub const PK_SSTK: u8 = 4;
/// Protection key for the hardware IDT pages: write-disabled.
pub const PK_IDT: u8 = 5;
/// First protection key available to sandbox domains under the PKS
/// backend (keys 0..=5 are the monitor's reserved policy keys above).
pub const PK_SANDBOX_FIRST: u8 = 6;
/// Number of reserved low pkeys (handed to
/// [`erebor_hw::isolation::PksBackend::new`]).
pub const RESERVED_PKEYS: u16 = PK_SANDBOX_FIRST as u16;

/// The PKRS value the monitor programs for *normal* (deprivileged kernel)
/// execution: monitor memory inaccessible; PTPs, kernel text, shadow
/// stacks and the IDT readable but not writable; every sandbox domain
/// key (6..=15, PKS backend) access-disabled so confined direct-map
/// aliases are invisible outside an EMC.
#[must_use]
pub fn normal_mode_pkrs() -> PkrsPerms {
    let mut p = PkrsPerms::GRANT_ALL
        .with_access_disabled(PK_MONITOR)
        .with_write_disabled(PK_PTP)
        .with_write_disabled(PK_KTEXT)
        .with_write_disabled(PK_SSTK)
        .with_write_disabled(PK_IDT);
    for key in PK_SANDBOX_FIRST..PkrsPerms::KEY_COUNT {
        p = p.with_access_disabled(key);
    }
    p
}

/// The PKRS value inside an EMC (monitor privileged execution).
#[must_use]
pub fn monitor_mode_pkrs() -> PkrsPerms {
    PkrsPerms::GRANT_ALL
}

/// What a physical frame is used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Not yet classified.
    Unused,
    /// Trusted boot firmware.
    Firmware,
    /// Monitor image, data, or secure stacks.
    Monitor,
    /// CET shadow-stack memory.
    ShadowStack,
    /// A page-table page (any level, any address space).
    Ptp,
    /// The hardware interrupt descriptor table.
    Idt,
    /// Verified kernel text.
    KernelCode,
    /// Kernel data / heap.
    KernelData,
    /// Anonymous user memory of a native (non-sandboxed) process.
    UserAnon {
        /// Owning address-space id.
        asid: u32,
    },
    /// Sandbox confined memory (client data lives here).
    Confined {
        /// Owning sandbox.
        sandbox: u32,
    },
    /// Sandbox-shared common memory (models, databases).
    Common {
        /// Region id.
        region: u32,
    },
    /// Host/DMA-visible shared window (converted via `MapGPA`).
    SharedDevice,
}

/// Frame-table errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameTableError {
    /// Frame number beyond DRAM.
    OutOfRange(Frame),
    /// Retyping a frame whose current kind forbids it.
    KindConflict {
        /// The frame.
        frame: Frame,
        /// Its current kind.
        have: FrameKind,
    },
}

impl core::fmt::Display for FrameTableError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameTableError::OutOfRange(fr) => write!(f, "{fr:?} out of range"),
            FrameTableError::KindConflict { frame, have } => {
                write!(f, "{frame:?} is already {have:?}")
            }
        }
    }
}

impl std::error::Error for FrameTableError {}

/// The monitor's per-frame metadata: kind plus mapping count (for the
/// single-mapping policy on confined frames, §6.1).
#[derive(Debug)]
pub struct FrameTable {
    kinds: Vec<FrameKind>,
    mapcount: Vec<u32>,
}

impl FrameTable {
    /// A table covering `total_frames` frames, all [`FrameKind::Unused`].
    #[must_use]
    pub fn new(total_frames: u64) -> FrameTable {
        FrameTable {
            kinds: vec![FrameKind::Unused; total_frames as usize],
            mapcount: vec![0; total_frames as usize],
        }
    }

    /// Current kind of `frame`.
    #[must_use]
    pub fn kind(&self, frame: Frame) -> FrameKind {
        self.kinds
            .get(frame.0 as usize)
            .copied()
            .unwrap_or(FrameKind::Unused)
    }

    /// Set the kind of `frame`. Trusted-kind frames (monitor, PTP, shadow
    /// stack, firmware, IDT) may only be retyped back through
    /// [`FrameTable::release`].
    ///
    /// # Errors
    /// [`FrameTableError`] on range or kind conflicts.
    pub fn set_kind(&mut self, frame: Frame, kind: FrameKind) -> Result<(), FrameTableError> {
        let idx = frame.0 as usize;
        let slot = self
            .kinds
            .get_mut(idx)
            .ok_or(FrameTableError::OutOfRange(frame))?;
        match *slot {
            FrameKind::Unused | FrameKind::KernelData | FrameKind::UserAnon { .. } => {
                *slot = kind;
                Ok(())
            }
            have if have == kind => Ok(()),
            have => Err(FrameTableError::KindConflict { frame, have }),
        }
    }

    /// Release a frame back to [`FrameKind::Unused`] (teardown path; the
    /// caller is responsible for scrubbing).
    ///
    /// # Errors
    /// [`FrameTableError::OutOfRange`].
    pub fn release(&mut self, frame: Frame) -> Result<(), FrameTableError> {
        let idx = frame.0 as usize;
        let slot = self
            .kinds
            .get_mut(idx)
            .ok_or(FrameTableError::OutOfRange(frame))?;
        *slot = FrameKind::Unused;
        self.mapcount[idx] = 0;
        Ok(())
    }

    /// Number of live mappings of `frame`.
    #[must_use]
    pub fn mapcount(&self, frame: Frame) -> u32 {
        self.mapcount.get(frame.0 as usize).copied().unwrap_or(0)
    }

    /// Record a new mapping.
    pub fn inc_map(&mut self, frame: Frame) {
        if let Some(c) = self.mapcount.get_mut(frame.0 as usize) {
            *c = c.saturating_add(1);
        }
    }

    /// Record an unmapping.
    pub fn dec_map(&mut self, frame: Frame) {
        if let Some(c) = self.mapcount.get_mut(frame.0 as usize) {
            *c = c.saturating_sub(1);
        }
    }

    /// Count frames of a given kind (memory accounting for Table 6).
    #[must_use]
    pub fn count_kind(&self, pred: impl Fn(FrameKind) -> bool) -> u64 {
        self.kinds.iter().filter(|k| pred(**k)).count() as u64
    }

    /// Serialise the table for migration: every frame's kind and mapping
    /// count. The table is the monitor's mapping-policy ground truth, so
    /// it must cross byte-for-byte.
    #[must_use]
    pub fn export_state(&self) -> Vec<u8> {
        let mut w = erebor_wire::WireWriter::new();
        w.seq(self.kinds.len());
        for (kind, count) in self.kinds.iter().zip(&self.mapcount) {
            let (tag, arg): (u8, u32) = match kind {
                FrameKind::Unused => (0, 0),
                FrameKind::Firmware => (1, 0),
                FrameKind::Monitor => (2, 0),
                FrameKind::ShadowStack => (3, 0),
                FrameKind::Ptp => (4, 0),
                FrameKind::Idt => (5, 0),
                FrameKind::KernelCode => (6, 0),
                FrameKind::KernelData => (7, 0),
                FrameKind::UserAnon { asid } => (8, *asid),
                FrameKind::Confined { sandbox } => (9, *sandbox),
                FrameKind::Common { region } => (10, *region),
                FrameKind::SharedDevice => (11, 0),
            };
            w.u8(tag);
            w.u32(arg);
            w.u32(*count);
        }
        w.finish()
    }

    /// Rebuild a table from [`FrameTable::export_state`] bytes.
    ///
    /// # Errors
    /// [`erebor_wire::WireError`] on truncation, an unknown kind tag, or
    /// trailing bytes.
    pub fn import_state(bytes: &[u8]) -> Result<FrameTable, erebor_wire::WireError> {
        let mut r = erebor_wire::WireReader::new(bytes);
        let n = r.seq(9)?;
        let mut kinds = Vec::with_capacity(n);
        let mut mapcount = Vec::with_capacity(n);
        for _ in 0..n {
            let tag = r.u8()?;
            let arg = r.u32()?;
            kinds.push(match tag {
                0 => FrameKind::Unused,
                1 => FrameKind::Firmware,
                2 => FrameKind::Monitor,
                3 => FrameKind::ShadowStack,
                4 => FrameKind::Ptp,
                5 => FrameKind::Idt,
                6 => FrameKind::KernelCode,
                7 => FrameKind::KernelData,
                8 => FrameKind::UserAnon { asid: arg },
                9 => FrameKind::Confined { sandbox: arg },
                10 => FrameKind::Common { region: arg },
                11 => FrameKind::SharedDevice,
                t => {
                    return Err(erebor_wire::WireError::BadTag {
                        what: "FrameKind",
                        tag: u64::from(t),
                    })
                }
            });
            mapcount.push(r.u32()?);
        }
        r.finish()?;
        Ok(FrameTable { kinds, mapcount })
    }
}

/// The protection key the monitor assigns to a frame kind when mapping it
/// into *kernel-half* address space.
#[must_use]
pub fn pkey_for(kind: FrameKind) -> u8 {
    match kind {
        FrameKind::Monitor | FrameKind::Firmware => PK_MONITOR,
        FrameKind::Ptp => PK_PTP,
        FrameKind::KernelCode => PK_KTEXT,
        FrameKind::ShadowStack => PK_SSTK,
        FrameKind::Idt => PK_IDT,
        _ => PK_DEFAULT,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_pkrs_blocks_monitor_and_ptp() {
        let p = normal_mode_pkrs();
        assert!(p.access_disabled(PK_MONITOR));
        assert!(p.write_disabled(PK_PTP) && !p.access_disabled(PK_PTP));
        assert!(p.write_disabled(PK_KTEXT) && !p.access_disabled(PK_KTEXT));
        assert!(p.write_disabled(PK_IDT));
        assert!(!p.access_disabled(PK_DEFAULT) && !p.write_disabled(PK_DEFAULT));
        // Every sandbox domain key is access-disabled in normal mode.
        for key in PK_SANDBOX_FIRST..16 {
            assert!(p.access_disabled(key), "sandbox key {key} must be blocked");
        }
    }

    #[test]
    fn monitor_pkrs_grants_all() {
        let p = monitor_mode_pkrs();
        for k in 0..16 {
            assert!(!p.access_disabled(k) && !p.write_disabled(k));
        }
    }

    #[test]
    fn frame_table_kind_transitions() {
        let mut t = FrameTable::new(8);
        assert_eq!(t.kind(Frame(3)), FrameKind::Unused);
        t.set_kind(Frame(3), FrameKind::Ptp).unwrap();
        // A PTP cannot silently become sandbox memory.
        let err = t
            .set_kind(Frame(3), FrameKind::Confined { sandbox: 1 })
            .unwrap_err();
        assert!(matches!(err, FrameTableError::KindConflict { .. }));
        // But release + retype is fine.
        t.release(Frame(3)).unwrap();
        t.set_kind(Frame(3), FrameKind::Confined { sandbox: 1 })
            .unwrap();
    }

    #[test]
    fn kernel_data_is_retypable() {
        let mut t = FrameTable::new(4);
        t.set_kind(Frame(0), FrameKind::KernelData).unwrap();
        t.set_kind(Frame(0), FrameKind::Ptp).unwrap();
        assert_eq!(t.kind(Frame(0)), FrameKind::Ptp);
    }

    #[test]
    fn mapcount_tracking() {
        let mut t = FrameTable::new(4);
        t.inc_map(Frame(1));
        t.inc_map(Frame(1));
        assert_eq!(t.mapcount(Frame(1)), 2);
        t.dec_map(Frame(1));
        assert_eq!(t.mapcount(Frame(1)), 1);
        t.dec_map(Frame(1));
        t.dec_map(Frame(1)); // saturates
        assert_eq!(t.mapcount(Frame(1)), 0);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut t = FrameTable::new(2);
        assert!(t.set_kind(Frame(5), FrameKind::Ptp).is_err());
        assert_eq!(t.kind(Frame(5)), FrameKind::Unused);
    }

    #[test]
    fn pkey_assignment() {
        assert_eq!(pkey_for(FrameKind::Monitor), PK_MONITOR);
        assert_eq!(pkey_for(FrameKind::Ptp), PK_PTP);
        assert_eq!(pkey_for(FrameKind::KernelCode), PK_KTEXT);
        assert_eq!(pkey_for(FrameKind::KernelData), PK_DEFAULT);
        assert_eq!(pkey_for(FrameKind::Confined { sandbox: 0 }), PK_DEFAULT);
    }
}
