//! Execution configurations for the paper's ablation study (§9,
//! "Evaluation settings").

use erebor_hw::isolation::BackendKind;

/// Which protection layers are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Plain CVM: no monitor, the kernel keeps its privileges. The paper's
    /// "Native" baseline.
    Native,
    /// Normal CVM (no monitor) with applications running under the LibOS
    /// ("Erebor-LibOS-only", §9: "running applications in a normal CVM
    /// with LibOS").
    LibOsOnly,
    /// LibOS + sandbox memory-view isolation (§6.1) only
    /// ("Erebor-LibOS-MMU").
    LibOsMmu,
    /// LibOS + sandbox exit protection (§6.2) only ("Erebor-LibOS-Exit").
    LibOsExit,
    /// The full system.
    Full,
}

impl Mode {
    /// All modes in evaluation order.
    pub const ALL: [Mode; 5] = [
        Mode::Native,
        Mode::LibOsOnly,
        Mode::LibOsMmu,
        Mode::LibOsExit,
        Mode::Full,
    ];

    /// Short label used in tables and figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Mode::Native => "Native",
            Mode::LibOsOnly => "LibOS-only",
            Mode::LibOsMmu => "LibOS-MMU",
            Mode::LibOsExit => "LibOS-Exit",
            Mode::Full => "Erebor",
        }
    }
}

/// Platform-wide execution configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Protection mode.
    pub mode: Mode,
    /// Whether CET shadow stacks are enabled (the paper's prototype omits
    /// them — kernel support was in flux, §7 "Limitations" — so the
    /// default matches the paper: IBT only).
    pub shadow_stacks: bool,
    /// Timer interrupt period in simulated cycles (APIC timer quantum).
    pub timer_quantum_cycles: u64,
    /// Output records are padded to multiples of this many bytes (§6.3).
    pub output_pad_quantum: usize,
    /// Optional leakage-free quantized output intervals (§11): result
    /// records leave only at multiples of this many cycles.
    pub output_interval_cycles: Option<u64>,
    /// Batched MMU updates (§9.1's suggested optimization): range requests
    /// amortize one EMC over many PTE installs.
    pub batched_mmu: bool,
    /// Which isolation backend tags confined memory: PKS protection keys
    /// (the paper's mechanism, ≤16 domains) or TME-MK keyed memory
    /// (per-frame key-IDs, ≤4096 domains).
    pub backend: BackendKind,
}

impl ExecConfig {
    /// Configuration for a given mode with paper-matched defaults.
    #[must_use]
    pub fn new(mode: Mode) -> ExecConfig {
        ExecConfig {
            mode,
            shadow_stacks: false,
            // ~1 kHz APIC timer at the simulated 2.1 GHz clock.
            timer_quantum_cycles: 2_100_000,
            output_pad_quantum: 4096,
            output_interval_cycles: None,
            batched_mmu: false,
            backend: BackendKind::Pks,
        }
    }

    /// Whether a monitor exists at all (the LibOS-only baseline runs in a
    /// normal CVM without one).
    #[must_use]
    pub fn monitor_present(self) -> bool {
        matches!(self.mode, Mode::LibOsMmu | Mode::LibOsExit | Mode::Full)
    }

    /// Whether sandbox memory-view isolation (§6.1) is enforced.
    #[must_use]
    pub fn mmu_protection(self) -> bool {
        matches!(self.mode, Mode::LibOsMmu | Mode::Full)
    }

    /// Whether sandbox exit protection (§6.2) is enforced.
    #[must_use]
    pub fn exit_protection(self) -> bool {
        matches!(self.mode, Mode::LibOsExit | Mode::Full)
    }

    /// Whether privileged instructions are delegated through EMC (true
    /// whenever a monitor is present; this is system-wide, §9.3).
    #[must_use]
    pub fn emc_delegation(self) -> bool {
        self.monitor_present()
    }

    /// Serialise the configuration for migration. A TD migrates *with*
    /// its ablation switches: the destination must run the same
    /// protection layers or the trace would diverge immediately.
    #[must_use]
    pub fn export_state(self) -> Vec<u8> {
        let mut w = erebor_wire::WireWriter::new();
        w.u8(match self.mode {
            Mode::Native => 0,
            Mode::LibOsOnly => 1,
            Mode::LibOsMmu => 2,
            Mode::LibOsExit => 3,
            Mode::Full => 4,
        });
        w.bool(self.shadow_stacks);
        w.u64(self.timer_quantum_cycles);
        w.usize(self.output_pad_quantum);
        match self.output_interval_cycles {
            None => w.bool(false),
            Some(c) => {
                w.bool(true);
                w.u64(c);
            }
        }
        w.bool(self.batched_mmu);
        w.u8(match self.backend {
            BackendKind::Pks => 0,
            BackendKind::TmeMk => 1,
        });
        w.finish()
    }

    /// Rebuild a configuration from [`ExecConfig::export_state`] bytes.
    ///
    /// # Errors
    /// [`erebor_wire::WireError`] on truncation, unknown tags, or
    /// trailing bytes.
    pub fn import_state(bytes: &[u8]) -> Result<ExecConfig, erebor_wire::WireError> {
        let mut r = erebor_wire::WireReader::new(bytes);
        let mode = match r.u8()? {
            0 => Mode::Native,
            1 => Mode::LibOsOnly,
            2 => Mode::LibOsMmu,
            3 => Mode::LibOsExit,
            4 => Mode::Full,
            t => {
                return Err(erebor_wire::WireError::BadTag {
                    what: "Mode",
                    tag: u64::from(t),
                })
            }
        };
        let shadow_stacks = r.bool()?;
        let timer_quantum_cycles = r.u64()?;
        let output_pad_quantum = r.usize()?;
        let output_interval_cycles = if r.bool()? { Some(r.u64()?) } else { None };
        let batched_mmu = r.bool()?;
        let backend = match r.u8()? {
            0 => BackendKind::Pks,
            1 => BackendKind::TmeMk,
            t => {
                return Err(erebor_wire::WireError::BadTag {
                    what: "BackendKind",
                    tag: u64::from(t),
                })
            }
        };
        r.finish()?;
        Ok(ExecConfig {
            mode,
            shadow_stacks,
            timer_quantum_cycles,
            output_pad_quantum,
            output_interval_cycles,
            batched_mmu,
            backend,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_matrix() {
        assert!(!ExecConfig::new(Mode::Native).monitor_present());
        assert!(!ExecConfig::new(Mode::LibOsOnly).monitor_present());
        assert!(ExecConfig::new(Mode::LibOsMmu).monitor_present());
        assert!(!ExecConfig::new(Mode::LibOsOnly).mmu_protection());
        assert!(ExecConfig::new(Mode::LibOsMmu).mmu_protection());
        assert!(!ExecConfig::new(Mode::LibOsMmu).exit_protection());
        assert!(ExecConfig::new(Mode::LibOsExit).exit_protection());
        assert!(ExecConfig::new(Mode::Full).mmu_protection());
        assert!(ExecConfig::new(Mode::Full).exit_protection());
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::BTreeSet<_> = Mode::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), Mode::ALL.len());
    }
}
