//! The EREBOR-MONITOR-CALL (EMC) interface: the only path by which the
//! deprivileged kernel reaches sensitive privileged operations (§5.3,
//! Table 2).

use erebor_hw::fault::Fault;
use erebor_hw::regs::Msr;
use erebor_hw::{Frame, VirtAddr};

/// Direction of a monitor-emulated user copy (§6.1, "user copy"
/// interposition — `stac` is removed from the kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyDir {
    /// Kernel buffer → user memory (`copy_to_user`).
    ToUser,
    /// User memory → kernel buffer (`copy_from_user`).
    FromUser,
}

/// A request the kernel submits through the EMC gates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmcRequest {
    /// Create a new user address space; the monitor allocates and protects
    /// the root page-table page and links the shared kernel half.
    CreateAddressSpace {
        /// Kernel-assigned address-space id.
        asid: u32,
    },
    /// Switch CR3 to a registered address-space root.
    SwitchAddressSpace {
        /// Target root (must be monitor-registered).
        root: Frame,
    },
    /// Map a user page. `frame: None` asks the monitor to allocate one.
    MapUserPage {
        /// Target address space.
        root: Frame,
        /// Page-aligned user virtual address.
        va: VirtAddr,
        /// Specific frame, or `None` to allocate.
        frame: Option<Frame>,
        /// Writable mapping.
        writable: bool,
        /// Executable mapping (mutually exclusive with `writable`: W⊕X).
        executable: bool,
    },
    /// Map a contiguous range of fresh anonymous user pages in one call —
    /// the batched MMU update of §9.1, amortizing a single EMC gate over
    /// many PTE installs. Honoured only when the configuration enables
    /// batching.
    MapUserRange {
        /// Target address space.
        root: Frame,
        /// Page-aligned base VA.
        va: VirtAddr,
        /// Number of pages.
        pages: u64,
        /// Writable mappings.
        writable: bool,
    },
    /// Unmap a user page and release its frame if this was the last map.
    UnmapUserPage {
        /// Target address space.
        root: Frame,
        /// Page-aligned user virtual address.
        va: VirtAddr,
    },
    /// Change protection of an existing user mapping.
    ProtectUserPage {
        /// Target address space.
        root: Frame,
        /// Page-aligned user virtual address.
        va: VirtAddr,
        /// New writability.
        writable: bool,
    },
    /// Write a control register (validated: the monitor's protection bits
    /// are pinned).
    WriteCr {
        /// 0 or 4.
        which: u8,
        /// Requested value.
        value: u64,
    },
    /// Write an MSR (validated; monitor-private MSRs are denied, LSTAR is
    /// recorded and interposed).
    WrMsr {
        /// Target MSR.
        msr: Msr,
        /// Requested value.
        value: u64,
    },
    /// Register the kernel's handler for an interrupt/exception vector.
    /// The hardware IDT keeps pointing at the monitor's interposer; the
    /// monitor forwards after protection (§6.2).
    SetVectorHandler {
        /// Vector number.
        vec: u8,
        /// Kernel handler address (must lie in verified kernel text).
        handler: VirtAddr,
    },
    /// Monitor-emulated user copy (the kernel has no `stac`).
    UserCopy {
        /// Direction.
        dir: CopyDir,
        /// Address space holding the user buffer.
        root: Frame,
        /// User virtual address.
        user_va: VirtAddr,
        /// Bytes to copy to user (for [`CopyDir::ToUser`]); length to read
        /// (encoded as zeros) for [`CopyDir::FromUser`].
        bytes: Vec<u8>,
    },
    /// Convert a frame between CVM-private and shared (GHCI control, §5.2):
    /// only frames inside the device window may become shared.
    ConvertShared {
        /// Frame to convert.
        frame: Frame,
        /// Desired state.
        shared: bool,
    },
    /// Verify and load dynamic kernel code (loadable module / JITed eBPF,
    /// §5.2): the monitor byte-scans the code before mapping it executable
    /// in the kernel half.
    LoadKernelModule {
        /// Module code bytes.
        code: Vec<u8>,
        /// Kernel-half load address (page aligned).
        va: VirtAddr,
    },
    /// Verify and apply a kernel text patch (`text_poke` interposition,
    /// §7): the monitor scans the bytes before writing them into kernel
    /// text.
    TextPoke {
        /// Offset into kernel text.
        offset: u64,
        /// Replacement bytes.
        bytes: Vec<u8>,
    },
    /// Declare `pages` of confined memory for a sandbox at `va` (issued by
    /// the LibOS through the `/dev/erebor` driver, §6.1).
    DeclareConfined {
        /// Target sandbox.
        sandbox: u32,
        /// Base user VA.
        va: VirtAddr,
        /// Number of pages.
        pages: u64,
        /// Executable (program text) rather than data.
        executable: bool,
    },
    /// Attach a common region read-(write-until-seal) into a sandbox.
    AttachCommon {
        /// Target sandbox.
        sandbox: u32,
        /// Common region id.
        region: u32,
        /// Base user VA in the sandbox.
        va: VirtAddr,
    },
    /// Create a shared common region backed by `pages` frames,
    /// representing `logical_bytes` of shared instance data (§6.1).
    CreateCommon {
        /// Physical pages to back the region with.
        pages: u64,
        /// Declared logical size (reported in Table 6).
        logical_bytes: u64,
    },
    /// Emulate `cpuid` for a native process: the kernel's `#VE` handler
    /// delegates the GHCI round trip to the monitor, which caches results.
    CpuidEmulate {
        /// Requested leaf.
        leaf: u32,
    },
    /// Request a TDREPORT through the monitor (the GHCI attestation path
    /// of Table 2; the kernel may need reports for non-sandbox purposes,
    /// and Table 4's GHCI row measures this delegation).
    AttestReport {
        /// 64 bytes bound into the report.
        report_data: Box<[u8; 64]>,
    },
    /// An empty call, for the Table 3 microbenchmark.
    Nop,
}

/// A successful EMC result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmcResponse {
    /// Completed with no payload.
    Ok,
    /// A newly created address-space root.
    Root(Frame),
    /// The frame backing a new mapping.
    Mapped(Frame),
    /// Bytes read by a `FromUser` copy.
    Data(Vec<u8>),
    /// A newly created common-region id.
    Region(u32),
    /// `cpuid` emulation result.
    Cpuid([u32; 4]),
    /// A TDREPORT produced on the kernel's behalf.
    Report(Box<erebor_tdx::attest::TdReport>),
}

/// EMC failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmcError {
    /// The monitor's policy refused the request.
    Denied(&'static str),
    /// The request was malformed.
    BadRequest(&'static str),
    /// A hardware fault occurred while executing the request.
    Fault(Fault),
    /// Out of physical memory / budget.
    NoMemory,
    /// Sandbox creation exceeded the isolation backend's domain capacity
    /// (16 pkeys under PKS, 4096 key-IDs under TME-MK). First-class so
    /// the LibOS can surface it instead of silently reusing a live key.
    DomainsExhausted {
        /// Total domains (including the monitor's reserved keys) the
        /// active backend supports.
        capacity: u16,
    },
}

impl From<Fault> for EmcError {
    fn from(f: Fault) -> EmcError {
        EmcError::Fault(f)
    }
}

impl core::fmt::Display for EmcError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EmcError::Denied(why) => write!(f, "EMC denied: {why}"),
            EmcError::BadRequest(why) => write!(f, "EMC bad request: {why}"),
            EmcError::Fault(fault) => write!(f, "EMC fault: {fault}"),
            EmcError::NoMemory => write!(f, "EMC: out of memory"),
            EmcError::DomainsExhausted { capacity } => {
                write!(f, "EMC: isolation domains exhausted ({capacity} total)")
            }
        }
    }
}

impl std::error::Error for EmcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = EmcError::Denied("monitor frame");
        assert!(e.to_string().contains("denied"));
        let f: EmcError = Fault::GeneralProtection("x").into();
        assert!(matches!(f, EmcError::Fault(_)));
        let x = EmcError::DomainsExhausted { capacity: 16 };
        assert!(x.to_string().contains("exhausted") && x.to_string().contains("16"));
    }
}
