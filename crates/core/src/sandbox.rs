//! EREBOR-SANDBOX types and lifecycle (§6).
//!
//! A sandbox is a dedicated address space processing one client's data.
//! Its memory is *confined* (exclusively owned, pinned, single-mapped) or
//! *common* (read-only shared instances such as models and databases).
//! After client data is installed, every software-controlled exit is fatal
//! except the monitor's own I/O channel; asynchronous exits are interposed
//! and the register state scrubbed (Fig. 7).

use erebor_crypto::kx::{Role, SecureChannel, SessionKeys};
use erebor_hw::fault::VeReason;
use erebor_hw::isolation::DomainId;
use erebor_hw::regs::GprContext;
use erebor_hw::{Frame, VirtAddr};
use erebor_wire::{WireError, WireReader, WireWriter};
use std::collections::VecDeque;

/// Identifier of a sandbox container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SandboxId(pub u32);

/// Lifecycle state of a sandbox (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SandboxState {
    /// Initializing: LibOS may declare memory, preload files, write common
    /// regions; syscalls still forward to the kernel.
    Setup,
    /// Client data installed: all software-controlled exits are fatal
    /// except the monitor I/O channel.
    DataLoaded,
    /// Killed or torn down; memory scrubbed.
    Dead,
}

/// A shared common region (model weights, databases, shared libraries).
#[derive(Debug)]
pub struct CommonRegion {
    /// Region id.
    pub id: u32,
    /// Backing frames.
    pub frames: Vec<Frame>,
    /// Once sealed, all mappings are read-only forever.
    pub sealed: bool,
    /// Declared logical size (for Table 6 reporting; the simulation backs
    /// a scaled-down physical window).
    pub logical_bytes: u64,
    /// Sandboxes the region is mapped into, with their base VAs.
    pub attached: Vec<(SandboxId, VirtAddr)>,
}

impl CommonRegion {
    /// Serialise the region for migration.
    #[must_use]
    pub fn export_state(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u32(self.id);
        w.seq(self.frames.len());
        for f in &self.frames {
            w.u64(f.0);
        }
        w.bool(self.sealed);
        w.u64(self.logical_bytes);
        w.seq(self.attached.len());
        for (sb, va) in &self.attached {
            w.u32(sb.0);
            w.u64(va.0);
        }
        w.finish()
    }

    /// Rebuild a region from [`CommonRegion::export_state`] bytes.
    ///
    /// # Errors
    /// [`WireError`] on any malformed field.
    pub fn import_state(bytes: &[u8]) -> Result<CommonRegion, WireError> {
        let mut r = WireReader::new(bytes);
        let id = r.u32()?;
        let n = r.seq(8)?;
        let mut frames = Vec::with_capacity(n);
        for _ in 0..n {
            frames.push(Frame(r.u64()?));
        }
        let sealed = r.bool()?;
        let logical_bytes = r.u64()?;
        let n = r.seq(12)?;
        let mut attached = Vec::with_capacity(n);
        for _ in 0..n {
            let sb = SandboxId(r.u32()?);
            let va = VirtAddr(r.u64()?);
            attached.push((sb, va));
        }
        r.finish()?;
        Ok(CommonRegion {
            id,
            frames,
            sealed,
            logical_bytes,
            attached,
        })
    }
}

/// Monitor-side bookkeeping for one sandbox.
pub struct Sandbox {
    /// Identifier.
    pub id: SandboxId,
    /// The sandbox's page-table root.
    pub root: Frame,
    /// Isolation domain the backend allocated for this sandbox (a pkey
    /// under PKS, a TME-MK key-ID under keyed memory). Freed on kill.
    pub domain: DomainId,
    /// Lifecycle state.
    pub state: SandboxState,
    /// Confined mappings `(va, frame)`, pinned for the sandbox lifetime.
    pub confined: Vec<(VirtAddr, Frame)>,
    /// Hard limit on confined pages (set by the service provider, §6.1).
    pub budget_pages: u64,
    /// Declared logical confined bytes (Table 6 "Conf." column).
    pub logical_confined_bytes: u64,
    /// Attached common regions and their base VAs.
    pub attached_common: Vec<(u32, VirtAddr)>,
    /// Common pages materialized so far (demand-mapped on #PF exits).
    pub common_mapped: Vec<(u32, VirtAddr)>,
    /// Context saved (then scrubbed) at asynchronous exits.
    pub saved_ctx: Option<GprContext>,
    /// Why the sandbox was killed, if it was.
    pub kill_reason: Option<&'static str>,
    /// Plaintext client input staged in monitor memory, awaiting the
    /// LibOS's INPUT ioctl.
    pub pending_input: VecDeque<Vec<u8>>,
    /// The monitor's end of the client secure channel.
    pub session: Option<SecureChannel>,
    /// Sealed output records awaiting proxy pickup.
    pub outbox: VecDeque<Vec<u8>>,
}

impl Sandbox {
    /// A fresh sandbox in [`SandboxState::Setup`].
    #[must_use]
    pub fn new(id: SandboxId, root: Frame, budget_pages: u64) -> Sandbox {
        Sandbox {
            id,
            root,
            domain: DomainId::DEFAULT,
            state: SandboxState::Setup,
            confined: Vec::new(),
            budget_pages,
            logical_confined_bytes: 0,
            attached_common: Vec::new(),
            common_mapped: Vec::new(),
            saved_ctx: None,
            kill_reason: None,
            pending_input: VecDeque::new(),
            session: None,
            outbox: VecDeque::new(),
        }
    }

    /// Pages of confined memory currently declared.
    #[must_use]
    pub fn confined_pages(&self) -> u64 {
        self.confined.len() as u64
    }

    /// Whether the given user VA falls in a confined mapping.
    #[must_use]
    pub fn owns_va(&self, va: VirtAddr) -> bool {
        let page = va.page_base();
        self.confined.iter().any(|(base, _)| *base == page)
    }

    /// Serialise the sandbox for migration — lifecycle, confined map,
    /// staged client I/O, and the live secure-channel counters.
    #[must_use]
    pub fn export_state(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u32(self.id.0);
        w.u64(self.root.0);
        w.u16(self.domain.0);
        w.u8(match self.state {
            SandboxState::Setup => 0,
            SandboxState::DataLoaded => 1,
            SandboxState::Dead => 2,
        });
        w.seq(self.confined.len());
        for (va, frame) in &self.confined {
            w.u64(va.0);
            w.u64(frame.0);
        }
        w.u64(self.budget_pages);
        w.u64(self.logical_confined_bytes);
        w.seq(self.attached_common.len());
        for (region, va) in &self.attached_common {
            w.u32(*region);
            w.u64(va.0);
        }
        w.seq(self.common_mapped.len());
        for (region, va) in &self.common_mapped {
            w.u32(*region);
            w.u64(va.0);
        }
        match &self.saved_ctx {
            None => w.bool(false),
            Some(ctx) => {
                w.bool(true);
                for g in ctx.gpr {
                    w.u64(g);
                }
                w.u64(ctx.rip);
                w.u64(ctx.rflags);
            }
        }
        match self.kill_reason {
            None => w.bool(false),
            Some(reason) => {
                w.bool(true);
                w.str(reason);
            }
        }
        w.seq(self.pending_input.len());
        for b in &self.pending_input {
            w.bytes(b);
        }
        match &self.session {
            None => w.bool(false),
            Some(chan) => {
                let (keys, role, send_ctr, recv_ctr) = chan.to_parts();
                w.bool(true);
                w.raw(&keys.c2s);
                w.raw(&keys.s2c);
                w.u8(match role {
                    Role::Client => 0,
                    Role::Monitor => 1,
                });
                w.u64(send_ctr);
                w.u64(recv_ctr);
            }
        }
        w.seq(self.outbox.len());
        for b in &self.outbox {
            w.bytes(b);
        }
        w.finish()
    }

    /// Rebuild a sandbox from [`Sandbox::export_state`] bytes.
    ///
    /// # Errors
    /// [`WireError`] on any malformed field.
    pub fn import_state(bytes: &[u8]) -> Result<Sandbox, WireError> {
        let mut r = WireReader::new(bytes);
        let id = SandboxId(r.u32()?);
        if id.0 == 0 {
            return Err(WireError::BadValue {
                what: "sandbox id zero",
            });
        }
        let root = Frame(r.u64()?);
        let domain = DomainId(r.u16()?);
        let state = match r.u8()? {
            0 => SandboxState::Setup,
            1 => SandboxState::DataLoaded,
            2 => SandboxState::Dead,
            t => {
                return Err(WireError::BadTag {
                    what: "SandboxState",
                    tag: u64::from(t),
                })
            }
        };
        let n = r.seq(16)?;
        let mut confined = Vec::with_capacity(n);
        for _ in 0..n {
            let va = VirtAddr(r.u64()?);
            let frame = Frame(r.u64()?);
            confined.push((va, frame));
        }
        let budget_pages = r.u64()?;
        let logical_confined_bytes = r.u64()?;
        let n = r.seq(12)?;
        let mut attached_common = Vec::with_capacity(n);
        for _ in 0..n {
            let region = r.u32()?;
            let va = VirtAddr(r.u64()?);
            attached_common.push((region, va));
        }
        let n = r.seq(12)?;
        let mut common_mapped = Vec::with_capacity(n);
        for _ in 0..n {
            let region = r.u32()?;
            let va = VirtAddr(r.u64()?);
            common_mapped.push((region, va));
        }
        let saved_ctx = if r.bool()? {
            let mut gpr = [0u64; 16];
            for g in &mut gpr {
                *g = r.u64()?;
            }
            let rip = r.u64()?;
            let rflags = r.u64()?;
            Some(GprContext { gpr, rip, rflags })
        } else {
            None
        };
        let kill_reason = if r.bool()? {
            Some(erebor_trace::intern(r.str()?))
        } else {
            None
        };
        let n = r.seq(8)?;
        let mut pending_input = VecDeque::with_capacity(n);
        for _ in 0..n {
            pending_input.push_back(r.bytes()?.to_vec());
        }
        let session = if r.bool()? {
            let c2s: [u8; 32] = r.array()?;
            let s2c: [u8; 32] = r.array()?;
            let role = match r.u8()? {
                0 => Role::Client,
                1 => Role::Monitor,
                t => {
                    return Err(WireError::BadTag {
                        what: "Role",
                        tag: u64::from(t),
                    })
                }
            };
            let send_ctr = r.u64()?;
            let recv_ctr = r.u64()?;
            Some(SecureChannel::from_parts(
                SessionKeys { c2s, s2c },
                role,
                send_ctr,
                recv_ctr,
            ))
        } else {
            None
        };
        let n = r.seq(8)?;
        let mut outbox = VecDeque::with_capacity(n);
        for _ in 0..n {
            outbox.push_back(r.bytes()?.to_vec());
        }
        r.finish()?;
        Ok(Sandbox {
            id,
            root,
            domain,
            state,
            confined,
            budget_pages,
            logical_confined_bytes,
            attached_common,
            common_mapped,
            saved_ctx,
            kill_reason,
            pending_input,
            session,
            outbox,
        })
    }
}

/// Dense slab of sandboxes keyed by [`SandboxId`].
///
/// Ids are assigned monotonically from 1 and never reused, so slot
/// `id - 1` holds sandbox `id` for the whole platform lifetime — dead
/// sandboxes stay in place, exactly like the ordered map this replaces
/// (kills mark [`SandboxState::Dead`], they never remove entries). Point
/// lookups are O(1) array indexing and iteration runs in id order, so
/// every observable behaviour (contents, iteration order, Debug output
/// derived from it) is byte-identical to the `BTreeMap<u32, Sandbox>`
/// seed representation. Because ids are never reused, the slot index
/// itself acts as the generation: a stale id can only miss (point past
/// the end) or land on the one sandbox that ever owned it.
#[derive(Default)]
pub struct SandboxTable {
    slots: Vec<Sandbox>,
}

impl SandboxTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> SandboxTable {
        SandboxTable { slots: Vec::new() }
    }

    fn slot_of(&self, id: u32) -> Option<usize> {
        (id >= 1)
            .then(|| (id - 1) as usize)
            .filter(|&i| i < self.slots.len())
    }

    /// The sandbox with this id, if one was ever created.
    #[must_use]
    pub fn get(&self, id: &u32) -> Option<&Sandbox> {
        self.slot_of(*id).map(|i| &self.slots[i])
    }

    /// Mutable access to the sandbox with this id.
    pub fn get_mut(&mut self, id: &u32) -> Option<&mut Sandbox> {
        self.slot_of(*id).map(move |i| &mut self.slots[i])
    }

    /// Whether this id names a (live or dead) sandbox.
    #[must_use]
    pub fn contains_key(&self, id: &u32) -> bool {
        self.slot_of(*id).is_some()
    }

    /// Insert the next sandbox. Ids are dense and monotonic by
    /// construction ([`crate::monitor::Monitor::create_sandbox`] is the
    /// only caller); the map-compatible return is always `None`.
    ///
    /// # Panics
    /// If `id` is not exactly one past the current highest id.
    pub fn insert(&mut self, id: u32, sandbox: Sandbox) -> Option<Sandbox> {
        assert_eq!(
            id as usize,
            self.slots.len() + 1,
            "sandbox ids are dense and monotonic"
        );
        self.slots.push(sandbox);
        None
    }

    /// All sandboxes in id order.
    pub fn values(&self) -> impl Iterator<Item = &Sandbox> {
        self.slots.iter()
    }

    /// All ids in order (map-compatible `&u32` items).
    pub fn keys(&self) -> impl Iterator<Item = &u32> {
        self.slots.iter().map(|s| &s.id.0)
    }

    /// Number of sandboxes ever created (dead ones included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no sandbox was ever created.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

impl core::ops::Index<&u32> for SandboxTable {
    type Output = Sandbox;

    fn index(&self, id: &u32) -> &Sandbox {
        self.get(id).expect("no such sandbox") // lint:allow(panic) — Index's contract is to panic on a missing key
    }
}

impl core::fmt::Debug for SandboxTable {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_map().entries(self.keys().zip(self.values())).finish()
    }
}

impl core::fmt::Debug for Sandbox {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Sandbox")
            .field("id", &self.id)
            .field("state", &self.state)
            .field("confined_pages", &self.confined.len())
            .field("kill_reason", &self.kill_reason)
            .finish_non_exhaustive()
    }
}

/// Why the sandbox exited to ring 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitCause {
    /// `syscall` instruction with this number.
    Syscall {
        /// Syscall number (rax).
        nr: u64,
    },
    /// Virtualization exception (attempted hypercall-class event).
    Ve(VeReason),
    /// APIC timer interrupt (scheduler tick).
    Timer,
    /// External device interrupt.
    Device,
    /// A hardware exception with this vector (e.g. #UD, divide error).
    Exception(u8),
}

/// The monitor's disposition of an interposed exit (Fig. 7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExitDecision {
    /// Protected state saved; continue into this kernel handler with a
    /// scrubbed context.
    ForwardToKernel {
        /// Kernel handler address.
        handler: VirtAddr,
    },
    /// The monitor fully handled the exit (I/O channel, cached cpuid);
    /// resume the sandbox with this syscall return value in `rax`.
    Handled {
        /// Value placed in `rax` on resume.
        rax: u64,
    },
    /// Policy violation: the sandbox was killed and scrubbed.
    Killed {
        /// Human-readable reason.
        reason: &'static str,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sandbox_new_defaults() {
        let s = Sandbox::new(SandboxId(3), Frame(100), 64);
        assert_eq!(s.state, SandboxState::Setup);
        assert_eq!(s.confined_pages(), 0);
        assert!(s.kill_reason.is_none());
    }

    #[test]
    fn owns_va_matches_page() {
        let mut s = Sandbox::new(SandboxId(1), Frame(1), 4);
        s.confined.push((VirtAddr(0x40_0000), Frame(9)));
        assert!(s.owns_va(VirtAddr(0x40_0123)));
        assert!(!s.owns_va(VirtAddr(0x41_0000)));
    }
}
