//! EREBOR-MONITOR: the privileged-mode security monitor (§5–§6).
//!
//! The monitor owns every sensitive interface of Table 2 on behalf of the
//! deprivileged kernel: the MMU (through [`crate::mmu_guard`]), control and
//! model-specific registers, the IDT, `stac`-based user copies, and GHCI.
//! It also owns the sandbox lifecycle and exit interposition of §6.

use crate::config::ExecConfig;
use crate::emc::{CopyDir, EmcError, EmcRequest, EmcResponse};
use crate::gate::EmcGate;
use crate::mmu_guard::{self, MapError};
use crate::policy::{FrameKind, FrameTable, PK_DEFAULT, PK_IDT, PK_MONITOR, RESERVED_PKEYS};
use crate::rng::DetRng;
use crate::sandbox::{CommonRegion, ExitDecision, Sandbox, SandboxId, SandboxState, SandboxTable};
use crate::scan;
use crate::stats::{LookupStats, MonitorStats};
use erebor_hw::cpu::Machine;
use erebor_hw::fault::{Fault, VeReason};
use erebor_hw::idt;
use erebor_hw::isolation::{Backend, DomainId, IsolationBackend, IsolationError};
use erebor_hw::image::{Image, SectionKind};
use erebor_hw::layout::{self, direct_map};
use erebor_hw::paging::{self, Pte, PteFlags};
use erebor_hw::phys::Region;
use erebor_hw::regs::{Cr0, Cr4, GprContext, Msr};
use erebor_hw::{Frame, VirtAddr, PAGE_SIZE};
use erebor_tdx::tdcall::{tdcall, TdcallLeaf, TdcallResult, VmcallOp};
use erebor_tdx::TdxModule;
use erebor_trace::{Bucket, TraceEvent};
use std::collections::{BTreeMap, HashMap};

/// The reserved file descriptor of the monitor I/O channel (§6.3).
pub const EREBOR_IO_FD: u64 = 1023;
/// `ioctl` request: receive client input into a sandbox buffer.
pub const IOCTL_INPUT: u64 = 0x4500;
/// `ioctl` request: submit output data for padding, sealing and return.
pub const IOCTL_OUTPUT: u64 = 0x4501;

/// Linux syscall numbers the interposer must recognise.
pub const SYS_IOCTL: u64 = 16;

/// Saved CPU state for a monitor-internal privilege raise: monitor code
/// executing outside the EMC gate (interposers, container lifecycle) must
/// run in ring 0, monitor domain, with monitor PKRS — and restore the
/// caller's state afterwards.
pub(crate) struct PrivGuard {
    domain: erebor_hw::cpu::Domain,
    mode: erebor_hw::cpu::CpuMode,
    pkrs: u64,
}

impl PrivGuard {
    /// Raise to monitor privileges on `cpu`.
    pub(crate) fn enter(machine: &mut Machine, cpu: usize) -> Result<PrivGuard, Fault> {
        let g = PrivGuard {
            domain: machine.cpus[cpu].domain,
            mode: machine.cpus[cpu].mode,
            pkrs: machine.cpus[cpu].msr(Msr::Pkrs),
        };
        machine.cpus[cpu].domain = erebor_hw::cpu::Domain::Monitor;
        machine.cpus[cpu].mode = erebor_hw::CpuMode::Supervisor;
        machine.wrmsr(cpu, Msr::Pkrs, crate::policy::monitor_mode_pkrs().0)?;
        Ok(g)
    }

    /// Restore the saved state.
    pub(crate) fn exit(self, machine: &mut Machine, cpu: usize) {
        machine.wrmsr(cpu, Msr::Pkrs, self.pkrs).ok();
        machine.cpus[cpu].domain = self.domain;
        machine.cpus[cpu].mode = self.mode;
    }
}

/// The security monitor.
pub struct Monitor {
    /// Active configuration (ablation switches).
    pub cfg: ExecConfig,
    /// Event counters.
    pub stats: MonitorStats,
    /// The physical frame table (ground truth for mapping policy).
    pub frames: FrameTable,
    /// The isolation backend confining sandbox memory: PKS protection
    /// keys (≤16 domains) or TME-MK keyed memory (≤4096). Selected by
    /// [`ExecConfig::backend`].
    pub backend: Backend,
    /// Run the post-teardown isolation fence in [`Monitor::kill_sandbox`]
    /// (alias retag-back, domain revocation, MMU-epoch bump, cpuid-MRU
    /// drop). Always on in production; the stale-decision regression
    /// test ablates it to reproduce the bug class.
    pub kill_fence: bool,
    /// EMC gate state.
    pub gate: EmcGate,
    /// Deterministic randomness for channel keys.
    pub rng: DetRng,
    /// The kernel's (initial) address-space root.
    pub kernel_root: Frame,
    /// Monitor VA loaded into `IA32_LSTAR` (syscall interposer).
    pub syscall_interposer: VirtAddr,
    /// Monitor VA installed in every hardware IDT vector.
    pub interrupt_interposer: VirtAddr,
    /// Hardware IDT base (monitor-owned page).
    pub idt_base: VirtAddr,
    /// All live sandboxes.
    pub sandboxes: SandboxTable,
    /// All common regions.
    pub common_regions: BTreeMap<u32, CommonRegion>,
    /// Use the O(1) indexes (root→sandbox, address-space mirror, cpuid
    /// MRU) on the gate hot path. Off = the seed's linear scans and
    /// ordered-map lookups, with identical results; the fleet bench
    /// ablation and the equivalence suite flip this.
    pub fast_lookup: bool,
    /// Coalesce the teardown/seal/reclaim shootdown traffic into one
    /// IPI per (core, mm) maintenance window instead of per-page
    /// round trips. Off by default: unlike `fast_lookup`, this changes
    /// the *modeled* IPI cost (fewer interrupt deliveries), so it is an
    /// explicit fleet-mode optimization, not a transparent fast path.
    pub coalesce_shootdowns: bool,
    /// Lookup fast-path counters — deliberately outside
    /// [`MonitorStats`]/snapshots (see [`LookupStats`]).
    pub lookup_stats: LookupStats,
    kernel_text: Option<(VirtAddr, Vec<Frame>)>,
    kernel_syscall_entry: Option<VirtAddr>,
    vec_handlers: Vec<Option<VirtAddr>>,
    address_spaces: BTreeMap<u64, u32>,
    /// Hash mirror of `address_spaces` for O(1) gate-path lookups; the
    /// ordered map stays authoritative for enumeration/snapshots.
    as_index: HashMap<u64, u32>,
    /// Root-frame → sandbox id over *live* sandboxes only (entries are
    /// removed on kill, so a hit is always current).
    root_index: HashMap<u64, u32>,
    cma: Region,
    device: Region,
    cpuid_cache: BTreeMap<u32, [u32; 4]>,
    cpuid_mru: Option<(u32, [u32; 4])>,
    kernel_return: VirtAddr,
    next_sandbox: u32,
    next_region: u32,
}

impl Monitor {
    /// Assemble the monitor. Called by [`crate::boot::boot_stage1`] after
    /// the monitor image is measured and mapped.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        cfg: ExecConfig,
        frames: FrameTable,
        gate: EmcGate,
        rng_seed: [u8; 32],
        kernel_root: Frame,
        idt_base: VirtAddr,
        cma: Region,
        device: Region,
    ) -> Monitor {
        Monitor {
            cfg,
            stats: MonitorStats::default(),
            frames,
            backend: Backend::new(cfg.backend, RESERVED_PKEYS, PK_MONITOR),
            kill_fence: true,
            gate,
            rng: DetRng::new(rng_seed),
            kernel_root,
            syscall_interposer: VirtAddr(layout::MONITOR_BASE.0 + 0x100),
            interrupt_interposer: VirtAddr(layout::MONITOR_BASE.0 + 0x200),
            idt_base,
            sandboxes: SandboxTable::new(),
            common_regions: BTreeMap::new(),
            fast_lookup: true,
            coalesce_shootdowns: false,
            lookup_stats: LookupStats::default(),
            kernel_text: None,
            kernel_syscall_entry: None,
            vec_handlers: vec![None; 256],
            address_spaces: BTreeMap::new(),
            as_index: HashMap::new(),
            root_index: HashMap::new(),
            cma,
            device,
            cpuid_cache: BTreeMap::new(),
            cpuid_mru: None,
            kernel_return: layout::KERNEL_BASE,
            next_sandbox: 1,
            next_region: 1,
        }
    }

    /// The kernel handler registered for `vec`, if any.
    #[must_use]
    pub fn kernel_vector_handler(&self, vec: u8) -> Option<VirtAddr> {
        self.vec_handlers[vec as usize]
    }

    /// The kernel's recorded syscall entry (forward target).
    #[must_use]
    pub fn kernel_syscall_entry(&self) -> Option<VirtAddr> {
        self.kernel_syscall_entry
    }

    /// Whether `root` is a monitor-registered address space.
    #[must_use]
    pub fn address_space_registered(&self, root: Frame) -> bool {
        if root == self.kernel_root {
            return true;
        }
        if self.fast_lookup {
            self.lookup_stats.bump_as_index();
            return self.as_index.contains_key(&root.0);
        }
        self.address_spaces.contains_key(&root.0)
    }

    /// Every address-space root the monitor knows about: the kernel root
    /// plus every registered user root. Sandbox roots are *not* included —
    /// walk [`Monitor::sandboxes`] for those. Used by the state auditor to
    /// enumerate all page-table trees reachable from a saved CR3.
    #[must_use]
    pub fn address_space_roots(&self) -> Vec<Frame> {
        let mut roots = vec![self.kernel_root];
        roots.extend(self.address_spaces.keys().map(|&r| Frame(r)));
        roots
    }

    // ==================================================================
    // Live migration: full-monitor state transfer (§13)
    // ==================================================================

    /// Serialise the complete monitor for migration: configuration,
    /// audit counters, frame policy, backend domains, EMC ledger, DRBG
    /// position, interposer layout, every sandbox (including sealed
    /// channels mid-stream), and every common region.
    ///
    /// [`LookupStats`] is deliberately *not* exported: it counts host-side
    /// fast-path hits, which are non-architectural — a migrated monitor
    /// starts those at zero.
    #[must_use]
    pub fn export_state(&self) -> Vec<u8> {
        let mut w = erebor_wire::WireWriter::new();
        w.bytes(&self.cfg.export_state());
        w.bytes(&self.stats.export_state());
        w.bytes(&self.frames.export_state());
        w.bytes(&self.backend.export_state());
        w.bool(self.kill_fence);
        w.bytes(&self.gate.export_state());
        let (rng_key, rng_ctr) = self.rng.to_parts();
        w.raw(&rng_key);
        w.u32(rng_ctr);
        w.u64(self.kernel_root.0);
        w.u64(self.syscall_interposer.0);
        w.u64(self.interrupt_interposer.0);
        w.u64(self.idt_base.0);
        w.seq(self.sandboxes.len());
        for sb in self.sandboxes.values() {
            w.bytes(&sb.export_state());
        }
        w.seq(self.common_regions.len());
        for region in self.common_regions.values() {
            w.bytes(&region.export_state());
        }
        w.bool(self.fast_lookup);
        w.bool(self.coalesce_shootdowns);
        match &self.kernel_text {
            None => w.bool(false),
            Some((va, frames)) => {
                w.bool(true);
                w.u64(va.0);
                w.seq(frames.len());
                for f in frames {
                    w.u64(f.0);
                }
            }
        }
        match self.kernel_syscall_entry {
            None => w.bool(false),
            Some(va) => {
                w.bool(true);
                w.u64(va.0);
            }
        }
        w.seq(self.vec_handlers.len());
        for h in &self.vec_handlers {
            match h {
                None => w.bool(false),
                Some(va) => {
                    w.bool(true);
                    w.u64(va.0);
                }
            }
        }
        w.seq(self.address_spaces.len());
        for (&root, &owner) in &self.address_spaces {
            w.u64(root);
            w.u32(owner);
        }
        w.u64(self.cma.start.0);
        w.u64(self.cma.end.0);
        w.u64(self.device.start.0);
        w.u64(self.device.end.0);
        w.seq(self.cpuid_cache.len());
        for (&leaf, regs) in &self.cpuid_cache {
            w.u32(leaf);
            for &v in regs {
                w.u32(v);
            }
        }
        match &self.cpuid_mru {
            None => w.bool(false),
            Some((leaf, regs)) => {
                w.bool(true);
                w.u32(*leaf);
                for &v in regs {
                    w.u32(v);
                }
            }
        }
        w.u64(self.kernel_return.0);
        w.u32(self.next_sandbox);
        w.u32(self.next_region);
        w.finish()
    }

    /// Rebuild a monitor from [`Monitor::export_state`] bytes.
    ///
    /// Everything is parsed and validated before the monitor is
    /// assembled, so a torn or hostile stream never yields a
    /// half-imported monitor. The O(1) indexes (`as_index`,
    /// `root_index`) are derived from the authoritative maps rather
    /// than transferred, and [`LookupStats`] starts fresh.
    ///
    /// # Errors
    /// [`erebor_wire::WireError`] on truncation, unknown tags, sparse
    /// or out-of-order sandbox ids, duplicate region ids, or trailing
    /// bytes.
    pub fn import_state(bytes: &[u8]) -> Result<Monitor, erebor_wire::WireError> {
        use erebor_wire::WireError;
        let mut r = erebor_wire::WireReader::new(bytes);
        let cfg = ExecConfig::import_state(r.bytes()?)?;
        let stats = MonitorStats::import_state(r.bytes()?)?;
        let frames = FrameTable::import_state(r.bytes()?)?;
        let backend_bytes = r.bytes()?.to_vec();
        let kill_fence = r.bool()?;
        let gate = EmcGate::import_state(r.bytes()?)?;
        let rng_key = r.array::<32>()?;
        let rng_ctr = r.u32()?;
        let kernel_root = Frame(r.u64()?);
        let syscall_interposer = VirtAddr(r.u64()?);
        let interrupt_interposer = VirtAddr(r.u64()?);
        let idt_base = VirtAddr(r.u64()?);
        let n = r.seq(4)?;
        let mut parsed_sandboxes = Vec::with_capacity(n);
        for i in 0..n {
            let sb = Sandbox::import_state(r.bytes()?)?;
            // The table is a dense slab keyed by id; ids must arrive as
            // exactly 1..=n or insertion invariants would not hold.
            let expect = u32::try_from(i + 1).map_err(|_| WireError::BadValue {
                what: "sandbox count",
            })?;
            if sb.id.0 != expect {
                return Err(WireError::BadValue {
                    what: "sandbox id sequence",
                });
            }
            parsed_sandboxes.push(sb);
        }
        let n = r.seq(4)?;
        let mut common_regions = BTreeMap::new();
        for _ in 0..n {
            let region = CommonRegion::import_state(r.bytes()?)?;
            if common_regions.insert(region.id, region).is_some() {
                return Err(WireError::BadValue {
                    what: "duplicate common region id",
                });
            }
        }
        let fast_lookup = r.bool()?;
        let coalesce_shootdowns = r.bool()?;
        let kernel_text = if r.bool()? {
            let va = VirtAddr(r.u64()?);
            let n = r.seq(8)?;
            let mut tf = Vec::with_capacity(n);
            for _ in 0..n {
                tf.push(Frame(r.u64()?));
            }
            Some((va, tf))
        } else {
            None
        };
        let kernel_syscall_entry = if r.bool()? {
            Some(VirtAddr(r.u64()?))
        } else {
            None
        };
        let n = r.seq(1)?;
        if n != 256 {
            return Err(WireError::BadValue {
                what: "vector handler table length",
            });
        }
        let mut vec_handlers = Vec::with_capacity(256);
        for _ in 0..256 {
            vec_handlers.push(if r.bool()? {
                Some(VirtAddr(r.u64()?))
            } else {
                None
            });
        }
        let n = r.seq(12)?;
        let mut address_spaces = BTreeMap::new();
        for _ in 0..n {
            let root = r.u64()?;
            let owner = r.u32()?;
            if address_spaces.insert(root, owner).is_some() {
                return Err(WireError::BadValue {
                    what: "duplicate address-space root",
                });
            }
        }
        let cma = Region {
            start: Frame(r.u64()?),
            end: Frame(r.u64()?),
        };
        let device = Region {
            start: Frame(r.u64()?),
            end: Frame(r.u64()?),
        };
        let n = r.seq(20)?;
        let mut cpuid_cache = BTreeMap::new();
        for _ in 0..n {
            let leaf = r.u32()?;
            let mut regs = [0u32; 4];
            for v in &mut regs {
                *v = r.u32()?;
            }
            cpuid_cache.insert(leaf, regs);
        }
        let cpuid_mru = if r.bool()? {
            let leaf = r.u32()?;
            let mut regs = [0u32; 4];
            for v in &mut regs {
                *v = r.u32()?;
            }
            Some((leaf, regs))
        } else {
            None
        };
        let kernel_return = VirtAddr(r.u64()?);
        let next_sandbox = r.u32()?;
        let next_region = r.u32()?;
        r.finish()?;
        if next_sandbox as usize != parsed_sandboxes.len() + 1 {
            return Err(WireError::BadValue {
                what: "next sandbox id",
            });
        }
        let mut backend = Backend::new(cfg.backend, RESERVED_PKEYS, PK_MONITOR);
        backend.import_state(&backend_bytes)?;
        let mut sandboxes = SandboxTable::new();
        let mut root_index = HashMap::new();
        for sb in parsed_sandboxes {
            if sb.state != SandboxState::Dead {
                root_index.insert(sb.root.0, sb.id.0);
            }
            sandboxes.insert(sb.id.0, sb);
        }
        let as_index = address_spaces.iter().map(|(&k, &v)| (k, v)).collect();
        Ok(Monitor {
            cfg,
            stats,
            frames,
            backend,
            kill_fence,
            gate,
            rng: DetRng::from_parts(rng_key, rng_ctr),
            kernel_root,
            syscall_interposer,
            interrupt_interposer,
            idt_base,
            sandboxes,
            common_regions,
            fast_lookup,
            coalesce_shootdowns,
            lookup_stats: LookupStats::default(),
            kernel_text,
            kernel_syscall_entry,
            vec_handlers,
            address_spaces,
            as_index,
            root_index,
            cma,
            device,
            cpuid_cache,
            cpuid_mru,
            kernel_return,
            next_sandbox,
            next_region,
        })
    }

    // ==================================================================
    // Stage-two boot: kernel verification and loading (§5.1)
    // ==================================================================

    /// Scan-verify and load the kernel image: text mapped RX under
    /// [`crate::policy::PK_KTEXT`], data RW/NX, all at the image's VAs.
    ///
    /// # Errors
    /// [`LoadError::Rejected`] when the byte scan finds sensitive
    /// instructions; mapping errors otherwise.
    pub fn load_kernel(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        image: &Image,
    ) -> Result<VirtAddr, LoadError> {
        scan::verify_image(image).map_err(LoadError::Rejected)?;
        let mut text_frames = Vec::new();
        let mut text_base = layout::KERNEL_BASE;
        for section in &image.sections {
            if layout::is_user(section.va) || layout::is_monitor(section.va) {
                return Err(LoadError::BadLayout("kernel section outside kernel half"));
            }
            let (kind, flags) = match section.kind {
                SectionKind::Text => (
                    FrameKind::KernelCode,
                    PteFlags::kernel_rx(crate::policy::PK_KTEXT),
                ),
                SectionKind::Rodata => (FrameKind::KernelData, PteFlags::kernel_ro(0)),
                SectionKind::Data => (FrameKind::KernelData, PteFlags::kernel_rw(0)),
            };
            let pages = section.bytes.len().div_ceil(PAGE_SIZE);
            for p in 0..pages {
                let frame = machine.mem.alloc_frame().map_err(|_| LoadError::NoMemory)?;
                self.frames
                    .set_kind(frame, kind)
                    .map_err(|_| LoadError::NoMemory)?;
                mmu_guard::retag_direct_map(machine, cpu, self.kernel_root, frame, kind)
                    .map_err(LoadError::Fault)?;
                let start = p * PAGE_SIZE;
                let end = (start + PAGE_SIZE).min(section.bytes.len());
                // Populate through the (monitor-privileged) direct map.
                machine
                    .write(cpu, direct_map(frame.base()), &section.bytes[start..end])
                    .map_err(LoadError::Fault)?;
                let va = section.va.add(start as u64);
                mmu_guard::checked_map(
                    machine,
                    cpu,
                    &mut self.frames,
                    self.kernel_root,
                    self.kernel_root,
                    va,
                    Pte::encode(frame, flags),
                )
                .map_err(LoadError::Map)?;
                if section.kind == SectionKind::Text {
                    text_frames.push(frame);
                }
            }
            if section.kind == SectionKind::Text {
                text_base = section.va;
            }
        }
        machine.endbr.add_image(image);
        self.kernel_text = Some((text_base, text_frames));
        self.kernel_return = VirtAddr(image.entry);
        Ok(VirtAddr(image.entry))
    }

    fn kernel_text_contains(&self, va: VirtAddr) -> bool {
        match &self.kernel_text {
            Some((base, frames)) => {
                va.0 >= base.0 && va.0 < base.0 + (frames.len() * PAGE_SIZE) as u64
            }
            // Before the kernel is loaded, accept kernel-half addresses
            // (used by unit tests that skip stage two).
            None => !layout::is_user(va) && !layout::is_monitor(va),
        }
    }

    // ==================================================================
    // The EMC dispatcher (§5.3)
    // ==================================================================

    /// Execute an EMC: entry gate, policy-checked dispatch, exit gate.
    ///
    /// # Errors
    /// [`EmcError`] on gate faults or policy denial.
    pub fn emc(
        &mut self,
        machine: &mut Machine,
        tdx: &mut TdxModule,
        cpu: usize,
        req: EmcRequest,
    ) -> Result<EmcResponse, EmcError> {
        if !self.cfg.emc_delegation() {
            return Err(EmcError::Denied("no monitor in this configuration"));
        }
        let prev_bucket = machine.cycles.set_bucket(Bucket::Monitor);
        let res = self.emc_body(machine, tdx, cpu, req);
        machine.cycles.set_bucket(prev_bucket);
        res
    }

    fn emc_body(
        &mut self,
        machine: &mut Machine,
        tdx: &mut TdxModule,
        cpu: usize,
        req: EmcRequest,
    ) -> Result<EmcResponse, EmcError> {
        let return_to = self.kernel_return;
        self.gate.enter(machine, cpu).map_err(EmcError::Fault)?;
        self.stats.emc_calls = self.stats.emc_calls.saturating_add(1);
        let res = self.dispatch(machine, tdx, cpu, req);
        if res.is_err() {
            self.stats.emc_denied = self.stats.emc_denied.saturating_add(1);
            machine.trace_event(cpu, TraceEvent::Emc { op: "deny", arg: 0 });
        }
        self.gate
            .exit(machine, cpu, return_to)
            .map_err(EmcError::Fault)?;
        res
    }

    fn dispatch(
        &mut self,
        machine: &mut Machine,
        tdx: &mut TdxModule,
        cpu: usize,
        req: EmcRequest,
    ) -> Result<EmcResponse, EmcError> {
        match req {
            EmcRequest::Nop => Ok(EmcResponse::Ok),
            EmcRequest::CreateAddressSpace { asid } => {
                let root = self.create_address_space(machine, cpu, asid)?;
                Ok(EmcResponse::Root(root))
            }
            EmcRequest::SwitchAddressSpace { root } => {
                if !self.address_space_registered(root) {
                    return Err(EmcError::Denied("unregistered address-space root"));
                }
                self.stats.cr_writes = self.stats.cr_writes.saturating_add(1);
                machine.write_cr3(cpu, root)?;
                Ok(EmcResponse::Ok)
            }
            EmcRequest::MapUserPage {
                root,
                va,
                frame,
                writable,
                executable,
            } => {
                let f = self.map_user_page(machine, cpu, root, va, frame, writable, executable)?;
                Ok(EmcResponse::Mapped(f))
            }
            EmcRequest::MapUserRange {
                root,
                va,
                pages,
                writable,
            } => {
                if !self.cfg.batched_mmu {
                    return Err(EmcError::Denied("batched MMU updates disabled"));
                }
                let mut first = None;
                for p in 0..pages {
                    let f = self.map_user_page(
                        machine,
                        cpu,
                        root,
                        va.add(p * PAGE_SIZE as u64),
                        None,
                        writable,
                        false,
                    )?;
                    first.get_or_insert(f);
                }
                Ok(EmcResponse::Mapped(first.unwrap_or(Frame(0))))
            }
            EmcRequest::UnmapUserPage { root, va } => {
                self.unmap_user_page(machine, cpu, root, va)?;
                Ok(EmcResponse::Ok)
            }
            EmcRequest::ProtectUserPage { root, va, writable } => {
                if !self.address_space_registered(root) {
                    return Err(EmcError::Denied("unregistered address-space root"));
                }
                let old = mmu_guard::checked_update_leaf(machine, cpu, root, va, |pte| {
                    if writable {
                        Pte::encode(
                            pte.frame(),
                            PteFlags {
                                writable: true,
                                ..pte.flags()
                            },
                        )
                    } else {
                        pte.read_only()
                    }
                })
                .map_err(map_err)?;
                match self.frames.kind(old.frame()) {
                    FrameKind::UserAnon { .. } => {
                        self.stats.pte_updates = self.stats.pte_updates.saturating_add(1);
                        if !writable {
                            // Downgrades must be visible on every core
                            // running this address space; upgrades can
                            // lazily re-fault.
                            machine
                                .tlb_shootdown_mm(cpu, root, &[va])
                                .map_err(EmcError::Fault)?;
                            machine.trace_event(
                                cpu,
                                TraceEvent::Emc {
                                    op: "downgrade",
                                    arg: va.0 >> 12,
                                },
                            );
                        }
                        Ok(EmcResponse::Ok)
                    }
                    _ => {
                        // Roll back: only plain user memory is kernel-adjustable.
                        mmu_guard::checked_update_leaf(machine, cpu, root, va, |_| old)
                            .map_err(map_err)?;
                        Err(EmcError::Denied("protection change on non-user frame"))
                    }
                }
            }
            EmcRequest::WriteCr { which, value } => {
                self.stats.cr_writes = self.stats.cr_writes.saturating_add(1);
                match which {
                    0 => {
                        let required = Cr0::WP | Cr0::PG;
                        if value & required != required {
                            return Err(EmcError::Denied("CR0.WP/PG are pinned"));
                        }
                        machine.write_cr0(cpu, value)?;
                    }
                    4 => {
                        let required = Cr4::SMEP | Cr4::SMAP | Cr4::PKS | Cr4::CET;
                        if value & required != required {
                            return Err(EmcError::Denied("CR4 protection bits are pinned"));
                        }
                        machine.write_cr4(cpu, value)?;
                    }
                    _ => return Err(EmcError::BadRequest("only CR0/CR4 are delegated")),
                }
                Ok(EmcResponse::Ok)
            }
            EmcRequest::WrMsr { msr, value } => {
                self.stats.msr_writes = self.stats.msr_writes.saturating_add(1);
                match msr {
                    Msr::Pkrs | Msr::SCet | Msr::Pl0Ssp => {
                        Err(EmcError::Denied("monitor-private MSR"))
                    }
                    Msr::Lstar => {
                        let target = VirtAddr(value);
                        if !self.kernel_text_contains(target) {
                            return Err(EmcError::Denied("LSTAR outside kernel text"));
                        }
                        self.kernel_syscall_entry = Some(target);
                        // With exit protection, the hardware register keeps
                        // pointing at the monitor's interposer; the ablation
                        // without it installs the kernel entry directly.
                        let hw_target = if self.cfg.exit_protection() {
                            self.syscall_interposer.0
                        } else {
                            target.0
                        };
                        machine.wrmsr(cpu, Msr::Lstar, hw_target)?;
                        Ok(EmcResponse::Ok)
                    }
                    _ => {
                        machine.wrmsr(cpu, msr, value)?;
                        Ok(EmcResponse::Ok)
                    }
                }
            }
            EmcRequest::SetVectorHandler { vec, handler } => {
                if !self.kernel_text_contains(handler) {
                    return Err(EmcError::Denied("vector handler outside kernel text"));
                }
                self.stats.idt_writes = self.stats.idt_writes.saturating_add(1);
                self.vec_handlers[vec as usize] = Some(handler);
                // With exit protection the hardware IDT entry points at the
                // interposer; otherwise at the kernel handler directly.
                let hw_target = if self.cfg.exit_protection() {
                    self.interrupt_interposer
                } else {
                    handler
                };
                self.write_idt_entry(machine, cpu, vec, hw_target)?;
                Ok(EmcResponse::Ok)
            }
            EmcRequest::UserCopy {
                dir,
                root,
                user_va,
                bytes,
            } => self.user_copy(machine, cpu, root, user_va, dir, bytes),
            EmcRequest::ConvertShared { frame, shared } => {
                self.convert_shared(machine, tdx, cpu, frame, shared)
            }
            EmcRequest::TextPoke { offset, bytes } => self.text_poke(machine, cpu, offset, &bytes),
            EmcRequest::LoadKernelModule { code, va } => {
                self.load_kernel_module(machine, cpu, &code, va)
            }
            EmcRequest::DeclareConfined {
                sandbox,
                va,
                pages,
                executable,
            } => {
                self.declare_confined(machine, cpu, SandboxId(sandbox), va, pages, executable)?;
                Ok(EmcResponse::Ok)
            }
            EmcRequest::AttachCommon {
                sandbox,
                region,
                va,
            } => {
                self.attach_common(machine, cpu, SandboxId(sandbox), region, va)?;
                Ok(EmcResponse::Ok)
            }
            EmcRequest::CreateCommon {
                pages,
                logical_bytes,
            } => {
                let id = self.create_common(machine, pages, logical_bytes)?;
                Ok(EmcResponse::Region(id))
            }
            EmcRequest::AttestReport { report_data } => {
                self.stats.ghci_ops = self.stats.ghci_ops.saturating_add(1);
                match tdcall(tdx, machine, cpu, TdcallLeaf::TdReport { report_data }) {
                    Ok(TdcallResult::Report(r)) => Ok(EmcResponse::Report(r)),
                    Ok(_) => Err(EmcError::BadRequest("unexpected tdcall result")),
                    Err(f) => Err(EmcError::Fault(f)),
                }
            }
            EmcRequest::CpuidEmulate { leaf } => {
                let value = match self.cpuid_cache_get(leaf) {
                    Some(v) => v,
                    None => {
                        self.stats.ghci_ops = self.stats.ghci_ops.saturating_add(1);
                        match tdcall(
                            tdx,
                            machine,
                            cpu,
                            TdcallLeaf::VmCall(VmcallOp::Cpuid { leaf }),
                        ) {
                            Ok(TdcallResult::Cpuid(v)) => {
                                self.cpuid_cache_put(leaf, v);
                                v
                            }
                            _ => [0; 4],
                        }
                    }
                };
                Ok(EmcResponse::Cpuid(value))
            }
        }
    }

    /// cpuid cache probe shared by the EMC and `#VE` emulation paths.
    /// The one-entry MRU slot in front of the ordered map catches the
    /// common repeated-leaf pattern; `stats.cpuid_cached` counts every
    /// cache hit identically in both modes, so snapshots stay
    /// byte-identical across the `fast_lookup` toggle.
    fn cpuid_cache_get(&mut self, leaf: u32) -> Option<[u32; 4]> {
        if self.fast_lookup {
            if let Some((l, v)) = self.cpuid_mru {
                if l == leaf {
                    self.lookup_stats.bump_cpuid_mru();
                    self.stats.cpuid_cached = self.stats.cpuid_cached.saturating_add(1);
                    return Some(v);
                }
            }
        }
        let v = self.cpuid_cache.get(&leaf).copied();
        if let Some(v) = v {
            self.stats.cpuid_cached = self.stats.cpuid_cached.saturating_add(1);
            if self.fast_lookup {
                self.cpuid_mru = Some((leaf, v));
            }
        }
        v
    }

    /// Record a freshly emulated cpuid leaf (successful tdcalls only —
    /// a faulted or module-declined round trip must not pin zeros).
    fn cpuid_cache_put(&mut self, leaf: u32, value: [u32; 4]) {
        self.cpuid_cache.insert(leaf, value);
        if self.fast_lookup {
            self.cpuid_mru = Some((leaf, value));
        }
    }

    fn create_address_space(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        asid: u32,
    ) -> Result<Frame, EmcError> {
        let root = machine.mem.alloc_frame().map_err(|_| EmcError::NoMemory)?;
        self.frames
            .set_kind(root, FrameKind::Ptp)
            .map_err(|_| EmcError::Denied("root frame conflict"))?;
        mmu_guard::retag_direct_map(machine, cpu, self.kernel_root, root, FrameKind::Ptp)?;
        // Link the shared kernel half (PML4 entries 256..512).
        for idx in 256..512usize {
            let src = erebor_hw::PhysAddr(self.kernel_root.base().0 + (idx * 8) as u64);
            let dst = erebor_hw::PhysAddr(root.base().0 + (idx * 8) as u64);
            let v = machine.mem.read_u64(src).map_err(|_| EmcError::NoMemory)?;
            if v != 0 {
                machine.write_u64(cpu, direct_map(dst), v)?;
            }
        }
        self.address_spaces.insert(root.0, asid);
        self.as_index.insert(root.0, asid);
        Ok(root)
    }

    #[allow(clippy::too_many_arguments)]
    fn map_user_page(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        root: Frame,
        va: VirtAddr,
        frame: Option<Frame>,
        writable: bool,
        executable: bool,
    ) -> Result<Frame, EmcError> {
        if !self.address_space_registered(root) {
            return Err(EmcError::Denied("unregistered address-space root"));
        }
        if self.sandbox_by_root(root).is_some() && self.cfg.mmu_protection() {
            return Err(EmcError::Denied("kernel may not map into a sandbox"));
        }
        if !layout::is_user(va) || va.page_offset() != 0 {
            return Err(EmcError::BadRequest("unaligned or non-user VA"));
        }
        if writable && executable {
            return Err(EmcError::Denied("W^X: writable+executable refused"));
        }
        let asid = if self.fast_lookup {
            self.lookup_stats.bump_as_index();
            self.as_index.get(&root.0).copied().unwrap_or(0)
        } else {
            self.address_spaces.get(&root.0).copied().unwrap_or(0)
        };
        let f = match frame {
            None => {
                let f = machine.mem.alloc_frame().map_err(|_| EmcError::NoMemory)?;
                self.frames
                    .set_kind(f, FrameKind::UserAnon { asid })
                    .map_err(|_| EmcError::Denied("frame kind conflict"))?;
                f
            }
            Some(f) => match self.frames.kind(f) {
                FrameKind::UserAnon { asid: owner } if owner == asid => f,
                FrameKind::SharedDevice => f,
                _ => return Err(EmcError::Denied("frame not mappable by the kernel")),
            },
        };
        let flags = if executable {
            PteFlags::user_rx()
        } else if writable {
            PteFlags::user_rw()
        } else {
            PteFlags::user_ro()
        };
        mmu_guard::checked_map(
            machine,
            cpu,
            &mut self.frames,
            self.kernel_root,
            root,
            va,
            Pte::encode(f, flags),
        )
        .map_err(map_err)?;
        self.frames.inc_map(f);
        self.stats.pte_updates = self.stats.pte_updates.saturating_add(1);
        // EMC mapping lifecycle: a fresh PTE install needs no shootdown
        // (faults are never cached), but it still pins an MMU epoch so
        // batch fast paths revalidate at the next opportunity.
        machine.bump_mmu_epoch();
        Ok(f)
    }

    fn unmap_user_page(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        root: Frame,
        va: VirtAddr,
    ) -> Result<(), EmcError> {
        if !self.address_space_registered(root) {
            return Err(EmcError::Denied("unregistered address-space root"));
        }
        let leaf = paging::lookup_raw(&machine.mem, root, va)
            .map_err(|_| EmcError::BadRequest("walk left DRAM"))?
            .ok_or(EmcError::BadRequest("not mapped"))?;
        let f = leaf.frame();
        match self.frames.kind(f) {
            FrameKind::UserAnon { .. } | FrameKind::SharedDevice => {}
            _ => return Err(EmcError::Denied("kernel may not unmap this frame")),
        }
        mmu_guard::checked_update_leaf(machine, cpu, root, va, |_| Pte::empty())
            .map_err(map_err)?;
        // Revocation anchor for the trace race detector: the PTE is gone
        // from this point on, so any core's cached use of the page without
        // an intervening invalidation is a stale-permission window.
        machine.trace_event(
            cpu,
            TraceEvent::Emc {
                op: "unmap",
                arg: va.0 >> 12,
            },
        );
        // Close the stale-translation window before the frame can be
        // reused: every core running this address space may hold a cached
        // translation for `va`.
        machine
            .tlb_shootdown_mm(cpu, root, &[va])
            .map_err(EmcError::Fault)?;
        self.frames.dec_map(f);
        self.stats.pte_updates = self.stats.pte_updates.saturating_add(1);
        if self.frames.mapcount(f) == 0 && matches!(self.frames.kind(f), FrameKind::UserAnon { .. })
        {
            machine.mem.free_frame(f).ok();
            self.frames.release(f).ok();
        }
        Ok(())
    }

    fn user_copy(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        root: Frame,
        user_va: VirtAddr,
        dir: CopyDir,
        bytes: Vec<u8>,
    ) -> Result<EmcResponse, EmcError> {
        if !self.address_space_registered(root) {
            return Err(EmcError::Denied("unregistered address-space root"));
        }
        // Refuse copies that touch sandbox confined memory: the kernel must
        // never read or corrupt client data through the user-copy service
        // (C6/C7). The check covers the whole byte range.
        if self.cfg.mmu_protection() {
            let mut off = 0u64;
            while off < bytes.len() as u64 + 1 {
                let page = user_va.add(off).page_base();
                if let Ok(Some(leaf)) = paging::lookup_raw(&machine.mem, root, page) {
                    if matches!(self.frames.kind(leaf.frame()), FrameKind::Confined { .. }) {
                        return Err(EmcError::Denied("user copy into confined memory"));
                    }
                }
                off += PAGE_SIZE as u64;
            }
        }
        self.stats.user_copies = self.stats.user_copies.saturating_add(1);
        let saved_root = machine.cpus[cpu].cr3;
        let switch = saved_root != root;
        if switch {
            machine.write_cr3(cpu, root)?;
        }
        machine.stac(cpu)?;
        let result = match dir {
            CopyDir::ToUser => machine
                .write(cpu, user_va, &bytes)
                .map(|()| EmcResponse::Ok),
            CopyDir::FromUser => {
                let mut buf = bytes;
                machine
                    .read(cpu, user_va, &mut buf)
                    .map(|()| EmcResponse::Data(buf))
            }
        };
        machine.clac(cpu)?;
        if switch {
            machine.write_cr3(cpu, saved_root)?;
        }
        result.map_err(EmcError::Fault)
    }

    fn convert_shared(
        &mut self,
        machine: &mut Machine,
        tdx: &mut TdxModule,
        cpu: usize,
        frame: Frame,
        shared: bool,
    ) -> Result<EmcResponse, EmcError> {
        if !self.device.contains(frame) {
            return Err(EmcError::Denied("conversion outside the device window"));
        }
        self.stats.ghci_ops = self.stats.ghci_ops.saturating_add(1);
        if shared {
            self.frames
                .set_kind(frame, FrameKind::SharedDevice)
                .map_err(|_| EmcError::Denied("frame kind conflict"))?;
        }
        match tdcall(tdx, machine, cpu, TdcallLeaf::MapGpa { frame, shared }) {
            Ok(TdcallResult::Failed(_)) => {
                // Module declined (e.g. host contention): the conversion
                // did not happen, so unwind the frame-kind change.
                if shared {
                    self.frames.release(frame).ok();
                }
                return Err(EmcError::Denied("host declined MapGPA conversion"));
            }
            Ok(_) => {}
            Err(f) => {
                if shared {
                    self.frames.release(frame).ok();
                }
                return Err(EmcError::Fault(f));
            }
        }
        if !shared {
            self.frames.release(frame).ok();
        }
        Ok(EmcResponse::Ok)
    }

    fn text_poke(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        offset: u64,
        bytes: &[u8],
    ) -> Result<EmcResponse, EmcError> {
        let (base, frames) = self
            .kernel_text
            .as_ref()
            .ok_or(EmcError::BadRequest("kernel not loaded"))?;
        let text_len = (frames.len() * PAGE_SIZE) as u64;
        let end = offset
            .checked_add(bytes.len() as u64)
            .ok_or(EmcError::BadRequest("patch overflow"))?;
        if end > text_len {
            return Err(EmcError::BadRequest("patch outside kernel text"));
        }
        let target_frame = *frames
            .get((offset / PAGE_SIZE as u64) as usize)
            .ok_or(EmcError::BadRequest("patch outside kernel text"))?;
        let base = *base;
        // Read surrounding bytes for straddle-safe verification.
        let ctx_lo = offset.saturating_sub(3);
        let mut before = vec![0u8; (offset - ctx_lo) as usize];
        machine
            .read(cpu, base.add(ctx_lo), &mut before)
            .map_err(EmcError::Fault)?;
        let ctx_hi = (end + 3).min(text_len);
        let mut after = vec![0u8; (ctx_hi - end) as usize];
        machine
            .read(cpu, base.add(end), &mut after)
            .map_err(EmcError::Fault)?;
        scan::verify_text_patch(&before, bytes, &after)
            .map_err(|_| EmcError::Denied("text patch contains sensitive instructions"))?;
        // Write through the (monitor-writable) direct-map alias.
        let in_page = (offset % PAGE_SIZE as u64) as usize;
        if in_page + bytes.len() > PAGE_SIZE {
            return Err(EmcError::BadRequest("patch crosses a page boundary"));
        }
        let pa = erebor_hw::PhysAddr(target_frame.base().0 + in_page as u64);
        machine
            .write(cpu, direct_map(pa), bytes)
            .map_err(EmcError::Fault)?;
        Ok(EmcResponse::Ok)
    }

    /// Dynamic kernel code loading (modules, eBPF): scan the bytes like a
    /// kernel image, then map them RX under the kernel-text key. Any
    /// sensitive instruction — including ones assembled against the bytes
    /// already at the boundary — is refused (§5.2 "the kernel requests the
    /// monitor to scan and verify the code before loading it").
    fn load_kernel_module(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        code: &[u8],
        va: VirtAddr,
    ) -> Result<EmcResponse, EmcError> {
        if layout::is_user(va) || layout::is_monitor(va) || va.page_offset() != 0 {
            return Err(EmcError::BadRequest(
                "module must load page-aligned in the kernel half",
            ));
        }
        if code.is_empty() {
            return Err(EmcError::BadRequest("empty module"));
        }
        if scan::verify_text_patch(&[], code, &[]).is_err() {
            return Err(EmcError::Denied("module contains sensitive instructions"));
        }
        let pages = code.len().div_ceil(PAGE_SIZE);
        for p in 0..pages {
            let frame = machine.mem.alloc_frame().map_err(|_| EmcError::NoMemory)?;
            self.frames
                .set_kind(frame, FrameKind::KernelCode)
                .map_err(|_| EmcError::Denied("frame kind conflict"))?;
            mmu_guard::retag_direct_map(
                machine,
                cpu,
                self.kernel_root,
                frame,
                FrameKind::KernelCode,
            )?;
            let start = p * PAGE_SIZE;
            let end = (start + PAGE_SIZE).min(code.len());
            machine
                .write(cpu, direct_map(frame.base()), &code[start..end])
                .map_err(EmcError::Fault)?;
            mmu_guard::checked_map(
                machine,
                cpu,
                &mut self.frames,
                self.kernel_root,
                self.kernel_root,
                va.add(start as u64),
                Pte::encode(frame, PteFlags::kernel_rx(crate::policy::PK_KTEXT)),
            )
            .map_err(map_err)?;
        }
        self.stats.pte_updates = self.stats.pte_updates.saturating_add(pages as u64);
        Ok(EmcResponse::Ok)
    }

    /// Write a hardware IDT entry through the checked (PK_IDT-guarded)
    /// path. Used at boot and by [`EmcRequest::SetVectorHandler`].
    ///
    /// # Errors
    /// Checked-write faults.
    pub fn write_idt_entry(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        vec: u8,
        handler: VirtAddr,
    ) -> Result<(), Fault> {
        let va = self.idt_base.add(u64::from(vec) * idt::ENTRY_SIZE);
        machine.write_u64(cpu, va, handler.0)?;
        let _ = PK_IDT; // the IDT page carries PK_IDT; the write above enforces it
        Ok(())
    }

    // ==================================================================
    // Sandbox lifecycle (§6.1)
    // ==================================================================

    /// Create a sandbox: a fresh address space plus monitor bookkeeping.
    ///
    /// # Errors
    /// Allocation or mapping failures.
    pub fn create_sandbox(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        budget_pages: u64,
    ) -> Result<SandboxId, EmcError> {
        let prev_bucket = machine.cycles.set_bucket(Bucket::Monitor);
        // Allocate the isolation domain *before* consuming a sandbox id:
        // exhaustion must be a clean typed error, never a half-created
        // sandbox (the dense-id slab would panic on the next insert) and
        // never a silent reuse of a live key.
        let domain = match self.backend.alloc_domain() {
            Ok(d) => d,
            Err(IsolationError::DomainsExhausted { capacity }) => {
                machine.cycles.set_bucket(prev_bucket);
                return Err(EmcError::DomainsExhausted { capacity });
            }
            Err(IsolationError::InvalidDomain(_)) => {
                machine.cycles.set_bucket(prev_bucket);
                return Err(EmcError::BadRequest("isolation backend state"));
            }
        };
        let id = SandboxId(self.next_sandbox);
        // Container creation is monitor code: raise privileges for the
        // page-table work (same pattern as the interposers).
        let root = PrivGuard::enter(machine, cpu)
            .map_err(EmcError::Fault)
            .and_then(|guard| {
                let root = self.create_address_space(machine, cpu, 0x8000_0000 | id.0);
                guard.exit(machine, cpu);
                root
            });
        machine.cycles.set_bucket(prev_bucket);
        let root = match root {
            Ok(r) => r,
            Err(e) => {
                // Failed before the sandbox existed: the domain must not
                // leak, and the id was never consumed.
                self.backend.free_domain(domain).ok();
                return Err(e);
            }
        };
        self.next_sandbox += 1;
        let mut sandbox = Sandbox::new(id, root, budget_pages);
        sandbox.domain = domain;
        self.sandboxes.insert(id.0, sandbox);
        self.root_index.insert(root.0, id.0);
        machine.trace_event(
            cpu,
            TraceEvent::Emc {
                op: "create",
                arg: u64::from(id.0),
            },
        );
        Ok(id)
    }

    /// The sandbox owning `root`, if any (the CR3→sandbox lookup of the
    /// gate path: every kernel-requested mapping consults it). With
    /// `fast_lookup` this is one hash probe validated against the slab
    /// entry — roots are unique and dead sandboxes leave the index, so
    /// the validation can only confirm, never miscorrect; without it,
    /// the seed's linear scan over every sandbox ever created.
    #[must_use]
    pub fn sandbox_by_root(&self, root: Frame) -> Option<SandboxId> {
        if self.fast_lookup {
            self.lookup_stats.bump_root_index();
            return self.root_index.get(&root.0).and_then(|id| {
                let s = self.sandboxes.get(id)?;
                (s.root == root && s.state != SandboxState::Dead).then_some(s.id)
            });
        }
        self.sandboxes
            .values()
            .find(|s| s.root == root && s.state != SandboxState::Dead)
            .map(|s| s.id)
    }

    fn declare_confined(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        id: SandboxId,
        va: VirtAddr,
        pages: u64,
        executable: bool,
    ) -> Result<(), EmcError> {
        let sandbox = self
            .sandboxes
            .get_mut(&id.0)
            .ok_or(EmcError::BadRequest("no such sandbox"))?;
        if sandbox.state != SandboxState::Setup {
            return Err(EmcError::Denied("confined declaration after data install"));
        }
        if sandbox.confined_pages() + pages > sandbox.budget_pages {
            return Err(EmcError::Denied("confined memory budget exceeded"));
        }
        if !layout::is_user(va) || va.page_offset() != 0 {
            return Err(EmcError::BadRequest("unaligned or non-user VA"));
        }
        let root = sandbox.root;
        let domain = sandbox.domain;
        // How this sandbox's confined memory is tagged: under PKS the
        // alias carries the sandbox's own pkey (access-disabled in
        // normal mode); under TME-MK it keeps the monitor pkey and adds
        // the sandbox's key-ID, programmed into the frame table below
        // (the PCONFIG analogue).
        let tag = self.backend.frame_tag(domain);
        let frame_key = self.backend.frame_key(domain);
        // Arena path for sandbox boot: grab the whole confined window from
        // the CMA in one batch. `alloc_frames_in` yields exactly the frames
        // the seed's per-page `alloc_frame_in` loop would (CMA frames and
        // page-table frames come from disjoint, reserved-separated pools,
        // so hoisting the data-frame allocations cannot renumber either
        // stream), but costs one bitmap pass instead of `pages` rescans.
        let mut arena: Vec<Frame> = Vec::with_capacity(pages as usize);
        machine
            .mem
            .alloc_frames_in(self.cma, pages, &mut arena)
            .map_err(|_| EmcError::NoMemory)?;
        for (p, frame) in arena.into_iter().enumerate() {
            let p = p as u64;
            // Single-mapping policy: the frame must be fresh.
            if self.frames.mapcount(frame) != 0 {
                return Err(EmcError::Denied("confined frame already mapped"));
            }
            self.frames
                .set_kind(frame, FrameKind::Confined { sandbox: id.0 })
                .map_err(|_| EmcError::Denied("frame kind conflict"))?;
            // Program the frame's key (TME-MK; no-op key 0 under PKS),
            // then remove the kernel's direct-map view of the frame by
            // retagging the alias with the backend's confined tag (the
            // "not even the kernel" rule, §6.1 — normal-mode PKRS
            // access-disables the tag's pkey under both backends).
            machine.mem.set_frame_key(frame, frame_key);
            mmu_guard::retag_direct_map_tagged(
                machine,
                cpu,
                self.kernel_root,
                frame,
                tag.pkey,
                tag.keyid,
            )?;
            let page_va = va.add(p * PAGE_SIZE as u64);
            let flags = if executable {
                PteFlags::user_rx()
            } else {
                PteFlags::user_rw()
            };
            mmu_guard::checked_map(
                machine,
                cpu,
                &mut self.frames,
                self.kernel_root,
                root,
                page_va,
                Pte::encode(frame, flags).with_keyid(tag.keyid),
            )
            .map_err(map_err)?;
            self.frames.inc_map(frame);
            // Pre-allocation of pinned confined memory triggers a page
            // fault per page whose handling runs at EMC-mediated cost —
            // the paper's one-time initialization overhead (§9.2,
            // Table 6 "Init. Overhead").
            machine
                .cycles
                .charge(machine.costs.pf_fixed + machine.costs.rdmsr + 2 * machine.costs.wrmsr);
            let sandbox = self
                .sandboxes
                .get_mut(&id.0)
                .ok_or(EmcError::BadRequest("no such sandbox"))?;
            sandbox.confined.push((page_va, frame));
            sandbox.logical_confined_bytes += PAGE_SIZE as u64;
        }
        self.stats.pte_updates = self.stats.pte_updates.saturating_add(pages);
        Ok(())
    }

    fn create_common(
        &mut self,
        machine: &mut Machine,
        pages: u64,
        logical_bytes: u64,
    ) -> Result<u32, EmcError> {
        let id = self.next_region;
        self.next_region += 1;
        let mut frames = Vec::with_capacity(pages as usize);
        for _ in 0..pages {
            let f = machine.mem.alloc_frame().map_err(|_| EmcError::NoMemory)?;
            self.frames
                .set_kind(f, FrameKind::Common { region: id })
                .map_err(|_| EmcError::Denied("frame kind conflict"))?;
            frames.push(f);
        }
        self.common_regions.insert(
            id,
            CommonRegion {
                id,
                frames,
                sealed: false,
                logical_bytes,
                attached: Vec::new(),
            },
        );
        Ok(id)
    }

    fn attach_common(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        id: SandboxId,
        region_id: u32,
        va: VirtAddr,
    ) -> Result<(), EmcError> {
        let _ = (machine, cpu);
        if !self.common_regions.contains_key(&region_id) {
            return Err(EmcError::BadRequest("no such common region"));
        }
        {
            let sandbox = self
                .sandboxes
                .get_mut(&id.0)
                .ok_or(EmcError::BadRequest("no such sandbox"))?;
            if sandbox.state != SandboxState::Setup {
                return Err(EmcError::Denied("attach after data install"));
            }
        }
        // Common pages are *not* pinned and not eagerly mapped (§6.1): the
        // monitor materializes them on demand at sandbox #PF exits, which
        // is where the paper's runtime page-fault rates come from.
        self.common_regions
            .get_mut(&region_id)
            .ok_or(EmcError::BadRequest("no such common region"))?
            .attached
            .push((id, va));
        self.sandboxes
            .get_mut(&id.0)
            .ok_or(EmcError::BadRequest("no such sandbox"))?
            .attached_common
            .push((region_id, va));
        Ok(())
    }

    /// Sandbox `#PF` exit interposer: demand-map attached common pages;
    /// anything else after data install is a policy violation (confined
    /// memory is pinned, so a fault there cannot be benign).
    pub fn on_page_fault(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        id: SandboxId,
        va: VirtAddr,
        write: bool,
    ) -> ExitDecision {
        let prev_bucket = machine.cycles.set_bucket(Bucket::Monitor);
        let d = self.on_page_fault_body(machine, cpu, id, va, write);
        machine.cycles.set_bucket(prev_bucket);
        d
    }

    fn on_page_fault_body(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        id: SandboxId,
        va: VirtAddr,
        write: bool,
    ) -> ExitDecision {
        self.charge_interpose(machine);
        self.stats.sandbox_pf_exits = self.stats.sandbox_pf_exits.saturating_add(1);
        let Some(sandbox) = self.sandboxes.get(&id.0) else {
            return ExitDecision::Killed {
                reason: "no such sandbox",
            };
        };
        let root = sandbox.root;
        let state = sandbox.state;
        // Locate the attached common region containing the fault address.
        let hit = sandbox
            .attached_common
            .iter()
            .copied()
            .find_map(|(rid, base)| {
                let region = self.common_regions.get(&rid)?;
                let size = (region.frames.len() * PAGE_SIZE) as u64;
                (va.0 >= base.0 && va.0 < base.0 + size).then_some((rid, base))
            });
        let Some((rid, base)) = hit else {
            if state == SandboxState::DataLoaded {
                self.kill_sandbox(machine, id, "stray page fault after data install");
                return ExitDecision::Killed {
                    reason: "stray page fault after data install",
                };
            }
            // During setup, confined declarations handle memory; a stray
            // fault forwards to the kernel like any process fault.
            return match self.vec_handlers[idt::vector::PF as usize] {
                Some(handler) => ExitDecision::ForwardToKernel { handler },
                None => ExitDecision::Killed {
                    reason: "no #PF handler",
                },
            };
        };
        let Some(region) = self.common_regions.get(&rid) else {
            return ExitDecision::Killed {
                reason: "attached common region vanished",
            };
        };
        let sealed = region.sealed;
        if sealed && write {
            self.kill_sandbox(machine, id, "write to sealed common memory");
            return ExitDecision::Killed {
                reason: "write to sealed common memory",
            };
        }
        let page = va.page_base();
        let idx = ((page.0 - base.0) / PAGE_SIZE as u64) as usize;
        let frame = region.frames[idx];
        let flags = if sealed {
            PteFlags::user_ro()
        } else {
            PteFlags::user_rw()
        };
        // Materialize the mapping with monitor privileges (the interposer
        // raises PKRS exactly like the EMC gate).
        let Ok(guard) = PrivGuard::enter(machine, cpu) else {
            return ExitDecision::Killed {
                reason: "interposer privilege fault",
            };
        };
        let res = mmu_guard::checked_map(
            machine,
            cpu,
            &mut self.frames,
            self.kernel_root,
            root,
            page,
            Pte::encode(frame, flags),
        );
        guard.exit(machine, cpu);
        match res {
            Ok(()) => {
                self.frames.inc_map(frame);
                self.stats.pte_updates = self.stats.pte_updates.saturating_add(1);
                machine.cycles.charge(machine.costs.pf_fixed);
                if let Some(s) = self.sandboxes.get_mut(&id.0) {
                    s.common_mapped.push((rid, page));
                }
                ExitDecision::Handled { rax: 0 }
            }
            Err(_) => {
                self.kill_sandbox(machine, id, "common mapping failed");
                ExitDecision::Killed {
                    reason: "common mapping failed",
                }
            }
        }
    }

    /// Seal a common region: every mapping in every sandbox becomes
    /// read-only, forever (done automatically when the first attached
    /// sandbox receives client data, §6.1).
    ///
    /// # Errors
    /// Checked-write faults.
    pub fn seal_common(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        region_id: u32,
    ) -> Result<(), EmcError> {
        let prev_bucket = machine.cycles.set_bucket(Bucket::Monitor);
        let r = self.seal_common_body(machine, cpu, region_id);
        machine.cycles.set_bucket(prev_bucket);
        if r.is_ok() {
            machine.trace_event(
                cpu,
                TraceEvent::Emc {
                    op: "seal",
                    arg: u64::from(region_id),
                },
            );
        }
        r
    }

    fn seal_common_body(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        region_id: u32,
    ) -> Result<(), EmcError> {
        let region = self
            .common_regions
            .get_mut(&region_id)
            .ok_or(EmcError::BadRequest("no such common region"))?;
        if region.sealed {
            return Ok(());
        }
        region.sealed = true;
        // Revoke write access on every mapping materialized so far; future
        // demand-mappings observe `sealed` and come up read-only.
        let attachments = region.attached.clone();
        for (sid, _base) in attachments {
            let (root, pages) = {
                let s = self
                    .sandboxes
                    .get(&sid.0)
                    .ok_or(EmcError::BadRequest("attached sandbox vanished"))?;
                let pages: Vec<VirtAddr> = s
                    .common_mapped
                    .iter()
                    .filter(|(r, _)| *r == region_id)
                    .map(|(_, va)| *va)
                    .collect();
                (s.root, pages)
            };
            let guard = PrivGuard::enter(machine, cpu).map_err(EmcError::Fault)?;
            let mut seal_res = Ok(());
            if self.coalesce_shootdowns {
                // Downgrade every materialized leaf, then one coalesced
                // shootdown for the sandbox's whole window.
                let mut downgraded: Vec<VirtAddr> = Vec::with_capacity(pages.len());
                for page in pages {
                    if let Err(e) =
                        mmu_guard::checked_update_leaf(machine, cpu, root, page, Pte::read_only)
                    {
                        seal_res = Err(map_err(e));
                        break;
                    }
                    downgraded.push(page);
                    self.stats.pte_updates = self.stats.pte_updates.saturating_add(1);
                }
                if !downgraded.is_empty() {
                    if let Err(e) = machine.tlb_shootdown_mm(cpu, root, &downgraded) {
                        seal_res = seal_res.and(Err(EmcError::Fault(e)));
                    }
                }
            } else {
                for page in pages {
                    if let Err(e) =
                        mmu_guard::checked_update_leaf(machine, cpu, root, page, Pte::read_only)
                    {
                        seal_res = Err(map_err(e));
                        break;
                    }
                    if let Err(e) = machine.tlb_shootdown_mm(cpu, root, &[page]) {
                        seal_res = Err(EmcError::Fault(e));
                        break;
                    }
                    self.stats.pte_updates = self.stats.pte_updates.saturating_add(1);
                }
            }
            guard.exit(machine, cpu);
            seal_res?;
        }
        Ok(())
    }

    /// Memory-pressure reclaim: common pages are *not* pinned (§6.1), so
    /// the kernel's reclaim may evict them; the monitor revokes the oldest
    /// materialized common mappings (up to `max_pages`), forcing re-faults.
    /// Returns the number of pages reclaimed.
    pub fn reclaim_common(&mut self, machine: &mut Machine, cpu: usize, max_pages: u64) -> u64 {
        let prev_bucket = machine.cycles.set_bucket(Bucket::Monitor);
        let reclaimed = self.reclaim_common_body(machine, cpu, max_pages);
        machine.cycles.set_bucket(prev_bucket);
        machine.trace_event(
            cpu,
            TraceEvent::Emc {
                op: "reclaim",
                arg: reclaimed,
            },
        );
        reclaimed
    }

    fn reclaim_common_body(&mut self, machine: &mut Machine, cpu: usize, max_pages: u64) -> u64 {
        let ids: Vec<u32> = self.sandboxes.keys().copied().collect();
        let mut reclaimed = 0u64;
        for id in ids {
            if reclaimed >= max_pages {
                break;
            }
            let (root, victims) = {
                let Some(s) = self.sandboxes.get_mut(&id) else {
                    continue;
                };
                if s.state == SandboxState::Dead || s.common_mapped.is_empty() {
                    continue;
                }
                let take = ((max_pages - reclaimed) as usize).min(s.common_mapped.len());
                let victims: Vec<(u32, VirtAddr)> = s.common_mapped.drain(..take).collect();
                (s.root, victims)
            };
            let Ok(guard) = PrivGuard::enter(machine, cpu) else {
                return reclaimed;
            };
            if self.coalesce_shootdowns {
                // Clear all victim leaves, one coalesced shootdown for the
                // address space, then the per-page mapcount bookkeeping.
                let mut cleared: Vec<(u32, VirtAddr)> = Vec::with_capacity(victims.len());
                for (rid, page) in victims {
                    if mmu_guard::checked_update_leaf(machine, cpu, root, page, |_| Pte::empty())
                        .is_ok()
                    {
                        cleared.push((rid, page));
                    }
                }
                if !cleared.is_empty() {
                    let vas: Vec<VirtAddr> = cleared.iter().map(|&(_, p)| p).collect();
                    machine.tlb_shootdown_mm(cpu, root, &vas).ok();
                }
                for (rid, page) in cleared {
                    if let Some(region) = self.common_regions.get(&rid) {
                        let idx = region
                            .attached
                            .iter()
                            .find(|(sid, _)| sid.0 == id)
                            .map(|(_, base)| ((page.0 - base.0) / PAGE_SIZE as u64) as usize);
                        if let Some(idx) = idx {
                            if let Some(f) = region.frames.get(idx) {
                                self.frames.dec_map(*f);
                            }
                        }
                    }
                    reclaimed += 1;
                    self.stats.pte_updates = self.stats.pte_updates.saturating_add(1);
                }
                guard.exit(machine, cpu);
                continue;
            }
            for (rid, page) in victims {
                if mmu_guard::checked_update_leaf(machine, cpu, root, page, |_| Pte::empty())
                    .is_ok()
                {
                    machine.tlb_shootdown_mm(cpu, root, &[page]).ok();
                    if let Some(region) = self.common_regions.get(&rid) {
                        let idx = region
                            .attached
                            .iter()
                            .find(|(sid, _)| sid.0 == id)
                            .map(|(_, base)| ((page.0 - base.0) / PAGE_SIZE as u64) as usize);
                        if let Some(idx) = idx {
                            if let Some(f) = region.frames.get(idx) {
                                self.frames.dec_map(*f);
                            }
                        }
                    }
                    reclaimed += 1;
                    self.stats.pte_updates = self.stats.pte_updates.saturating_add(1);
                }
            }
            guard.exit(machine, cpu);
        }
        reclaimed
    }

    /// Kill a sandbox: unmap and scrub every confined frame, release them,
    /// mark dead (§6.3 cleanup). Unmapping *before* freeing is essential:
    /// a stale PTE in the dead container's page table must never alias a
    /// frame later granted to another tenant.
    pub fn kill_sandbox(&mut self, machine: &mut Machine, id: SandboxId, reason: &'static str) {
        let prev_bucket = machine.cycles.set_bucket(Bucket::Monitor);
        self.kill_sandbox_body(machine, id, reason);
        machine.cycles.set_bucket(prev_bucket);
        // The teardown path is pinned to core 0 (see the PrivGuard below);
        // the event follows suit.
        machine.trace_event(
            0,
            TraceEvent::Emc {
                op: "kill",
                arg: u64::from(id.0),
            },
        );
    }

    fn kill_sandbox_body(&mut self, machine: &mut Machine, id: SandboxId, reason: &'static str) {
        self.stats.sandboxes_killed = self.stats.sandboxes_killed.saturating_add(1);
        let Some(sandbox) = self.sandboxes.get_mut(&id.0) else {
            return;
        };
        sandbox.state = SandboxState::Dead;
        sandbox.kill_reason = Some(reason);
        sandbox.pending_input.clear();
        sandbox.session = None;
        let root = sandbox.root;
        let domain = sandbox.domain;
        let confined: Vec<(VirtAddr, Frame)> = sandbox.confined.drain(..).collect();
        let commons: Vec<(u32, VirtAddr)> = sandbox.common_mapped.drain(..).collect();
        self.root_index.remove(&root.0);
        let Ok(guard) = PrivGuard::enter(machine, 0) else {
            return;
        };
        if self.coalesce_shootdowns {
            // Two-phase teardown: clear every leaf first, then close the
            // whole stale-translation window with a single coalesced
            // shootdown (one IPI per remote core; past the full-flush
            // ceiling each core takes one full flush instead of per-page
            // invalidations). Frames are still scrubbed/freed only
            // *after* the shootdown — same safety order as the per-page
            // path below.
            let mut vas: Vec<VirtAddr> = Vec::with_capacity(confined.len() + commons.len());
            for (va, _) in &confined {
                mmu_guard::checked_update_leaf(machine, 0, root, *va, |_| Pte::empty()).ok();
                vas.push(*va);
            }
            for (_, page) in &commons {
                mmu_guard::checked_update_leaf(machine, 0, root, *page, |_| Pte::empty()).ok();
                vas.push(*page);
            }
            if !vas.is_empty() {
                machine.tlb_shootdown_mm(0, root, &vas).ok();
            }
            for (_, frame) in &confined {
                self.frames.dec_map(*frame);
                machine.mem.zero_frame(*frame).ok();
                machine.mem.free_frame(*frame).ok();
                self.frames.release(*frame).ok();
            }
            for (rid, page) in &commons {
                if let Some(region) = self.common_regions.get(rid) {
                    if let Some((_, base)) = region.attached.iter().find(|(sid, _)| sid.0 == id.0)
                    {
                        let idx = ((page.0 - base.0) / PAGE_SIZE as u64) as usize;
                        if let Some(f) = region.frames.get(idx) {
                            self.frames.dec_map(*f);
                        }
                    }
                }
            }
            self.kill_fence_epilogue(machine, &confined, domain);
            guard.exit(machine, 0);
            return;
        }
        for (va, frame) in &confined {
            mmu_guard::checked_update_leaf(machine, 0, root, *va, |_| Pte::empty()).ok();
            // Shoot down *before* scrub/free: a stale translation to a
            // freed frame is a cross-tenant leak.
            machine.tlb_shootdown_mm(0, root, &[*va]).ok();
            self.frames.dec_map(*frame);
            machine.mem.zero_frame(*frame).ok();
            machine.mem.free_frame(*frame).ok();
            self.frames.release(*frame).ok();
        }
        for (rid, page) in commons {
            mmu_guard::checked_update_leaf(machine, 0, root, page, |_| Pte::empty()).ok();
            machine.tlb_shootdown_mm(0, root, &[page]).ok();
            if let Some(region) = self.common_regions.get(&rid) {
                if let Some((_, base)) = region.attached.iter().find(|(sid, _)| sid.0 == id.0) {
                    let idx = ((page.0 - base.0) / PAGE_SIZE as u64) as usize;
                    if let Some(f) = region.frames.get(idx) {
                        self.frames.dec_map(*f);
                    }
                }
            }
        }
        self.kill_fence_epilogue(machine, &confined, domain);
        guard.exit(machine, 0);
    }

    /// Post-teardown isolation fence, run with monitor privileges after
    /// the dead sandbox's frames are scrubbed and freed:
    ///
    /// 1. Retag every confined direct-map alias back to the default tag
    ///    (pkey 0, key-ID 0). `free_frame` already dropped the frame's
    ///    programmed key, so a surviving keyed alias would fault the
    ///    frame's *next* owner; the sandbox-pkey alias would silently
    ///    pin a now-free pkey under PKS.
    /// 2. Revoke the sandbox's isolation domain so the backend can
    ///    reuse it.
    /// 3. Bump the machine MMU epoch and drop the cpuid MRU: no core
    ///    may serve a cached permission decision (or cpuid answer) for
    ///    the dead sandbox's (CR3, domain) pair. The per-VA shootdowns
    ///    above close the TLB, but a zero-confined-page sandbox issues
    ///    none — the epoch bump is what makes the fence unconditional.
    ///
    /// `kill_fence = false` ablates all of it; the stale-decision
    /// regression test reproduces the bug class that way.
    fn kill_fence_epilogue(
        &mut self,
        machine: &mut Machine,
        confined: &[(VirtAddr, Frame)],
        domain: DomainId,
    ) {
        if !self.kill_fence {
            return;
        }
        for (_, frame) in confined {
            mmu_guard::retag_direct_map_tagged(machine, 0, self.kernel_root, *frame, PK_DEFAULT, 0)
                .ok();
        }
        self.backend.free_domain(domain).ok();
        self.cpuid_mru = None;
        machine.bump_mmu_epoch();
    }

    // ==================================================================
    // Exit interposition (§6.2, Fig. 7)
    // ==================================================================

    /// Cost of the monitor's interposer prologue/epilogue (PKRS grant and
    /// revoke around handler work).
    fn charge_interpose(&self, machine: &mut Machine) {
        let c = &machine.costs;
        machine.cycles.charge(c.rdmsr + 2 * c.wrmsr + 8 * c.mem_op);
    }

    /// The syscall interposer: every `syscall` lands here first (the
    /// hardware `IA32_LSTAR` points into the monitor).
    ///
    /// Reads the syscall number and arguments from the trapping context.
    pub fn on_syscall(
        &mut self,
        machine: &mut Machine,
        tdx: &mut TdxModule,
        cpu: usize,
        sandbox: Option<SandboxId>,
    ) -> ExitDecision {
        let prev_bucket = machine.cycles.set_bucket(Bucket::Monitor);
        let d = self.on_syscall_body(machine, tdx, cpu, sandbox);
        machine.cycles.set_bucket(prev_bucket);
        d
    }

    fn on_syscall_body(
        &mut self,
        machine: &mut Machine,
        tdx: &mut TdxModule,
        cpu: usize,
        sandbox: Option<SandboxId>,
    ) -> ExitDecision {
        self.charge_interpose(machine);
        let ctx = machine.cpus[cpu].ctx;
        let nr = ctx.gpr[0]; // rax
        let fd = ctx.gpr[7]; // rdi
        if let Some(id) = sandbox {
            let state = self.sandboxes.get(&id.0).map(|s| s.state);
            if state == Some(SandboxState::DataLoaded) {
                // The monitor I/O channel is always monitor-handled (§6.3).
                if nr == SYS_IOCTL && fd == EREBOR_IO_FD {
                    self.stats.sandbox_syscall_exits = self.stats.sandbox_syscall_exits.saturating_add(1);
                    return self.handle_io_ioctl(machine, tdx, cpu, id);
                }
                // Any other software-controlled exit is fatal — when exit
                // protection is enforced (§6.2).
                if self.cfg.exit_protection() {
                    self.kill_sandbox(machine, id, "syscall after data install");
                    return ExitDecision::Killed {
                        reason: "syscall after data install",
                    };
                }
            }
        }
        match self.kernel_syscall_entry {
            Some(entry) => ExitDecision::ForwardToKernel { handler: entry },
            None => ExitDecision::Killed {
                reason: "no kernel syscall entry registered",
            },
        }
    }

    /// The interrupt/exception interposer (hardware IDT target).
    ///
    /// For sandboxes, saves and scrubs the register context before the
    /// kernel handler runs; also services the `#INT` gate for preempted
    /// EMCs.
    pub fn on_interrupt(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        sandbox: Option<SandboxId>,
        vec: u8,
        interrupted: GprContext,
    ) -> ExitDecision {
        let prev_bucket = machine.cycles.set_bucket(Bucket::Monitor);
        let d = self.on_interrupt_body(machine, cpu, sandbox, vec, interrupted);
        machine.cycles.set_bucket(prev_bucket);
        d
    }

    fn on_interrupt_body(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        sandbox: Option<SandboxId>,
        vec: u8,
        interrupted: GprContext,
    ) -> ExitDecision {
        self.charge_interpose(machine);
        if self.gate.interrupt_entry(machine, cpu).is_err() {
            // The #INT gate could not revoke the EMC's PKRS: forwarding
            // to the kernel handler would hand it monitor memory access,
            // so refuse delivery instead.
            return ExitDecision::Killed {
                reason: "#INT gate failed to revoke EMC credentials",
            };
        }
        if let Some(id) = sandbox {
            if self.cfg.exit_protection() {
                match vec {
                    idt::vector::TIMER => self.stats.sandbox_timer_exits = self.stats.sandbox_timer_exits.saturating_add(1),
                    idt::vector::PF => self.stats.sandbox_pf_exits = self.stats.sandbox_pf_exits.saturating_add(1),
                    idt::vector::DEVICE => {}
                    _ => {}
                }
                if let Some(s) = self.sandboxes.get_mut(&id.0) {
                    // Save then mask the sandbox context: the kernel's
                    // handler sees zeros (§6.2 ②). Full-state protection
                    // costs an xsave-class operation.
                    machine.cycles.charge(machine.costs.ctx_protect);
                    s.saved_ctx = Some(interrupted);
                    machine.cpus[cpu].ctx.scrub();
                }
            }
        }
        match self.vec_handlers[vec as usize] {
            Some(handler) => ExitDecision::ForwardToKernel { handler },
            None => ExitDecision::Killed {
                reason: "unregistered vector",
            },
        }
    }

    /// Return from an interposed interrupt back into the sandbox: restore
    /// the protected context and the `#INT` gate state.
    ///
    /// # Errors
    /// MSR faults from the gate restore.
    pub fn resume_sandbox(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        id: SandboxId,
    ) -> Result<(), Fault> {
        let prev_bucket = machine.cycles.set_bucket(Bucket::Monitor);
        let r = self.gate.interrupt_return(machine, cpu);
        if r.is_ok() {
            if let Some(s) = self.sandboxes.get_mut(&id.0) {
                if let Some(ctx) = s.saved_ctx.take() {
                    machine.cycles.charge(machine.costs.ctx_protect);
                    machine.cpus[cpu].ctx = ctx;
                }
            }
        }
        machine.cycles.set_bucket(prev_bucket);
        r
    }

    /// `#VE` interposer: hypercall-class events from a sandbox.
    ///
    /// `cpuid` is emulated from the monitor's cache (one host round trip
    /// ever, §6.2 ④); anything else after data install kills the sandbox.
    pub fn on_ve(
        &mut self,
        machine: &mut Machine,
        tdx: &mut TdxModule,
        cpu: usize,
        sandbox: Option<SandboxId>,
        reason: VeReason,
        cpuid_leaf: u32,
    ) -> ExitDecision {
        let prev_bucket = machine.cycles.set_bucket(Bucket::Monitor);
        let d = self.on_ve_body(machine, tdx, cpu, sandbox, reason, cpuid_leaf);
        machine.cycles.set_bucket(prev_bucket);
        d
    }

    fn on_ve_body(
        &mut self,
        machine: &mut Machine,
        tdx: &mut TdxModule,
        cpu: usize,
        sandbox: Option<SandboxId>,
        reason: VeReason,
        cpuid_leaf: u32,
    ) -> ExitDecision {
        self.charge_interpose(machine);
        if let Some(id) = sandbox {
            if self.cfg.exit_protection()
                && self.sandboxes.get(&id.0).map(|s| s.state) == Some(SandboxState::DataLoaded)
            {
                self.stats.sandbox_ve_exits = self.stats.sandbox_ve_exits.saturating_add(1);
                if reason == VeReason::Cpuid {
                    let value = match self.cpuid_cache_get(cpuid_leaf) {
                        Some(v) => v,
                        None => {
                            let res = tdcall(
                                tdx,
                                machine,
                                cpu,
                                TdcallLeaf::VmCall(VmcallOp::Cpuid { leaf: cpuid_leaf }),
                            );
                            // Cache only real results — a transient
                            // tdcall failure must not poison the cache
                            // with zeros for every later caller.
                            match res {
                                Ok(TdcallResult::Cpuid(v)) => {
                                    self.cpuid_cache_put(cpuid_leaf, v);
                                    v
                                }
                                _ => [0; 4],
                            }
                        }
                    };
                    machine.cpus[cpu].ctx.gpr[0] = u64::from(value[0]);
                    machine.cpus[cpu].ctx.gpr[3] = u64::from(value[1]);
                    return ExitDecision::Handled {
                        rax: u64::from(value[0]),
                    };
                }
                self.kill_sandbox(machine, id, "VM exit after data install");
                return ExitDecision::Killed {
                    reason: "VM exit after data install",
                };
            }
        }
        match self.vec_handlers[idt::vector::VE as usize] {
            Some(handler) => ExitDecision::ForwardToKernel { handler },
            None => ExitDecision::Killed {
                reason: "no #VE handler",
            },
        }
    }

    /// The sandbox data channel (§6.3), entered either from the syscall
    /// interposer (exit protection on) or from the kernel's `/dev/erebor`
    /// driver (ablation configs without exit interposition).
    pub fn sandbox_io(
        &mut self,
        machine: &mut Machine,
        tdx: &mut TdxModule,
        cpu: usize,
        id: SandboxId,
    ) -> ExitDecision {
        let prev_bucket = machine.cycles.set_bucket(Bucket::Monitor);
        let d = self.handle_io_ioctl(machine, tdx, cpu, id);
        machine.cycles.set_bucket(prev_bucket);
        d
    }

    fn handle_io_ioctl(
        &mut self,
        machine: &mut Machine,
        _tdx: &mut TdxModule,
        cpu: usize,
        id: SandboxId,
    ) -> ExitDecision {
        let ctx = machine.cpus[cpu].ctx;
        let op = ctx.gpr[6]; // rsi
        let buf = VirtAddr(ctx.gpr[2]); // rdx
        let len = ctx.gpr[10] as usize; // r10
        match op {
            IOCTL_INPUT => match self.deliver_input(machine, cpu, id, buf, len) {
                Ok(n) => ExitDecision::Handled { rax: n as u64 },
                Err(reason) => {
                    self.kill_sandbox(machine, id, reason);
                    ExitDecision::Killed { reason }
                }
            },
            IOCTL_OUTPUT => match self.collect_output(machine, cpu, id, buf, len) {
                Ok(()) => ExitDecision::Handled { rax: 0 },
                Err(reason) => {
                    self.kill_sandbox(machine, id, reason);
                    ExitDecision::Killed { reason }
                }
            },
            _ => {
                self.kill_sandbox(machine, id, "unknown erebor ioctl");
                ExitDecision::Killed {
                    reason: "unknown erebor ioctl",
                }
            }
        }
    }

    /// Copy staged client input into sandbox confined memory (monitor
    /// `stac`-guarded copy with the sandbox's CR3).
    fn deliver_input(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        id: SandboxId,
        buf: VirtAddr,
        len: usize,
    ) -> Result<usize, &'static str> {
        let (root, data) = {
            let s = self.sandboxes.get_mut(&id.0).ok_or("no such sandbox")?;
            let data = s.pending_input.pop_front().ok_or("no pending input")?;
            (s.root, data)
        };
        if data.len() > len {
            return Err("input buffer too small");
        }
        // The destination must be confined memory, over the whole range.
        {
            let s = self.sandboxes.get(&id.0).ok_or("no such sandbox")?;
            let end = buf.add(data.len().max(1) as u64 - 1);
            let mut page = buf.page_base();
            while page.0 <= end.0 {
                if !s.owns_va(page) {
                    return Err("input buffer not confined");
                }
                page = page.add(PAGE_SIZE as u64);
            }
        }
        let guard = PrivGuard::enter(machine, cpu).map_err(|_| "privilege raise failed")?;
        let saved_root = machine.cpus[cpu].cr3;
        let res = machine
            .write_cr3(cpu, root)
            .and_then(|()| machine.stac(cpu))
            .and_then(|()| machine.write(cpu, buf, &data));
        machine.clac(cpu).ok();
        machine.write_cr3(cpu, saved_root).ok();
        guard.exit(machine, cpu);
        res.map_err(|_| "confined write failed")?;
        Ok(data.len())
    }

    /// Read sandbox output, pad to the configured quantum, seal it on the
    /// client session, and queue it for the untrusted proxy (§6.3).
    fn collect_output(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        id: SandboxId,
        buf: VirtAddr,
        len: usize,
    ) -> Result<(), &'static str> {
        let sandbox = self.sandboxes.get(&id.0).ok_or("no such sandbox")?;
        let root = sandbox.root;
        // The output buffer must lie in the sandbox's own confined memory:
        // the monitor must never be tricked into sealing other memory into
        // the client channel.
        let end = buf.add(len.max(1) as u64 - 1);
        let mut page = buf.page_base();
        while page.0 <= end.0 {
            if !sandbox.owns_va(page) {
                return Err("output buffer not confined");
            }
            page = page.add(PAGE_SIZE as u64);
        }
        let guard = PrivGuard::enter(machine, cpu).map_err(|_| "privilege raise failed")?;
        let saved_root = machine.cpus[cpu].cr3;
        let mut data = vec![0u8; len];
        let res = machine
            .write_cr3(cpu, root)
            .and_then(|()| machine.stac(cpu))
            .and_then(|()| machine.read(cpu, buf, &mut data));
        machine.clac(cpu).ok();
        machine.write_cr3(cpu, saved_root).ok();
        guard.exit(machine, cpu);
        res.map_err(|_| "output read failed")?;
        // Fixed-length padding: a 4-byte true length prefix, then data,
        // padded to the quantum.
        let quantum = self.cfg.output_pad_quantum.max(1);
        let mut framed = Vec::with_capacity(4 + data.len());
        framed.extend_from_slice(&(data.len() as u32).to_le_bytes());
        framed.extend_from_slice(&data);
        let padded_len = framed.len().div_ceil(quantum) * quantum;
        framed.resize(padded_len, 0);
        let s = self.sandboxes.get_mut(&id.0).ok_or("no such sandbox")?;
        let session = s.session.as_mut().ok_or("no client session")?;
        let record = session.send(&framed).map_err(|_| "channel exhausted")?;
        s.outbox.push_back(record);
        Ok(())
    }
}

impl core::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Monitor")
            .field("mode", &self.cfg.mode)
            .field("sandboxes", &self.sandboxes.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

fn map_err(e: MapError) -> EmcError {
    match e {
        MapError::NoMemory => EmcError::NoMemory,
        MapError::FrameConflict => EmcError::Denied("frame kind conflict"),
        MapError::NotMapped => EmcError::BadRequest("address not mapped"),
        MapError::Fault(f) => EmcError::Fault(f),
    }
}

/// Kernel-load failure (stage-two boot).
#[derive(Debug)]
pub enum LoadError {
    /// The byte scan found sensitive instructions.
    Rejected(scan::ScanRejection),
    /// Sections at illegal addresses.
    BadLayout(&'static str),
    /// Out of memory.
    NoMemory,
    /// Hardware fault while loading.
    Fault(Fault),
    /// Mapping failure.
    Map(MapError),
}

impl core::fmt::Display for LoadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LoadError::Rejected(r) => write!(f, "{r}"),
            LoadError::BadLayout(why) => write!(f, "bad kernel layout: {why}"),
            LoadError::NoMemory => write!(f, "out of memory loading kernel"),
            LoadError::Fault(e) => write!(f, "fault loading kernel: {e}"),
            LoadError::Map(e) => write!(f, "mapping failure loading kernel: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

#[cfg(test)]
mod migration_tests {
    use super::*;
    use erebor_crypto::kx::{Role, SecureChannel, SessionKeys};

    /// A monitor with every field populated away from its default, so the
    /// roundtrip test exercises each codec arm.
    fn busy_monitor() -> Monitor {
        let mut cfg = ExecConfig::new(crate::config::Mode::Full);
        cfg.batched_mmu = true;
        cfg.output_interval_cycles = Some(12_345);
        let mut frames = FrameTable::new(64);
        let _ = frames.set_kind(Frame(1), FrameKind::Monitor);
        let _ = frames.set_kind(Frame(2), FrameKind::KernelCode);
        let _ = frames.set_kind(Frame(3), FrameKind::UserAnon { asid: 7 });
        let _ = frames.set_kind(Frame(4), FrameKind::Confined { sandbox: 1 });
        let _ = frames.set_kind(Frame(5), FrameKind::Common { region: 1 });
        frames.inc_map(Frame(3));
        let gate = EmcGate::new(VirtAddr(0x1000), vec![VirtAddr(0x2000), VirtAddr(0x3000)]);
        let mut m = Monitor::new(
            cfg,
            frames,
            gate,
            [9u8; 32],
            Frame(10),
            VirtAddr(0x5000),
            Region {
                start: Frame(20),
                end: Frame(30),
            },
            Region {
                start: Frame(40),
                end: Frame(44),
            },
        );
        m.stats.emc_calls = 17;
        m.stats.sandboxes_killed = 2;
        let _ = m.rng.next_32(); // advance the DRBG off zero
        m.kernel_text = Some((VirtAddr(0xffff_8000_0000_0000), vec![Frame(2)]));
        m.kernel_syscall_entry = Some(VirtAddr(0xffff_8000_0000_0100));
        m.vec_handlers[14] = Some(VirtAddr(0xffff_8000_0000_0200));
        m.vec_handlers[255] = Some(VirtAddr(0xffff_8000_0000_0300));
        m.address_spaces.insert(11, 7);
        m.address_spaces.insert(12, 8);
        m.as_index = m.address_spaces.iter().map(|(&k, &v)| (k, v)).collect();
        m.cpuid_cache.insert(1, [0xa, 0xb, 0xc, 0xd]);
        m.cpuid_mru = Some((1, [0xa, 0xb, 0xc, 0xd]));
        m.coalesce_shootdowns = true;

        let mut sb = Sandbox::new(SandboxId(1), Frame(50), 8);
        sb.domain = DomainId(3);
        sb.state = SandboxState::DataLoaded;
        sb.confined.push((VirtAddr(0x7000_0000), Frame(4)));
        sb.logical_confined_bytes = PAGE_SIZE as u64;
        sb.attached_common.push((1, VirtAddr(0x7100_0000)));
        sb.common_mapped.push((1, VirtAddr(0x7100_0000)));
        sb.pending_input.push_back(vec![1, 2, 3]);
        sb.outbox.push_back(vec![4, 5]);
        // A live mid-stream channel: counters must survive the trip.
        let keys = SessionKeys {
            c2s: [0x11; 32],
            s2c: [0x22; 32],
        };
        let mut chan = SecureChannel::new(keys, Role::Monitor);
        let _sealed = chan.send(b"hello").expect("seal one record");
        sb.session = Some(chan);
        m.root_index.insert(50, 1);
        m.sandboxes.insert(1, sb);
        let mut dead = Sandbox::new(SandboxId(2), Frame(51), 8);
        dead.state = SandboxState::Dead;
        dead.kill_reason = Some("W^X violation");
        m.sandboxes.insert(2, dead);
        m.next_sandbox = 3;

        m.common_regions.insert(
            1,
            CommonRegion {
                id: 1,
                frames: vec![Frame(5)],
                sealed: true,
                logical_bytes: 4096,
                attached: vec![(SandboxId(1), VirtAddr(0x7100_0000))],
            },
        );
        m.next_region = 2;
        m
    }

    #[test]
    fn monitor_state_roundtrips_byte_exact() -> Result<(), erebor_wire::WireError> {
        let m = busy_monitor();
        let bytes = m.export_state();
        let imported = Monitor::import_state(&bytes)?;
        // Fixed point first: re-export must be byte-identical.
        assert_eq!(imported.export_state(), bytes);
        // Derived indexes are rebuilt, not trusted from the wire.
        assert!(imported.address_space_registered(Frame(11)));
        assert!(imported.address_space_registered(Frame(12)));
        assert!(!imported.address_space_registered(Frame(13)));
        assert_eq!(imported.root_index.get(&50), Some(&1));
        assert_eq!(imported.root_index.get(&51), None, "dead sandbox not live");
        // The channel resumed mid-stream: one record already sealed.
        let sb = imported.sandboxes.get(&1).expect("sandbox survives");
        let chan = sb.session.as_ref().expect("session survives");
        let (_, _, send_ctr, _) = chan.to_parts();
        assert_eq!(send_ctr, 1, "send counter resumes, never rewinds");
        Ok(())
    }

    #[test]
    fn lookup_stats_start_fresh_on_import() -> Result<(), erebor_wire::WireError> {
        let m = busy_monitor();
        // Burn some fast-path counters on the source.
        assert!(m.address_space_registered(Frame(11)));
        assert!(m.address_space_registered(Frame(12)));
        assert!(m.lookup_stats.as_index_lookups() > 0);
        let imported = Monitor::import_state(&m.export_state())?;
        assert_eq!(imported.lookup_stats.as_index_lookups(), 0);
        assert_eq!(imported.lookup_stats.root_index_lookups(), 0);
        assert_eq!(imported.lookup_stats.cpuid_mru_hits(), 0);
        Ok(())
    }

    #[test]
    fn truncated_monitor_state_is_rejected_everywhere() {
        let m = busy_monitor();
        let bytes = m.export_state();
        // Every strict prefix must fail cleanly — no panic, no partial
        // monitor. Step to keep the sweep fast over a multi-KiB blob.
        for cut in (0..bytes.len()).step_by(7).chain([bytes.len() - 1]) {
            assert!(
                Monitor::import_state(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not import"
            );
        }
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(Monitor::import_state(&extra).is_err(), "trailing byte");
    }

    #[test]
    fn sparse_sandbox_ids_are_rejected() {
        let mut m = busy_monitor();
        // Forge a stream whose second sandbox claims id 5: the dense
        // slab invariant must be enforced by validation, not by the
        // insert assertion.
        m.sandboxes.get_mut(&2).expect("exists").id = SandboxId(5);
        let bytes = m.export_state();
        assert!(matches!(
            Monitor::import_state(&bytes),
            Err(erebor_wire::WireError::BadValue { .. })
        ));
    }
}
