//! A deterministic random generator for the monitor's key material.
//!
//! The simulation must be reproducible, so the monitor draws randomness
//! from a ChaCha20-based DRBG seeded at boot (standing in for RDSEED).

use erebor_crypto::chacha20;

/// ChaCha20-keystream DRBG.
pub struct DetRng {
    key: [u8; 32],
    counter: u32,
}

impl DetRng {
    /// Seed the generator.
    #[must_use]
    pub fn new(seed: [u8; 32]) -> DetRng {
        DetRng {
            key: seed,
            counter: 0,
        }
    }

    /// Fill `out` with pseudorandom bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        let nonce = [0u8; 12];
        for chunk in out.chunks_mut(64) {
            let block = chacha20::block(&self.key, &nonce, self.counter);
            self.counter = self.counter.wrapping_add(1);
            chunk.copy_from_slice(&block[..chunk.len()]);
        }
    }

    /// Draw 32 bytes (an X25519 private key, a seed, ...).
    #[must_use]
    pub fn next_32(&mut self) -> [u8; 32] {
        let mut b = [0u8; 32];
        self.fill(&mut b);
        b
    }

    /// Raw migration parts: seed key and stream position. A migrated
    /// generator must resume at the exact counter — rewinding would
    /// re-issue key material the source already handed out.
    #[must_use]
    pub fn to_parts(&self) -> ([u8; 32], u32) {
        (self.key, self.counter)
    }

    /// Rebuild a generator mid-stream from [`DetRng::to_parts`] output.
    #[must_use]
    pub fn from_parts(key: [u8; 32], counter: u32) -> DetRng {
        DetRng { key, counter }
    }
}

impl core::fmt::Debug for DetRng {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DetRng")
            .field("counter", &self.counter)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct() {
        let mut a = DetRng::new([1; 32]);
        let mut b = DetRng::new([1; 32]);
        let mut c = DetRng::new([2; 32]);
        assert_eq!(a.next_32(), b.next_32());
        assert_ne!(a.next_32(), a.next_32(), "stream advances");
        assert_ne!(b.next_32(), c.next_32(), "seeds differ");
    }

    #[test]
    fn fill_partial_blocks() {
        let mut r = DetRng::new([3; 32]);
        let mut buf = [0u8; 100];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
