//! Secure data communication (§6.3): attestation-rooted key exchange
//! between a remote client and the monitor, an untrusted proxy relay, and
//! the monitor-side data shepherding into/out of sandboxes.
//!
//! Wire flow:
//!
//! ```text
//! client ──ClientHello{C}──▶ proxy ──▶ monitor
//! client ◀─ServerHello{M, quote(report_data=H(C‖M))}── proxy ◀── monitor
//! client ──AEAD records──▶ proxy ──▶ monitor ──(stac copy)──▶ sandbox
//! client ◀─AEAD records (fixed-length padded)── monitor ◀── sandbox
//! ```
//!
//! The proxy (and thus the host and kernel) only ever see hello material
//! and ciphertext.

use crate::monitor::Monitor;
use crate::sandbox::{SandboxId, SandboxState};
use erebor_crypto::kx::{self, Role, SecureChannel};
use erebor_crypto::x25519;
use erebor_crypto::VerifyingKey;
use erebor_hw::cpu::Machine;
use erebor_hw::regs::Msr;
use erebor_tdx::attest::{verify_quote_expected, Expected, Quote, QuoteError};
use erebor_tdx::tdcall::{tdcall, TdcallLeaf, TdcallResult};
use erebor_tdx::TdxModule;

/// First flight: the client's ephemeral public key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientHello {
    /// X25519 ephemeral public key.
    pub client_pub: [u8; 32],
}

/// Second flight: the monitor's ephemeral key plus the binding quote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerHello {
    /// X25519 ephemeral public key.
    pub monitor_pub: [u8; 32],
    /// CPU-signed quote binding both public keys.
    pub quote: Quote,
}

/// Client-side handshake/verification failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientError {
    /// The quote failed verification.
    Quote(QuoteError),
    /// The quote does not bind this handshake's keys.
    BindingMismatch,
    /// Record-layer failure.
    Channel,
    /// Handshake not completed yet.
    NotEstablished,
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::Quote(q) => write!(f, "attestation failed: {q}"),
            ClientError::BindingMismatch => write!(f, "quote does not bind the key exchange"),
            ClientError::Channel => write!(f, "secure-channel record rejected"),
            ClientError::NotEstablished => write!(f, "channel not established"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A remote client: provisioned with the hardware root key and the
/// expected boot measurement (firmware + monitor are open source, §5.1).
pub struct Client {
    private: [u8; 32],
    /// Our ephemeral public key.
    pub public: [u8; 32],
    root: VerifyingKey,
    expected: Expected,
    channel: Option<SecureChannel>,
}

impl Client {
    /// Create a client and its first flight.
    #[must_use]
    pub fn new(
        key_seed: [u8; 32],
        root: VerifyingKey,
        expected_mrtd: [u8; 32],
    ) -> (Client, ClientHello) {
        Client::with_expected(key_seed, root, Expected::Mrtd(expected_mrtd))
    }

    /// Create a client with an explicit measurement policy (the paravisor
    /// deployments of §10 use [`Expected::ParavisorRtmr`]).
    #[must_use]
    pub fn with_expected(
        key_seed: [u8; 32],
        root: VerifyingKey,
        expected: Expected,
    ) -> (Client, ClientHello) {
        let private = x25519::clamp_scalar(key_seed);
        let public = x25519::public_key(&private);
        (
            Client {
                private,
                public,
                root,
                expected,
                channel: None,
            },
            ClientHello { client_pub: public },
        )
    }

    /// Verify the monitor's reply and derive the session keys.
    ///
    /// # Errors
    /// [`ClientError`] if the quote, measurement or binding fail.
    pub fn finish(&mut self, hello: &ServerHello) -> Result<(), ClientError> {
        verify_quote_expected(&self.root, &hello.quote, &self.expected)
            .map_err(ClientError::Quote)?;
        let binding = kx::binding_hash(&self.public, &hello.monitor_pub);
        if hello.quote.report.report_data[..32] != binding {
            return Err(ClientError::BindingMismatch);
        }
        let shared = x25519::shared_secret(&self.private, &hello.monitor_pub);
        let keys = kx::derive_session_keys(&shared, &self.public, &hello.monitor_pub);
        self.channel = Some(SecureChannel::new(keys, Role::Client));
        Ok(())
    }

    /// Seal client data for the monitor.
    ///
    /// # Errors
    /// [`ClientError::NotEstablished`] before [`Client::finish`].
    pub fn seal(&mut self, data: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.channel
            .as_mut()
            .ok_or(ClientError::NotEstablished)?
            .send(data)
            .map_err(|_| ClientError::Channel)
    }

    /// Open a result record from the monitor, stripping the fixed-length
    /// padding frame.
    ///
    /// # Errors
    /// [`ClientError`] on record or framing failures.
    pub fn open_result(&mut self, record: &[u8]) -> Result<Vec<u8>, ClientError> {
        let padded = self
            .channel
            .as_mut()
            .ok_or(ClientError::NotEstablished)?
            .recv(record)
            .map_err(|_| ClientError::Channel)?;
        if padded.len() < 4 {
            return Err(ClientError::Channel);
        }
        let len = u32::from_le_bytes([padded[0], padded[1], padded[2], padded[3]]) as usize;
        if 4 + len > padded.len() {
            return Err(ClientError::Channel);
        }
        Ok(padded[4..4 + len].to_vec())
    }
}

impl core::fmt::Debug for Client {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Client")
            .field("public", &self.public)
            .finish_non_exhaustive()
    }
}

/// The untrusted in-CVM proxy: relays opaque bytes between the network and
/// the monitor, and — being attacker-controlled — records everything it
/// sees into the host's observation log.
#[derive(Debug, Default)]
pub struct Proxy;

impl Proxy {
    /// Relay a flight, recording it for the attacker.
    #[must_use]
    pub fn relay(tdx: &mut TdxModule, bytes: &[u8]) -> Vec<u8> {
        tdx.host.record_vmcall(bytes);
        bytes.to_vec()
    }
}

impl Monitor {
    /// Accept a client handshake for `sandbox`: generate an ephemeral key,
    /// obtain a binding quote via `tdcall` (the monitor is the only code
    /// able to, C5), and derive the session.
    ///
    /// # Errors
    /// Static string on sandbox-state or tdcall failures.
    pub fn channel_accept(
        &mut self,
        machine: &mut Machine,
        tdx: &mut TdxModule,
        cpu: usize,
        sandbox: SandboxId,
        hello: &ClientHello,
    ) -> Result<ServerHello, &'static str> {
        if !self.sandboxes.contains_key(&sandbox.0) {
            return Err("no such sandbox");
        }
        let private = x25519::clamp_scalar(self.rng.next_32());
        let monitor_pub = x25519::public_key(&private);
        let binding = kx::binding_hash(&hello.client_pub, &monitor_pub);
        let mut report_data = [0u8; 64];
        report_data[..32].copy_from_slice(&binding);

        // Attestation runs in monitor context (the monitor's own code is
        // executing here, in ring 0 — only it can reach tdcall, C5).
        let guard =
            crate::monitor::PrivGuard::enter(machine, cpu).map_err(|_| "privilege raise failed")?;
        let report = tdcall(
            tdx,
            machine,
            cpu,
            TdcallLeaf::TdReport {
                report_data: Box::new(report_data),
            },
        );
        let quote = match report {
            Ok(TdcallResult::Report(r)) => tdcall(tdx, machine, cpu, TdcallLeaf::GetQuote(r)),
            _ => {
                guard.exit(machine, cpu);
                return Err("tdreport failed");
            }
        };
        guard.exit(machine, cpu);
        let quote = match quote {
            Ok(TdcallResult::Quote(q)) => *q,
            _ => return Err("quote failed"),
        };
        self.stats.ghci_ops = self.stats.ghci_ops.saturating_add(2);

        let shared = x25519::shared_secret(&private, &hello.client_pub);
        let keys = kx::derive_session_keys(&shared, &hello.client_pub, &monitor_pub);
        let s = self
            .sandboxes
            .get_mut(&sandbox.0)
            .ok_or("no such sandbox")?;
        s.session = Some(SecureChannel::new(keys, Role::Monitor));
        Ok(ServerHello { monitor_pub, quote })
    }

    /// Receive a sealed client-data record: decrypt inside the monitor,
    /// stage the plaintext for the sandbox's INPUT ioctl, and — on the
    /// first record — transition the sandbox to
    /// [`SandboxState::DataLoaded`]: seal every attached common region
    /// read-only and disable user-mode interrupts (§6.1, §6.2 ④).
    ///
    /// # Errors
    /// Static string naming the failed step.
    pub fn install_client_data(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        sandbox: SandboxId,
        record: &[u8],
    ) -> Result<(), &'static str> {
        let (plain, first, commons) = {
            let s = self
                .sandboxes
                .get_mut(&sandbox.0)
                .ok_or("no such sandbox")?;
            if s.state == SandboxState::Dead {
                return Err("sandbox is dead");
            }
            let session = s.session.as_mut().ok_or("no client session")?;
            let plain = session.recv(record).map_err(|_| "record rejected")?;
            let first = s.state == SandboxState::Setup;
            let commons: Vec<u32> = s.attached_common.iter().map(|(r, _)| *r).collect();
            s.pending_input.push_back(plain.clone());
            (plain, first, commons)
        };
        let _ = plain;
        if first {
            for region in commons {
                self.seal_common(machine, cpu, region)
                    .map_err(|_| "seal failed")?;
            }
            // Disable user-mode interrupt sending before entering the
            // sandbox (clear IA32_UINTR_TT.valid).
            let guard = crate::monitor::PrivGuard::enter(machine, cpu)
                .map_err(|_| "privilege raise failed")?;
            let res = machine.wrmsr(cpu, Msr::UintrTt, 0);
            guard.exit(machine, cpu);
            res.map_err(|_| "uintr disable failed")?;
            let s = self
                .sandboxes
                .get_mut(&sandbox.0)
                .ok_or("no such sandbox")?;
            s.state = SandboxState::DataLoaded;
        }
        Ok(())
    }

    /// Graceful session termination (§6.3): after all results are returned
    /// the monitor zeroes the sandbox's memory — confined pages (including
    /// the LibOS's in-memory filesystem and thread contexts living there) —
    /// releases the frames, and retires the container.
    pub fn end_session(&mut self, machine: &mut Machine, sandbox: SandboxId) {
        if let Some(s) = self.sandboxes.get_mut(&sandbox.0) {
            s.outbox.clear();
            s.saved_ctx = None;
        }
        // The teardown path (unmap → scrub → release) is shared with the
        // kill path; only the reason differs.
        self.kill_sandbox(machine, sandbox, "session ended");
        self.stats.sandboxes_killed = self.stats.sandboxes_killed.saturating_sub(1); // graceful end, not a kill
    }

    /// Proxy pickup of the next sealed output record. With quantized
    /// output intervals configured (§11), the record is released only at
    /// the next interval boundary, so completion *time* carries no
    /// information either.
    pub fn fetch_output(&mut self, sandbox: SandboxId) -> Option<Vec<u8>> {
        self.sandboxes.get_mut(&sandbox.0)?.outbox.pop_front()
    }

    /// Like [`Monitor::fetch_output`] but applying the configured output
    /// interval quantization to the release time.
    pub fn fetch_output_quantized(
        &mut self,
        machine: &mut Machine,
        sandbox: SandboxId,
    ) -> Option<Vec<u8>> {
        let record = self.fetch_output(sandbox)?;
        if let Some(q) = self.cfg.output_interval_cycles {
            let now = machine.cycles.total();
            let wait = now.next_multiple_of(q.max(1)) - now;
            machine.cycles.charge(wait);
        }
        Some(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_hello_is_public_key() {
        let root = erebor_crypto::SigningKey::from_seed([1; 32]).verifying_key();
        let (client, hello) = Client::new([9; 32], root, [0; 32]);
        assert_eq!(hello.client_pub, client.public);
    }

    #[test]
    fn seal_before_finish_fails() {
        let root = erebor_crypto::SigningKey::from_seed([1; 32]).verifying_key();
        let (mut client, _) = Client::new([9; 32], root, [0; 32]);
        assert_eq!(client.seal(b"x"), Err(ClientError::NotEstablished));
    }
}
