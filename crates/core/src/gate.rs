//! EMC entry/exit gates and the interrupt gate (§5.3, Fig. 5).
//!
//! The entry gate is the *only* `endbr64` landing pad in the monitor, so
//! CET-IBT forces every indirect transfer into the monitor through it. The
//! gate grants the core read-write access to monitor memory by writing
//! `IA32_PKRS`, switches to a protected per-core stack, and records the
//! in-EMC state that the interrupt gate consults: if the OS (or the host)
//! preempts an EMC, the `#INT` gate saves and *revokes* the elevated PKRS
//! before the kernel's handler runs, and restores it on return.

use crate::policy;
use erebor_hw::cpu::Machine;
use erebor_hw::fault::Fault;
use erebor_hw::regs::Msr;
use erebor_hw::VirtAddr;

/// Per-core gate state plus the gate addresses inside the monitor image.
#[derive(Debug)]
pub struct EmcGate {
    /// The `endbr64`-tagged entry address (the only legal indirect target
    /// in the monitor).
    pub entry: VirtAddr,
    /// Per-core secure stack tops.
    pub secure_stacks: Vec<VirtAddr>,
    in_emc: Vec<bool>,
    saved_pkrs: Vec<Option<u64>>,
}

impl EmcGate {
    /// Create gate state for `cores` logical cores.
    #[must_use]
    pub fn new(entry: VirtAddr, secure_stacks: Vec<VirtAddr>) -> EmcGate {
        let cores = secure_stacks.len();
        EmcGate {
            entry,
            secure_stacks,
            in_emc: vec![false; cores],
            saved_pkrs: vec![None; cores],
        }
    }

    /// Whether core `cpu` is currently inside an EMC.
    #[must_use]
    pub fn in_emc(&self, cpu: usize) -> bool {
        self.in_emc[cpu]
    }

    /// The entry gate (Fig. 5a): indirect branch (IBT-checked), scratch
    /// spills, PKRS grant, stack switch.
    ///
    /// # Errors
    /// `#CP` if the caller aims anywhere but the landing pad; fetch faults;
    /// `#GP`/`#UD` if somehow reached from an illegitimate context.
    pub fn enter(&mut self, machine: &mut Machine, cpu: usize) -> Result<(), Fault> {
        // ① Indirect call to the gate: hardware IBT check; on success the
        // core's code domain becomes Monitor.
        machine.indirect_branch(cpu, self.entry)?;
        let c = &machine.costs;
        // Scratch register spills + fills (3 each way), stack switch, and
        // the serializing-write pipeline overhead.
        machine
            .cycles
            .charge(6 * c.mem_op + c.stack_switch + 2 * c.alu + c.gate_overhead);
        // Grant monitor memory access for this core only.
        let _old = machine.rdmsr(cpu, Msr::Pkrs)?;
        machine.wrmsr(cpu, Msr::Pkrs, policy::monitor_mode_pkrs().0)?;
        self.in_emc[cpu] = true;
        Ok(())
    }

    /// The exit gate (Fig. 5b): revoke monitor access, restore scratch,
    /// return to the kernel at `return_to`.
    ///
    /// # Errors
    /// Propagates register/branch faults.
    pub fn exit(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        return_to: VirtAddr,
    ) -> Result<(), Fault> {
        let c = &machine.costs;
        machine
            .cycles
            .charge(6 * c.mem_op + c.stack_switch + 2 * c.alu + c.call_ret + c.gate_overhead);
        // The exit gate reads then rewrites PKRS (Fig. 5b lines 9-12).
        let _cur = machine.rdmsr(cpu, Msr::Pkrs)?;
        machine.wrmsr(cpu, Msr::Pkrs, policy::normal_mode_pkrs().0)?;
        self.in_emc[cpu] = false;
        machine.direct_branch(cpu, return_to)?;
        Ok(())
    }

    /// The `#INT` gate, interrupt-entry half (Fig. 5c-right ⓐ): if this
    /// core is inside an EMC, save the elevated PKRS onto the secure stack
    /// and revoke it before the OS handler runs.
    ///
    /// Must be invoked by the platform's interrupt interposer *before*
    /// transferring to any kernel handler. Idempotent outside EMCs.
    ///
    /// # Errors
    /// Propagates MSR faults.
    pub fn interrupt_entry(&mut self, machine: &mut Machine, cpu: usize) -> Result<(), Fault> {
        // Register save/restore cost of the gate.
        machine.cycles.charge(16 * machine.costs.mem_op);
        if self.in_emc[cpu] && self.saved_pkrs[cpu].is_none() {
            let cur = machine.rdmsr(cpu, Msr::Pkrs)?;
            self.saved_pkrs[cpu] = Some(cur);
            machine.wrmsr(cpu, Msr::Pkrs, policy::normal_mode_pkrs().0)?;
        }
        Ok(())
    }

    /// The `#INT` gate, interrupt-return half (Fig. 5c-right ⓑ): restore
    /// the saved PKRS when returning into a preempted EMC.
    ///
    /// # Errors
    /// Propagates MSR faults.
    pub fn interrupt_return(&mut self, machine: &mut Machine, cpu: usize) -> Result<(), Fault> {
        machine.cycles.charge(16 * machine.costs.mem_op);
        if let Some(saved) = self.saved_pkrs[cpu].take() {
            machine.wrmsr(cpu, Msr::Pkrs, saved)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erebor_hw::cpu::Domain;
    use erebor_hw::layout;
    use erebor_hw::paging::{map_raw, Pte, PteFlags};
    use erebor_hw::regs::{s_cet, Cr0, Cr4};

    fn setup() -> (Machine, EmcGate) {
        let mut m = Machine::new(2, 32 * 1024 * 1024);
        let root = m.mem.alloc_frame().unwrap();
        let mon_code = m.mem.alloc_frame().unwrap();
        map_raw(
            &mut m.mem,
            root,
            layout::MONITOR_BASE,
            Pte::encode(mon_code, PteFlags::kernel_rx(crate::policy::PK_MONITOR)),
            erebor_hw::paging::intermediate_for(PteFlags::kernel_rx(0)),
        )
        .unwrap();
        let kern_code = m.mem.alloc_frame().unwrap();
        map_raw(
            &mut m.mem,
            root,
            layout::KERNEL_BASE,
            Pte::encode(kern_code, PteFlags::kernel_rx(crate::policy::PK_KTEXT)),
            erebor_hw::paging::intermediate_for(PteFlags::kernel_rx(0)),
        )
        .unwrap();
        for c in &mut m.cpus {
            c.cr3 = root;
            c.cr0 = Cr0(Cr0::WP | Cr0::PG);
            c.cr4 = Cr4(Cr4::SMEP | Cr4::SMAP | Cr4::PKS | Cr4::CET);
            c.domain = Domain::Kernel;
        }
        m.allow_sensitive(Domain::Monitor);
        // Enable IBT (normally done by boot through monitor wrmsr).
        m.cpus[0].domain = Domain::Monitor;
        m.wrmsr(0, Msr::SCet, s_cet::ENDBR_EN).unwrap();
        m.wrmsr(0, Msr::Pkrs, crate::policy::normal_mode_pkrs().0)
            .unwrap();
        m.cpus[0].domain = Domain::Kernel;
        let entry = layout::MONITOR_BASE;
        m.endbr.add(entry);
        let gate = EmcGate::new(entry, vec![VirtAddr(layout::MONITOR_BASE.0 + 0x10000); 2]);
        (m, gate)
    }

    #[test]
    fn enter_exit_roundtrip_costs_near_paper() {
        let (mut m, mut gate) = setup();
        let before = m.cycles.total();
        gate.enter(&mut m, 0).unwrap();
        assert!(gate.in_emc(0));
        assert_eq!(m.cpus[0].pkrs(), crate::policy::monitor_mode_pkrs());
        gate.exit(&mut m, 0, layout::KERNEL_BASE).unwrap();
        assert!(!gate.in_emc(0));
        assert_eq!(m.cpus[0].pkrs(), crate::policy::normal_mode_pkrs());
        let cost = m.cycles.total() - before;
        // Paper Table 3: empty EMC ≈ 1224 cycles.
        assert!((900..=1600).contains(&cost), "EMC roundtrip cost {cost}");
    }

    #[test]
    fn jump_past_entry_pad_is_cp_fault() {
        let (mut m, gate) = setup();
        let err = m.indirect_branch(0, gate.entry.add(0x40)).unwrap_err();
        assert!(matches!(err, Fault::ControlProtection(_)));
    }

    #[test]
    fn interrupt_during_emc_revokes_monitor_access() {
        let (mut m, mut gate) = setup();
        gate.enter(&mut m, 0).unwrap();
        gate.interrupt_entry(&mut m, 0).unwrap();
        // The kernel handler now runs with the normal-mode PKRS: monitor
        // memory is inaccessible.
        assert_eq!(m.cpus[0].pkrs(), crate::policy::normal_mode_pkrs());
        gate.interrupt_return(&mut m, 0).unwrap();
        assert_eq!(m.cpus[0].pkrs(), crate::policy::monitor_mode_pkrs());
        gate.exit(&mut m, 0, layout::KERNEL_BASE).unwrap();
    }

    #[test]
    fn interrupt_outside_emc_is_inert() {
        let (mut m, mut gate) = setup();
        gate.interrupt_entry(&mut m, 0).unwrap();
        assert_eq!(m.cpus[0].pkrs(), crate::policy::normal_mode_pkrs());
        gate.interrupt_return(&mut m, 0).unwrap();
        assert_eq!(m.cpus[0].pkrs(), crate::policy::normal_mode_pkrs());
    }

    #[test]
    fn nested_interrupts_keep_first_saved_pkrs() {
        let (mut m, mut gate) = setup();
        gate.enter(&mut m, 0).unwrap();
        gate.interrupt_entry(&mut m, 0).unwrap();
        gate.interrupt_entry(&mut m, 0).unwrap(); // nested
        gate.interrupt_return(&mut m, 0).unwrap();
        assert_eq!(m.cpus[0].pkrs(), crate::policy::monitor_mode_pkrs());
    }

    #[test]
    fn per_core_emc_state() {
        let (mut m, mut gate) = setup();
        gate.enter(&mut m, 0).unwrap();
        assert!(gate.in_emc(0));
        assert!(!gate.in_emc(1));
        assert_eq!(m.cpus[1].msr(Msr::Pkrs), 0, "core 1 PKRS untouched");
        gate.exit(&mut m, 0, layout::KERNEL_BASE).unwrap();
    }
}
