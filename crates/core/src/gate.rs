//! EMC entry/exit gates and the interrupt gate (§5.3, Fig. 5).
//!
//! The entry gate is the only *software-callable* `endbr64` landing pad in
//! the monitor (the syscall and interrupt interposers are reached solely by
//! hardware transfers), so CET-IBT forces every indirect transfer into the
//! monitor through it. The
//! gate grants the core read-write access to monitor memory by writing
//! `IA32_PKRS`, switches to a protected per-core stack, and records the
//! in-EMC state that the interrupt gate consults: if the OS (or the host)
//! preempts an EMC, the `#INT` gate saves and *revokes* the elevated PKRS
//! before the kernel's handler runs, and restores it on return.

use crate::policy;
use erebor_hw::cpu::Machine;
use erebor_hw::fault::Fault;
use erebor_hw::inject::InjectionPoint;
use erebor_hw::regs::Msr;
use erebor_hw::VirtAddr;
use erebor_trace::{Bucket, TraceEvent};

/// Per-core gate state plus the gate addresses inside the monitor image.
#[derive(Debug)]
pub struct EmcGate {
    /// The `endbr64`-tagged entry address (the only legal *software*
    /// indirect target in the monitor).
    pub entry: VirtAddr,
    /// Per-core secure stack tops.
    pub secure_stacks: Vec<VirtAddr>,
    in_emc: Vec<bool>,
    /// `(value, depth)` of the PKRS saved by the outermost preempting
    /// interrupt — `depth` is the `int_depth` at which the save happened,
    /// and only the matching return restores it.
    saved_pkrs: Vec<Option<(u64, u32)>>,
    int_depth: Vec<u32>,
}

impl EmcGate {
    /// Create gate state for `cores` logical cores.
    #[must_use]
    pub fn new(entry: VirtAddr, secure_stacks: Vec<VirtAddr>) -> EmcGate {
        let cores = secure_stacks.len();
        EmcGate {
            entry,
            secure_stacks,
            in_emc: vec![false; cores],
            saved_pkrs: vec![None; cores],
            int_depth: vec![0; cores],
        }
    }

    /// Whether core `cpu` is currently inside an EMC.
    #[must_use]
    pub fn in_emc(&self, cpu: usize) -> bool {
        self.in_emc[cpu]
    }

    /// The PKRS value stashed by a preempting interrupt, if any
    /// (invariant checkers consult this to tell a live EMC from a
    /// preempted one).
    #[must_use]
    pub fn saved_pkrs(&self, cpu: usize) -> Option<u64> {
        self.saved_pkrs[cpu].map(|(v, _)| v)
    }

    /// Interrupt-nesting depth the `#INT` gate has tracked for `cpu`.
    #[must_use]
    pub fn int_depth(&self, cpu: usize) -> u32 {
        self.int_depth[cpu]
    }

    /// Serialise the full gate ledger for migration: per-core in-EMC
    /// flags, saved-PKRS slots with their nesting depths, and interrupt
    /// depths. This *is* architectural state — a core migrated mid-EMC
    /// must resume with the same grant/revoke bookkeeping or the first
    /// interrupt return on the destination would restore the wrong PKRS.
    #[must_use]
    pub fn export_state(&self) -> Vec<u8> {
        let mut w = erebor_wire::WireWriter::new();
        w.u64(self.entry.0);
        w.seq(self.secure_stacks.len());
        for s in &self.secure_stacks {
            w.u64(s.0);
        }
        for cpu in 0..self.secure_stacks.len() {
            w.bool(self.in_emc[cpu]);
            match self.saved_pkrs[cpu] {
                None => w.bool(false),
                Some((pkrs, depth)) => {
                    w.bool(true);
                    w.u64(pkrs);
                    w.u32(depth);
                }
            }
            w.u32(self.int_depth[cpu]);
        }
        w.finish()
    }

    /// Rebuild gate state from [`EmcGate::export_state`] bytes.
    ///
    /// # Errors
    /// [`erebor_wire::WireError`] on truncation or trailing bytes.
    pub fn import_state(bytes: &[u8]) -> Result<EmcGate, erebor_wire::WireError> {
        let mut r = erebor_wire::WireReader::new(bytes);
        let entry = VirtAddr(r.u64()?);
        let cores = r.seq(8)?;
        let mut secure_stacks = Vec::with_capacity(cores);
        for _ in 0..cores {
            secure_stacks.push(VirtAddr(r.u64()?));
        }
        let mut in_emc = Vec::with_capacity(cores);
        let mut saved_pkrs = Vec::with_capacity(cores);
        let mut int_depth = Vec::with_capacity(cores);
        for _ in 0..cores {
            in_emc.push(r.bool()?);
            saved_pkrs.push(if r.bool()? {
                let pkrs = r.u64()?;
                let depth = r.u32()?;
                Some((pkrs, depth))
            } else {
                None
            });
            int_depth.push(r.u32()?);
        }
        r.finish()?;
        Ok(EmcGate {
            entry,
            secure_stacks,
            in_emc,
            saved_pkrs,
            int_depth,
        })
    }

    /// The entry gate (Fig. 5a): indirect branch (IBT-checked), scratch
    /// spills, PKRS grant, stack switch.
    ///
    /// # Errors
    /// `#CP` if the caller aims anywhere but the landing pad; fetch faults;
    /// `#GP`/`#UD` if somehow reached from an illegitimate context.
    pub fn enter(&mut self, machine: &mut Machine, cpu: usize) -> Result<(), Fault> {
        let prev_bucket = machine.cycles.set_bucket(Bucket::Monitor);
        let r = self.enter_gate(machine, cpu);
        machine.cycles.set_bucket(prev_bucket);
        if r.is_ok() {
            machine.trace_event(cpu, TraceEvent::GateEnter);
        }
        r
    }

    fn enter_gate(&mut self, machine: &mut Machine, cpu: usize) -> Result<(), Fault> {
        let prev_domain = machine.cpus[cpu].domain;
        let prev_rip = machine.cpus[cpu].ctx.rip;
        // ① Indirect call to the gate: hardware IBT check; on success the
        // core's code domain becomes Monitor.
        machine.indirect_branch(cpu, self.entry)?;
        let c = &machine.costs;
        // Scratch register spills + fills (3 each way), stack switch, and
        // the serializing-write pipeline overhead.
        machine
            .cycles
            .charge(6 * c.mem_op + c.stack_switch + 2 * c.alu + c.gate_overhead);
        // Arm the in-EMC flag *before* the PKRS grant: a preemption
        // landing between these two steps then goes through the `#INT`
        // gate's save/revoke path like any other mid-EMC interrupt.
        self.in_emc[cpu] = true;
        if machine.chaos_preempt(InjectionPoint::GateEnter { cpu }) {
            self.injected_preemption(machine, cpu);
        }
        // Grant monitor memory access for this core only. A fault on
        // either MSR op unwinds the whole entry: the caller must observe
        // the same state as if the gate had never been taken.
        let granted = machine
            .rdmsr(cpu, Msr::Pkrs)
            .and_then(|_old| machine.wrmsr(cpu, Msr::Pkrs, policy::monitor_mode_pkrs().0));
        if let Err(f) = granted {
            self.in_emc[cpu] = false;
            machine.cpus[cpu].domain = prev_domain;
            machine.cpus[cpu].ctx.rip = prev_rip;
            return Err(f);
        }
        // The EMC world switch is a trace-visible boundary: pin an MMU
        // epoch so no permission decision cached outside the gate can be
        // replayed inside it (the PKRS write already changes the context
        // key; the bump makes the boundary explicit and injector-proof).
        machine.bump_mmu_epoch();
        Ok(())
    }

    /// Model an interrupt delivered inside a gate window: the `#INT` gate
    /// runs, the injector observes what the kernel handler would see, and
    /// the handler returns.
    fn injected_preemption(&mut self, machine: &mut Machine, cpu: usize) {
        let entered = self.interrupt_entry(machine, cpu).is_ok();
        machine.chaos_observe(cpu);
        if entered && self.interrupt_return(machine, cpu).is_err() {
            // The return's restoring `wrmsr` faulted. The real gate's
            // recovery is straight-line verified monitor code, so the
            // rollback itself is not injectable: put the saved value back
            // and unwind the depth the failed return left bumped.
            if let Some((saved, at_depth)) = self.saved_pkrs[cpu] {
                if at_depth == self.int_depth[cpu] {
                    machine.restore_msr(cpu, Msr::Pkrs, saved);
                    self.saved_pkrs[cpu] = None;
                }
            }
            self.int_depth[cpu] = self.int_depth[cpu].saturating_sub(1);
        }
    }

    /// The exit gate (Fig. 5b): revoke monitor access, restore scratch,
    /// return to the kernel at `return_to`.
    ///
    /// # Errors
    /// Propagates register/branch faults.
    pub fn exit(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        return_to: VirtAddr,
    ) -> Result<(), Fault> {
        let prev_bucket = machine.cycles.set_bucket(Bucket::Monitor);
        let r = self.exit_gate(machine, cpu, return_to);
        machine.cycles.set_bucket(prev_bucket);
        if r.is_ok() {
            machine.trace_event(cpu, TraceEvent::GateExit);
        }
        r
    }

    fn exit_gate(
        &mut self,
        machine: &mut Machine,
        cpu: usize,
        return_to: VirtAddr,
    ) -> Result<(), Fault> {
        let c = &machine.costs;
        machine
            .cycles
            .charge(6 * c.mem_op + c.stack_switch + 2 * c.alu + c.call_ret + c.gate_overhead);
        if machine.chaos_preempt(InjectionPoint::GateExit { cpu }) {
            self.injected_preemption(machine, cpu);
        }
        // The exit gate reads then rewrites PKRS (Fig. 5b lines 9-12).
        // Faults here leave all state untouched — still inside the EMC.
        let cur = machine.rdmsr(cpu, Msr::Pkrs)?;
        machine.wrmsr(cpu, Msr::Pkrs, policy::normal_mode_pkrs().0)?;
        self.in_emc[cpu] = false;
        if let Err(f) = machine.direct_branch(cpu, return_to) {
            // The return never left the monitor: put the EMC state back so
            // `in_emc`/PKRS/domain agree that we are still inside.
            self.in_emc[cpu] = true;
            machine.restore_msr(cpu, Msr::Pkrs, cur);
            return Err(f);
        }
        // Leaving the monitor: any mapping the EMC body touched must not
        // be served from a pre-gate cached decision (see `enter_gate`).
        machine.bump_mmu_epoch();
        Ok(())
    }

    /// The `#INT` gate, interrupt-entry half (Fig. 5c-right ⓐ): if this
    /// core is inside an EMC, save the elevated PKRS onto the secure stack
    /// and revoke it before the OS handler runs.
    ///
    /// Must be invoked by the platform's interrupt interposer *before*
    /// transferring to any kernel handler. Idempotent outside EMCs.
    ///
    /// # Errors
    /// Propagates MSR faults.
    pub fn interrupt_entry(&mut self, machine: &mut Machine, cpu: usize) -> Result<(), Fault> {
        let prev_bucket = machine.cycles.set_bucket(Bucket::Monitor);
        let r = self.interrupt_entry_gate(machine, cpu);
        machine.cycles.set_bucket(prev_bucket);
        r
    }

    fn interrupt_entry_gate(&mut self, machine: &mut Machine, cpu: usize) -> Result<(), Fault> {
        // Register save/restore cost of the gate.
        machine.cycles.charge(16 * machine.costs.mem_op);
        self.int_depth[cpu] = self.int_depth[cpu].saturating_add(1);
        if self.in_emc[cpu] && self.saved_pkrs[cpu].is_none() {
            let revoked = machine
                .rdmsr(cpu, Msr::Pkrs)
                .and_then(|cur| machine.wrmsr(cpu, Msr::Pkrs, policy::normal_mode_pkrs().0).map(|()| cur));
            match revoked {
                Ok(cur) => self.saved_pkrs[cpu] = Some((cur, self.int_depth[cpu])),
                Err(f) => {
                    // PKRS is untouched on either fault; undo the depth
                    // bump so the entry is a no-op, and refuse delivery.
                    self.int_depth[cpu] -= 1;
                    return Err(f);
                }
            }
        }
        Ok(())
    }

    /// The `#INT` gate, interrupt-return half (Fig. 5c-right ⓑ): restore
    /// the saved PKRS when returning into a preempted EMC — but only at
    /// the return matching the save. A nested interrupt returning first
    /// must leave the revoked PKRS in place, or the *outer* kernel
    /// handler would run with monitor memory access.
    ///
    /// # Errors
    /// Propagates MSR faults (state untouched on error).
    pub fn interrupt_return(&mut self, machine: &mut Machine, cpu: usize) -> Result<(), Fault> {
        let prev_bucket = machine.cycles.set_bucket(Bucket::Monitor);
        let r = self.interrupt_return_gate(machine, cpu);
        machine.cycles.set_bucket(prev_bucket);
        r
    }

    fn interrupt_return_gate(&mut self, machine: &mut Machine, cpu: usize) -> Result<(), Fault> {
        machine.cycles.charge(16 * machine.costs.mem_op);
        if let Some((saved, at_depth)) = self.saved_pkrs[cpu] {
            if at_depth == self.int_depth[cpu] {
                machine.wrmsr(cpu, Msr::Pkrs, saved)?;
                self.saved_pkrs[cpu] = None;
            }
        }
        self.int_depth[cpu] = self.int_depth[cpu].saturating_sub(1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erebor_hw::cpu::Domain;
    use erebor_hw::layout;
    use erebor_hw::paging::{map_raw, Pte, PteFlags};
    use erebor_hw::regs::{s_cet, Cr0, Cr4};

    fn setup() -> (Machine, EmcGate) {
        let mut m = Machine::new(2, 32 * 1024 * 1024);
        let root = m.mem.alloc_frame().unwrap();
        let mon_code = m.mem.alloc_frame().unwrap();
        map_raw(
            &mut m.mem,
            root,
            layout::MONITOR_BASE,
            Pte::encode(mon_code, PteFlags::kernel_rx(crate::policy::PK_MONITOR)),
            erebor_hw::paging::intermediate_for(PteFlags::kernel_rx(0)),
        )
        .unwrap();
        let kern_code = m.mem.alloc_frame().unwrap();
        map_raw(
            &mut m.mem,
            root,
            layout::KERNEL_BASE,
            Pte::encode(kern_code, PteFlags::kernel_rx(crate::policy::PK_KTEXT)),
            erebor_hw::paging::intermediate_for(PteFlags::kernel_rx(0)),
        )
        .unwrap();
        for c in &mut m.cpus {
            c.cr3 = root;
            c.cr0 = Cr0(Cr0::WP | Cr0::PG);
            c.cr4 = Cr4(Cr4::SMEP | Cr4::SMAP | Cr4::PKS | Cr4::CET);
            c.domain = Domain::Kernel;
        }
        m.allow_sensitive(Domain::Monitor);
        // Enable IBT (normally done by boot through monitor wrmsr).
        m.cpus[0].domain = Domain::Monitor;
        m.wrmsr(0, Msr::SCet, s_cet::ENDBR_EN).unwrap();
        m.wrmsr(0, Msr::Pkrs, crate::policy::normal_mode_pkrs().0)
            .unwrap();
        m.cpus[0].domain = Domain::Kernel;
        let entry = layout::MONITOR_BASE;
        m.endbr.add(entry);
        let gate = EmcGate::new(entry, vec![VirtAddr(layout::MONITOR_BASE.0 + 0x10000); 2]);
        (m, gate)
    }

    #[test]
    fn enter_exit_roundtrip_costs_near_paper() {
        let (mut m, mut gate) = setup();
        let before = m.cycles.total();
        gate.enter(&mut m, 0).unwrap();
        assert!(gate.in_emc(0));
        assert_eq!(m.cpus[0].pkrs(), crate::policy::monitor_mode_pkrs());
        gate.exit(&mut m, 0, layout::KERNEL_BASE).unwrap();
        assert!(!gate.in_emc(0));
        assert_eq!(m.cpus[0].pkrs(), crate::policy::normal_mode_pkrs());
        let cost = m.cycles.total() - before;
        // Paper Table 3: empty EMC ≈ 1224 cycles.
        assert!((900..=1600).contains(&cost), "EMC roundtrip cost {cost}");
    }

    #[test]
    fn jump_past_entry_pad_is_cp_fault() {
        let (mut m, gate) = setup();
        let err = m.indirect_branch(0, gate.entry.add(0x40)).unwrap_err();
        assert!(matches!(err, Fault::ControlProtection(_)));
    }

    #[test]
    fn interrupt_during_emc_revokes_monitor_access() {
        let (mut m, mut gate) = setup();
        gate.enter(&mut m, 0).unwrap();
        gate.interrupt_entry(&mut m, 0).unwrap();
        // The kernel handler now runs with the normal-mode PKRS: monitor
        // memory is inaccessible.
        assert_eq!(m.cpus[0].pkrs(), crate::policy::normal_mode_pkrs());
        gate.interrupt_return(&mut m, 0).unwrap();
        assert_eq!(m.cpus[0].pkrs(), crate::policy::monitor_mode_pkrs());
        gate.exit(&mut m, 0, layout::KERNEL_BASE).unwrap();
    }

    #[test]
    fn interrupt_outside_emc_is_inert() {
        let (mut m, mut gate) = setup();
        gate.interrupt_entry(&mut m, 0).unwrap();
        assert_eq!(m.cpus[0].pkrs(), crate::policy::normal_mode_pkrs());
        gate.interrupt_return(&mut m, 0).unwrap();
        assert_eq!(m.cpus[0].pkrs(), crate::policy::normal_mode_pkrs());
    }

    #[test]
    fn nested_interrupts_keep_first_saved_pkrs() {
        let (mut m, mut gate) = setup();
        gate.enter(&mut m, 0).unwrap();
        gate.interrupt_entry(&mut m, 0).unwrap();
        gate.interrupt_entry(&mut m, 0).unwrap(); // nested
        // The nested handler returns first: the *outer* kernel handler is
        // still running, so monitor access must stay revoked.
        gate.interrupt_return(&mut m, 0).unwrap();
        assert_eq!(m.cpus[0].pkrs(), crate::policy::normal_mode_pkrs());
        assert_eq!(gate.saved_pkrs(0), Some(crate::policy::monitor_mode_pkrs().0));
        // Only the outermost return restores the saved monitor PKRS.
        gate.interrupt_return(&mut m, 0).unwrap();
        assert_eq!(m.cpus[0].pkrs(), crate::policy::monitor_mode_pkrs());
        assert_eq!(gate.int_depth(0), 0);
        gate.exit(&mut m, 0, layout::KERNEL_BASE).unwrap();
    }

    #[test]
    fn emc_inside_interrupt_handler_restores_at_matching_depth() {
        // An EMC can itself start inside an interrupt handler (the kernel
        // handler calls into the monitor). A nested preemption then saves
        // at depth 2, and must restore when *that* interrupt returns, not
        // when the stack unwinds to depth 0.
        let (mut m, mut gate) = setup();
        gate.interrupt_entry(&mut m, 0).unwrap(); // outer, outside EMC
        gate.enter(&mut m, 0).unwrap();
        gate.interrupt_entry(&mut m, 0).unwrap(); // nested, mid-EMC
        assert_eq!(m.cpus[0].pkrs(), crate::policy::normal_mode_pkrs());
        gate.interrupt_return(&mut m, 0).unwrap(); // back into the EMC
        assert_eq!(m.cpus[0].pkrs(), crate::policy::monitor_mode_pkrs());
        gate.exit(&mut m, 0, layout::KERNEL_BASE).unwrap();
        gate.interrupt_return(&mut m, 0).unwrap(); // outer handler done
        assert_eq!(gate.int_depth(0), 0);
        assert_eq!(m.cpus[0].pkrs(), crate::policy::normal_mode_pkrs());
    }

    /// One-shot injector faulting the next operation at a chosen point.
    struct Bomb {
        armed: bool,
        wrmsr: bool,
        branch: bool,
    }

    impl erebor_hw::inject::Injector for Bomb {
        fn inject_fault(&mut self, p: InjectionPoint) -> Option<Fault> {
            let hit = match p {
                InjectionPoint::Wrmsr { .. } => self.wrmsr,
                InjectionPoint::DirectBranch { .. } => self.branch,
                _ => false,
            };
            if self.armed && hit {
                self.armed = false;
                return Some(Fault::GeneralProtection("injected fault"));
            }
            None
        }
    }

    #[test]
    fn faulting_pkrs_grant_rolls_back_enter() {
        let (mut m, mut gate) = setup();
        m.set_injector(erebor_hw::inject::handle(Bomb {
            armed: true,
            wrmsr: true,
            branch: false,
        }));
        let err = gate.enter(&mut m, 0).unwrap_err();
        assert!(matches!(err, Fault::GeneralProtection(_)));
        // Fully unwound: the core is back where the caller left it, not
        // stranded in the Monitor domain with `in_emc == false`.
        assert!(!gate.in_emc(0));
        assert_eq!(m.cpus[0].domain, Domain::Kernel);
        assert_eq!(m.cpus[0].pkrs(), crate::policy::normal_mode_pkrs());
        // The bomb is spent: a retry succeeds.
        gate.enter(&mut m, 0).unwrap();
        assert!(gate.in_emc(0));
        gate.exit(&mut m, 0, layout::KERNEL_BASE).unwrap();
    }

    #[test]
    fn faulting_return_branch_restores_emc_state() {
        let (mut m, mut gate) = setup();
        gate.enter(&mut m, 0).unwrap();
        m.set_injector(erebor_hw::inject::handle(Bomb {
            armed: true,
            wrmsr: false,
            branch: true,
        }));
        let err = gate.exit(&mut m, 0, layout::KERNEL_BASE).unwrap_err();
        assert!(matches!(err, Fault::GeneralProtection(_)));
        // Control never left the monitor, and the gate state says so.
        assert!(gate.in_emc(0));
        assert_eq!(m.cpus[0].domain, Domain::Monitor);
        assert_eq!(m.cpus[0].pkrs(), crate::policy::monitor_mode_pkrs());
        // The retry completes the exit.
        gate.exit(&mut m, 0, layout::KERNEL_BASE).unwrap();
        assert!(!gate.in_emc(0));
        assert_eq!(m.cpus[0].pkrs(), crate::policy::normal_mode_pkrs());
    }

    #[test]
    fn faulting_revoke_unwinds_interrupt_entry() {
        let (mut m, mut gate) = setup();
        gate.enter(&mut m, 0).unwrap();
        m.set_injector(erebor_hw::inject::handle(Bomb {
            armed: true,
            wrmsr: true,
            branch: false,
        }));
        let err = gate.interrupt_entry(&mut m, 0).unwrap_err();
        assert!(matches!(err, Fault::GeneralProtection(_)));
        // No half-delivered interrupt: nothing saved, depth unchanged,
        // PKRS still the EMC's.
        assert_eq!(gate.saved_pkrs(0), None);
        assert_eq!(gate.int_depth(0), 0);
        assert_eq!(m.cpus[0].pkrs(), crate::policy::monitor_mode_pkrs());
        gate.interrupt_entry(&mut m, 0).unwrap();
        gate.interrupt_return(&mut m, 0).unwrap();
        gate.exit(&mut m, 0, layout::KERNEL_BASE).unwrap();
    }

    #[test]
    fn per_core_emc_state() {
        let (mut m, mut gate) = setup();
        gate.enter(&mut m, 0).unwrap();
        assert!(gate.in_emc(0));
        assert!(!gate.in_emc(1));
        assert_eq!(m.cpus[1].msr(Msr::Pkrs), 0, "core 1 PKRS untouched");
        gate.exit(&mut m, 0, layout::KERNEL_BASE).unwrap();
    }
}
