//! Checked page-table manipulation under the Nested-Kernel invariant
//! (§5.2): page-table pages carry [`crate::policy::PK_PTP`], so every PTE
//! store below goes through the MMU-checked CPU write path — it succeeds
//! only on a core whose `IA32_PKRS` grants PTP writes, i.e. inside an EMC
//! or during trusted boot.

use crate::policy::{pkey_for, FrameKind, FrameTable};
use erebor_hw::cpu::Machine;
use erebor_hw::fault::Fault;
use erebor_hw::layout::direct_map;
use erebor_hw::paging::{self, Pte, PteFlags};
use erebor_hw::{Frame, PhysAddr, VirtAddr};

/// Write a PTE slot through the checked CPU path (PKS-guarded).
///
/// # Errors
/// `#PF` with `PksWriteDisabled` when the caller lacks monitor privileges —
/// the attack tests rely on exactly this fault.
pub fn pte_write(
    machine: &mut Machine,
    cpu: usize,
    slot: PhysAddr,
    value: Pte,
) -> Result<(), Fault> {
    machine.write_u64(cpu, direct_map(slot), value.0)?;
    machine.cycles.charge(machine.costs.pte_store);
    Ok(())
}

/// Read a PTE slot (reads are unprivileged; the kernel may read tables).
#[must_use]
pub fn pte_read_raw(machine: &Machine, slot: PhysAddr) -> Pte {
    Pte(machine.mem.read_u64(slot).unwrap_or(0))
}

/// Rewrite the direct-map leaf for `frame` so its protection key matches a
/// new frame kind (retyping). The direct map stays writable for default
/// kinds and write-protected for trusted kinds.
///
/// # Errors
/// Propagates checked-write faults.
pub fn retag_direct_map(
    machine: &mut Machine,
    cpu: usize,
    kernel_root: Frame,
    frame: Frame,
    kind: FrameKind,
) -> Result<(), Fault> {
    retag_direct_map_tagged(machine, cpu, kernel_root, frame, pkey_for(kind), 0)
}

/// Rewrite the direct-map leaf for `frame` with an *explicit* isolation
/// tag — protection key plus TME-MK key-ID — rather than one derived
/// from a frame kind. Confined-memory aliases use this: under the PKS
/// backend the tag is the owning sandbox's pkey (key-ID 0), under the
/// TME-MK backend it is `PK_MONITOR` plus the sandbox's key-ID.
///
/// # Errors
/// Propagates checked-write faults.
pub fn retag_direct_map_tagged(
    machine: &mut Machine,
    cpu: usize,
    kernel_root: Frame,
    frame: Frame,
    pkey: u8,
    keyid: u16,
) -> Result<(), Fault> {
    let dm_va = direct_map(frame.base());
    let slot = paging::leaf_slot(&machine.mem, kernel_root, dm_va)
        .map_err(|_| Fault::Unrecoverable("direct-map walk left DRAM"))?
        .ok_or(Fault::Unrecoverable("direct map incomplete"))?;
    let old = pte_read_raw(machine, slot);
    let flags = PteFlags {
        present: true,
        writable: true,
        nx: true,
        pkey,
        ..PteFlags::default()
    };
    pte_write(machine, cpu, slot, Pte::encode(frame, flags).with_keyid(keyid))?;
    if old.present() && (old.pkey() != pkey || old.keyid() != keyid) {
        // The retype changed the frame's isolation tag: a cached
        // direct-map translation carrying the old tag on any core would
        // let the kernel keep writing a frame that just became trusted
        // (PTP/monitor/confined) state — the stale-sEPT hazard class.
        // Shoot it down everywhere. Tag-preserving retypes (e.g. free →
        // user data, both PK_DEFAULT) need no flush: the cached
        // permissions are still exact. A key-ID change is the PCONFIG
        // reprogramming case and needs the same flush discipline.
        machine.tlb_shootdown(cpu, dm_va)?;
    }
    Ok(())
}

/// Walk (creating intermediate PTPs as needed) and install `leaf_pte` for
/// `va` in the address space rooted at `root`, all through checked writes.
///
/// New PTPs are allocated from the general pool, retyped to
/// [`FrameKind::Ptp`] and their direct-map entries re-keyed, preserving the
/// Nested-Kernel invariant for every table of every address space.
///
/// # Errors
/// Checked-write faults (PKS) or allocation failure (mapped to
/// [`Fault::Unrecoverable`] only for DRAM-range bugs; callers convert
/// allocation failure separately via [`MapError`]).
pub fn checked_map(
    machine: &mut Machine,
    cpu: usize,
    frames: &mut FrameTable,
    kernel_root: Frame,
    root: Frame,
    va: VirtAddr,
    leaf_pte: Pte,
) -> Result<(), MapError> {
    let inter = paging::intermediate_for(leaf_pte.flags());
    let mut tbl = root;
    for level in (2..=4u8).rev() {
        let slot = paging::pte_slot(tbl, va, level);
        let entry = pte_read_raw(machine, slot);
        if entry.present() {
            tbl = entry.frame();
        } else {
            let f = machine.mem.alloc_frame().map_err(|_| MapError::NoMemory)?;
            frames
                .set_kind(f, FrameKind::Ptp)
                .map_err(|_| MapError::FrameConflict)?;
            retag_direct_map(machine, cpu, kernel_root, f, FrameKind::Ptp)
                .map_err(MapError::Fault)?;
            pte_write(machine, cpu, slot, Pte::encode(f, inter)).map_err(MapError::Fault)?;
            tbl = f;
        }
    }
    pte_write(machine, cpu, paging::pte_slot(tbl, va, 1), leaf_pte).map_err(MapError::Fault)?;
    Ok(())
}

/// Locate and rewrite the leaf PTE for an *existing* mapping.
///
/// # Errors
/// [`MapError::NotMapped`] if the walk path is incomplete.
pub fn checked_update_leaf(
    machine: &mut Machine,
    cpu: usize,
    root: Frame,
    va: VirtAddr,
    f: impl FnOnce(Pte) -> Pte,
) -> Result<Pte, MapError> {
    let slot = paging::leaf_slot(&machine.mem, root, va)
        .map_err(|_| MapError::Fault(Fault::Unrecoverable("walk left DRAM")))?
        .ok_or(MapError::NotMapped)?;
    let old = pte_read_raw(machine, slot);
    if !old.present() {
        return Err(MapError::NotMapped);
    }
    let new = f(old);
    pte_write(machine, cpu, slot, new).map_err(MapError::Fault)?;
    Ok(old)
}

/// Mapping-path errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// Out of physical memory.
    NoMemory,
    /// Frame-table kind conflict.
    FrameConflict,
    /// No mapping exists at the given address.
    NotMapped,
    /// A hardware fault during the checked writes.
    Fault(Fault),
}

impl core::fmt::Display for MapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MapError::NoMemory => write!(f, "out of physical memory"),
            MapError::FrameConflict => write!(f, "frame kind conflict"),
            MapError::NotMapped => write!(f, "address not mapped"),
            MapError::Fault(e) => write!(f, "fault during mapping: {e}"),
        }
    }
}

impl std::error::Error for MapError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{self, PK_PTP};
    use erebor_hw::cpu::Domain;
    use erebor_hw::fault::PfReason;
    use erebor_hw::regs::{Cr0, Cr4, Msr};

    /// Build a machine with a boot-grade direct map so checked writes work.
    fn setup() -> (Machine, FrameTable, Frame) {
        let mut m = Machine::new(1, 32 * 1024 * 1024);
        let total = m.mem.total_frames();
        let mut frames = FrameTable::new(total);
        let kernel_root = m.mem.alloc_frame().unwrap();
        frames.set_kind(kernel_root, FrameKind::Ptp).unwrap();
        // Raw-build the direct map (firmware privilege), tagging PTPs.
        let mut ptps = vec![kernel_root];
        for f in 0..total {
            let new = paging::map_raw(
                &mut m.mem,
                kernel_root,
                direct_map(Frame(f).base()),
                Pte::encode(Frame(f), PteFlags::kernel_rw(0)),
                PteFlags::kernel_rw(0),
            )
            .unwrap();
            ptps.extend(new);
        }
        for p in &ptps {
            frames.set_kind(*p, FrameKind::Ptp).ok();
        }
        // Re-key the direct-map entries of every PTP frame to PK_PTP.
        for p in ptps.clone() {
            let slot = paging::leaf_slot(&m.mem, kernel_root, direct_map(p.base()))
                .unwrap()
                .unwrap();
            let flags = PteFlags {
                present: true,
                writable: true,
                nx: true,
                pkey: PK_PTP,
                ..PteFlags::default()
            };
            m.mem.write_u64(slot, Pte::encode(p, flags).0).unwrap();
        }
        let c = &mut m.cpus[0];
        c.cr3 = kernel_root;
        c.cr0 = Cr0(Cr0::WP | Cr0::PG);
        c.cr4 = Cr4(Cr4::SMEP | Cr4::SMAP | Cr4::PKS);
        c.domain = Domain::Monitor;
        m.allow_sensitive(Domain::Monitor);
        m.wrmsr(0, Msr::Pkrs, policy::monitor_mode_pkrs().0)
            .unwrap();
        (m, frames, kernel_root)
    }

    #[test]
    fn monitor_can_map_kernel_cannot() {
        let (mut m, mut frames, kroot) = setup();
        let target = m.mem.alloc_frame().unwrap();
        // Monitor (granted PKRS) maps fine.
        checked_map(
            &mut m,
            0,
            &mut frames,
            kroot,
            kroot,
            VirtAddr(0x40_0000),
            Pte::encode(target, PteFlags::user_rw()),
        )
        .unwrap();
        // Now drop to normal-mode PKRS (kernel view) and try a direct PTE
        // write — the Nested-Kernel invariant must hold.
        m.wrmsr(0, Msr::Pkrs, policy::normal_mode_pkrs().0).unwrap();
        m.cpus[0].domain = Domain::Kernel;
        let slot = paging::leaf_slot(&m.mem, kroot, VirtAddr(0x40_0000))
            .unwrap()
            .unwrap();
        let err = pte_write(&mut m, 0, slot, Pte::empty()).unwrap_err();
        assert!(err.is_pf(PfReason::PksWriteDisabled), "got {err}");
        // Reading the PTE is still allowed.
        assert!(m.read_u64(0, direct_map(slot)).is_ok());
    }

    #[test]
    fn new_ptps_are_write_protected_for_kernel() {
        let (mut m, mut frames, kroot) = setup();
        let target = m.mem.alloc_frame().unwrap();
        let before = frames.count_kind(|k| k == FrameKind::Ptp);
        checked_map(
            &mut m,
            0,
            &mut frames,
            kroot,
            kroot,
            VirtAddr(0x7f00_0000_0000),
            Pte::encode(target, PteFlags::user_rw()),
        )
        .unwrap();
        let after = frames.count_kind(|k| k == FrameKind::Ptp);
        assert_eq!(after - before, 3, "three new PTP levels");
        // Kernel cannot write any of the new PTPs through the direct map.
        m.wrmsr(0, Msr::Pkrs, policy::normal_mode_pkrs().0).unwrap();
        m.cpus[0].domain = Domain::Kernel;
        let slot = paging::pte_slot(kroot, VirtAddr(0x7f00_0000_0000), 4);
        let intermediate = pte_read_raw(&m, slot).frame();
        let err = m
            .write_u64(0, direct_map(intermediate.base()), 0xdead)
            .unwrap_err();
        assert!(err.is_pf(PfReason::PksWriteDisabled));
    }

    #[test]
    fn checked_update_leaf_seals_read_only() {
        let (mut m, mut frames, kroot) = setup();
        let target = m.mem.alloc_frame().unwrap();
        let va = VirtAddr(0x41_0000);
        checked_map(
            &mut m,
            0,
            &mut frames,
            kroot,
            kroot,
            va,
            Pte::encode(target, PteFlags::user_rw()),
        )
        .unwrap();
        checked_update_leaf(&mut m, 0, kroot, va, Pte::read_only).unwrap();
        let leaf = paging::lookup_raw(&m.mem, kroot, va).unwrap().unwrap();
        assert!(!leaf.writable());
        assert_eq!(
            checked_update_leaf(&mut m, 0, kroot, VirtAddr(0x9999_0000), Pte::read_only),
            Err(MapError::NotMapped)
        );
    }

    #[test]
    fn retag_changes_direct_map_key() {
        let (mut m, _frames, kroot) = setup();
        let f = m.mem.alloc_frame().unwrap();
        retag_direct_map(&mut m, 0, kroot, f, FrameKind::Monitor).unwrap();
        let leaf = paging::lookup_raw(&m.mem, kroot, direct_map(f.base()))
            .unwrap()
            .unwrap();
        assert_eq!(leaf.pkey(), policy::PK_MONITOR);
        // Kernel now has no access at all to that frame via the direct map.
        m.wrmsr(0, Msr::Pkrs, policy::normal_mode_pkrs().0).unwrap();
        m.cpus[0].domain = Domain::Kernel;
        let err = m.read_u64(0, direct_map(f.base())).unwrap_err();
        assert!(err.is_pf(PfReason::PksAccessDisabled));
    }
}
