//! # erebor-core — EREBOR-MONITOR and EREBOR-SANDBOX
//!
//! The paper's primary contribution: a security monitor for confidential
//! virtual machines built from *intra-kernel privilege isolation* (§5),
//! plus the sandboxed-container enforcement it enables (§6).
//!
//! The monitor virtualizes the hardware kernel privilege into a
//! *privileged* mode (the monitor itself) and a *normal* mode (the
//! deprivileged guest kernel), using only guest-controlled hardware:
//!
//! * **Boot & verification** ([`boot`], [`scan`]) — two-stage verified boot:
//!   firmware + monitor are measured into the attestation digest first; the
//!   kernel image is byte-scanned for sensitive instructions (Table 2)
//!   before it is ever mapped executable.
//! * **Privilege enforcement** ([`gate`], [`emc`], [`policy`],
//!   [`mmu_guard`]) — Erebor-Monitor-Calls bounded by entry/exit gates
//!   (PKS permission switch + secure stacks + CET-guarded single entry),
//!   Nested-Kernel-style page-table write protection, W⊕X, SMEP/SMAP
//!   pinning, and GHCI monopolisation.
//! * **Sandboxing** ([`sandbox`]) — confined/common memory with a
//!   single-mapping policy, exit interposition (kill on syscall/#VE after
//!   data install, register scrub at interrupts, cpuid caching, UINTR
//!   disable), and teardown zeroisation.
//! * **Data shepherding** ([`channel`]) — attestation-rooted key exchange
//!   and AEAD records relayed through an untrusted proxy, with fixed-length
//!   output padding.
//! * **Ablation switches** ([`config`]) — Native / LibOS-only / +MMU /
//!   +Exit / Full, driving the paper's Fig. 9 breakdown.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod boot;
pub mod channel;
pub mod config;
pub mod emc;
pub mod gate;
pub mod mmu_guard;
pub mod monitor;
pub mod policy;
pub mod rng;
pub mod sandbox;
pub mod scan;
pub mod stats;

pub use boot::{boot_stage1, BootConfig, BootError, Cvm};
pub use config::{ExecConfig, Mode};
pub use emc::{EmcError, EmcRequest, EmcResponse};
pub use monitor::Monitor;
pub use sandbox::{ExitCause, ExitDecision, SandboxId, SandboxState};
pub use stats::MonitorStats;
