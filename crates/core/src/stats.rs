//! Monitor-side event counters — the raw material for Table 6 and the
//! microbenchmark tables.

/// Counters the monitor maintains across its lifetime.
#[derive(Debug, Default, Clone, Copy)]
pub struct MonitorStats {
    /// EMC round trips (Table 6 "EMC/s" numerator).
    pub emc_calls: u64,
    /// PTE installs/updates performed on behalf of the kernel.
    pub pte_updates: u64,
    /// CR writes delegated.
    pub cr_writes: u64,
    /// MSR writes delegated.
    pub msr_writes: u64,
    /// IDT entry updates delegated.
    pub idt_writes: u64,
    /// Monitor-emulated user-copy operations.
    pub user_copies: u64,
    /// GHCI (tdcall) operations performed for the kernel or channel.
    pub ghci_ops: u64,
    /// Sandbox exits interposed, by cause.
    pub sandbox_pf_exits: u64,
    /// Timer-interrupt exits interposed.
    pub sandbox_timer_exits: u64,
    /// `#VE` exits interposed.
    pub sandbox_ve_exits: u64,
    /// Syscall exits interposed.
    pub sandbox_syscall_exits: u64,
    /// Sandboxes killed for policy violations.
    pub sandboxes_killed: u64,
    /// Denied EMC requests (policy violations by the kernel).
    pub emc_denied: u64,
    /// cpuid requests served from the monitor's cache (§6.2).
    pub cpuid_cached: u64,
}

impl MonitorStats {
    /// Total interposed sandbox exits.
    #[must_use]
    pub fn sandbox_total_exits(&self) -> u64 {
        self.sandbox_pf_exits
            + self.sandbox_timer_exits
            + self.sandbox_ve_exits
            + self.sandbox_syscall_exits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = MonitorStats {
            sandbox_pf_exits: 2,
            sandbox_timer_exits: 3,
            sandbox_ve_exits: 4,
            sandbox_syscall_exits: 1,
            ..MonitorStats::default()
        };
        assert_eq!(s.sandbox_total_exits(), 10);
    }
}
