//! Monitor-side event counters — the raw material for Table 6 and the
//! microbenchmark tables.

/// Counters the monitor maintains across its lifetime.
#[derive(Debug, Default, Clone, Copy)]
pub struct MonitorStats {
    /// EMC round trips (Table 6 "EMC/s" numerator).
    pub emc_calls: u64,
    /// PTE installs/updates performed on behalf of the kernel.
    pub pte_updates: u64,
    /// CR writes delegated.
    pub cr_writes: u64,
    /// MSR writes delegated.
    pub msr_writes: u64,
    /// IDT entry updates delegated.
    pub idt_writes: u64,
    /// Monitor-emulated user-copy operations.
    pub user_copies: u64,
    /// GHCI (tdcall) operations performed for the kernel or channel.
    pub ghci_ops: u64,
    /// Sandbox exits interposed, by cause.
    pub sandbox_pf_exits: u64,
    /// Timer-interrupt exits interposed.
    pub sandbox_timer_exits: u64,
    /// `#VE` exits interposed.
    pub sandbox_ve_exits: u64,
    /// Syscall exits interposed.
    pub sandbox_syscall_exits: u64,
    /// Sandboxes killed for policy violations.
    pub sandboxes_killed: u64,
    /// Denied EMC requests (policy violations by the kernel).
    pub emc_denied: u64,
    /// cpuid requests served from the monitor's cache (§6.2).
    pub cpuid_cached: u64,
}

impl MonitorStats {
    /// Serialise the counters for migration: these are part of the TD's
    /// audit trail and travel with it.
    #[must_use]
    pub fn export_state(&self) -> Vec<u8> {
        let mut w = erebor_wire::WireWriter::new();
        for v in [
            self.emc_calls,
            self.pte_updates,
            self.cr_writes,
            self.msr_writes,
            self.idt_writes,
            self.user_copies,
            self.ghci_ops,
            self.sandbox_pf_exits,
            self.sandbox_timer_exits,
            self.sandbox_ve_exits,
            self.sandbox_syscall_exits,
            self.sandboxes_killed,
            self.emc_denied,
            self.cpuid_cached,
        ] {
            w.u64(v);
        }
        w.finish()
    }

    /// Rebuild counters from [`MonitorStats::export_state`] bytes.
    ///
    /// # Errors
    /// [`erebor_wire::WireError`] on truncation or trailing bytes.
    pub fn import_state(bytes: &[u8]) -> Result<MonitorStats, erebor_wire::WireError> {
        let mut r = erebor_wire::WireReader::new(bytes);
        let s = MonitorStats {
            emc_calls: r.u64()?,
            pte_updates: r.u64()?,
            cr_writes: r.u64()?,
            msr_writes: r.u64()?,
            idt_writes: r.u64()?,
            user_copies: r.u64()?,
            ghci_ops: r.u64()?,
            sandbox_pf_exits: r.u64()?,
            sandbox_timer_exits: r.u64()?,
            sandbox_ve_exits: r.u64()?,
            sandbox_syscall_exits: r.u64()?,
            sandboxes_killed: r.u64()?,
            emc_denied: r.u64()?,
            cpuid_cached: r.u64()?,
        };
        r.finish()?;
        Ok(s)
    }

    /// Total interposed sandbox exits. Saturating: a long-running machine
    /// with counters near `u64::MAX` must report a pinned total, not a
    /// wrapped (tiny) one.
    #[must_use]
    pub fn sandbox_total_exits(&self) -> u64 {
        self.sandbox_pf_exits
            .saturating_add(self.sandbox_timer_exits)
            .saturating_add(self.sandbox_ve_exits)
            .saturating_add(self.sandbox_syscall_exits)
    }

    /// Fieldwise saturating difference `self - earlier`, for interval
    /// measurements between two snapshots.
    #[must_use]
    pub fn delta(&self, earlier: &MonitorStats) -> MonitorStats {
        MonitorStats {
            emc_calls: self.emc_calls.saturating_sub(earlier.emc_calls),
            pte_updates: self.pte_updates.saturating_sub(earlier.pte_updates),
            cr_writes: self.cr_writes.saturating_sub(earlier.cr_writes),
            msr_writes: self.msr_writes.saturating_sub(earlier.msr_writes),
            idt_writes: self.idt_writes.saturating_sub(earlier.idt_writes),
            user_copies: self.user_copies.saturating_sub(earlier.user_copies),
            ghci_ops: self.ghci_ops.saturating_sub(earlier.ghci_ops),
            sandbox_pf_exits: self.sandbox_pf_exits.saturating_sub(earlier.sandbox_pf_exits),
            sandbox_timer_exits: self
                .sandbox_timer_exits
                .saturating_sub(earlier.sandbox_timer_exits),
            sandbox_ve_exits: self.sandbox_ve_exits.saturating_sub(earlier.sandbox_ve_exits),
            sandbox_syscall_exits: self
                .sandbox_syscall_exits
                .saturating_sub(earlier.sandbox_syscall_exits),
            sandboxes_killed: self.sandboxes_killed.saturating_sub(earlier.sandboxes_killed),
            emc_denied: self.emc_denied.saturating_sub(earlier.emc_denied),
            cpuid_cached: self.cpuid_cached.saturating_sub(earlier.cpuid_cached),
        }
    }
}

/// Observability counters for the monitor's O(1) lookup fast paths
/// (fleet mode). Deliberately *not* part of [`MonitorStats`] or any
/// snapshot: the counters differ between fleet-mode-on and ablated runs
/// that are otherwise byte-identical, and the equivalence suite asserts
/// snapshot equality across the toggle.
///
/// Interior mutability (`Cell`) lets `&self` lookup helpers such as
/// [`crate::monitor::Monitor::sandbox_by_root`] count without widening
/// their receivers to `&mut self`.
#[derive(Debug, Default)]
pub struct LookupStats {
    root_index_lookups: core::cell::Cell<u64>,
    as_index_lookups: core::cell::Cell<u64>,
    cpuid_mru_hits: core::cell::Cell<u64>,
}

impl LookupStats {
    /// `sandbox_by_root` queries answered from the root index.
    #[must_use]
    pub fn root_index_lookups(&self) -> u64 {
        self.root_index_lookups.get()
    }

    /// Address-space registration/asid queries answered from the mirror.
    #[must_use]
    pub fn as_index_lookups(&self) -> u64 {
        self.as_index_lookups.get()
    }

    /// cpuid emulations served from the one-entry MRU slot.
    #[must_use]
    pub fn cpuid_mru_hits(&self) -> u64 {
        self.cpuid_mru_hits.get()
    }

    /// Zero all counters — scopes a measurement to the work that
    /// follows (e.g. excluding boot-time lookups from a campaign).
    pub fn reset(&self) {
        self.root_index_lookups.set(0);
        self.as_index_lookups.set(0);
        self.cpuid_mru_hits.set(0);
    }

    pub(crate) fn bump_root_index(&self) {
        self.root_index_lookups
            .set(self.root_index_lookups.get().saturating_add(1));
    }

    pub(crate) fn bump_as_index(&self) {
        self.as_index_lookups
            .set(self.as_index_lookups.get().saturating_add(1));
    }

    pub(crate) fn bump_cpuid_mru(&self) {
        self.cpuid_mru_hits
            .set(self.cpuid_mru_hits.get().saturating_add(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = MonitorStats {
            sandbox_pf_exits: 2,
            sandbox_timer_exits: 3,
            sandbox_ve_exits: 4,
            sandbox_syscall_exits: 1,
            ..MonitorStats::default()
        };
        assert_eq!(s.sandbox_total_exits(), 10);
    }

    #[test]
    fn total_exits_saturates_at_max() {
        // Regression: the old unchecked `+` chain wrapped (and panicked in
        // debug builds) once any addend pushed the sum past u64::MAX.
        let s = MonitorStats {
            sandbox_pf_exits: u64::MAX,
            sandbox_timer_exits: 1,
            sandbox_ve_exits: u64::MAX,
            sandbox_syscall_exits: 7,
            ..MonitorStats::default()
        };
        assert_eq!(s.sandbox_total_exits(), u64::MAX);
    }

    #[test]
    fn delta_saturates_instead_of_underflowing() {
        let earlier = MonitorStats {
            emc_calls: 10,
            ..MonitorStats::default()
        };
        let later = MonitorStats {
            emc_calls: 7, // e.g. counters reset between snapshots
            sandbox_pf_exits: 3,
            ..MonitorStats::default()
        };
        let d = later.delta(&earlier);
        assert_eq!(d.emc_calls, 0, "would have wrapped to huge value");
        assert_eq!(d.sandbox_pf_exits, 3);
    }
}
